//! Shape regression tests: the qualitative results of every figure,
//! asserted as invariants so calibration drift is caught by CI rather
//! than by eyeballing figure output.

use hetflow_bench::{NoopPipeline, StoreKind};

/// Fig. 3: proxying cuts server→worker communication 2–3× at 10 kB.
#[test]
fn fig3_speedup_10kb_in_band() {
    let no_proxy = NoopPipeline::fig3(StoreKind::None).run(10_000, 30);
    let redis = NoopPipeline::fig3(StoreKind::Redis).run(10_000, 30);
    let ratio = no_proxy.server_to_worker.median() / redis.server_to_worker.median();
    assert!((1.8..4.5).contains(&ratio), "10kB server->worker speedup {ratio:.2} (paper: 2-3x)");
}

/// Fig. 3: proxying cuts server→worker communication ~10× at 1 MB.
#[test]
fn fig3_speedup_1mb_in_band() {
    let no_proxy = NoopPipeline::fig3(StoreKind::None).run(1_000_000, 30);
    let redis = NoopPipeline::fig3(StoreKind::Redis).run(1_000_000, 30);
    let ratio = no_proxy.server_to_worker.median() / redis.server_to_worker.median();
    assert!((6.0..16.0).contains(&ratio), "1MB server->worker speedup {ratio:.1} (paper: ~10x)");
}

/// Fig. 3: server→worker communication dominates the no-op lifetime on
/// the FaaS fabric.
#[test]
fn fig3_server_to_worker_dominates() {
    let b = NoopPipeline::fig3(StoreKind::None).run(10_000, 20);
    let s2w = b.server_to_worker.median();
    for (label, other) in [
        ("thinker->server", b.thinker_to_server.median()),
        ("time-on-worker", b.time_on_worker.median()),
    ] {
        assert!(s2w > other, "server->worker {s2w} must dominate {label} {other}");
    }
}

/// Fig. 4: Redis beats the file system for small objects; they are
/// comparable at 100 MB.
#[test]
fn fig4_redis_vs_fs_crossover() {
    let redis_small = NoopPipeline::fig4(StoreKind::Redis).run(10_000, 20);
    let fs_small = NoopPipeline::fig4(StoreKind::Fs).run(10_000, 20);
    assert!(
        redis_small.serialization.mean() < 0.6 * fs_small.serialization.mean(),
        "Redis must be much faster for 10kB: {} vs {}",
        redis_small.serialization.mean(),
        fs_small.serialization.mean()
    );
    let redis_big = NoopPipeline::fig4(StoreKind::Redis).run(100_000_000, 10);
    let fs_big = NoopPipeline::fig4(StoreKind::Fs).run(100_000_000, 10);
    let ratio = redis_big.lifetime.mean() / fs_big.lifetime.mean();
    assert!((0.4..2.5).contains(&ratio), "100MB lifetimes comparable: ratio {ratio:.2}");
}

/// Fig. 4: Globus time-on-worker is seconds and size-independent up to
/// 100 MB (web-service latency, not bandwidth).
#[test]
fn fig4_globus_size_independent() {
    let small = NoopPipeline::fig4(StoreKind::Globus).run(10_000, 10);
    let large = NoopPipeline::fig4(StoreKind::Globus).run(100_000_000, 10);
    let w_small = small.time_on_worker.mean();
    let w_large = large.time_on_worker.mean();
    assert!(w_small > 0.5, "Globus worker wait is seconds: {w_small}");
    assert!(
        w_large / w_small < 2.0,
        "Globus wait must be near size-independent: {w_small:.2} vs {w_large:.2}"
    );
}

/// §V-F recommendation: below ~10 kB, proxying through a store costs
/// more worker time than inlining (the threshold exists for a reason).
#[test]
fn small_messages_hurt_by_proxying() {
    let mut inline = NoopPipeline::fig3(StoreKind::Fs);
    inline.threshold = 10_000;
    let inline_b = inline.run(2_000, 20);
    let mut forced = NoopPipeline::fig3(StoreKind::Fs);
    forced.threshold = 0;
    let forced_b = forced.run(2_000, 20);
    assert!(
        forced_b.time_on_worker.median() > 2.0 * inline_b.time_on_worker.median(),
        "forced proxying of 2kB must cost: {} vs {}",
        forced_b.time_on_worker.median(),
        inline_b.time_on_worker.median()
    );
}

/// The FaaS dispatch cost (client-visible submit latency) is ~100 ms —
/// the §V-D3 in-text number.
#[test]
fn fnx_dispatch_cost_near_100ms() {
    let b = NoopPipeline::fig3(StoreKind::Redis).run(10_000, 30);
    // thinker_to_server + submitted→dispatched is queue + server work;
    // dispatch itself is dominated by the HTTPS call inside
    // server→worker. Verify via the thinker→server vs lifetime split:
    // direct measurement of dispatched is in the records; use the
    // median server→worker lower bound instead.
    let s2w = b.server_to_worker.median();
    assert!(s2w > 0.15 && s2w < 0.8, "FaaS path ~hundreds of ms: {s2w}");
}
