//! Robustness tests for §IV-A3: "both FuncX and Globus's services
//! accept and store tasks (and results) even while remote endpoints (or
//! clients) are unavailable so tasks can be resumed when endpoints
//! reconnect" — plus worker-level failure injection.

use hetflow::fabric::{Connectivity, FailureModel};
use hetflow::prelude::*;
use hetflow::sim::Dist;
use std::rc::Rc;
use std::time::Duration;

#[test]
fn cloud_buffers_tasks_through_endpoint_outage() {
    let sim = Sim::new();
    let cpu_conn = Connectivity::scheduled(
        &sim,
        // Offline from t=10 s to t=310 s.
        vec![(SimTime::from_secs(10), Duration::from_secs(300))],
    );
    let spec = DeploymentSpec {
        cpu_workers: 2,
        gpu_workers: 2,
        cpu_connectivity: cpu_conn.clone(),
        ..Default::default()
    };
    let d = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, Tracer::disabled());
    let q = d.queues.clone();
    let s = sim.clone();
    let h = sim.spawn(async move {
        // Wait until mid-outage, then submit.
        s.sleep(hetflow::sim::time::secs(60.0)).await;
        for i in 0..4u32 {
            q.submit(
                "simulate",
                vec![Payload::new(i, 1000)],
                Rc::new(|_| TaskWork::new((), 100, Duration::from_secs(5))),
            )
            .await;
        }
        let mut done = 0;
        for _ in 0..4 {
            let r = q.get_result("simulate").await.unwrap().resolve().await;
            assert!(
                r.record.timing.worker_started.unwrap() >= SimTime::from_secs(310),
                "task must only start after reconnection"
            );
            done += 1;
        }
        done
    });
    assert_eq!(sim.block_on(h), 4, "all tasks survive the outage");
    assert_eq!(cpu_conn.outages_seen(), 1);
}

#[test]
fn results_buffer_while_endpoint_offline() {
    // Tasks complete on the workers during the outage (they were
    // delivered before it began); results reach the thinker only after
    // reconnect.
    let sim = Sim::new();
    let conn = Connectivity::scheduled(
        &sim,
        // Outage starts after delivery (~2 s), ends at 200 s.
        vec![(SimTime::from_secs(3), Duration::from_secs(197))],
    );
    let spec = DeploymentSpec {
        cpu_workers: 2,
        gpu_workers: 1,
        cpu_connectivity: conn,
        ..Default::default()
    };
    let d = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, Tracer::disabled());
    let q = d.queues.clone();
    let h = sim.spawn(async move {
        q.submit(
            "simulate",
            vec![Payload::new((), 1000)],
            Rc::new(|_| TaskWork::new((), 100, Duration::from_secs(30))),
        )
        .await;
        let r = q.get_result("simulate").await.unwrap().resolve().await;
        (
            r.record.timing.compute_finished.unwrap(),
            r.record.timing.thinker_notified.unwrap(),
        )
    });
    let (finished, notified) = sim.block_on(h);
    assert!(
        finished < SimTime::from_secs(60),
        "compute proceeds during the outage: {finished}"
    );
    assert!(
        notified >= SimTime::from_secs(200),
        "result held at the endpoint until reconnect: {notified}"
    );
}

#[test]
fn worker_failures_are_retried_and_campaign_completes() {
    let sim = Sim::new();
    let spec = DeploymentSpec {
        cpu_workers: 4,
        gpu_workers: 4,
        failure: Some(FailureModel {
            prob: 0.2,
            waste_fraction: 0.5,
            restart_delay: Dist::Constant(2.0),
            max_attempts: 10,
        }),
        ..Default::default()
    };
    let d = deploy(&sim, WorkflowConfig::ParslRedis, &spec, Tracer::disabled());
    let q = d.queues.clone();
    let h = sim.spawn(async move {
        for i in 0..40u32 {
            q.submit(
                "simulate",
                vec![Payload::new(i, 1000)],
                Rc::new(|_| TaskWork::new((), 100, Duration::from_secs(60))),
            )
            .await;
        }
        let mut retried = 0u32;
        for _ in 0..40 {
            let r = q.get_result("simulate").await.unwrap().resolve().await;
            assert!(r.record.report.attempts >= 1);
            if r.record.report.attempts > 1 {
                retried += 1;
            }
        }
        retried
    });
    let retried = sim.block_on(h);
    // With p=0.2 over 40 tasks, some retries are near-certain.
    assert!(retried > 0, "failure injection must trigger retries");
    assert!(retried < 40, "not every task should fail");
}

#[test]
fn failed_attempts_extend_task_lifetimes() {
    let lifetime_with = |failure: Option<FailureModel>| {
        let sim = Sim::new();
        let spec = DeploymentSpec { cpu_workers: 1, gpu_workers: 1, failure, ..Default::default() };
        let d = deploy(&sim, WorkflowConfig::Parsl, &spec, Tracer::disabled());
        let q = d.queues.clone();
        let h = sim.spawn(async move {
            let mut total = Duration::ZERO;
            for i in 0..10u32 {
                q.submit(
                    "simulate",
                    vec![Payload::new(i, 1000)],
                    Rc::new(|_| TaskWork::new((), 100, Duration::from_secs(60))),
                )
                .await;
                let r = q.get_result("simulate").await.unwrap().resolve().await;
                total += r.record.timing.lifetime().unwrap();
            }
            total
        });
        sim.block_on(h)
    };
    let reliable = lifetime_with(None);
    let flaky = lifetime_with(Some(FailureModel {
        prob: 0.5,
        waste_fraction: 1.0,
        restart_delay: Dist::Constant(5.0),
        max_attempts: 20,
    }));
    assert!(flaky > reliable + Duration::from_secs(10), "{flaky:?} vs {reliable:?}");
}
