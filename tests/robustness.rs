//! Robustness tests for §IV-A3: "both FuncX and Globus's services
//! accept and store tasks (and results) even while remote endpoints (or
//! clients) are unavailable so tasks can be resumed when endpoints
//! reconnect" — plus worker-level failure injection.

use hetflow::apps::moldesign;
use hetflow::fabric::{BreakerConfig, ChaosAction, ChaosSpec, Connectivity, FailureModel};
use hetflow::prelude::*;
use hetflow::sim::{trace_kinds, Dist};
use std::rc::Rc;
use std::time::Duration;

#[test]
fn cloud_buffers_tasks_through_endpoint_outage() {
    let sim = Sim::new();
    let cpu_conn = Connectivity::scheduled(
        &sim,
        // Offline from t=10 s to t=310 s.
        vec![(SimTime::from_secs(10), Duration::from_secs(300))],
    );
    let spec = DeploymentSpec {
        cpu_workers: 2,
        gpu_workers: 2,
        cpu_connectivity: cpu_conn.clone(),
        ..Default::default()
    };
    let d = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, Tracer::disabled());
    let q = d.queues.clone();
    let s = sim.clone();
    let h = sim.spawn(async move {
        // Wait until mid-outage, then submit.
        s.sleep(hetflow::sim::time::secs(60.0)).await;
        for i in 0..4u32 {
            q.submit(
                "simulate",
                vec![Payload::new(i, 1000)],
                Rc::new(|_| TaskWork::new((), 100, Duration::from_secs(5))),
            )
            .await;
        }
        let mut done = 0;
        for _ in 0..4 {
            let r = q.get_result("simulate").await.unwrap().resolve().await;
            assert!(
                r.record.timing.worker_started.unwrap() >= SimTime::from_secs(310),
                "task must only start after reconnection"
            );
            done += 1;
        }
        done
    });
    assert_eq!(sim.block_on(h), 4, "all tasks survive the outage");
    assert_eq!(cpu_conn.outages_seen(), 1);
}

#[test]
fn results_buffer_while_endpoint_offline() {
    // Tasks complete on the workers during the outage (they were
    // delivered before it began); results reach the thinker only after
    // reconnect.
    let sim = Sim::new();
    let conn = Connectivity::scheduled(
        &sim,
        // Outage starts after delivery (~2 s), ends at 200 s.
        vec![(SimTime::from_secs(3), Duration::from_secs(197))],
    );
    let spec = DeploymentSpec {
        cpu_workers: 2,
        gpu_workers: 1,
        cpu_connectivity: conn,
        ..Default::default()
    };
    let d = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, Tracer::disabled());
    let q = d.queues.clone();
    let h = sim.spawn(async move {
        q.submit(
            "simulate",
            vec![Payload::new((), 1000)],
            Rc::new(|_| TaskWork::new((), 100, Duration::from_secs(30))),
        )
        .await;
        let r = q.get_result("simulate").await.unwrap().resolve().await;
        (
            r.record.timing.compute_finished.unwrap(),
            r.record.timing.thinker_notified.unwrap(),
        )
    });
    let (finished, notified) = sim.block_on(h);
    assert!(
        finished < SimTime::from_secs(60),
        "compute proceeds during the outage: {finished}"
    );
    assert!(
        notified >= SimTime::from_secs(200),
        "result held at the endpoint until reconnect: {notified}"
    );
}

#[test]
fn worker_failures_are_retried_and_campaign_completes() {
    let sim = Sim::new();
    let spec = DeploymentSpec {
        cpu_workers: 4,
        gpu_workers: 4,
        failure: Some(FailureModel {
            prob: 0.2,
            waste_fraction: 0.5,
            restart_delay: Dist::Constant(2.0),
            max_attempts: 10,
        }),
        ..Default::default()
    };
    let d = deploy(&sim, WorkflowConfig::ParslRedis, &spec, Tracer::disabled());
    let q = d.queues.clone();
    let h = sim.spawn(async move {
        for i in 0..40u32 {
            q.submit(
                "simulate",
                vec![Payload::new(i, 1000)],
                Rc::new(|_| TaskWork::new((), 100, Duration::from_secs(60))),
            )
            .await;
        }
        let mut retried = 0u32;
        for _ in 0..40 {
            let r = q.get_result("simulate").await.unwrap().resolve().await;
            assert!(r.record.report.attempts >= 1);
            if r.record.report.attempts > 1 {
                retried += 1;
            }
        }
        retried
    });
    let retried = sim.block_on(h);
    // With p=0.2 over 40 tasks, some retries are near-certain.
    assert!(retried > 0, "failure injection must trigger retries");
    assert!(retried < 40, "not every task should fail");
}

#[test]
fn exhausted_retries_surface_as_failed_records() {
    // Every attempt fails: each task burns its attempt cap and comes
    // back to the thinker as a *failed record* — no panic anywhere.
    let sim = Sim::new();
    let spec = DeploymentSpec {
        cpu_workers: 2,
        gpu_workers: 1,
        failure: Some(FailureModel {
            prob: 1.0,
            waste_fraction: 0.0,
            restart_delay: Dist::Constant(1.0),
            max_attempts: 2,
        }),
        ..Default::default()
    };
    let d = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, Tracer::disabled());
    let q = d.queues.clone();
    let h = sim.spawn(async move {
        for i in 0..8u32 {
            q.submit(
                "simulate",
                vec![Payload::new(i, 1000)],
                Rc::new(|_| TaskWork::new((), 100, Duration::from_secs(10))),
            )
            .await;
        }
        let mut failed = 0u32;
        for _ in 0..8 {
            let r = q.get_result("simulate").await.unwrap().resolve().await;
            assert!(r.is_failed(), "prob-1.0 failures must exhaust retries");
            match r.error() {
                Some(TaskError::ExhaustedRetries { attempts }) => assert_eq!(*attempts, 2),
                other => panic!("expected ExhaustedRetries, got {other:?}"),
            }
            assert_eq!(r.record.report.attempts, 2);
            // Two failed attempts, waste_fraction 0: two restart delays.
            assert_eq!(r.record.report.wasted_time, Duration::from_secs(2));
            failed += 1;
        }
        failed
    });
    assert_eq!(sim.block_on(h), 8);
    // Failure-path accounting: the lifecycle records carry the failures.
    let b = Breakdown::of(&d.queues.records(), Some("simulate"));
    assert_eq!(b.count, 8);
    assert_eq!(b.failed, 8);
    assert!(b.wasted.mean() > 0.0);
}

#[test]
fn delivery_timeout_fails_tasks_stuck_behind_long_outage() {
    // Tasks submitted mid-outage sit in the cloud store; the per-topic
    // delivery deadline bounds how long the thinker waits before the
    // fabric declares them timed out.
    let sim = Sim::new();
    let conn = Connectivity::scheduled(
        &sim,
        // Offline from t=1 s to t=601 s.
        vec![(SimTime::from_secs(1), Duration::from_secs(600))],
    );
    let spec = DeploymentSpec {
        cpu_workers: 2,
        gpu_workers: 1,
        retry: RetryPolicies::default().with_topic(
            "simulate",
            RetryPolicy {
                timeout: Some(Duration::from_secs(120)),
                ..RetryPolicy::default()
            },
        ),
        cpu_connectivity: conn,
        ..Default::default()
    };
    let d = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, Tracer::disabled());
    let q = d.queues.clone();
    let s = sim.clone();
    let h = sim.spawn(async move {
        s.sleep(hetflow::sim::time::secs(5.0)).await; // mid-outage
        for i in 0..4u32 {
            q.submit(
                "simulate",
                vec![Payload::new(i, 1000)],
                Rc::new(|_| TaskWork::new((), 100, Duration::from_secs(5))),
            )
            .await;
        }
        let mut timed_out = 0u32;
        for _ in 0..4 {
            let r = q.get_result("simulate").await.unwrap().resolve().await;
            match r.error() {
                Some(TaskError::Timeout { after }) => {
                    assert_eq!(*after, Duration::from_secs(120));
                    timed_out += 1;
                }
                other => panic!("expected Timeout, got {other:?}"),
            }
            assert!(
                r.record.timing.worker_started.is_none(),
                "a timed-out task never reached a worker"
            );
        }
        (timed_out, s.now())
    });
    let (timed_out, end) = sim.block_on(h);
    assert_eq!(timed_out, 4);
    // All failures reported well before the outage ends at t=601 s.
    assert!(end < SimTime::from_secs(200), "timeouts should not wait out the outage: {end}");
}

#[test]
fn chaotic_campaign_completes_without_panic() {
    // The ISSUE acceptance scenario: failure injection (p=0.2, two
    // attempts), a scheduled endpoint outage overlapping submission,
    // and a delivery deadline — the full campaign runs to completion
    // with failed tasks counted, not panicking.
    let sim = Sim::new();
    let spec = DeploymentSpec {
        cpu_workers: 4,
        gpu_workers: 2,
        failure: Some(FailureModel {
            prob: 0.2,
            waste_fraction: 0.5,
            restart_delay: Dist::Constant(2.0),
            max_attempts: 2,
        }),
        retry: RetryPolicies::default().with_topic(
            "simulate",
            RetryPolicy {
                max_attempts: 2,
                timeout: Some(Duration::from_secs(300)),
                backoff: Dist::Constant(1.0),
            },
        ),
        cpu_connectivity: Connectivity::scheduled(
            &sim,
            vec![(SimTime::from_secs(2), Duration::from_secs(600))],
        ),
        ..Default::default()
    };
    let d = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, Tracer::disabled());
    let o = moldesign::run(
        &sim,
        &d,
        MolDesignParams {
            library_size: 400,
            budget: Duration::from_secs(2400),
            ensemble_size: 2,
            retrain_after: 8,
            seed: 7,
            ..Default::default()
        },
    );
    assert!(o.simulations > 0, "campaign should still complete work");
    assert!(o.failed > 0, "chaos must surface as counted failures");
    let records = d.queues.records();
    let b = Breakdown::of(&records, None);
    assert_eq!(b.failed, o.failed, "lifecycle failed bin must match the app's count");
    assert!(
        records.iter().all(|r| r.report.attempts >= 1 || r.timing.worker_started.is_none()),
        "every record either ran at least once or never reached a worker"
    );
}

#[test]
fn site_loss_mid_campaign_fails_over_and_keeps_working() {
    // The ISSUE 5 acceptance scenario: a molecular-design campaign loses
    // its primary CPU site *permanently* mid-run (chaos `Kill`). The
    // offline watcher trips the endpoint's circuit breaker, in-flight
    // tasks stuck behind the dead connection reroute to the standby CPU
    // endpoint, fresh dispatches steer around the open breaker, and the
    // campaign finishes with degraded-but-nonzero throughput.
    let sim = Sim::new();
    let tracer = Tracer::enabled();
    let kill_at = SimTime::from_secs(300);
    let spec = DeploymentSpec {
        cpu_workers: 4,
        gpu_workers: 2,
        cpu_failover_sites: 1,
        reliability: ReliabilityPolicies {
            default: ReliabilityPolicy {
                breaker: BreakerConfig {
                    failure_threshold: 2,
                    // Longer than the campaign: the site never comes back.
                    open_for: Duration::from_secs(3600),
                    close_after: 1,
                    offline_grace: Duration::from_secs(30),
                    latency_slo: Duration::ZERO,
                },
                max_reroutes: 1,
                // Backstop for results stranded on the dead return path.
                deadline: Duration::from_secs(1200),
                ..Default::default()
            },
            per_topic: Default::default(),
        },
        // Transit stuck behind the dead endpoint reroutes after 120 s.
        retry: RetryPolicies::default().with_topic(
            "simulate",
            RetryPolicy { timeout: Some(Duration::from_secs(120)), ..RetryPolicy::default() },
        ),
        ..Default::default()
    };
    let d = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, tracer.clone());
    ChaosSpec::new(vec![ChaosAction::Kill { endpoint: 0, at: kill_at }])
        .install(&sim, 99, &d.chaos);
    let o = moldesign::run(
        &sim,
        &d,
        MolDesignParams {
            library_size: 400,
            budget: Duration::from_secs(2400),
            ensemble_size: 2,
            retrain_after: 8,
            seed: 7,
            ..Default::default()
        },
    );
    assert!(o.simulations > 0, "campaign must complete work despite the site loss");

    let opened = tracer.events_of_kind(trace_kinds::BREAKER_OPENED);
    assert!(
        opened.iter().any(|e| e.entity == 0),
        "losing the site must open endpoint 0's breaker"
    );
    assert!(
        opened.iter().all(|e| e.t >= kill_at),
        "the breaker only opens after the site is lost"
    );
    assert!(
        !tracer.events_of_kind(trace_kinds::TASK_REROUTED).is_empty(),
        "in-flight tasks stuck behind the dead site must reroute"
    );

    // Degraded-but-nonzero throughput: simulations keep finishing after
    // the loss, now on the standby endpoint's pool.
    let records = d.queues.records();
    let post_kill_sims = records
        .iter()
        .filter(|r| r.topic == "simulate" && !r.is_failed())
        .filter(|r| r.timing.compute_finished.is_some_and(|t| t > kill_at))
        .count();
    assert!(post_kill_sims > 0, "failover must keep simulate throughput nonzero");
    assert!(
        records.iter().any(|r| r.worker.as_str().starts_with("theta-f0")),
        "the standby pool must actually execute work"
    );
    assert!(d.health.breaker_open(0), "the breaker stays open: the site never recovers");
}

#[test]
fn task_storms_conserve_every_submission() {
    // Overload-protection conservation law: under random task-storm
    // scripts against bounded queues and admission control, every
    // submission — campaign or storm — ends in exactly one terminal
    // outcome: submitted == completed + failed + shed, no id twice.
    use hetflow::fabric::{AdmissionConfig, STORM_ID_BASE};
    use hetflow::sim::{Dist, OverflowPolicy, SimRng};
    use std::collections::HashSet;

    const CAMPAIGN_TASKS: u64 = 30;
    let policies =
        [OverflowPolicy::Reject, OverflowPolicy::ShedOldest, OverflowPolicy::ShedLowestPriority];
    for (run, seed) in [11u64, 13, 21].into_iter().enumerate() {
        // A randomized storm script, derived deterministically from the
        // run seed: 1–3 overlapping storms with random start, rate, and
        // per-task worker burn.
        let mut script = SimRng::stream(seed, "storm-script");
        let storms: Vec<ChaosAction> = (0..seed % 3 + 1)
            .map(|_| ChaosAction::TaskStorm {
                at: SimTime::from_secs(
                    Dist::Uniform { lo: 2.0, hi: 40.0 }.sample(&mut script) as u64
                ),
                tasks: Dist::Uniform { lo: 40.0, hi: 120.0 }.sample(&mut script) as u32,
                interval: Dist::Constant(
                    Dist::Uniform { lo: 0.02, hi: 0.2 }.sample(&mut script),
                ),
                bytes: 64,
                work: Dist::Uniform { lo: 0.0, hi: 3.0 },
            })
            .collect();
        let storm_total: u64 = storms
            .iter()
            .map(|a| match a {
                ChaosAction::TaskStorm { tasks, .. } => u64::from(*tasks),
                _ => 0,
            })
            .sum();

        let sim = Sim::new();
        let spec = DeploymentSpec {
            cpu_workers: 2,
            gpu_workers: 1,
            seed,
            // Tight bound: 30 campaign submissions of 15 s tasks on 2
            // workers guarantee overflow shedding on every policy.
            cpu_queue_capacity: 4,
            overflow: policies[run],
            // Admission control on the storm topic exercises the
            // submission-time shed path alongside queue overflow.
            reliability: ReliabilityPolicies::default().with_topic(
                "noop",
                ReliabilityPolicy {
                    admission: AdmissionConfig { rate: 8.0, burst: 8.0, max_in_flight: 16 },
                    ..Default::default()
                },
            ),
            ..Default::default()
        };
        let d = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, Tracer::disabled());
        ChaosSpec::new(storms).install(&sim, seed, &d.chaos);
        let q = d.queues.clone();
        let h = sim.spawn(async move {
            for i in 0..CAMPAIGN_TASKS {
                q.submit(
                    "simulate",
                    vec![Payload::new(i, 1000)],
                    Rc::new(|_| TaskWork::new((), 100, Duration::from_secs(15))),
                )
                .await;
            }
            let mut seen = HashSet::new();
            let (mut completed, mut shed, mut failed) = (0u64, 0u64, 0u64);
            for i in 0..CAMPAIGN_TASKS + storm_total {
                let topic = if i < CAMPAIGN_TASKS { "simulate" } else { "noop" };
                let r = q.get_result(topic).await.unwrap().resolve().await;
                assert!(seen.insert(r.record.id), "duplicate terminal outcome for {}", r.record.id);
                if topic == "noop" {
                    assert!(r.record.id >= STORM_ID_BASE, "storm ids live in the storm space");
                } else {
                    assert!(r.record.id < STORM_ID_BASE, "campaign ids stay below the storm space");
                }
                if r.is_shed() {
                    shed += 1;
                } else if r.is_failed() {
                    failed += 1;
                } else {
                    completed += 1;
                }
            }
            (completed, shed, failed)
        });
        let (completed, shed, failed) = sim.block_on(h);
        let total = CAMPAIGN_TASKS + storm_total;
        assert_eq!(
            completed + shed + failed,
            total,
            "seed {seed}: conservation violated ({completed} + {shed} + {failed} != {total})"
        );
        assert!(shed > 0, "seed {seed}: the storm scenario must shed something");
        assert!(completed > 0, "seed {seed}: protection must not starve all work");
        // The lifecycle ledger agrees with what the thinker observed.
        let b = Breakdown::of(&d.queues.records(), None);
        assert_eq!(b.count as u64, total);
        assert_eq!(b.shed as u64, shed);
        assert_eq!(b.failed as u64, failed);
    }
}

#[test]
fn failed_attempts_extend_task_lifetimes() {
    let lifetime_with = |failure: Option<FailureModel>| {
        let sim = Sim::new();
        let spec = DeploymentSpec { cpu_workers: 1, gpu_workers: 1, failure, ..Default::default() };
        let d = deploy(&sim, WorkflowConfig::Parsl, &spec, Tracer::disabled());
        let q = d.queues.clone();
        let h = sim.spawn(async move {
            let mut total = Duration::ZERO;
            for i in 0..10u32 {
                q.submit(
                    "simulate",
                    vec![Payload::new(i, 1000)],
                    Rc::new(|_| TaskWork::new((), 100, Duration::from_secs(60))),
                )
                .await;
                let r = q.get_result("simulate").await.unwrap().resolve().await;
                total += r.record.timing.lifetime().unwrap();
            }
            total
        });
        sim.block_on(h)
    };
    let reliable = lifetime_with(None);
    let flaky = lifetime_with(Some(FailureModel {
        prob: 0.5,
        waste_fraction: 1.0,
        restart_delay: Dist::Constant(5.0),
        max_attempts: 20,
    }));
    assert!(flaky > reliable + Duration::from_secs(10), "{flaky:?} vs {reliable:?}");
}
