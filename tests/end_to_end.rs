//! Cross-crate integration tests: full workflow stacks driving both
//! applications through the public façade, checking the paper's
//! system-level claims end to end.

use hetflow::prelude::*;
use hetflow::steer::Payload as SteerPayload;
use std::rc::Rc;
use std::time::Duration;

fn small_spec(seed: u64) -> DeploymentSpec {
    DeploymentSpec { cpu_workers: 4, gpu_workers: 4, seed, ..Default::default() }
}

#[test]
fn every_config_round_trips_every_topic() {
    for config in WorkflowConfig::all() {
        let sim = Sim::new();
        let d = deploy(&sim, config, &small_spec(1), Tracer::disabled());
        let q = d.queues.clone();
        let h = sim.spawn(async move {
            let mut ok = 0;
            for topic in ["simulate", "sample", "train", "infer", "noop"] {
                q.submit(
                    topic,
                    vec![SteerPayload::new(5u64, 1_000_000)],
                    Rc::new(|ctx| {
                        let v = *ctx.input::<u64>(0);
                        TaskWork::new(v + 1, 10_000, Duration::from_secs(5))
                    }),
                )
                .await;
                let r = q.get_result(topic).await.unwrap().resolve().await;
                if *r.value::<u64>() == 6 {
                    ok += 1;
                }
            }
            ok
        });
        assert_eq!(sim.block_on(h), 5, "{}", config.label());
    }
}

#[test]
fn cloud_managed_config_needs_no_open_ports_but_matches_outcomes() {
    // The paper's core claim (§V-E1): the no-open-ports configuration
    // reaches scientific parity with the tunnelled ones.
    use hetflow::apps::moldesign;
    let params = MolDesignParams {
        library_size: 3_000,
        budget: Duration::from_secs(2 * 3600),
        ensemble_size: 4,
        retrain_after: 8,
        ..Default::default()
    };
    let mut results = Vec::new();
    for config in [WorkflowConfig::ParslRedis, WorkflowConfig::FnXGlobus] {
        let sim = Sim::new();
        let d = deploy(&sim, config, &small_spec(2), Tracer::disabled());
        let o = moldesign::run(&sim, &d, params.clone());
        results.push((config, o.found, o.simulations));
    }
    let (_, found_redis, sims_redis) = results[0];
    let (_, found_fnx, sims_fnx) = results[1];
    assert!(!WorkflowConfig::FnXGlobus.needs_open_ports());
    assert!(WorkflowConfig::ParslRedis.needs_open_ports());
    // Same order of magnitude of work and discoveries.
    let sims_ratio = sims_fnx as f64 / sims_redis as f64;
    assert!((0.8..1.25).contains(&sims_ratio), "simulation throughput parity: {sims_ratio}");
    assert!(found_fnx > 0 && found_redis > 0);
    let found_ratio = found_fnx as f64 / found_redis as f64;
    assert!(
        (0.5..2.0).contains(&found_ratio),
        "discovery parity: fnx {found_fnx} vs redis {found_redis}"
    );
}

#[test]
fn finetune_parity_across_configs() {
    // Fig. 7a: the surrogates are indistinguishable across workflow
    // systems; the data path must not change what is learned.
    use hetflow::apps::finetune;
    let params = FinetuneParams {
        pretrain_structures: 60,
        target_new: 12,
        retrain_every: 4,
        ensemble_size: 4,
        md_steps_end: 150,
        ..Default::default()
    };
    let mut rmsds = Vec::new();
    for config in WorkflowConfig::all() {
        let sim = Sim::new();
        let d = deploy(&sim, config, &small_spec(3), Tracer::disabled());
        let o = finetune::run(&sim, &d, params.clone());
        assert!(o.final_force_rmsd < o.initial_force_rmsd, "{}", config.label());
        rmsds.push(o.final_force_rmsd);
    }
    let min = rmsds.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = rmsds.iter().cloned().fold(0.0, f64::max);
    assert!(
        max / min < 1.6,
        "final RMSDs must be close across configs: {rmsds:?}"
    );
}

#[test]
fn records_capture_complete_lifecycles() {
    let sim = Sim::new();
    let d = deploy(&sim, WorkflowConfig::FnXGlobus, &small_spec(4), Tracer::disabled());
    let q = d.queues.clone();
    sim.spawn(async move {
        for i in 0..5u32 {
            q.submit(
                "train",
                vec![SteerPayload::new(i, 21_000_000)],
                Rc::new(|_| TaskWork::new((), 21_000_000, Duration::from_secs(240))),
            )
            .await;
        }
        for _ in 0..5 {
            q.get_result("train").await.unwrap().resolve().await;
        }
    });
    sim.run();
    let records = d.queues.records();
    assert_eq!(records.len(), 5);
    for r in &records {
        let t = &r.timing;
        // Monotone stamps end to end.
        let stamps = [
            t.created,
            t.submitted,
            t.server_received,
            t.dispatched,
            t.worker_started,
            t.inputs_resolved,
            t.compute_finished,
            t.result_dispatched,
            t.server_result_received,
            t.thinker_notified,
            t.result_ready,
        ];
        for pair in stamps.windows(2) {
            let (a, b) = (pair[0].unwrap(), pair[1].unwrap());
            assert!(a <= b, "stamps out of order: {a:?} > {b:?}");
        }
        // Cross-site training data actually moved through the remote
        // store.
        assert_eq!(r.input_bytes, 21_000_000);
    }
    let store = d.remote_store.as_ref().unwrap();
    assert!(store.stats().puts >= 5);
    assert!(d.globus.as_ref().unwrap().bytes_moved() > 0);
}

#[test]
fn tracer_sees_worker_activity() {
    let tracer = Tracer::enabled();
    let sim = Sim::new();
    let d = deploy(&sim, WorkflowConfig::Parsl, &small_spec(5), tracer.clone());
    let q = d.queues.clone();
    sim.spawn(async move {
        for _ in 0..3 {
            q.submit(
                "simulate",
                vec![SteerPayload::new((), 1000)],
                Rc::new(|_| TaskWork::new((), 100, Duration::from_secs(60))),
            )
            .await;
        }
        for _ in 0..3 {
            q.get_result("simulate").await.unwrap().resolve().await;
        }
    });
    sim.run();
    assert_eq!(tracer.events_of_kind("task_started").len(), 3);
    assert_eq!(tracer.events_of_kind("task_finished").len(), 3);
    assert_eq!(tracer.events_of_kind("task_created").len(), 3);
}
