//! Pinned trace digests: both fabrics × 3 seeds.
//!
//! The kernel fast-path work (interned actor names, streaming digest
//! fold, calendar-queue timers) is only legal if it is invisible to the
//! trace: these constants were captured from the pre-interning tree and
//! every future kernel change must reproduce them bit-for-bit. A
//! mismatch here means the digest byte recipe, the RNG stream
//! derivation, or the timer firing order drifted.

use hetflow::apps::moldesign;
use hetflow::prelude::*;
use std::time::Duration;

/// Small traced moldesign campaign; returns (digest, event count).
fn pinned_digest(config: WorkflowConfig, seed: u64) -> (u64, usize) {
    let sim = Sim::new();
    let tracer = Tracer::enabled();
    let spec = DeploymentSpec { cpu_workers: 4, gpu_workers: 2, seed, ..Default::default() };
    let d = deploy(&sim, config, &spec, tracer.clone());
    let _ = moldesign::run(
        &sim,
        &d,
        MolDesignParams {
            library_size: 400,
            budget: Duration::from_secs(1200),
            ensemble_size: 2,
            retrain_after: 8,
            seed,
            ..Default::default()
        },
    );
    (tracer.digest(), tracer.len())
}

/// Digests captured from the seed tree (binary-heap timers, `String`
/// actors, retained-event digest) immediately before the kernel
/// fast-path change. Bit-for-bit equality here proves the rewrite is
/// unobservable.
const PINNED: [(WorkflowConfig, u64, u64, usize); 6] = [
    (WorkflowConfig::FnXGlobus, 7, 0xe07588701a425785, 112),
    (WorkflowConfig::FnXGlobus, 1234, 0xaea6a75887d02db7, 112),
    (WorkflowConfig::FnXGlobus, 99_991, 0x990669ede1c1a697, 116),
    (WorkflowConfig::ParslRedis, 7, 0xec2b47f567027e47, 112),
    (WorkflowConfig::ParslRedis, 1234, 0xa0606aca2af70e0f, 112),
    (WorkflowConfig::ParslRedis, 99_991, 0xb61947ec28a2a247, 116),
];

#[test]
fn digests_match_seed_tree_pins() {
    for (config, seed, digest, count) in PINNED {
        let (d, n) = pinned_digest(config, seed);
        assert_eq!(
            (d, n),
            (digest, count),
            "({config:?}, seed {seed}) drifted from the pinned seed-tree digest \
             (got 0x{d:016x}/{n} events): the digest recipe, RNG stream \
             derivation, or timer firing order changed"
        );
    }
}
