//! Tier-1 gate: the hetlint determinism contract must hold for every
//! source file in the workspace.
//!
//! This is the same pass `cargo run -p hetflow-lint` performs, embedded
//! as an integration test so a wall-clock read, ambient entropy source,
//! hash-order iteration, stray thread spawn, unwrap-budget overrun,
//! ad-hoc float ordering, seed-stream name collision (R7), trace-kind
//! registry drift (R8), stale suppression (R9), any interprocedural
//! finding — ambient I/O reachable from the simulation (R10), inverted
//! lock orders (R11), a SimRng crossing a thread boundary (R12), a
//! panic site reachable from fabric dispatch over budget (R13) — or
//! any dataflow finding — nondeterminism taint reaching a trace/seed
//! sink (R14), a discarded fabric-effect Result (R15), a guard live on
//! a CFG path to a suspension point (R16) — fails `cargo test`
//! directly. See DESIGN.md "Determinism rules" for the rule catalogue
//! and the `// hetlint: allow(<rule>) — <reason>` suppression syntax.

use std::path::Path;

#[test]
fn workspace_obeys_determinism_contract() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = hetflow_lint::run(root).expect("workspace walk failed");
    assert!(report.files_scanned > 50, "walk found too few files: {}", report.files_scanned);
    let mut failures = String::new();
    for v in report.violations.iter().chain(&report.bad_allows) {
        failures.push_str(&format!("  {v}\n"));
    }
    for (name, count, budget) in &report.unwrap_rows {
        if count > budget {
            failures.push_str(&format!(
                "  crate `{name}`: {count} unwrap()/expect()/panic!() sites exceed budget {budget}\n"
            ));
        }
    }
    assert!(
        report.clean(),
        "hetlint violations (see DESIGN.md \"Determinism rules\"):\n{failures}"
    );
}

#[test]
fn suppressions_all_carry_reasons() {
    // `clean()` already folds bad allows in; this test documents the
    // invariant separately so a reason-less allow names itself.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = hetflow_lint::run(root).expect("workspace walk failed");
    let bad: Vec<String> = report.bad_allows.iter().map(|v| v.to_string()).collect();
    assert!(bad.is_empty(), "reason-less hetlint allows:\n{}", bad.join("\n"));
}

#[test]
fn trace_kind_registry_is_parsed_from_the_real_module() {
    // R8 silently skips when no registry is in scope, so this pins the
    // extraction against the real crates/sim/src/trace.rs: if the
    // declaration shape ever drifts from `const NAME: &str = "kind";`,
    // this fails rather than R8 going quiet.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let path = root.join("crates/sim/src/trace.rs");
    let source = std::fs::read_to_string(&path).expect("read trace.rs");
    let ctx = hetflow_lint::classify("crates/sim/src/trace.rs").expect("classify trace.rs");
    assert!(ctx.is_trace_module());
    let linted = hetflow_lint::lint_file(&ctx, &source);
    assert!(
        linted.registry.len() >= 7,
        "trace-kind registry extraction broke: found {:?}",
        linted.registry
    );
}

#[test]
fn ratchet_file_present_and_well_formed() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let budgets = hetflow_lint::ratchet::load(root).expect("hetlint.ratchet must load");
    assert!(budgets.budget_for("sim").is_some(), "sim missing from hetlint.ratchet");
    assert_eq!(
        budgets.budget_for("lint"),
        Some(0),
        "the lint crate polices itself at budget 0"
    );
}

#[test]
fn reachable_panics_ratchet_is_enforced_on_the_real_tree() {
    // R13 accounting: the reserved `reachable-panics` key must be
    // present in hetlint.ratchet, and the real workspace must sit at or
    // under it. A new unwrap on the dispatch path fails here with its
    // witness chain, not in some later CI stage.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let budgets = hetflow_lint::ratchet::load(root).expect("hetlint.ratchet must load");
    let report = hetflow_lint::run(root).expect("workspace walk failed");
    let (count, budget) = report
        .reachable_panics
        .expect("fabric dispatch exists, so R13 must have run");
    assert_eq!(budget, budgets.reachable_panics, "report uses the ratchet's budget");
    assert!(
        count <= budget,
        "{count} panic sites reachable from fabric dispatch exceed the \
         reachable-panics budget of {budget} (see the R13 witness chains \
         in `cargo run -p hetflow-lint`)"
    );
}

#[test]
fn r14_and_r15_ratchets_are_enforced_on_the_real_tree() {
    // Dataflow accounting: the reserved `r14`/`r15` keys must be
    // present in hetlint.ratchet, and the real workspace must sit at
    // or under both. A new tainted flow or discarded effect fails here
    // with its hop chain, not in some later CI stage.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let budgets = hetflow_lint::ratchet::load(root).expect("hetlint.ratchet must load");
    let report = hetflow_lint::run(root).expect("workspace walk failed");
    let (taint, taint_budget) = report.nondet_taint.expect("the dataflow phase must run");
    assert_eq!(taint_budget, budgets.nondet_taint, "report uses the ratchet's r14 budget");
    assert!(
        taint <= taint_budget,
        "{taint} nondeterminism-taint flows exceed the r14 budget of {taint_budget} \
         (see the hop chains in `cargo run -p hetflow-lint`)"
    );
    let (discards, discard_budget) =
        report.discarded_effects.expect("the dataflow phase must run");
    assert_eq!(
        discard_budget, budgets.discarded_effects,
        "report uses the ratchet's r15 budget"
    );
    assert!(
        discards <= discard_budget,
        "{discards} discarded fabric effects exceed the r15 budget of {discard_budget} \
         (see the entry paths in `cargo run -p hetflow-lint`)"
    );
}

#[test]
fn dataflow_json_of_real_workspace_round_trips() {
    // The CI artifact is `hetlint --dataflow`; this is the same
    // serialize→parse round trip over the real tree, plus a pin that
    // the summaries actually span the workspace.
    use hetflow_lint::json;
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let out = hetflow_lint::run_all(root).expect("workspace walk failed");
    assert!(
        out.dataflow.fns.len() > 300,
        "summary table too small: {} fns",
        out.dataflow.fns.len()
    );
    let doc = json::dataflow_to_json(&out.dataflow);
    let v = json::parse(&doc).expect("dataflow JSON must parse");
    assert_eq!(
        v.get("tool").and_then(json::Value::as_str),
        Some("hetlint-dataflow")
    );
    assert_eq!(v.get("schema_version").and_then(json::Value::as_u64), Some(4));
    let fns = v.get("functions").and_then(json::Value::as_arr).expect("functions array");
    assert_eq!(fns.len(), out.dataflow.fns.len());
    let findings = v.get("findings").and_then(json::Value::as_arr).expect("findings array");
    assert_eq!(findings.len(), out.dataflow.findings.len());
    // The four reasoned allow(r15) teardown discards stay visible in
    // the artifact, marked suppressed.
    let suppressed = findings
        .iter()
        .filter(|f| f.get("suppressed").and_then(json::Value::as_bool) == Some(true))
        .count();
    assert!(
        suppressed >= 4,
        "teardown allow(r15) sites missing from the artifact: {suppressed}"
    );
}

#[test]
fn warm_cache_run_reproduces_the_cold_run_exactly() {
    // The incremental cache must be invisible in the output: a cold
    // run (all misses) and a warm run (all hits) over the same tree
    // serialize to byte-identical reports.
    use hetflow_lint::{cache, json};
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let dir = root.join("target").join(format!(
        "hetlint-cache-gate-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let (cold, cold_stats) =
        hetflow_lint::run_all_cached(root, Some(&dir)).expect("cold run failed");
    assert_eq!(cold_stats.hits, 0, "first run over an empty cache cannot hit");
    assert!(cold_stats.misses > 50, "walk found too few files");
    let (warm, warm_stats) =
        hetflow_lint::run_all_cached(root, Some(&dir)).expect("warm run failed");
    assert_eq!(
        warm_stats,
        cache::CacheStats { hits: cold_stats.misses, misses: 0 },
        "second run must be served entirely from the cache"
    );
    assert_eq!(
        json::report_to_json(&cold.report),
        json::report_to_json(&warm.report),
        "cache changed the report"
    );
    assert_eq!(
        json::dataflow_to_json(&cold.dataflow),
        json::dataflow_to_json(&warm.dataflow),
        "cache changed the dataflow document"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn callgraph_json_of_real_workspace_round_trips() {
    // The CI artifact is `hetlint --callgraph --format json`; this is
    // the same serialize→parse round trip over the real tree, plus a
    // pin that the graph actually spans the workspace.
    use hetflow_lint::json;
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (_report, graph) = hetflow_lint::run_full(root).expect("workspace walk failed");
    assert!(graph.nodes.len() > 300, "graph too small: {} nodes", graph.nodes.len());
    let doc = json::graph_to_json(&graph);
    let v = json::parse(&doc).expect("call-graph JSON must parse");
    assert_eq!(
        v.get("tool").and_then(json::Value::as_str),
        Some("hetlint-callgraph")
    );
    let nodes = v.get("nodes").and_then(json::Value::as_arr).expect("nodes array");
    assert_eq!(nodes.len(), graph.nodes.len());
    let edges = v.get("edges").and_then(json::Value::as_arr).expect("edges array");
    let n_edges: usize = graph.edges.iter().map(Vec::len).sum();
    assert_eq!(edges.len(), n_edges, "one [from, to] pair per edge");
    // Every edge endpoint must be a valid node id.
    for pair in edges {
        let pair = pair.as_arr().expect("edge is a [from, to] pair");
        assert_eq!(pair.len(), 2);
        for end in pair {
            let id = end.as_u64().expect("edge endpoint is an id") as usize;
            assert!(id < nodes.len(), "dangling edge endpoint {id}");
        }
    }
    // The dispatch entries R10/R13 anchor on must be present by qname.
    assert!(
        nodes.iter().any(|n| {
            n.get("qname").and_then(json::Value::as_str)
                .is_some_and(|q| q.ends_with("Executor::submit"))
        }),
        "fabric dispatch nodes missing from the call graph"
    );
}

#[test]
fn json_report_of_real_workspace_round_trips() {
    // The CI gate consumes `hetlint --format json`; this is the same
    // serialize→parse round trip over the real tree.
    use hetflow_lint::json;
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = hetflow_lint::run(root).expect("workspace walk failed");
    let doc = json::report_to_json(&report);
    let v = json::parse(&doc).expect("report JSON must parse");
    assert_eq!(v.get("tool").and_then(json::Value::as_str), Some("hetlint"));
    assert_eq!(
        v.get("clean").and_then(json::Value::as_bool),
        Some(report.clean())
    );
    assert_eq!(
        v.get("files_scanned").and_then(json::Value::as_u64),
        Some(report.files_scanned as u64)
    );
    let rows = v
        .get("unwrap_budget")
        .and_then(json::Value::as_arr)
        .expect("unwrap_budget array");
    assert_eq!(rows.len(), report.unwrap_rows.len());
    for (row, (name, count, budget)) in rows.iter().zip(&report.unwrap_rows) {
        assert_eq!(row.get("crate").and_then(json::Value::as_str), Some(name.as_str()));
        assert_eq!(row.get("count").and_then(json::Value::as_u64), Some(*count as u64));
        assert_eq!(row.get("budget").and_then(json::Value::as_u64), Some(*budget as u64));
        assert_eq!(
            row.get("over").and_then(json::Value::as_bool),
            Some(count > budget)
        );
    }
}
