//! Tier-1 gate: the hetlint determinism contract must hold for every
//! source file in the workspace.
//!
//! This is the same pass `cargo run -p hetflow-lint` performs, embedded
//! as an integration test so a wall-clock read, ambient entropy source,
//! hash-order iteration, stray thread spawn, unwrap-budget overrun, or
//! ad-hoc float ordering fails `cargo test` directly. See DESIGN.md
//! "Determinism rules" for the rule catalogue and the
//! `// hetlint: allow(<rule>) — <reason>` suppression syntax.

use std::path::Path;

#[test]
fn workspace_obeys_determinism_contract() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = hetflow_lint::run(root).expect("workspace walk failed");
    assert!(report.files_scanned > 50, "walk found too few files: {}", report.files_scanned);
    let mut failures = String::new();
    for v in report.violations.iter().chain(&report.bad_allows) {
        failures.push_str(&format!("  {v}\n"));
    }
    for (name, count, budget) in &report.unwrap_rows {
        if count > budget {
            failures.push_str(&format!(
                "  crate `{name}`: {count} unwrap()/expect()/panic!() sites exceed budget {budget}\n"
            ));
        }
    }
    assert!(
        report.clean(),
        "hetlint violations (see DESIGN.md \"Determinism rules\"):\n{failures}"
    );
}

#[test]
fn suppressions_all_carry_reasons() {
    // `clean()` already folds bad allows in; this test documents the
    // invariant separately so a reason-less allow names itself.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = hetflow_lint::run(root).expect("workspace walk failed");
    let bad: Vec<String> = report.bad_allows.iter().map(|v| v.to_string()).collect();
    assert!(bad.is_empty(), "reason-less hetlint allows:\n{}", bad.join("\n"));
}
