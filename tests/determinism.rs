//! Whole-system determinism: bit-identical campaign outcomes for equal
//! seeds, divergent outcomes for different seeds. This is what makes
//! the figure regenerators reproducible.

use hetflow::apps::{finetune, moldesign};
use hetflow::prelude::*;
use std::time::Duration;

fn moldesign_fingerprint(seed: u64) -> (usize, usize, SimTime, Vec<(f64, usize)>) {
    let sim = Sim::new();
    let spec = DeploymentSpec { cpu_workers: 4, gpu_workers: 4, seed, ..Default::default() };
    let d = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, Tracer::disabled());
    let o = moldesign::run(
        &sim,
        &d,
        MolDesignParams {
            library_size: 2_000,
            budget: Duration::from_secs(3600),
            ensemble_size: 2,
            retrain_after: 8,
            seed,
            ..Default::default()
        },
    );
    (o.found, o.simulations, o.end, o.found_curve)
}

#[test]
fn moldesign_bit_reproducible() {
    assert_eq!(moldesign_fingerprint(42), moldesign_fingerprint(42));
}

#[test]
fn moldesign_seeds_diverge() {
    let a = moldesign_fingerprint(42);
    let b = moldesign_fingerprint(43);
    assert_ne!(a.2, b.2, "different seeds should end at different virtual times");
}

#[test]
fn finetune_bit_reproducible() {
    let go = || {
        let sim = Sim::new();
        let spec = DeploymentSpec { cpu_workers: 4, gpu_workers: 4, seed: 9, ..Default::default() };
        let d = deploy(&sim, WorkflowConfig::ParslRedis, &spec, Tracer::disabled());
        let o = finetune::run(
            &sim,
            &d,
            FinetuneParams {
                pretrain_structures: 50,
                target_new: 8,
                retrain_every: 4,
                ensemble_size: 2,
                md_steps_end: 100,
                ..Default::default()
            },
        );
        (o.new_structures, o.training_rounds, o.end, o.final_force_rmsd.to_bits())
    };
    assert_eq!(go(), go());
}

#[test]
fn record_timings_reproducible_across_runs() {
    let lifetimes = || {
        let sim = Sim::new();
        let spec = DeploymentSpec { seed: 5, ..Default::default() };
        let d = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, Tracer::disabled());
        let q = d.queues.clone();
        let h = sim.spawn(async move {
            for i in 0..20u32 {
                q.submit(
                    "simulate",
                    vec![Payload::new(i, 1_000_000)],
                    std::rc::Rc::new(|_| TaskWork::new((), 1000, Duration::from_secs(60))),
                )
                .await;
            }
            let mut out = Vec::new();
            for _ in 0..20 {
                let r = q.get_result("simulate").await.unwrap().resolve().await;
                out.push(r.record.timing.lifetime().unwrap());
            }
            out
        });
        sim.block_on(h)
    };
    assert_eq!(lifetimes(), lifetimes());
}

/// Runs a small moldesign campaign with tracing on and returns the
/// trace digest plus the event count, under the given fabric config.
fn traced_digest(config: WorkflowConfig, seed: u64) -> (u64, usize) {
    let sim = Sim::new();
    let tracer = Tracer::enabled();
    let spec = DeploymentSpec { cpu_workers: 4, gpu_workers: 2, seed, ..Default::default() };
    let d = deploy(&sim, config, &spec, tracer.clone());
    let _ = moldesign::run(
        &sim,
        &d,
        MolDesignParams {
            library_size: 400,
            budget: Duration::from_secs(1200),
            ensemble_size: 2,
            retrain_after: 8,
            seed,
            ..Default::default()
        },
    );
    (tracer.digest(), tracer.len())
}

#[test]
fn trace_digest_reproducible_fnx_globus() {
    let (d1, n1) = traced_digest(WorkflowConfig::FnXGlobus, 1234);
    let (d2, n2) = traced_digest(WorkflowConfig::FnXGlobus, 1234);
    assert!(n1 > 0, "traced campaign emitted no events");
    assert_eq!(n1, n2, "event counts diverged between same-seed runs");
    assert_eq!(d1, d2, "trace digests diverged between same-seed runs");
}

#[test]
fn trace_digest_reproducible_parsl_redis() {
    let (d1, n1) = traced_digest(WorkflowConfig::ParslRedis, 1234);
    let (d2, n2) = traced_digest(WorkflowConfig::ParslRedis, 1234);
    assert!(n1 > 0, "traced campaign emitted no events");
    assert_eq!(n1, n2, "event counts diverged between same-seed runs");
    assert_eq!(d1, d2, "trace digests diverged between same-seed runs");
}

#[test]
fn trace_digest_distinguishes_fabrics_and_seeds() {
    let (fnx, _) = traced_digest(WorkflowConfig::FnXGlobus, 1234);
    let (parsl, _) = traced_digest(WorkflowConfig::ParslRedis, 1234);
    assert_ne!(fnx, parsl, "different fabrics should produce different traces");
    let (fnx_other, _) = traced_digest(WorkflowConfig::FnXGlobus, 4321);
    assert_ne!(fnx, fnx_other, "different seeds should produce different traces");
}
