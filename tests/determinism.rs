//! Whole-system determinism: bit-identical campaign outcomes for equal
//! seeds, divergent outcomes for different seeds. This is what makes
//! the figure regenerators reproducible.

use hetflow::apps::{finetune, moldesign};
use hetflow::prelude::*;
use std::time::Duration;

fn moldesign_fingerprint(seed: u64) -> (usize, usize, SimTime, Vec<(f64, usize)>) {
    let sim = Sim::new();
    let spec = DeploymentSpec { cpu_workers: 4, gpu_workers: 4, seed, ..Default::default() };
    let d = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, Tracer::disabled());
    let o = moldesign::run(
        &sim,
        &d,
        MolDesignParams {
            library_size: 2_000,
            budget: Duration::from_secs(3600),
            ensemble_size: 2,
            retrain_after: 8,
            seed,
            ..Default::default()
        },
    );
    (o.found, o.simulations, o.end, o.found_curve)
}

#[test]
fn moldesign_bit_reproducible() {
    assert_eq!(moldesign_fingerprint(42), moldesign_fingerprint(42));
}

#[test]
fn moldesign_seeds_diverge() {
    let a = moldesign_fingerprint(42);
    let b = moldesign_fingerprint(43);
    assert_ne!(a.2, b.2, "different seeds should end at different virtual times");
}

#[test]
fn finetune_bit_reproducible() {
    let go = || {
        let sim = Sim::new();
        let spec = DeploymentSpec { cpu_workers: 4, gpu_workers: 4, seed: 9, ..Default::default() };
        let d = deploy(&sim, WorkflowConfig::ParslRedis, &spec, Tracer::disabled());
        let o = finetune::run(
            &sim,
            &d,
            FinetuneParams {
                pretrain_structures: 50,
                target_new: 8,
                retrain_every: 4,
                ensemble_size: 2,
                md_steps_end: 100,
                ..Default::default()
            },
        );
        (o.new_structures, o.training_rounds, o.end, o.final_force_rmsd.to_bits())
    };
    assert_eq!(go(), go());
}

#[test]
fn record_timings_reproducible_across_runs() {
    let lifetimes = || {
        let sim = Sim::new();
        let spec = DeploymentSpec { seed: 5, ..Default::default() };
        let d = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, Tracer::disabled());
        let q = d.queues.clone();
        let h = sim.spawn(async move {
            for i in 0..20u32 {
                q.submit(
                    "simulate",
                    vec![Payload::new(i, 1_000_000)],
                    std::rc::Rc::new(|_| TaskWork::new((), 1000, Duration::from_secs(60))),
                )
                .await;
            }
            let mut out = Vec::new();
            for _ in 0..20 {
                let r = q.get_result("simulate").await.unwrap().resolve().await;
                out.push(r.record.timing.lifetime().unwrap());
            }
            out
        });
        sim.block_on(h)
    };
    assert_eq!(lifetimes(), lifetimes());
}

/// Runs a small moldesign campaign with tracing on and returns the
/// trace digest plus the event count, under the given fabric config.
fn traced_digest(config: WorkflowConfig, seed: u64) -> (u64, usize) {
    shuffled_traced_digest(config, seed, None)
}

/// Like [`traced_digest`], optionally enabling the executor's
/// tie-shuffle mode: same-instant timers fire in a seed-randomized
/// order instead of registration order. The determinism contract says
/// no observable output may depend on that order, so the digest must
/// be invariant across shuffle seeds — this helper is the probe the
/// invariance tests below are built on.
fn shuffled_traced_digest(config: WorkflowConfig, seed: u64, shuffle: Option<u64>) -> (u64, usize) {
    let sim = match shuffle {
        Some(s) => Sim::with_tie_shuffle(s),
        None => Sim::new(),
    };
    let tracer = Tracer::enabled();
    let spec = DeploymentSpec { cpu_workers: 4, gpu_workers: 2, seed, ..Default::default() };
    let d = deploy(&sim, config, &spec, tracer.clone());
    let _ = moldesign::run(
        &sim,
        &d,
        MolDesignParams {
            library_size: 400,
            budget: Duration::from_secs(1200),
            ensemble_size: 2,
            retrain_after: 8,
            seed,
            ..Default::default()
        },
    );
    (tracer.digest(), tracer.len())
}

#[test]
fn trace_digest_reproducible_fnx_globus() {
    let (d1, n1) = traced_digest(WorkflowConfig::FnXGlobus, 1234);
    let (d2, n2) = traced_digest(WorkflowConfig::FnXGlobus, 1234);
    assert!(n1 > 0, "traced campaign emitted no events");
    assert_eq!(n1, n2, "event counts diverged between same-seed runs");
    assert_eq!(d1, d2, "trace digests diverged between same-seed runs");
}

#[test]
fn trace_digest_reproducible_parsl_redis() {
    let (d1, n1) = traced_digest(WorkflowConfig::ParslRedis, 1234);
    let (d2, n2) = traced_digest(WorkflowConfig::ParslRedis, 1234);
    assert!(n1 > 0, "traced campaign emitted no events");
    assert_eq!(n1, n2, "event counts diverged between same-seed runs");
    assert_eq!(d1, d2, "trace digests diverged between same-seed runs");
}

/// Like [`traced_digest`] but with the full chaos kit switched on:
/// worker failure injection, a scheduled endpoint outage, and a
/// per-topic retry policy with backoff and a delivery deadline. The
/// failure paths must be exactly as deterministic as the happy path.
fn chaos_traced_digest(seed: u64) -> (u64, usize, usize) {
    use hetflow::fabric::{Connectivity, FailureModel};
    use hetflow::sim::Dist;

    let sim = Sim::new();
    let tracer = Tracer::enabled();
    let spec = DeploymentSpec {
        cpu_workers: 4,
        gpu_workers: 2,
        seed,
        failure: Some(FailureModel {
            prob: 0.2,
            waste_fraction: 0.5,
            restart_delay: Dist::Constant(2.0),
            max_attempts: 2,
        }),
        retry: RetryPolicies::default().with_topic(
            "simulate",
            RetryPolicy {
                max_attempts: 2,
                timeout: Some(Duration::from_secs(300)),
                backoff: Dist::Constant(1.0),
            },
        ),
        cpu_connectivity: Connectivity::scheduled(
            &sim,
            vec![(SimTime::from_secs(2), Duration::from_secs(600))],
        ),
        ..Default::default()
    };
    let d = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, tracer.clone());
    let o = moldesign::run(
        &sim,
        &d,
        MolDesignParams {
            library_size: 400,
            budget: Duration::from_secs(1200),
            ensemble_size: 2,
            retrain_after: 8,
            seed,
            ..Default::default()
        },
    );
    (tracer.digest(), tracer.len(), o.failed)
}

#[test]
fn trace_digest_reproducible_with_failure_injection() {
    let (d1, n1, f1) = chaos_traced_digest(1234);
    let (d2, n2, f2) = chaos_traced_digest(1234);
    assert!(n1 > 0, "traced campaign emitted no events");
    assert!(f1 > 0, "chaos campaign should produce failed tasks");
    assert_eq!(f1, f2, "failure counts diverged between same-seed runs");
    assert_eq!(n1, n2, "event counts diverged between same-seed runs");
    assert_eq!(d1, d2, "trace digests diverged between same-seed runs");
    // And the chaos must actually change the trace relative to the
    // fault-free run of the same seed.
    let (clean, _) = traced_digest(WorkflowConfig::FnXGlobus, 1234);
    assert_ne!(d1, clean, "failure injection should alter the trace");
}

/// A moldesign campaign under a scripted chaos-engine scenario: an
/// endpoint flap, a worker straggler window, a crash storm, and a cloud
/// degradation, with the breaker/failover/hedging layer active. The
/// whole reliability stack must replay bit-identically.
fn chaos_engine_digest(seed: u64) -> (u64, usize) {
    use hetflow::fabric::{BreakerConfig, ChaosAction, ChaosSpec};
    use hetflow::sim::Dist;

    let sim = Sim::new();
    let tracer = Tracer::enabled();
    let spec = DeploymentSpec {
        cpu_workers: 4,
        gpu_workers: 2,
        seed,
        cpu_failover_sites: 1,
        reliability: ReliabilityPolicies {
            default: ReliabilityPolicy {
                breaker: BreakerConfig {
                    failure_threshold: 2,
                    open_for: Duration::from_secs(120),
                    close_after: 1,
                    offline_grace: Duration::from_secs(20),
                    latency_slo: Duration::ZERO,
                },
                max_reroutes: 1,
                deadline: Duration::from_secs(900),
                ..Default::default()
            },
            per_topic: Default::default(),
        },
        retry: RetryPolicies::default().with_topic(
            "simulate",
            RetryPolicy { timeout: Some(Duration::from_secs(90)), ..RetryPolicy::default() },
        ),
        ..Default::default()
    };
    let d = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, tracer.clone());
    ChaosSpec::new(vec![
        ChaosAction::Flap {
            endpoint: 0,
            start: SimTime::from_secs(120),
            up: Dist::Uniform { lo: 20.0, hi: 60.0 },
            down: Dist::Uniform { lo: 30.0, hi: 90.0 },
            cycles: 2,
        },
        ChaosAction::Straggle {
            pool: 0,
            at: SimTime::from_secs(500),
            duration: Duration::from_secs(120),
            factor: 4.0,
        },
        ChaosAction::CrashStorm {
            pool: 1,
            at: SimTime::from_secs(300),
            duration: Duration::from_secs(200),
            prob: 0.3,
        },
        ChaosAction::Degrade {
            at: SimTime::from_secs(700),
            duration: Duration::from_secs(100),
            factor: 3.0,
        },
    ])
    .install(&sim, seed, &d.chaos);
    let _ = moldesign::run(
        &sim,
        &d,
        MolDesignParams {
            library_size: 400,
            budget: Duration::from_secs(1200),
            ensemble_size: 2,
            retrain_after: 8,
            seed,
            ..Default::default()
        },
    );
    (tracer.digest(), tracer.len())
}

#[test]
fn trace_digest_reproducible_under_chaos_engine() {
    let (d1, n1) = chaos_engine_digest(1234);
    let (d2, n2) = chaos_engine_digest(1234);
    assert!(n1 > 0, "traced campaign emitted no events");
    assert_eq!(n1, n2, "event counts diverged between same-seed chaos runs");
    assert_eq!(d1, d2, "chaos-engine trace digests diverged between same-seed runs");
    // The scripted chaos must actually perturb the run.
    let (clean, _) = traced_digest(WorkflowConfig::FnXGlobus, 1234);
    assert_ne!(d1, clean, "the chaos script should alter the trace");
}

/// A moldesign campaign with the whole overload-protection stack on —
/// bounded CPU queue, admission control on the storm topic, graceful
/// fidelity degradation — under a scripted task storm. Shedding,
/// backpressure, and fidelity transitions all fold into the digest, so
/// the overload machinery must replay bit-identically.
fn storm_digest(seed: u64) -> (u64, usize, usize, u64) {
    use hetflow::apps::DegradationPolicy;
    use hetflow::fabric::{AdmissionConfig, ChaosAction, ChaosSpec};
    use hetflow::sim::{Dist, OverflowPolicy};

    let sim = Sim::new();
    let tracer = Tracer::enabled();
    let spec = DeploymentSpec {
        cpu_workers: 4,
        gpu_workers: 2,
        seed,
        cpu_queue_capacity: 8,
        overflow: OverflowPolicy::ShedOldest,
        reliability: ReliabilityPolicies::default().with_topic(
            "noop",
            ReliabilityPolicy {
                admission: AdmissionConfig { rate: 10.0, burst: 10.0, max_in_flight: 0 },
                ..Default::default()
            },
        ),
        ..Default::default()
    };
    let d = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, tracer.clone());
    ChaosSpec::new(vec![ChaosAction::TaskStorm {
        at: SimTime::from_secs(60),
        tasks: 2_000,
        interval: Dist::Constant(0.05),
        bytes: 64,
        work: Dist::LogNormal { median: 6.0, sigma: 0.2 },
    }])
    .install(&sim, seed, &d.chaos);
    let o = moldesign::run(
        &sim,
        &d,
        MolDesignParams {
            library_size: 400,
            budget: Duration::from_secs(1200),
            ensemble_size: 2,
            retrain_after: 8,
            seed,
            degradation: DegradationPolicy { trigger_after: 2, restore_after: 3 },
            ..Default::default()
        },
    );
    (tracer.digest(), tracer.len(), o.shed, o.degradations)
}

#[test]
fn trace_digest_reproducible_under_task_storm() {
    let a = storm_digest(1234);
    let b = storm_digest(1234);
    assert!(a.1 > 0, "traced campaign emitted no events");
    assert!(a.2 > 0, "the storm must shed campaign tasks");
    assert!(a.3 >= 1, "sustained shedding must degrade fidelity");
    assert_eq!(a, b, "overload-protection trace diverged between same-seed runs");
    // The storm must actually perturb the run relative to the clean
    // campaign of the same seed.
    let (clean, _) = traced_digest(WorkflowConfig::FnXGlobus, 1234);
    assert_ne!(a.0, clean, "the task storm should alter the trace");
}

#[test]
fn tie_shuffle_leaves_trace_digest_invariant() {
    // The runtime half of the determinism contract: randomizing the
    // firing order of *equal-timestamp* timers must not change a single
    // bit of the trace, for either fabric. A divergence here means some
    // actor smuggled an ordering dependency between logically
    // independent same-instant events — a race the static rules
    // (R1–R13) cannot see.
    for config in [WorkflowConfig::FnXGlobus, WorkflowConfig::ParslRedis] {
        let (baseline, n) = shuffled_traced_digest(config, 1234, None);
        assert!(n > 0, "traced campaign emitted no events");
        for shuffle_seed in [1u64, 2, 3] {
            let (shuffled, m) = shuffled_traced_digest(config, 1234, Some(shuffle_seed));
            assert_eq!(
                (shuffled, m),
                (baseline, n),
                "tie shuffle (seed {shuffle_seed}) changed the {config:?} trace: \
                 a same-timestamp ordering dependency leaked into an observable"
            );
        }
    }
}

#[test]
fn trace_digest_distinguishes_fabrics_and_seeds() {
    let (fnx, _) = traced_digest(WorkflowConfig::FnXGlobus, 1234);
    let (parsl, _) = traced_digest(WorkflowConfig::ParslRedis, 1234);
    assert_ne!(fnx, parsl, "different fabrics should produce different traces");
    let (fnx_other, _) = traced_digest(WorkflowConfig::FnXGlobus, 4321);
    assert_ne!(fnx, fnx_other, "different seeds should produce different traces");
}
