//! Comparing ProxyStore backends directly (a miniature of Fig. 4):
//! put/resolve a range of object sizes through Redis-model,
//! file-system-model, and Globus-model stores and print the costs.
//!
//! ```sh
//! cargo run --release --example proxystore_backends
//! ```

use hetflow_core::platform::{THETA, VENTI};
use hetflow_core::Calibration;
use hetflow_store::{Backend, GlobusBackend, GlobusService, Proxy, Store};
use hetflow_sim::{Sim, SimRng};

fn main() {
    let cal = Calibration::default();
    let sizes: &[(u64, &str)] =
        &[(10_000, "10 kB"), (1_000_000, "1 MB"), (100_000_000, "100 MB")];

    println!("{:<10} {:>10} {:>12} {:>12}", "backend", "size", "put (ms)", "resolve (ms)");
    for &(size, label) in sizes {
        for backend_name in ["redis", "fs", "globus"] {
            let sim = Sim::new();
            let (store, consumer_site) = match backend_name {
                "redis" => (
                    Store::new(
                        sim.clone(),
                        "redis",
                        Backend::Redis(cal.redis.clone()),
                        SimRng::from_seed(1),
                    ),
                    THETA,
                ),
                "fs" => (
                    Store::new(
                        sim.clone(),
                        "fs",
                        Backend::Fs(cal.fs_theta.clone()),
                        SimRng::from_seed(1),
                    ),
                    THETA,
                ),
                _ => {
                    let service =
                        GlobusService::new(sim.clone(), cal.globus.clone(), SimRng::from_seed(2));
                    (
                        Store::new(
                            sim.clone(),
                            "globus",
                            Backend::Globus(Box::new(GlobusBackend {
                                service,
                                src_fs: cal.fs_theta.clone(),
                                dst_fs: cal.fs_venti.clone(),
                                push_to: vec![VENTI],
                            })),
                            SimRng::from_seed(1),
                        ),
                        VENTI,
                    )
                }
            };
            let s = sim.clone();
            let h = sim.spawn(async move {
                let t0 = s.now();
                let proxy = Proxy::create(&store, vec![0u8; 8], size, THETA)
                    .await
                    .expect("put");
                let put = (s.now() - t0).as_secs_f64() * 1e3;
                let t1 = s.now();
                proxy.resolve(consumer_site).await.expect("resolve");
                let resolve = (s.now() - t1).as_secs_f64() * 1e3;
                (put, resolve)
            });
            let (put, resolve) = sim.block_on(h);
            println!("{backend_name:<10} {label:>10} {put:>12.2} {resolve:>12.2}");
        }
        println!();
    }
    println!("Redis: lowest latency for small objects (needs connectivity).");
    println!("FS: competitive at large sizes within a facility.");
    println!("Globus: ~seconds regardless of size — pays the transfer service,");
    println!("        works across sites with no open ports.");
}
