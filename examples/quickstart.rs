//! Quickstart: deploy a workflow stack on the simulated platform,
//! submit tasks, and read back the latency decomposition.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hetflow_core::{deploy, DeploymentSpec, WorkflowConfig};
use hetflow_fabric::TaskWork;
use hetflow_steer::{Breakdown, Payload};
use hetflow_sim::{time::secs, Sim, Tracer};
use std::rc::Rc;

fn main() {
    // A fresh virtual-time simulation. Everything below is
    // deterministic given the deployment seed.
    let sim = Sim::new();

    // Deploy the paper's cloud-managed configuration: FnX (federated
    // FaaS) for task instructions, ProxyStore-over-Globus for data.
    let deployment = deploy(
        &sim,
        WorkflowConfig::FnXGlobus,
        &DeploymentSpec { cpu_workers: 4, gpu_workers: 4, ..Default::default() },
        Tracer::disabled(),
    );

    let queues = deployment.queues.clone();
    let driver = sim.spawn(async move {
        // Submit ten 1 MB simulation tasks; payloads above the 10 kB
        // threshold are automatically passed by reference.
        for i in 0..10u32 {
            queues
                .submit(
                    "simulate",
                    vec![Payload::new(i, 1_000_000)],
                    Rc::new(|ctx| {
                        let x = *ctx.input::<u32>(0);
                        TaskWork::new(x * 2, 50_000, secs(60.0))
                    }),
                )
                .await;
        }
        // Collect and resolve the results.
        let mut sum = 0u32;
        for _ in 0..10 {
            let done = queues.get_result("simulate").await.expect("result");
            let resolved = done.resolve().await;
            sum += *resolved.value::<u32>();
        }
        sum
    });
    let sum = sim.block_on(driver);
    println!("sum of task outputs: {sum} (expected {})", (0..10).map(|i| i * 2).sum::<u32>());
    println!("virtual time elapsed: {}", sim.now());

    // The records carry the full life-cycle decomposition the paper's
    // figures are built from.
    let records = deployment.queues.records();
    let b = Breakdown::of(&records, Some("simulate"));
    let row = b.median_row();
    println!("\nmedian latency decomposition over {} tasks:", b.count);
    println!("  thinker -> server : {:8.1} ms", row.thinker_to_server_ms);
    println!("  serialization     : {:8.1} ms", row.serialization_ms);
    println!("  server -> worker  : {:8.1} ms", row.server_to_worker_ms);
    println!("  time on worker    : {:8.1} ms", row.time_on_worker_ms);
    println!("  worker -> server  : {:8.1} ms", row.worker_to_server_ms);
    println!("  total lifetime    : {:8.1} ms", row.lifetime_ms);
}
