//! Chaos recovery, in two acts.
//!
//! **Act 1** — worker failure injection, per-topic retry policies with
//! backoff, a delivery timeout, and a scheduled endpoint outage — all
//! surfaced to the thinker as *failed records* instead of panics.
//!
//! **Act 2** — the active reliability layer: the chaos engine drops the
//! primary CPU endpoint, the offline watcher trips its circuit breaker,
//! dispatch fails over to a standby endpoint, and once the outage ends a
//! half-open probe closes the breaker and traffic returns to the
//! primary.
//!
//! ```sh
//! cargo run --release --example chaos_recovery
//! ```
//!
//! The cloud fabric (§IV-A3) accepts and stores tasks while the remote
//! endpoint is offline; the retry policy bounds how long the thinker is
//! willing to wait for that recovery. Tasks stuck behind the outage
//! longer than the deadline come back as `TaskError::Timeout`; tasks
//! whose execution attempts are exhausted come back as
//! `TaskError::ExhaustedRetries`. Either way the steering loop keeps
//! running on whatever did finish.

use hetflow_core::{deploy, DeploymentSpec, WorkflowConfig};
use hetflow_fabric::{
    BreakerConfig, ChaosAction, ChaosSpec, Connectivity, FailureModel, ReliabilityPolicies,
    ReliabilityPolicy, RetryPolicies, RetryPolicy, TaskError, TaskWork,
};
use hetflow_steer::{Breakdown, Payload};
use hetflow_sim::{time::secs, trace_kinds, Dist, Sim, SimTime, Tracer};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

const TASKS: u32 = 40;

fn main() {
    passive_recovery();
    breaker_failover_recovery();
}

/// Act 1: store-and-forward plus retry policies — recovery without any
/// active routing.
fn passive_recovery() {
    let sim = Sim::new();
    let tracer = Tracer::enabled();

    // One 20-minute outage of the CPU endpoint, starting 2 seconds in —
    // mid-submission, so most tasks are still in cloud transit and get
    // held there (§IV-A3's store-and-forward) when the link drops.
    let outage_start = SimTime::from_secs(2);
    let outage = Duration::from_secs(20 * 60);

    let spec = DeploymentSpec {
        cpu_workers: 4,
        gpu_workers: 4,
        // Every attempt fails with probability 0.2; up to 2 attempts.
        failure: Some(FailureModel {
            prob: 0.2,
            waste_fraction: 0.5,
            restart_delay: Dist::Constant(2.0),
            max_attempts: 2,
        }),
        // Simulations: 2 s constant backoff between attempts, and give
        // up on any task not delivered + finished within 5 minutes.
        retry: RetryPolicies::default().with_topic(
            "simulate",
            RetryPolicy {
                max_attempts: 2,
                timeout: Some(Duration::from_secs(300)),
                backoff: Dist::Constant(2.0),
            },
        ),
        cpu_connectivity: Connectivity::scheduled(&sim, vec![(outage_start, outage)]),
        ..Default::default()
    };
    let deployment = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, tracer.clone());

    let queues = deployment.queues.clone();
    let driver = sim.spawn(async move {
        for i in 0..TASKS {
            queues
                .submit(
                    "simulate",
                    vec![Payload::new(i, 1_000_000)],
                    Rc::new(|ctx| {
                        let x = *ctx.input::<u32>(0);
                        TaskWork::new(x * 2, 50_000, secs(60.0))
                    }),
                )
                .await;
        }
        let mut ok = 0u32;
        let mut errors: BTreeMap<&'static str, u32> = BTreeMap::new();
        for _ in 0..TASKS {
            let done = queues.get_result("simulate").await.expect("result stream");
            let resolved = done.resolve().await;
            match resolved.error() {
                None => ok += 1,
                Some(err) => *errors.entry(err.kind()).or_insert(0) += 1,
            }
        }
        (ok, errors)
    });
    let (ok, errors) = sim.block_on(driver);

    println!("=== chaos recovery: 20% failure rate + 20 min endpoint outage ===\n");
    println!("tasks submitted      : {TASKS}");
    println!("completed            : {ok}");
    for (kind, n) in &errors {
        println!("failed ({kind:<17}): {n}");
    }
    println!(
        "outages seen         : {}",
        spec.cpu_connectivity.outages_seen()
    );
    println!("virtual time elapsed : {}", sim.now());

    // Failure-path accounting: failed tasks are records like any other,
    // with a `failed` bin and the time lost to retries.
    let records = deployment.queues.records();
    let b = Breakdown::of(&records, Some("simulate"));
    println!("\nrecords: {} total, {} failed", b.count, b.failed);
    println!(
        "retry waste: mean {:.1} s, max {:.1} s",
        b.wasted.mean(),
        b.wasted.max()
    );
    let attempts: u32 = records.iter().map(|r| r.report.attempts).sum();
    println!("execution attempts across all tasks: {attempts}");

    // Everything above is deterministic given the seed: same seed, same
    // failures, same trace digest.
    println!("trace digest: {:#018x}", tracer.digest());

    assert_eq!(ok as usize + errors.values().sum::<u32>() as usize, TASKS as usize);
    assert!(b.failed > 0, "chaos scenario should produce failed records");
    let timeout_kind = TaskError::Timeout { after: Duration::ZERO }.kind();
    assert!(
        errors.contains_key(timeout_kind),
        "tasks stuck behind the outage should time out"
    );
}

/// Act 2: the breaker/failover lifecycle — open on site loss, failover
/// to the standby endpoint, half-open probe when the outage ends,
/// closed breaker and traffic back on the primary.
fn breaker_failover_recovery() {
    let sim = Sim::new();
    let tracer = Tracer::enabled();

    let spec = DeploymentSpec {
        cpu_workers: 4,
        gpu_workers: 2,
        // One standby CPU endpoint behind the primary.
        cpu_failover_sites: 1,
        reliability: ReliabilityPolicies {
            default: ReliabilityPolicy {
                breaker: BreakerConfig {
                    failure_threshold: 2,
                    open_for: Duration::from_secs(120),
                    // Two consecutive half-open probe successes close it.
                    close_after: 2,
                    offline_grace: Duration::from_secs(15),
                    latency_slo: Duration::ZERO,
                },
                max_reroutes: 1,
                deadline: Duration::from_secs(900),
                ..Default::default()
            },
            per_topic: Default::default(),
        },
        retry: RetryPolicies::default().with_topic(
            "simulate",
            RetryPolicy { timeout: Some(Duration::from_secs(60)), ..RetryPolicy::default() },
        ),
        ..Default::default()
    };
    let deployment = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, tracer.clone());

    // The chaos engine drops the primary CPU endpoint for 4 minutes,
    // then it reconnects — the recovery half of the story.
    ChaosSpec::new(vec![ChaosAction::Flap {
        endpoint: 0,
        start: SimTime::from_secs(60),
        up: Dist::Constant(600.0),
        down: Dist::Constant(240.0),
        cycles: 1,
    }])
    .install(&sim, 7, &deployment.chaos);

    let queues = deployment.queues.clone();
    let sim2 = sim.clone();
    let driver = sim.spawn(async move {
        // A steady drip of simulations across the outage and recovery.
        let mut ok = 0u32;
        for i in 0..TASKS {
            queues
                .submit(
                    "simulate",
                    vec![Payload::new(i, 100_000)],
                    Rc::new(|_| TaskWork::new((), 10_000, secs(30.0))),
                )
                .await;
            sim2.sleep(secs(20.0)).await;
        }
        for _ in 0..TASKS {
            let done = queues.get_result("simulate").await.expect("result stream");
            if done.resolve().await.error().is_none() {
                ok += 1;
            }
        }
        ok
    });
    let ok = sim.block_on(driver);

    println!("\n=== breaker failover: site lost at t=60s, back at t=300s ===\n");
    let mut timeline: Vec<(SimTime, String)> = Vec::new();
    for e in tracer.events_of_kind(trace_kinds::BREAKER_OPENED) {
        timeline.push((e.t, format!("breaker OPENED   endpoint {} (gen {})", e.entity, e.value)));
    }
    for e in tracer.events_of_kind(trace_kinds::BREAKER_CLOSED) {
        timeline.push((e.t, format!("breaker CLOSED   endpoint {} (gen {})", e.entity, e.value)));
    }
    for e in tracer.events_of_kind(trace_kinds::TASK_REROUTED) {
        timeline.push((e.t, format!("task {} rerouted off the dead endpoint (reroute #{})", e.entity, e.value)));
    }
    timeline.sort_by_key(|entry| entry.0);
    for (t, line) in &timeline {
        println!("  {t:>10}  {line}");
    }

    let records = deployment.queues.records();
    let on_standby =
        records.iter().filter(|r| r.worker.as_str().starts_with("theta-f0")).count();
    let back_on_primary = records
        .iter()
        .filter(|r| r.topic == "simulate" && r.worker.as_str().starts_with("theta/"))
        .filter(|r| r.timing.worker_started.is_some_and(|t| t > SimTime::from_secs(300)))
        .count();
    println!("\ncompleted            : {ok}/{TASKS}");
    println!("ran on standby pool  : {on_standby}");
    println!("on primary after fix : {back_on_primary}");
    println!("reroutes / cancels   : {} / {}", deployment.health.rerouted(), deployment.health.cancelled());
    println!("breaker open at end  : {}", deployment.health.breaker_open(0));
    println!("trace digest: {:#018x}", tracer.digest());

    let opened = tracer.events_of_kind(trace_kinds::BREAKER_OPENED).len();
    let closed = tracer.events_of_kind(trace_kinds::BREAKER_CLOSED).len();
    assert!(opened >= 1, "the site loss must open the breaker");
    assert!(closed >= 1, "the half-open probe must close the breaker after recovery");
    assert!(deployment.health.rerouted() >= 1, "stuck tasks must reroute to the standby");
    assert!(on_standby >= 1, "the standby pool must carry load during the outage");
    assert!(back_on_primary >= 1, "traffic must return to the primary after recovery");
    assert!(!deployment.health.breaker_open(0), "the breaker must end closed");
    assert!(ok as usize >= TASKS as usize / 2, "most tasks should still succeed");
}
