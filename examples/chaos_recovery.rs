//! Chaos recovery: worker failure injection, per-topic retry policies
//! with backoff, a delivery timeout, and a scheduled endpoint outage —
//! all surfaced to the thinker as *failed records* instead of panics.
//!
//! ```sh
//! cargo run --release --example chaos_recovery
//! ```
//!
//! The cloud fabric (§IV-A3) accepts and stores tasks while the remote
//! endpoint is offline; the retry policy bounds how long the thinker is
//! willing to wait for that recovery. Tasks stuck behind the outage
//! longer than the deadline come back as `TaskError::Timeout`; tasks
//! whose execution attempts are exhausted come back as
//! `TaskError::ExhaustedRetries`. Either way the steering loop keeps
//! running on whatever did finish.

use hetflow_core::{deploy, DeploymentSpec, WorkflowConfig};
use hetflow_fabric::{
    Connectivity, FailureModel, RetryPolicies, RetryPolicy, TaskError, TaskWork,
};
use hetflow_steer::{Breakdown, Payload};
use hetflow_sim::{time::secs, Dist, Sim, SimTime, Tracer};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

const TASKS: u32 = 40;

fn main() {
    let sim = Sim::new();
    let tracer = Tracer::enabled();

    // One 20-minute outage of the CPU endpoint, starting 2 seconds in —
    // mid-submission, so most tasks are still in cloud transit and get
    // held there (§IV-A3's store-and-forward) when the link drops.
    let outage_start = SimTime::from_secs(2);
    let outage = Duration::from_secs(20 * 60);

    let spec = DeploymentSpec {
        cpu_workers: 4,
        gpu_workers: 4,
        // Every attempt fails with probability 0.2; up to 2 attempts.
        failure: Some(FailureModel {
            prob: 0.2,
            waste_fraction: 0.5,
            restart_delay: Dist::Constant(2.0),
            max_attempts: 2,
        }),
        // Simulations: 2 s constant backoff between attempts, and give
        // up on any task not delivered + finished within 5 minutes.
        retry: RetryPolicies::default().with_topic(
            "simulate",
            RetryPolicy {
                max_attempts: 2,
                timeout: Some(Duration::from_secs(300)),
                backoff: Dist::Constant(2.0),
            },
        ),
        cpu_connectivity: Connectivity::scheduled(&sim, vec![(outage_start, outage)]),
        ..Default::default()
    };
    let deployment = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, tracer.clone());

    let queues = deployment.queues.clone();
    let driver = sim.spawn(async move {
        for i in 0..TASKS {
            queues
                .submit(
                    "simulate",
                    vec![Payload::new(i, 1_000_000)],
                    Rc::new(|ctx| {
                        let x = *ctx.input::<u32>(0);
                        TaskWork::new(x * 2, 50_000, secs(60.0))
                    }),
                )
                .await;
        }
        let mut ok = 0u32;
        let mut errors: BTreeMap<&'static str, u32> = BTreeMap::new();
        for _ in 0..TASKS {
            let done = queues.get_result("simulate").await.expect("result stream");
            let resolved = done.resolve().await;
            match resolved.error() {
                None => ok += 1,
                Some(err) => *errors.entry(err.kind()).or_insert(0) += 1,
            }
        }
        (ok, errors)
    });
    let (ok, errors) = sim.block_on(driver);

    println!("=== chaos recovery: 20% failure rate + 20 min endpoint outage ===\n");
    println!("tasks submitted      : {TASKS}");
    println!("completed            : {ok}");
    for (kind, n) in &errors {
        println!("failed ({kind:<17}): {n}");
    }
    println!(
        "outages seen         : {}",
        spec.cpu_connectivity.outages_seen()
    );
    println!("virtual time elapsed : {}", sim.now());

    // Failure-path accounting: failed tasks are records like any other,
    // with a `failed` bin and the time lost to retries.
    let records = deployment.queues.records();
    let b = Breakdown::of(&records, Some("simulate"));
    println!("\nrecords: {} total, {} failed", b.count, b.failed);
    println!(
        "retry waste: mean {:.1} s, max {:.1} s",
        b.wasted.mean(),
        b.wasted.max()
    );
    let attempts: u32 = records.iter().map(|r| r.report.attempts).sum();
    println!("execution attempts across all tasks: {attempts}");

    // Everything above is deterministic given the seed: same seed, same
    // failures, same trace digest.
    println!("trace digest: {:#018x}", tracer.digest());

    assert_eq!(ok as usize + errors.values().sum::<u32>() as usize, TASKS as usize);
    assert!(b.failed > 0, "chaos scenario should produce failed records");
    let timeout_kind = TaskError::Timeout { after: Duration::ZERO }.kind();
    assert!(
        errors.contains_key(timeout_kind),
        "tasks stuck behind the outage should time out"
    );
}
