//! Overload protection end to end: a chaos task storm floods the CPU
//! endpoint mid-campaign, admission control sheds most of the storm at
//! the door, the bounded worker queue sheds the overflow, and the
//! molecular-design campaign — watching its own tasks get shed —
//! gracefully degrades its oracle from the DFT-like tight-binding call
//! (~60 s) to the TTM-like classical estimate (~1.5 s) until the
//! pressure clears, then restores full fidelity.
//!
//! ```sh
//! cargo run --release --example overload_degradation
//! ```
//!
//! Two runs of the same campaign and seed: a calm baseline, then the
//! same deployment under a storm with the full protection stack on.
//! The storm run finishes with shed tasks and degraded generations in
//! its `Breakdown` — visible, accounted-for overload instead of an
//! unbounded queue — while still producing science.

use hetflow_apps::moldesign::{self, MolDesignParams};
use hetflow_apps::DegradationPolicy;
use hetflow_core::{deploy, DeploymentSpec, WorkflowConfig};
use hetflow_fabric::{
    AdmissionConfig, ChaosAction, ChaosSpec, ReliabilityPolicies, ReliabilityPolicy,
};
use hetflow_sim::{trace_kinds, Dist, OverflowPolicy, Sim, SimTime, Tracer};
use std::time::Duration;

fn main() {
    let params = MolDesignParams {
        library_size: 5_000,
        budget: Duration::from_secs(2 * 3600), // 2 node-hours
        ensemble_size: 4,
        retrain_after: 12,
        // Degrade after 2 consecutive shed oracles; restore after 3
        // clean successes with every breaker closed.
        degradation: DegradationPolicy { trigger_after: 2, restore_after: 3 },
        ..Default::default()
    };

    // --- Act 1: calm baseline -------------------------------------------
    let baseline = {
        let sim = Sim::new();
        let spec = DeploymentSpec { cpu_workers: 8, gpu_workers: 4, ..Default::default() };
        let deployment = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, Tracer::disabled());
        moldesign::run(&sim, &deployment, params.clone())
    };

    // --- Act 2: the same campaign under a task storm --------------------
    let sim = Sim::new();
    let tracer = Tracer::enabled();
    let spec = DeploymentSpec {
        cpu_workers: 8,
        gpu_workers: 4,
        // Bounded CPU queue: two waiting tasks per worker; overflow
        // sheds the oldest queued task (fidelity-blind FIFO shedding —
        // campaign tasks caught in the storm get shed too, which is
        // exactly what the degradation policy reacts to).
        cpu_queue_capacity: 16,
        overflow: OverflowPolicy::ShedOldest,
        // Admission control on the storm's topic: a 20-task/s token
        // bucket sheds the bulk of the flood at submission, before it
        // costs a single queue slot.
        reliability: ReliabilityPolicies::default().with_topic(
            "noop",
            ReliabilityPolicy {
                admission: AdmissionConfig { rate: 20.0, burst: 20.0, max_in_flight: 0 },
                ..Default::default()
            },
        ),
        ..Default::default()
    };
    let deployment = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, tracer.clone());

    // 8 000 junk tasks at 50/s, each burning ~8 s of worker compute,
    // starting two minutes in: 160 s of sustained overload — 2.5x over
    // the admission bucket, and the admitted residue alone is 20x the
    // CPU pool's service capacity.
    ChaosSpec::new(vec![ChaosAction::TaskStorm {
        at: SimTime::from_secs(120),
        tasks: 8_000,
        interval: Dist::Constant(0.02),
        bytes: 64,
        work: Dist::LogNormal { median: 8.0, sigma: 0.2 },
    }])
    .install(&sim, 7, &deployment.chaos);

    let outcome = moldesign::run(&sim, &deployment, params);

    println!("=== task storm vs overload protection ===\n");
    println!("storm                : 8000 tasks @ 50/s from t=120s");
    println!("admission (noop)     : 20 tasks/s token bucket");
    println!("CPU queue            : capacity 16, shed-oldest\n");
    println!(
        "{:<22} {:>10} {:>10}",
        "", "baseline", "storm"
    );
    println!(
        "{:<22} {:>10} {:>10}",
        "simulations done", baseline.simulations, outcome.simulations
    );
    println!("{:<22} {:>10} {:>10}", "molecules found", baseline.found, outcome.found);
    println!("{:<22} {:>10} {:>10}", "campaign tasks shed", baseline.shed, outcome.shed);
    println!(
        "{:<22} {:>10} {:>10}",
        "degraded generations", baseline.degradations, outcome.degradations
    );

    // The fidelity timeline, straight from the trace.
    let mut timeline: Vec<(SimTime, String)> = Vec::new();
    for e in tracer.events_of_kind(trace_kinds::FIDELITY_DEGRADED) {
        timeline.push((
            e.t,
            format!("fidelity DEGRADED (gen {}, {} consecutive sheds)", e.entity, e.value),
        ));
    }
    for e in tracer.events_of_kind(trace_kinds::FIDELITY_RESTORED) {
        timeline.push((e.t, format!("fidelity RESTORED (gen {})", e.entity)));
    }
    timeline.sort_by_key(|entry| entry.0);
    println!("\nfidelity timeline:");
    for (t, line) in &timeline {
        println!("  {t:>10}  {line}");
    }

    let shed_events = tracer.events_of_kind(trace_kinds::TASK_SHED).len();
    println!("\ntask_shed trace events : {shed_events} (storm junk + campaign casualties)");
    println!("trace digest: {:#018x}", tracer.digest());

    assert_eq!(baseline.shed, 0, "no shedding without a storm");
    assert_eq!(baseline.degradations, 0, "no degradation without pressure");
    assert!(outcome.shed > 0, "the storm must shed campaign tasks");
    assert!(outcome.degradations >= 1, "sustained sheds must degrade fidelity");
    assert!(
        !tracer.events_of_kind(trace_kinds::FIDELITY_RESTORED).is_empty(),
        "fidelity must be restored once the storm passes"
    );
    assert!(
        shed_events > outcome.shed,
        "most shed traffic should be the storm itself, not the campaign"
    );
    assert!(outcome.simulations > 0 && outcome.found > 0, "science must still happen");
    println!("\n(storm absorbed: bounded queue, bounded wait, fidelity traded for goodput)");
}
