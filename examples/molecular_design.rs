//! The molecular-design campaign (§III-A) on all three workflow
//! configurations, scaled down to run in a few seconds.
//!
//! ```sh
//! cargo run --release --example molecular_design
//! ```

use hetflow_apps::moldesign::{self, MolDesignParams};
use hetflow_core::{deploy, DeploymentSpec, WorkflowConfig};
use hetflow_sim::{Sim, Tracer};
use std::time::Duration;

fn main() {
    let params = MolDesignParams {
        library_size: 5_000,
        budget: Duration::from_secs(4 * 3600), // 4 node-hours
        ensemble_size: 4,
        retrain_after: 12,
        ..Default::default()
    };
    println!(
        "molecular design: {} candidates, {:.0} node-hours budget, IP > {}",
        params.library_size,
        params.budget.as_secs_f64() / 3600.0,
        params.ip_threshold
    );
    println!(
        "{:<12} {:>6} {:>6} {:>9} {:>12} {:>12}",
        "config", "sims", "found", "hit-rate", "ml-makespan", "cpu-idle-ms"
    );
    for config in WorkflowConfig::all() {
        let sim = Sim::new();
        let spec = DeploymentSpec { cpu_workers: 8, gpu_workers: 8, ..Default::default() };
        let deployment = deploy(&sim, config, &spec, Tracer::disabled());
        let outcome = moldesign::run(&sim, &deployment, params.clone());
        println!(
            "{:<12} {:>6} {:>6} {:>8.1}% {:>10.0} s {:>12.0}",
            config.label(),
            outcome.simulations,
            outcome.found,
            100.0 * outcome.found as f64 / outcome.simulations.max(1) as f64,
            outcome.ml_makespans.median(),
            outcome.cpu_idle.median() * 1e3,
        );
    }
    println!("\n(faster ML makespan => the queue is re-prioritized sooner =>");
    println!(" more of the budget is spent on model-selected molecules)");
}
