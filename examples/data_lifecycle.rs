//! Managing object lifetimes in the data fabric: a StoreRegistry with
//! one-shot (evict-after-resolve) and age-limited stores, and what that
//! does to resident memory over a burst of task traffic.
//!
//! ```sh
//! cargo run --release --example data_lifecycle
//! ```

use hetflow::sim::{time::secs, Sim, SimRng};
use hetflow::store::{
    Backend, EvictionPolicy, FsParams, Proxy, SiteId, Store, StoreRegistry,
};
use std::time::Duration;

const SITE: SiteId = SiteId(0);

fn fs_store(sim: &Sim, name: &str, seed: u64) -> Store {
    Store::new(
        sim.clone(),
        name,
        Backend::Fs(FsParams::shared(&[SITE])),
        SimRng::from_seed(seed),
    )
}

fn main() {
    let sim = Sim::new();
    let registry = StoreRegistry::new();

    // Task inputs are one-shot: consumed exactly once, then garbage.
    let inputs = fs_store(&sim, "task-inputs", 1);
    registry.register(inputs.clone(), EvictionPolicy::AfterResolves(1));

    // Model checkpoints are re-read but stale after ten minutes.
    let models = fs_store(&sim, "models", 2);
    registry.register(models.clone(), EvictionPolicy::MaxAge(Duration::from_secs(600)));
    let sweeper = registry.start_sweeper(&sim, Duration::from_secs(120));

    // A campaign-shaped burst: 200 input objects consumed once, and a
    // model checkpoint replaced every 5 minutes but resolved often.
    {
        let inputs = inputs.clone();
        let s = sim.clone();
        sim.spawn(async move {
            for i in 0..200u32 {
                let p = Proxy::create(&inputs, i, 1_000_000, SITE).await.unwrap();
                s.sleep(secs(10.0)).await;
                let r = p.resolve(SITE).await.unwrap();
                assert_eq!(*r.value, i);
            }
        });
    }
    {
        let models = models.clone();
        let s = sim.clone();
        sim.spawn(async move {
            for gen in 0..10u32 {
                let p = Proxy::create(&models, gen, 21_000_000, SITE).await.unwrap();
                // Many consumers over its useful life.
                for _ in 0..5 {
                    s.sleep(secs(60.0)).await;
                    p.resolve(SITE).await.unwrap();
                }
            }
        });
    }

    // Sample the registry every 10 virtual minutes.
    println!("{:>8} {:>22} {:>22}", "t", "task-inputs resident", "models resident");
    for step in 1..=6 {
        sim.run_until(hetflow::sim::SimTime::from_secs(step * 600));
        println!(
            "{:>7}s {:>15} bytes {:>15} bytes",
            step * 600,
            inputs.resident_bytes(),
            models.resident_bytes()
        );
    }
    // Stop the periodic sweeper so the simulation can quiesce, then
    // drain the remaining work.
    sweeper.stop();
    sim.run();

    println!("\nfinal registry state:");
    for line in registry.report() {
        println!("  {line}");
    }
    let s_in = inputs.stats();
    let s_mo = models.stats();
    println!(
        "\ntask-inputs: {} puts, {} evictions (one-shot policy)",
        s_in.puts, s_in.evictions
    );
    println!("models: {} puts, {} evictions (age policy)", s_mo.puts, s_mo.evictions);
    assert_eq!(s_in.evictions, s_in.gets, "every consumed input was reclaimed");
}
