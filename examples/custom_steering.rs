//! Building a custom steering policy from the primitives: a Thinker
//! with three cooperating agents, a ResourceCounter that rebalances
//! workers at runtime, and the §V-F advisor analyzing the run
//! afterwards.
//!
//! The policy: a producer agent keeps a work queue filled; a consumer
//! agent runs "screen" tasks on CPU workers; a monitor agent watches
//! queue depth every virtual minute and shifts worker slots between
//! "screen" and "refine" pools.
//!
//! ```sh
//! cargo run --release --example custom_steering
//! ```

use hetflow::prelude::*;
use hetflow::steer::{Advisor, ResourceCounter};
use hetflow_core::platform::THETA;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Duration;

fn main() {
    let sim = Sim::new();
    let deployment = deploy(
        &sim,
        WorkflowConfig::FnXGlobus,
        &DeploymentSpec { cpu_workers: 6, gpu_workers: 2, ..Default::default() },
        Tracer::disabled(),
    );
    let queues = deployment.queues.clone();
    let thinker = Thinker::new(&sim);

    let counter = ResourceCounter::new();
    counter.register("screen", 4);
    counter.register("refine", 2);
    let work: Rc<RefCell<VecDeque<u32>>> = Rc::default();
    let screened = Rc::new(std::cell::Cell::new(0u32));
    let refined = Rc::new(std::cell::Cell::new(0u32));

    // Producer: trickle work items in for the first hour.
    {
        let work = Rc::clone(&work);
        let s = sim.clone();
        thinker.agent("producer", async move {
            for batch in 0..60u32 {
                s.sleep(hetflow::sim::time::secs(60.0)).await;
                for i in 0..4 {
                    work.borrow_mut().push_back(batch * 4 + i);
                }
            }
        });
    }

    // Screener: cheap wide tasks; every 8th hit goes to refinement.
    {
        let work = Rc::clone(&work);
        let q = queues.clone();
        let counter = counter.clone();
        let thinker2 = Rc::clone(&thinker);
        let s = sim.clone();
        let screened = Rc::clone(&screened);
        let refined = Rc::clone(&refined);
        thinker.agent("screener", async move {
            loop {
                if thinker2.is_done() {
                    break;
                }
                let Some(item) = work.borrow_mut().pop_front() else {
                    s.sleep(hetflow::sim::time::secs(10.0)).await;
                    continue;
                };
                let permit = counter.acquire("screen").await;
                q.submit(
                    "simulate",
                    vec![Payload::new(item, 200_000)],
                    Rc::new(|ctx| {
                        let v = *ctx.input::<u32>(0);
                        TaskWork::new(v % 8 == 0, 5_000, Duration::from_secs(30))
                    }),
                )
                .await;
                let done = q.get_result("simulate").await.unwrap().resolve().await;
                drop(permit);
                screened.set(screened.get() + 1);
                if *done.value::<bool>() {
                    // Promote to an expensive refinement on the GPU.
                    let rp = counter.acquire("refine").await;
                    q.submit(
                        "train",
                        vec![Payload::new(item, 21_000_000)],
                        Rc::new(|_| TaskWork::new((), 21_000_000, Duration::from_secs(240))),
                    )
                    .await;
                    q.get_result("train").await.unwrap().resolve().await;
                    drop(rp);
                    refined.set(refined.get() + 1);
                }
                if screened.get() >= 120 {
                    thinker2.finish();
                }
            }
        });
    }

    // Monitor: rebalance worker slots by queue depth.
    {
        let work = Rc::clone(&work);
        let counter = counter.clone();
        let thinker2 = Rc::clone(&thinker);
        let s = sim.clone();
        thinker.agent("monitor", async move {
            let mut ticker = s.interval(Duration::from_secs(60));
            loop {
                ticker.tick().await;
                if thinker2.is_done() {
                    break;
                }
                let backlog = work.borrow().len();
                // Never drain the refine pool completely: the screener
                // still needs one slot to promote hits.
                if backlog > 12 && counter.available("refine") > 0 && counter.registered("refine") > 1 {
                    counter.reallocate("refine", "screen", 1).await;
                    println!("[{}] backlog {backlog}: +1 screen slot", s.now());
                } else if backlog == 0 && counter.available("screen") > 2 {
                    counter.reallocate("screen", "refine", 1).await;
                }
            }
        });
    }

    sim.run();
    println!(
        "\nscreened {} items, refined {}, virtual time {}",
        screened.get(),
        refined.get(),
        sim.now()
    );

    // Post-hoc §V-F analysis of the data paths used.
    println!("\nadvisor recommendations:");
    for r in Advisor::recommend(&queues.records(), THETA) {
        println!(
            "  {:<10} payload {:>10} B  with-ports {:?}, without {:?}",
            r.topic, r.payload_bytes, r.with_ports, r.without_ports
        );
    }
}
