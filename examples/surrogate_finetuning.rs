//! The surrogate fine-tuning campaign (§III-B): pre-train on cheap
//! approximate-level energies, fine-tune with reference-level
//! calculations chosen by active learning, and report the force-RMSD
//! improvement (the Fig. 7a metric).
//!
//! ```sh
//! cargo run --release --example surrogate_finetuning
//! ```

use hetflow_apps::finetune::{self, FinetuneParams};
use hetflow_core::{deploy, DeploymentSpec, WorkflowConfig};
use hetflow_steer::Breakdown;
use hetflow_sim::{Sim, Tracer};

fn main() {
    let params = FinetuneParams {
        pretrain_structures: 120,
        target_new: 32,
        retrain_every: 8,
        ensemble_size: 4,
        ..Default::default()
    };
    println!(
        "surrogate fine-tuning: {} pretrain structures, {} reference calculations",
        params.pretrain_structures, params.target_new
    );
    println!(
        "{:<12} {:>10} {:>10} {:>8} {:>10}",
        "config", "rmsd-pre", "rmsd-post", "rounds", "overhead"
    );
    for config in WorkflowConfig::all() {
        let sim = Sim::new();
        let spec = DeploymentSpec { cpu_workers: 8, gpu_workers: 8, ..Default::default() };
        let deployment = deploy(&sim, config, &spec, Tracer::disabled());
        let outcome = finetune::run(&sim, &deployment, params.clone());
        // Median per-task overhead across all task types (Fig. 7b).
        let b = Breakdown::of(&outcome.records, None);
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>8} {:>8.2} s",
            config.label(),
            outcome.initial_force_rmsd,
            outcome.final_force_rmsd,
            outcome.training_rounds,
            b.overhead.median(),
        );
    }
    println!("\n(scientific outcomes are indistinguishable across configurations;");
    println!(" only the per-task overhead differs — the paper's Fig. 7 conclusion)");
}
