//! Property-based tests of store invariants: round-trips preserve
//! values, proxy wire size is constant, costs are monotone in size, and
//! Globus prefetching never loses data under arbitrary producer and
//! consumer timings.

use hetflow_store::{
    bytes::KB, Backend, FsParams, GlobusBackend, GlobusParams, GlobusService, Proxy, RedisParams,
    SiteId, SiteSet, Store,
};
use hetflow_sim::{time::secs, Dist, Sim, SimRng};
use proptest::prelude::*;

const A: SiteId = SiteId(0);
const B: SiteId = SiteId(1);

fn fs_store(sim: &Sim) -> Store {
    Store::new(
        sim.clone(),
        "fs",
        Backend::Fs(FsParams {
            members: SiteSet::of(&[A]),
            op_latency: Dist::Constant(0.002),
            write_bandwidth: 1e8,
            read_bandwidth: 1e8,
        }),
        SimRng::from_seed(1),
    )
}

fn redis_store(sim: &Sim) -> Store {
    Store::new(
        sim.clone(),
        "redis",
        Backend::Redis(RedisParams {
            host: A,
            connected: SiteSet::of(&[A, B]),
            local_latency: Dist::Constant(0.0005),
            remote_latency: Dist::Constant(0.002),
            local_bandwidth: 1e8,
            remote_bandwidth: 5e7,
        }),
        SimRng::from_seed(2),
    )
}

fn globus_store(sim: &Sim) -> Store {
    let service = GlobusService::new(
        sim.clone(),
        GlobusParams {
            request_latency: Dist::Constant(0.4),
            service_time: Dist::Constant(1.5),
            bandwidth: 1e9,
            concurrent_per_user: 3,
            batch_window: None,
        },
        SimRng::from_seed(3),
    );
    Store::new(
        sim.clone(),
        "globus",
        Backend::Globus(Box::new(GlobusBackend {
            service,
            src_fs: FsParams {
                members: SiteSet::of(&[A]),
                op_latency: Dist::Constant(0.002),
                write_bandwidth: 1e8,
                read_bandwidth: 1e8,
            },
            dst_fs: FsParams {
                members: SiteSet::of(&[B]),
                op_latency: Dist::Constant(0.002),
                write_bandwidth: 1e8,
                read_bandwidth: 1e8,
            },
            push_to: vec![B],
        })),
        SimRng::from_seed(4),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Values round-trip unchanged through every backend, at any size.
    #[test]
    fn roundtrip_preserves_values(
        payload in prop::collection::vec(any::<u32>(), 0..64),
        size_kb in 1u64..200_000,
        backend in 0usize..3,
    ) {
        let sim = Sim::new();
        let (store, consumer) = match backend {
            0 => (fs_store(&sim), A),
            1 => (redis_store(&sim), B),
            _ => (globus_store(&sim), B),
        };
        let expected = payload.clone();
        let h = sim.spawn(async move {
            let p = Proxy::create(&store, payload, size_kb * KB, A).await.unwrap();
            let r = p.resolve(consumer).await.unwrap();
            r.value.as_ref().clone()
        });
        prop_assert_eq!(sim.block_on(h), expected);
    }

    /// Proxy wire size never depends on target size.
    #[test]
    fn proxy_wire_size_is_constant(size in 1u64..u64::from(u32::MAX)) {
        let sim = Sim::new();
        let store = fs_store(&sim);
        let h = sim.spawn(async move {
            let p = Proxy::create(&store, (), size, A).await.unwrap();
            p.untyped().wire_size()
        });
        prop_assert_eq!(sim.block_on(h), hetflow_store::PROXY_WIRE_BYTES);
    }

    /// Put cost is monotone non-decreasing in object size (fs backend,
    /// deterministic latencies).
    #[test]
    fn fs_put_cost_monotone(a in 1u64..100_000, b in 1u64..100_000) {
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        let cost_of = |kb: u64| {
            let sim = Sim::new();
            let store = fs_store(&sim);
            let s = sim.clone();
            let h = sim.spawn(async move {
                let t0 = s.now();
                Proxy::create(&store, (), kb * KB, A).await.unwrap();
                (s.now() - t0).as_secs_f64()
            });
            sim.block_on(h)
        };
        prop_assert!(cost_of(small) <= cost_of(large) + 1e-12);
    }

    /// Globus consumers always see the data, whether they resolve
    /// before, during, or after the transfer completes.
    #[test]
    fn globus_resolution_correct_at_any_arrival(delay_ms in 0u64..20_000) {
        let sim = Sim::new();
        let store = globus_store(&sim);
        let h = sim.spawn(async move {
            let p = Proxy::create(&store, 777u64, 5_000 * KB, A).await.unwrap();
            let s = store.sim().clone();
            s.sleep(secs(delay_ms as f64 / 1000.0)).await;
            let r = p.resolve(B).await.unwrap();
            (*r.value, r.was_local)
        });
        let (v, was_local) = sim.block_on(h);
        prop_assert_eq!(v, 777);
        // Late arrivals must hit the prefetched copy.
        if delay_ms > 5_000 {
            prop_assert!(was_local, "transfer should have completed by {delay_ms} ms");
        }
    }

    /// Stats are conserved: gets = local_hits + remote_waits, bytes
    /// accounted exactly.
    #[test]
    fn stats_conservation(ops in prop::collection::vec((1u64..1000, any::<bool>()), 1..20)) {
        let sim = Sim::new();
        let store = redis_store(&sim);
        let store2 = store.clone();
        let ops2 = ops.clone();
        sim.spawn(async move {
            for (kb, remote) in ops2 {
                let p = Proxy::create(&store2, (), kb * KB, A).await.unwrap();
                let site = if remote { B } else { A };
                p.resolve(site).await.unwrap();
            }
        });
        sim.run();
        let st = store.stats();
        prop_assert_eq!(st.puts, ops.len() as u64);
        prop_assert_eq!(st.gets, ops.len() as u64);
        prop_assert_eq!(st.local_hits + st.remote_waits, st.gets);
        let bytes: u64 = ops.iter().map(|&(kb, _)| kb * KB).sum();
        prop_assert_eq!(st.bytes_put, bytes);
        prop_assert_eq!(st.bytes_get, bytes);
    }
}
