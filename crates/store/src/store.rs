//! The object store: put/get with backend-specific cost models.
//!
//! A [`Store`] owns a set of objects and prices access by locality, as
//! ProxyStore does with its Redis, file-system, and Globus backends
//! (§IV-C). Objects carry *real* Rust values (model weights, molecular
//! structures flow through the store), while their *wire size* is
//! declared by the producer so the cost models can charge for movement.

use crate::globus::{GlobusService, TransferTicket};
use crate::location::{SiteId, SiteSet};
use hetflow_sim::{Arena, ArenaId, Dist, Samples, Sim, SimRng};
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// When stored objects are automatically removed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Objects live until explicitly evicted.
    #[default]
    Manual,
    /// Evict after this many successful resolves (1 = one-shot task
    /// inputs, which should not accumulate for the campaign's length).
    AfterResolves(u32),
    /// Evict objects older than the given age; enforced by
    /// [`Store::evict_older_than`] and the registry sweeper.
    MaxAge(std::time::Duration),
}

/// Errors surfaced by store operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The key does not exist (never stored, or evicted).
    Missing(u64),
    /// The requested site cannot reach this store's data plane.
    Unreachable {
        /// The site that attempted the access.
        site: SiteId,
        /// Name of the store backend that rejected it.
        store: &'static str,
    },
    /// The stored value is not of the requested type.
    TypeMismatch(u64),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Missing(k) => write!(f, "object {k} missing (evicted or never stored)"),
            StoreError::Unreachable { site, store } => {
                write!(f, "{site} cannot reach {store} store")
            }
            StoreError::TypeMismatch(k) => write!(f, "object {k} has a different type"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Parameters of the Redis-backend model.
///
/// Redis offers the lowest small-object latency but requires network
/// reachability: within a site, a fast LAN; across sites, an SSH tunnel
/// that must be listed in `connected`.
#[derive(Clone, Debug)]
pub struct RedisParams {
    /// Site hosting the Redis server.
    pub host: SiteId,
    /// Sites with connectivity to the server (including `host`).
    pub connected: SiteSet,
    /// Per-operation round-trip latency within the host site.
    pub local_latency: Dist,
    /// Per-operation latency from other connected sites (tunnel).
    pub remote_latency: Dist,
    /// Payload bandwidth within the host site, bytes/s.
    pub local_bandwidth: f64,
    /// Payload bandwidth across the tunnel, bytes/s.
    pub remote_bandwidth: f64,
}

impl RedisParams {
    /// Defaults calibrated to Fig. 4: sub-millisecond ops on a fast LAN.
    pub fn intra_site(host: SiteId) -> Self {
        RedisParams {
            host,
            connected: SiteSet::of(&[host]),
            local_latency: Dist::LogNormal { median: 0.0004, sigma: 0.3 },
            remote_latency: Dist::LogNormal { median: 0.002, sigma: 0.3 },
            // Effective client throughputs (Python redis client chunking),
            // calibrated so Fig. 4's large-object behaviour holds: Redis
            // and the file system become comparable near 100 MB.
            local_bandwidth: 1.0e8,
            remote_bandwidth: 5.0e7,
        }
    }

    /// Same server additionally reachable from `peers` via a tunnel
    /// (the paper's Parsl+Redis configuration, which "requires a third
    /// port").
    pub fn with_tunnel(host: SiteId, peers: &[SiteId]) -> Self {
        let mut p = RedisParams::intra_site(host);
        for &peer in peers {
            p.connected.insert(peer);
        }
        p
    }
}

/// Parameters of the shared-file-system backend model.
#[derive(Clone, Debug)]
pub struct FsParams {
    /// Sites mounting this file system.
    pub members: SiteSet,
    /// Per-operation latency (open + metadata).
    pub op_latency: Dist,
    /// Write bandwidth, bytes/s.
    pub write_bandwidth: f64,
    /// Read bandwidth, bytes/s.
    pub read_bandwidth: f64,
}

impl FsParams {
    /// Defaults calibrated to Fig. 4: ~5 ms ops, good large-object
    /// streaming (a parallel file system like Theta's Lustre).
    pub fn shared(members: &[SiteId]) -> Self {
        FsParams {
            members: SiteSet::of(members),
            op_latency: Dist::LogNormal { median: 0.005, sigma: 0.4 },
            write_bandwidth: 1.2e8,
            read_bandwidth: 1.5e8,
        }
    }
}

/// Parameters of the Globus backend: a file system on each side plus the
/// shared transfer service.
#[derive(Clone)]
pub struct GlobusBackend {
    /// The transfer service shared by all stores in the experiment.
    pub service: GlobusService,
    /// File system at the producing site(s).
    pub src_fs: FsParams,
    /// File system at the consuming site(s).
    pub dst_fs: FsParams,
    /// Sites the data should be pushed to as soon as it is stored
    /// (ProxyStore initiates the Globus transfer at proxy-creation time,
    /// which is what hides transfer latency from consumers).
    pub push_to: Vec<SiteId>,
}

/// Which data plane a store uses.
#[derive(Clone)]
pub enum Backend {
    /// In-memory server, lowest latency, requires connectivity.
    Redis(RedisParams),
    /// Shared file system, best for large objects within a facility.
    Fs(FsParams),
    /// Cross-site transfers through the Globus service.
    Globus(Box<GlobusBackend>),
}

impl Backend {
    /// Short label used in error messages and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Redis(_) => "redis",
            Backend::Fs(_) => "fs",
            Backend::Globus(_) => "globus",
        }
    }
}

struct ObjectEntry {
    value: Rc<dyn Any>,
    size: u64,
    /// When the object was stored (for age-based eviction).
    stored_at: hetflow_sim::SimTime,
    /// Successful resolves so far (for count-based eviction).
    resolves: u32,
    /// Sites where the bytes are resident.
    resident: SiteSet,
    /// In-flight replication per destination site.
    transfers: BTreeMap<SiteId, TransferTicket>,
}

/// Aggregate store statistics.
#[derive(Clone, Debug, Default)]
pub struct StoreStats {
    /// Objects stored over the store's lifetime.
    pub puts: u64,
    /// Resolve operations served.
    pub gets: u64,
    /// Bytes written into the store.
    pub bytes_put: u64,
    /// Bytes read out of the store.
    pub bytes_get: u64,
    /// Gets that found data already resident at the consumer site.
    pub local_hits: u64,
    /// Gets that had to wait on a cross-site transfer.
    pub remote_waits: u64,
    /// Objects evicted.
    pub evictions: u64,
}

struct Inner {
    sim: Sim,
    name: String,
    backend: Backend,
    eviction: Cell<EvictionPolicy>,
    rng: RefCell<SimRng>,
    /// Slot arena of stored objects. Public keys are packed
    /// [`ArenaId`] bits, so put/evict churn recycles slots instead of
    /// rebalancing a tree, and a stale key can never read a later
    /// object that reused its slot.
    objects: RefCell<Arena<ObjectEntry>>,
    stats: RefCell<StoreStats>,
    resolve_waits: RefCell<Samples>,
}

/// A named object store with one backend.
#[derive(Clone)]
pub struct Store {
    inner: Rc<Inner>,
}

/// Result of resolving a proxy: the value plus what it cost.
///
/// The `Debug` form omits the value (it is type-erased for
/// [`Resolved<dyn Any>`]).
pub struct Resolved<T: ?Sized> {
    /// The target object.
    pub value: Rc<T>,
    /// Virtual time spent waiting inside resolve.
    pub wait: std::time::Duration,
    /// True when the bytes were already resident at the consumer's site.
    pub was_local: bool,
}

impl<T: ?Sized> fmt::Debug for Resolved<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Resolved")
            .field("wait", &self.wait)
            .field("was_local", &self.was_local)
            .finish_non_exhaustive()
    }
}

impl Store {
    /// Creates a store. `rng` should be a dedicated stream.
    pub fn new(sim: Sim, name: impl Into<String>, backend: Backend, rng: SimRng) -> Self {
        Store {
            inner: Rc::new(Inner {
                sim,
                name: name.into(),
                backend,
                eviction: Cell::new(EvictionPolicy::Manual),
                rng: RefCell::new(rng),
                objects: RefCell::new(Arena::new()),
                stats: RefCell::new(StoreStats::default()),
                resolve_waits: RefCell::new(Samples::new()),
            }),
        }
    }

    /// The store's name (used in traces and reports).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The backend's label.
    pub fn backend_label(&self) -> &'static str {
        self.inner.backend.label()
    }

    /// Sets the automatic eviction policy.
    pub fn set_eviction(&self, policy: EvictionPolicy) {
        self.inner.eviction.set(policy);
    }

    /// The current eviction policy.
    pub fn eviction(&self) -> EvictionPolicy {
        self.inner.eviction.get()
    }

    /// Stores `value` with declared wire size `size`, produced at `from`.
    ///
    /// Awaiting this models the producer-side cost: payload upload for
    /// Redis, file write for the file system, file write *plus transfer
    /// initiation* for Globus. Returns the object key.
    pub async fn put_raw(
        &self,
        value: Rc<dyn Any>,
        size: u64,
        from: SiteId,
    ) -> Result<u64, StoreError> {
        let inner = &self.inner;
        let mut resident = SiteSet::EMPTY;
        let mut transfers = BTreeMap::new();
        match &inner.backend {
            Backend::Redis(p) => {
                if !p.connected.contains(from) {
                    return Err(StoreError::Unreachable { site: from, store: "redis" });
                }
                let d = self.redis_op_cost(p, from, size);
                inner.sim.sleep(d).await;
                resident.insert(p.host);
            }
            Backend::Fs(p) => {
                if !p.members.contains(from) {
                    return Err(StoreError::Unreachable { site: from, store: "fs" });
                }
                let lat = p.op_latency.sample(&mut inner.rng.borrow_mut());
                let d = hetflow_sim::time::secs(lat + size as f64 / p.write_bandwidth);
                inner.sim.sleep(d).await;
                resident = p.members;
            }
            Backend::Globus(g) => {
                // Either side may produce data: the thinker's site (task
                // inputs) or the remote workers' site (results).
                let local_fs = if g.src_fs.members.contains(from) {
                    &g.src_fs
                } else if g.dst_fs.members.contains(from) {
                    &g.dst_fs
                } else {
                    return Err(StoreError::Unreachable { site: from, store: "globus" });
                };
                // Write locally first ("objects are still written to the
                // shared file system prior to starting a Globus
                // transfer", §V-C2), then initiate the push.
                let lat = local_fs.op_latency.sample(&mut inner.rng.borrow_mut());
                let d = hetflow_sim::time::secs(lat + size as f64 / local_fs.write_bandwidth);
                inner.sim.sleep(d).await;
                resident = local_fs.members;
                for &dst in &g.push_to {
                    if resident.contains(dst) {
                        continue;
                    }
                    let ticket = g.service.initiate(size, from, dst).await;
                    transfers.insert(dst, ticket);
                }
            }
        }
        let key = inner
            .objects
            .borrow_mut()
            .insert(ObjectEntry {
                value,
                size,
                stored_at: inner.sim.now(),
                resolves: 0,
                resident,
                transfers,
            })
            .to_bits();
        let mut stats = inner.stats.borrow_mut();
        stats.puts += 1;
        stats.bytes_put += size;
        Ok(key)
    }

    /// Resolves an object at consumer site `at`, paying transfer and read
    /// costs; returns the value, the wait, and whether it was local.
    pub async fn get_raw(&self, key: u64, at: SiteId) -> Result<Resolved<dyn Any>, StoreError> {
        let inner = &self.inner;
        let id = ArenaId::from_bits(key);
        let start = inner.sim.now();
        // Snapshot what we need without holding the borrow across awaits.
        let (size, resident, ticket) = {
            let objects = inner.objects.borrow();
            let entry = objects.get(id).ok_or(StoreError::Missing(key))?;
            (entry.size, entry.resident, entry.transfers.get(&at).cloned())
        };

        let mut was_local = true;
        match &inner.backend {
            Backend::Redis(p) => {
                if !p.connected.contains(at) {
                    return Err(StoreError::Unreachable { site: at, store: "redis" });
                }
                was_local = at == p.host;
                let d = self.redis_op_cost(p, at, size);
                inner.sim.sleep(d).await;
            }
            Backend::Fs(p) => {
                if !p.members.contains(at) {
                    return Err(StoreError::Unreachable { site: at, store: "fs" });
                }
                let lat = p.op_latency.sample(&mut inner.rng.borrow_mut());
                let d = hetflow_sim::time::secs(lat + size as f64 / p.read_bandwidth);
                inner.sim.sleep(d).await;
            }
            Backend::Globus(g) => {
                if !resident.contains(at) {
                    // Wait for the push initiated at put time.
                    let Some(ticket) = ticket else {
                        return Err(StoreError::Unreachable { site: at, store: "globus" });
                    };
                    was_local = ticket.is_done();
                    ticket.wait().await;
                    if let Some(entry) = inner.objects.borrow_mut().get_mut(id) {
                        entry.resident.insert(at);
                    }
                }
                let fs = if g.dst_fs.members.contains(at) { &g.dst_fs } else { &g.src_fs };
                let lat = fs.op_latency.sample(&mut inner.rng.borrow_mut());
                let d = hetflow_sim::time::secs(lat + size as f64 / fs.read_bandwidth);
                inner.sim.sleep(d).await;
            }
        }

        let value = {
            let mut objects = inner.objects.borrow_mut();
            let entry = objects.get_mut(id).ok_or(StoreError::Missing(key))?;
            entry.resolves += 1;
            let value = Rc::clone(&entry.value);
            // Count-based lifetime: one-shot data leaves the store as
            // soon as its last consumer has it.
            if let EvictionPolicy::AfterResolves(n) = inner.eviction.get() {
                if entry.resolves >= n {
                    objects.remove(id);
                    inner.stats.borrow_mut().evictions += 1;
                }
            }
            value
        };
        let wait = inner.sim.now() - start;
        {
            let mut stats = inner.stats.borrow_mut();
            stats.gets += 1;
            stats.bytes_get += size;
            if was_local {
                stats.local_hits += 1;
            } else {
                stats.remote_waits += 1;
            }
        }
        inner.resolve_waits.borrow_mut().record(wait.as_secs_f64());
        Ok(Resolved { value, wait, was_local })
    }

    fn redis_op_cost(&self, p: &RedisParams, site: SiteId, size: u64) -> std::time::Duration {
        let mut rng = self.inner.rng.borrow_mut();
        let (lat, bw) = if site == p.host {
            (p.local_latency.sample(&mut rng), p.local_bandwidth)
        } else {
            (p.remote_latency.sample(&mut rng), p.remote_bandwidth)
        };
        hetflow_sim::time::secs(lat + size as f64 / bw)
    }

    /// Evicts every object stored strictly before `cutoff`; returns the
    /// count (used by age-based lifetime policies).
    pub fn evict_older_than(&self, cutoff: hetflow_sim::SimTime) -> usize {
        let mut objects = self.inner.objects.borrow_mut();
        let old: Vec<ArenaId> = objects
            .iter()
            .filter(|(_, e)| e.stored_at < cutoff)
            .map(|(id, _)| id)
            .collect();
        let evicted = old.len();
        for id in old {
            objects.remove(id);
        }
        self.inner.stats.borrow_mut().evictions += evicted as u64;
        evicted
    }

    /// Removes an object, freeing its (simulated) memory.
    pub fn evict(&self, key: u64) -> bool {
        let removed = self.inner.objects.borrow_mut().remove(ArenaId::from_bits(key)).is_some();
        if removed {
            self.inner.stats.borrow_mut().evictions += 1;
        }
        removed
    }

    /// True while the key is stored.
    pub fn contains(&self, key: u64) -> bool {
        self.inner.objects.borrow().contains(ArenaId::from_bits(key))
    }

    /// Declared size of a stored object.
    pub fn size_of(&self, key: u64) -> Option<u64> {
        self.inner.objects.borrow().get(ArenaId::from_bits(key)).map(|e| e.size)
    }

    /// Sum of declared sizes of all resident objects.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.objects.borrow().iter().map(|(_, e)| e.size).sum()
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.inner.objects.borrow().len()
    }

    /// Lifetime statistics snapshot.
    pub fn stats(&self) -> StoreStats {
        self.inner.stats.borrow().clone()
    }

    /// Distribution of resolve waits (seconds).
    pub fn resolve_waits(&self) -> Samples {
        self.inner.resolve_waits.borrow().clone()
    }

    /// The simulation this store lives on.
    pub fn sim(&self) -> &Sim {
        &self.inner.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::globus::GlobusParams;
    use crate::location::bytes::{KB, MB};

    const THETA: SiteId = SiteId(0);
    const VENTI: SiteId = SiteId(1);

    fn sim_store(backend: Backend) -> (Sim, Store) {
        let sim = Sim::new();
        let store = Store::new(sim.clone(), "test", backend, SimRng::from_seed(7));
        (sim, store)
    }

    fn fixed_redis(host: SiteId) -> RedisParams {
        RedisParams {
            host,
            connected: SiteSet::of(&[host]),
            local_latency: Dist::Constant(0.001),
            remote_latency: Dist::Constant(0.005),
            local_bandwidth: 1e9,
            remote_bandwidth: 1e8,
        }
    }

    fn fixed_fs(members: &[SiteId]) -> FsParams {
        FsParams {
            members: SiteSet::of(members),
            op_latency: Dist::Constant(0.005),
            write_bandwidth: 5e8,
            read_bandwidth: 5e8,
        }
    }

    #[test]
    fn redis_put_get_roundtrip() {
        let (sim, store) = sim_store(Backend::Redis(fixed_redis(THETA)));
        let s = store.clone();
        let h = sim.spawn(async move {
            let key = s.put_raw(Rc::new(vec![1u8, 2, 3]), 10 * KB, THETA).await.unwrap();
            let got = s.get_raw(key, THETA).await.unwrap();
            let v = got.value.downcast::<Vec<u8>>().unwrap();
            (v.as_ref().clone(), got.was_local)
        });
        let (v, local) = sim.block_on(h);
        assert_eq!(v, vec![1, 2, 3]);
        assert!(local);
    }

    #[test]
    fn redis_costs_latency_plus_bandwidth() {
        let (sim, store) = sim_store(Backend::Redis(fixed_redis(THETA)));
        let s = store.clone();
        let clock = sim.clone();
        let h = sim.spawn(async move {
            let t0 = clock.now();
            let key = s.put_raw(Rc::new(()), MB, THETA).await.unwrap();
            let put_t = (clock.now() - t0).as_secs_f64();
            let t1 = clock.now();
            s.get_raw(key, THETA).await.unwrap();
            let get_t = (clock.now() - t1).as_secs_f64();
            (put_t, get_t)
        });
        let (put_t, get_t) = sim.block_on(h);
        assert!((put_t - 0.002).abs() < 1e-9, "1ms + 1MB/1GBps = 2ms, got {put_t}");
        assert!((get_t - 0.002).abs() < 1e-9);
    }

    #[test]
    fn redis_unreachable_site_errors() {
        let (sim, store) = sim_store(Backend::Redis(fixed_redis(THETA)));
        let s = store.clone();
        let h = sim.spawn(async move {
            let err = s.put_raw(Rc::new(()), KB, VENTI).await.unwrap_err();
            err
        });
        assert_eq!(
            sim.block_on(h),
            StoreError::Unreachable { site: VENTI, store: "redis" }
        );
    }

    #[test]
    fn redis_tunnel_reaches_remote_site() {
        let mut p = fixed_redis(THETA);
        p.connected.insert(VENTI);
        let (sim, store) = sim_store(Backend::Redis(p));
        let s = store.clone();
        let clock = sim.clone();
        let h = sim.spawn(async move {
            let key = s.put_raw(Rc::new(7u32), MB, THETA).await.unwrap();
            let t0 = clock.now();
            let got = s.get_raw(key, VENTI).await.unwrap();
            ((clock.now() - t0).as_secs_f64(), got.was_local)
        });
        let (get_t, local) = sim.block_on(h);
        // 5ms tunnel latency + 1MB/100MBps = 15ms
        assert!((get_t - 0.015).abs() < 1e-9, "got {get_t}");
        assert!(!local, "cross-site Redis get is remote");
    }

    #[test]
    fn fs_shared_members_see_data() {
        let (sim, store) = sim_store(Backend::Fs(fixed_fs(&[THETA, SiteId(2)])));
        let s = store.clone();
        let h = sim.spawn(async move {
            let key = s.put_raw(Rc::new("model"), 10 * MB, THETA).await.unwrap();
            let got = s.get_raw(key, SiteId(2)).await.unwrap();
            *got.value.downcast::<&str>().unwrap()
        });
        assert_eq!(sim.block_on(h), "model");
    }

    #[test]
    fn fs_non_member_errors() {
        let (sim, store) = sim_store(Backend::Fs(fixed_fs(&[THETA])));
        let s = store.clone();
        let h = sim.spawn(async move { s.get_raw(999, VENTI).await.unwrap_err() });
        assert_eq!(sim.block_on(h), StoreError::Missing(999));
        let s2 = store.clone();
        let h2 = sim.spawn(async move {
            let key = s2.put_raw(Rc::new(()), KB, THETA).await.unwrap();
            s2.get_raw(key, VENTI).await.unwrap_err()
        });
        assert_eq!(sim.block_on(h2), StoreError::Unreachable { site: VENTI, store: "fs" });
    }

    fn globus_backend(sim: &Sim) -> Backend {
        let service = GlobusService::new(
            sim.clone(),
            GlobusParams {
                request_latency: Dist::Constant(0.5),
                service_time: Dist::Constant(2.0),
                bandwidth: 1e9,
                concurrent_per_user: 3,
                batch_window: None,
            },
            SimRng::from_seed(3),
        );
        Backend::Globus(Box::new(GlobusBackend {
            service,
            src_fs: fixed_fs(&[THETA]),
            dst_fs: fixed_fs(&[VENTI]),
            push_to: vec![VENTI],
        }))
    }

    #[test]
    fn globus_put_initiates_push_and_get_waits() {
        let sim = Sim::new();
        let store = Store::new(sim.clone(), "g", globus_backend(&sim), SimRng::from_seed(7));
        let s = store.clone();
        let clock = sim.clone();
        let h = sim.spawn(async move {
            let t0 = clock.now();
            let key = s.put_raw(Rc::new(1u8), MB, THETA).await.unwrap();
            let put_t = (clock.now() - t0).as_secs_f64();
            let t1 = clock.now();
            let got = s.get_raw(key, VENTI).await.unwrap();
            ((put_t, (clock.now() - t1).as_secs_f64()), got.was_local)
        });
        let ((put_t, get_t), local) = sim.block_on(h);
        // put: 5ms fs write + 2ms bw + 500ms initiate ≈ 0.507
        assert!((put_t - 0.507).abs() < 1e-6, "got {put_t}");
        // get immediately after put: waits remaining 2.0s service plus
        // 1ms wire, then fs read 5ms + 2ms.
        assert!((get_t - 2.008).abs() < 1e-6, "got {get_t}");
        assert!(!local);
    }

    #[test]
    fn globus_prefetch_hides_transfer() {
        let sim = Sim::new();
        let store = Store::new(sim.clone(), "g", globus_backend(&sim), SimRng::from_seed(7));
        let s = store.clone();
        let clock = sim.clone();
        let h = sim.spawn(async move {
            let key = s.put_raw(Rc::new(1u8), MB, THETA).await.unwrap();
            // Consumer shows up late: transfer already done.
            clock.sleep(hetflow_sim::time::secs(10.0)).await;
            let t1 = clock.now();
            let got = s.get_raw(key, VENTI).await.unwrap();
            ((clock.now() - t1).as_secs_f64(), got.was_local)
        });
        let (get_t, local) = sim.block_on(h);
        assert!(get_t < 0.1, "prefetched resolve must be fast, got {get_t}");
        assert!(local);
    }

    #[test]
    fn globus_second_get_is_resident() {
        let sim = Sim::new();
        let store = Store::new(sim.clone(), "g", globus_backend(&sim), SimRng::from_seed(7));
        let s = store.clone();
        let clock = sim.clone();
        let h = sim.spawn(async move {
            let key = s.put_raw(Rc::new(1u8), MB, THETA).await.unwrap();
            s.get_raw(key, VENTI).await.unwrap();
            let t1 = clock.now();
            let got = s.get_raw(key, VENTI).await.unwrap();
            ((clock.now() - t1).as_secs_f64(), got.was_local)
        });
        let (get_t, local) = sim.block_on(h);
        assert!(get_t < 0.1, "resident read is fast, got {get_t}");
        assert!(local);
    }

    #[test]
    fn evict_frees_and_missing_errors() {
        let (sim, store) = sim_store(Backend::Fs(fixed_fs(&[THETA])));
        let s = store.clone();
        let h = sim.spawn(async move {
            let key = s.put_raw(Rc::new(0u8), 5 * MB, THETA).await.unwrap();
            assert_eq!(s.resident_bytes(), 5 * MB);
            assert!(s.evict(key));
            assert!(!s.evict(key));
            assert_eq!(s.resident_bytes(), 0);
            s.get_raw(key, THETA).await.unwrap_err()
        });
        let err = sim.block_on(h);
        assert!(matches!(err, StoreError::Missing(_)));
        assert_eq!(store.stats().evictions, 1);
    }

    #[test]
    fn stats_accumulate() {
        let (sim, store) = sim_store(Backend::Fs(fixed_fs(&[THETA])));
        let s = store.clone();
        sim.spawn(async move {
            let k1 = s.put_raw(Rc::new(()), KB, THETA).await.unwrap();
            let k2 = s.put_raw(Rc::new(()), 2 * KB, THETA).await.unwrap();
            s.get_raw(k1, THETA).await.unwrap();
            s.get_raw(k2, THETA).await.unwrap();
            s.get_raw(k2, THETA).await.unwrap();
        });
        sim.run();
        let st = store.stats();
        assert_eq!(st.puts, 2);
        assert_eq!(st.gets, 3);
        assert_eq!(st.bytes_put, 3 * KB);
        assert_eq!(st.bytes_get, 5 * KB);
        assert_eq!(store.resolve_waits().len(), 3);
        assert_eq!(store.object_count(), 2);
    }
}
