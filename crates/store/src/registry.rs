//! Named store registry and object-lifetime policies.
//!
//! ProxyStore addresses stores by name through a process-global
//! registry and supports evicting objects once consumed — one-shot task
//! inputs should not accumulate in Redis or on the file system for the
//! length of a campaign. [`StoreRegistry`] provides the lookup;
//! [`EvictionPolicy`] the lifetime rules.

use crate::store::Store;
pub use crate::store::EvictionPolicy;
use hetflow_sim::{Sim, SimTime, Symbol, SymbolMap};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

/// Handle to a running sweeper; dropping it does *not* stop the actor.
pub struct SweeperHandle {
    stop: Rc<std::cell::Cell<bool>>,
}

impl SweeperHandle {
    /// Asks the sweeper to exit at its next tick.
    pub fn stop(&self) {
        self.stop.set(true);
    }
}

/// A named collection of stores with lifetime management. Names are
/// interned [`Symbol`]s, so repeated lookups index an array instead of
/// walking a string-keyed tree; iteration stays sorted by name.
#[derive(Clone, Default)]
pub struct StoreRegistry {
    inner: Rc<RefCell<SymbolMap<RegisteredStore>>>,
}

#[derive(Clone)]
struct RegisteredStore {
    store: Store,
    policy: EvictionPolicy,
}

impl StoreRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a store under its own name with a lifetime policy.
    /// Panics if the name is taken.
    pub fn register(&self, store: Store, policy: EvictionPolicy) {
        let name = Symbol::intern(store.name());
        store.set_eviction(policy);
        let mut inner = self.inner.borrow_mut();
        assert!(!inner.contains_key(name), "store {name} already registered");
        inner.insert(name, RegisteredStore { store, policy });
    }

    /// Looks up a store by name.
    pub fn get(&self, name: impl Into<Symbol>) -> Option<Store> {
        self.inner.borrow().get(name.into()).map(|r| r.store.clone())
    }

    /// The policy registered for `name`.
    pub fn policy(&self, name: impl Into<Symbol>) -> Option<EvictionPolicy> {
        self.inner.borrow().get(name.into()).map(|r| r.policy)
    }

    /// Registered store names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.inner.borrow().keys().map(|s| s.as_str().to_owned()).collect()
    }

    /// Sweeps every store with a [`EvictionPolicy::MaxAge`] policy,
    /// evicting objects stored before `now − max_age`. Returns the
    /// number of evictions.
    pub fn sweep(&self, now: SimTime) -> usize {
        let mut evicted = 0;
        for r in self.inner.borrow().values() {
            if let EvictionPolicy::MaxAge(age) = r.policy {
                let cutoff = SimTime::from_nanos(
                    now.as_nanos().saturating_sub(age.as_nanos() as u64),
                );
                evicted += r.store.evict_older_than(cutoff);
            }
        }
        evicted
    }

    /// Spawns a periodic sweeper actor. Stop it with the returned
    /// handle; otherwise its timer keeps the simulation from ever going
    /// quiescent.
    pub fn start_sweeper(&self, sim: &Sim, every: Duration) -> SweeperHandle {
        let registry = self.clone();
        let sim2 = sim.clone();
        let stop = Rc::new(std::cell::Cell::new(false));
        let stop2 = Rc::clone(&stop);
        sim.spawn(async move {
            let mut interval = sim2.interval(every);
            loop {
                interval.tick().await;
                if stop2.get() {
                    break;
                }
                registry.sweep(sim2.now());
            }
        });
        SweeperHandle { stop }
    }

    /// One summary line per store: `name backend objects bytes`.
    pub fn report(&self) -> Vec<String> {
        self.inner
            .borrow()
            .values()
            .map(|r| {
                format!(
                    "{:<12} {:<7} {:>6} objects {:>12} bytes",
                    r.store.name(),
                    r.store.backend_label(),
                    r.store.object_count(),
                    r.store.resident_bytes()
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::{bytes::MB, SiteId, SiteSet};
    use crate::store::{Backend, FsParams};
    use hetflow_sim::{Dist, SimRng};
    use std::rc::Rc;

    const SITE: SiteId = SiteId(0);

    fn fs_store(sim: &Sim, name: &str) -> Store {
        Store::new(
            sim.clone(),
            name,
            Backend::Fs(FsParams {
                members: SiteSet::of(&[SITE]),
                op_latency: Dist::Constant(0.001),
                write_bandwidth: 1e9,
                read_bandwidth: 1e9,
            }),
            SimRng::from_seed(1),
        )
    }

    #[test]
    fn register_and_lookup() {
        let sim = Sim::new();
        let reg = StoreRegistry::new();
        reg.register(fs_store(&sim, "alpha"), EvictionPolicy::Manual);
        reg.register(fs_store(&sim, "beta"), EvictionPolicy::AfterResolves(1));
        assert_eq!(reg.names(), vec!["alpha".to_owned(), "beta".to_owned()]);
        assert!(reg.get("alpha").is_some());
        assert!(reg.get("gamma").is_none());
        assert_eq!(reg.policy("beta"), Some(EvictionPolicy::AfterResolves(1)));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_name_panics() {
        let sim = Sim::new();
        let reg = StoreRegistry::new();
        reg.register(fs_store(&sim, "x"), EvictionPolicy::Manual);
        reg.register(fs_store(&sim, "x"), EvictionPolicy::Manual);
    }

    #[test]
    fn sweep_evicts_old_objects() {
        let sim = Sim::new();
        let reg = StoreRegistry::new();
        let store = fs_store(&sim, "aged");
        reg.register(store.clone(), EvictionPolicy::MaxAge(Duration::from_secs(100)));
        let s2 = store.clone();
        let clock = sim.clone();
        sim.spawn(async move {
            s2.put_raw(Rc::new(1u8), MB, SITE).await.unwrap();
            clock.sleep(hetflow_sim::time::secs(200.0)).await;
            s2.put_raw(Rc::new(2u8), MB, SITE).await.unwrap();
        });
        sim.run();
        assert_eq!(store.object_count(), 2);
        let evicted = reg.sweep(sim.now());
        assert_eq!(evicted, 1, "only the old object goes");
        assert_eq!(store.object_count(), 1);
    }

    #[test]
    fn sweeper_actor_runs_periodically() {
        let sim = Sim::new();
        let reg = StoreRegistry::new();
        let store = fs_store(&sim, "swept");
        reg.register(store.clone(), EvictionPolicy::MaxAge(Duration::from_secs(50)));
        reg.start_sweeper(&sim, Duration::from_secs(25));
        let s2 = store.clone();
        sim.spawn(async move {
            s2.put_raw(Rc::new(0u8), MB, SITE).await.unwrap();
        });
        sim.run_until(SimTime::from_secs(40));
        assert_eq!(store.object_count(), 1, "young object survives");
        sim.run_until(SimTime::from_secs(120));
        assert_eq!(store.object_count(), 0, "sweeper removed it");
    }

    #[test]
    fn after_resolves_policy_enforced() {
        let sim = Sim::new();
        let reg = StoreRegistry::new();
        let store = fs_store(&sim, "oneshot");
        reg.register(store.clone(), EvictionPolicy::AfterResolves(2));
        let s2 = store.clone();
        sim.spawn(async move {
            let key = s2.put_raw(Rc::new(9u8), MB, SITE).await.unwrap();
            s2.get_raw(key, SITE).await.unwrap();
            assert!(s2.contains(key), "survives the first resolve");
            s2.get_raw(key, SITE).await.unwrap();
            assert!(!s2.contains(key), "gone after the second");
        });
        sim.run();
        assert_eq!(store.stats().evictions, 1);
        assert_eq!(store.object_count(), 0);
    }

    #[test]
    fn report_lines() {
        let sim = Sim::new();
        let reg = StoreRegistry::new();
        reg.register(fs_store(&sim, "r"), EvictionPolicy::Manual);
        let lines = reg.report();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains('r'));
        assert!(lines[0].contains("fs"));
    }
}
