//! Model of the Globus Transfer cloud service.
//!
//! Reproduces the behaviour the paper measures (§V-C2, §V-D1):
//!
//! * initiating a transfer is an HTTPS request to the cloud service and
//!   takes ~500 ms regardless of size;
//! * a transfer completes in ~1–5 s, dominated by data-transfer-node
//!   (DTN) service time, *not* bandwidth, up to ~100 MB;
//! * each user may run only a few transfers concurrently, so bursts of
//!   per-object transfers queue (the paper suggests fusing transfers to
//!   dodge this limit — modelled by [`GlobusParams::batch_window`]).

use crate::location::SiteId;
use hetflow_sim::{Dist, Event, Samples, Semaphore, Sim, SimRng};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

/// Tunables for the transfer-service model.
#[derive(Clone, Debug)]
pub struct GlobusParams {
    /// Latency of the HTTPS request that initiates a transfer
    /// (paper: "an HTTPS request to Globus that takes an average of
    /// ~500 ms", §V-D1).
    pub request_latency: Dist,
    /// DTN service time per transfer, independent of size
    /// (paper: "typically completes in 1–5 s", §V-D1).
    pub service_time: Dist,
    /// Effective wide-area bandwidth in bytes/s; only matters for very
    /// large payloads (the paper sees size-independence up to 100 MB).
    pub bandwidth: f64,
    /// Concurrent transfers allowed per user (paper: "concurrent
    /// transfer limits per user", §V-D1).
    pub concurrent_per_user: usize,
    /// When set, transfers submitted on the same route within this
    /// window are fused into a single transfer job (§V-D1's suggested
    /// optimization). `None` gives the paper's measured per-object
    /// behaviour.
    pub batch_window: Option<Duration>,
}

impl Default for GlobusParams {
    fn default() -> Self {
        GlobusParams {
            request_latency: Dist::LogNormal { median: 0.45, sigma: 0.35 },
            service_time: Dist::LogNormal { median: 1.9, sigma: 0.45 },
            bandwidth: 1.0e9,
            concurrent_per_user: 3,
            batch_window: None,
        }
    }
}

/// One queued or in-flight transfer.
struct Pending {
    size: u64,
    done: Event,
}

#[derive(Default)]
struct RouteQueue {
    pending: Vec<Pending>,
    dispatcher_active: bool,
}

struct ServiceInner {
    sim: Sim,
    params: GlobusParams,
    slots: Semaphore,
    rng: RefCell<SimRng>,
    routes: RefCell<BTreeMap<(SiteId, SiteId), RouteQueue>>,
    transfers_started: std::cell::Cell<u64>,
    transfer_jobs: std::cell::Cell<u64>,
    bytes_moved: std::cell::Cell<u64>,
    durations: RefCell<Samples>,
}

/// Handle to the shared transfer service.
#[derive(Clone)]
pub struct GlobusService {
    inner: Rc<ServiceInner>,
}

/// Ticket for a transfer in flight; await it with [`TransferTicket::wait`].
#[derive(Clone)]
pub struct TransferTicket {
    done: Event,
}

impl TransferTicket {
    /// A ticket that is already complete (e.g. data already resident).
    pub fn completed() -> Self {
        let done = Event::new();
        done.set();
        TransferTicket { done }
    }

    /// Awaits transfer completion.
    pub async fn wait(&self) {
        self.done.wait().await;
    }

    /// True once the data has landed.
    pub fn is_done(&self) -> bool {
        self.done.is_set()
    }
}

impl GlobusService {
    /// Creates the service on `sim` with its own RNG stream.
    pub fn new(sim: Sim, params: GlobusParams, rng: SimRng) -> Self {
        let slots = Semaphore::new(params.concurrent_per_user.max(1));
        GlobusService {
            inner: Rc::new(ServiceInner {
                sim,
                params,
                slots,
                rng: RefCell::new(rng),
                routes: RefCell::new(BTreeMap::new()),
                transfers_started: std::cell::Cell::new(0),
                transfer_jobs: std::cell::Cell::new(0),
                bytes_moved: std::cell::Cell::new(0),
                durations: RefCell::new(Samples::new()),
            }),
        }
    }

    /// Initiates a transfer of `size` bytes from `src` to `dst`.
    ///
    /// The returned future resolves once the *request* has been accepted
    /// (the HTTPS round trip — this is the latency a producer pays when
    /// creating a Globus-backed proxy). The returned ticket completes when
    /// the data has fully landed at `dst`.
    pub async fn initiate(&self, size: u64, src: SiteId, dst: SiteId) -> TransferTicket {
        let inner = &self.inner;
        let req = inner.params.request_latency.sample_secs(&mut inner.rng.borrow_mut());
        inner.sim.sleep(req).await;
        inner.transfers_started.set(inner.transfers_started.get() + 1);

        let done = Event::new();
        let queued_at = inner.sim.now();
        let pending = Pending { size, done: done.clone() };

        match inner.params.batch_window {
            None => {
                // Independent transfer: one concurrency slot, one
                // service-time draw.
                let this = self.clone();
                inner.sim.spawn(async move {
                    this.run_job(vec![pending], queued_at).await;
                });
            }
            Some(window) => {
                let mut routes = inner.routes.borrow_mut();
                let route = routes.entry((src, dst)).or_default();
                route.pending.push(pending);
                if !route.dispatcher_active {
                    route.dispatcher_active = true;
                    drop(routes);
                    let this = self.clone();
                    inner.sim.spawn(async move {
                        this.inner.sim.sleep(window).await;
                        let batch = {
                            let mut routes = this.inner.routes.borrow_mut();
                            // hetlint: allow(r5) — the dispatcher is spawned only
                            // after this route entry is inserted, and entries are
                            // never removed; a miss is bookkeeping corruption.
                            let route = routes.get_mut(&(src, dst)).expect("route exists");
                            route.dispatcher_active = false;
                            std::mem::take(&mut route.pending)
                        };
                        let start = this.inner.sim.now();
                        this.run_job(batch, start).await;
                    });
                }
            }
        }
        TransferTicket { done }
    }

    /// Executes one transfer job (possibly a fused batch).
    async fn run_job(&self, batch: Vec<Pending>, queued_at: hetflow_sim::SimTime) {
        let inner = &self.inner;
        let _slot = inner.slots.acquire().await;
        let total: u64 = batch.iter().map(|p| p.size).sum();
        let service = inner.params.service_time.sample(&mut inner.rng.borrow_mut());
        let wire = total as f64 / inner.params.bandwidth;
        inner.sim.sleep(hetflow_sim::time::secs(service + wire)).await;
        inner.transfer_jobs.set(inner.transfer_jobs.get() + 1);
        inner.bytes_moved.set(inner.bytes_moved.get() + total);
        inner
            .durations
            .borrow_mut()
            .record((inner.sim.now() - queued_at).as_secs_f64());
        for p in batch {
            p.done.set();
        }
    }

    /// Total transfer requests accepted.
    pub fn transfers_started(&self) -> u64 {
        self.inner.transfers_started.get()
    }

    /// Transfer *jobs* executed (≤ requests when batching fuses them).
    pub fn transfer_jobs(&self) -> u64 {
        self.inner.transfer_jobs.get()
    }

    /// Total bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.inner.bytes_moved.get()
    }

    /// Queue-to-completion durations of executed jobs, in seconds.
    pub fn durations(&self) -> Samples {
        self.inner.durations.borrow().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::bytes::MB;

    fn fixed_params() -> GlobusParams {
        GlobusParams {
            request_latency: Dist::Constant(0.5),
            service_time: Dist::Constant(2.0),
            bandwidth: 1.0e9,
            concurrent_per_user: 2,
            batch_window: None,
        }
    }

    fn setup(params: GlobusParams) -> (Sim, GlobusService) {
        let sim = Sim::new();
        let svc = GlobusService::new(sim.clone(), params, SimRng::from_seed(1));
        (sim, svc)
    }

    #[test]
    fn initiate_pays_request_latency_only() {
        let (sim, svc) = setup(fixed_params());
        let s = sim.clone();
        let h = sim.spawn(async move {
            let ticket = svc.initiate(MB, SiteId(0), SiteId(1)).await;
            (s.now().as_secs_f64(), ticket.is_done())
        });
        let (t, done) = sim.block_on(h);
        assert!((t - 0.5).abs() < 1e-9, "initiate returns after HTTPS RTT, got {t}");
        assert!(!done, "data must not have landed yet");
    }

    #[test]
    fn transfer_completes_after_service_time() {
        let (sim, svc) = setup(fixed_params());
        let s = sim.clone();
        let h = sim.spawn(async move {
            let ticket = svc.initiate(MB, SiteId(0), SiteId(1)).await;
            ticket.wait().await;
            s.now().as_secs_f64()
        });
        let t = sim.block_on(h);
        // 0.5 request + 2.0 service + 0.001 wire
        assert!((t - 2.501).abs() < 1e-9, "got {t}");
    }

    #[test]
    fn transfer_time_roughly_size_independent() {
        // Paper Fig. 4: Globus times constant with input size up to 100 MB.
        let (sim, svc) = setup(fixed_params());
        let s = sim.clone();
        let h = sim.spawn(async move {
            let t0 = s.now();
            let a = svc.initiate(10 * crate::location::bytes::KB, SiteId(0), SiteId(1)).await;
            a.wait().await;
            let small = (s.now() - t0).as_secs_f64();
            let t1 = s.now();
            let b = svc.initiate(100 * MB, SiteId(0), SiteId(1)).await;
            b.wait().await;
            let large = (s.now() - t1).as_secs_f64();
            (small, large)
        });
        let (small, large) = sim.block_on(h);
        assert!((large - small) < 0.2, "size should barely matter: {small} vs {large}");
    }

    #[test]
    fn concurrency_limit_queues_transfers() {
        let (sim, svc) = setup(fixed_params()); // 2 concurrent
        let done_times: Rc<RefCell<Vec<f64>>> = Rc::default();
        for _ in 0..4 {
            let svc = svc.clone();
            let s = sim.clone();
            let times = Rc::clone(&done_times);
            sim.spawn(async move {
                let t = svc.initiate(MB, SiteId(0), SiteId(1)).await;
                t.wait().await;
                times.borrow_mut().push(s.now().as_secs_f64());
            });
        }
        sim.run();
        let times = done_times.borrow();
        assert_eq!(times.len(), 4);
        // First two finish ~2.5s, second two must wait a service period.
        assert!(times[0] < 3.0 && times[1] < 3.0);
        assert!(times[2] > 4.0 && times[3] > 4.0, "{times:?}");
    }

    #[test]
    fn batching_fuses_jobs() {
        let mut p = fixed_params();
        p.batch_window = Some(Duration::from_millis(100));
        let (sim, svc) = setup(p);
        for _ in 0..5 {
            let svc = svc.clone();
            sim.spawn(async move {
                let t = svc.initiate(MB, SiteId(0), SiteId(1)).await;
                t.wait().await;
            });
        }
        sim.run();
        assert_eq!(svc.transfers_started(), 5);
        assert_eq!(svc.transfer_jobs(), 1, "all five fused into one job");
        assert_eq!(svc.bytes_moved(), 5 * MB);
    }

    #[test]
    fn batching_separates_routes() {
        let mut p = fixed_params();
        p.batch_window = Some(Duration::from_millis(100));
        let (sim, svc) = setup(p);
        for dst in [SiteId(1), SiteId(2)] {
            let svc = svc.clone();
            sim.spawn(async move {
                let t = svc.initiate(MB, SiteId(0), dst).await;
                t.wait().await;
            });
        }
        sim.run();
        assert_eq!(svc.transfer_jobs(), 2, "different routes batch separately");
    }

    #[test]
    fn completed_ticket_resolves_immediately() {
        let (sim, _svc) = setup(fixed_params());
        let s = sim.clone();
        let h = sim.spawn(async move {
            TransferTicket::completed().wait().await;
            s.now().as_secs_f64()
        });
        assert_eq!(sim.block_on(h), 0.0);
    }

    #[test]
    fn durations_recorded() {
        let (sim, svc) = setup(fixed_params());
        let svc2 = svc.clone();
        sim.spawn(async move {
            let t = svc2.initiate(MB, SiteId(0), SiteId(1)).await;
            t.wait().await;
        });
        sim.run();
        let d = svc.durations();
        assert_eq!(d.len(), 1);
        assert!((d.mean() - 2.001).abs() < 1e-6, "{}", d.mean());
    }
}
