//! Lazy transparent proxies — pass-by-reference for task data.
//!
//! The paper's key mechanism (§IV-C): instead of shipping a large object
//! through the control plane (Thinker → Task Server → cloud → worker), a
//! small *proxy* travels with the task while the data moves directly
//! through a store backend. The proxy resolves its target the first time
//! it is accessed, paying the (possibly prefetch-hidden) transfer cost on
//! the consuming resource only.

use crate::location::SiteId;
use crate::store::{Resolved, Store, StoreError};
use std::any::Any;
use std::marker::PhantomData;
use std::rc::Rc;

/// Serialized wire size of a proxy reference, in bytes.
///
/// References are "small so can be efficiently moved along with function
/// bodies" (§IV-C); ProxyStore proxies pickle to a few hundred bytes.
pub const PROXY_WIRE_BYTES: u64 = 500;

/// A type-erased proxy: store handle + object key + declared size.
#[derive(Clone)]
pub struct UntypedProxy {
    store: Store,
    key: u64,
    size: u64,
}

impl UntypedProxy {
    /// Creates a proxy for an already-stored object.
    pub fn new(store: Store, key: u64, size: u64) -> Self {
        UntypedProxy { store, key, size }
    }

    /// The object key within its store.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Declared wire size of the *target* object.
    pub fn target_size(&self) -> u64 {
        self.size
    }

    /// Size the proxy itself occupies when serialized into a task.
    pub fn wire_size(&self) -> u64 {
        PROXY_WIRE_BYTES
    }

    /// The store holding the target.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Resolves the target at consumer site `at`.
    pub async fn resolve(&self, at: SiteId) -> Result<Resolved<dyn Any>, StoreError> {
        self.store.get_raw(self.key, at).await
    }

    /// Evicts the target from the store (the proxy becomes dangling).
    pub fn evict(&self) -> bool {
        self.store.evict(self.key)
    }

    /// Adds a type to the proxy. The type is checked at resolve time.
    pub fn typed<T: 'static>(self) -> Proxy<T> {
        Proxy { inner: self, _pd: PhantomData }
    }
}

/// A typed lazy proxy for a `T` stored in a [`Store`].
pub struct Proxy<T> {
    inner: UntypedProxy,
    _pd: PhantomData<fn() -> T>,
}

impl<T> Clone for Proxy<T> {
    fn clone(&self) -> Self {
        Proxy { inner: self.inner.clone(), _pd: PhantomData }
    }
}

impl<T: 'static> Proxy<T> {
    /// Stores `value` (with declared wire size) at `from` and returns a
    /// proxy to it — the equivalent of ProxyStore's `proxy()` call.
    pub async fn create(
        store: &Store,
        value: T,
        size: u64,
        from: SiteId,
    ) -> Result<Proxy<T>, StoreError> {
        let key = store.put_raw(Rc::new(value), size, from).await?;
        Ok(UntypedProxy::new(store.clone(), key, size).typed())
    }

    /// Resolves the target at consumer site `at`, returning the value and
    /// the wait it cost.
    pub async fn resolve(&self, at: SiteId) -> Result<TypedResolved<T>, StoreError> {
        let raw = self.inner.resolve(at).await?;
        let value = raw
            .value
            .downcast::<T>()
            .map_err(|_| StoreError::TypeMismatch(self.inner.key()))?;
        Ok(TypedResolved { value, wait: raw.wait, was_local: raw.was_local })
    }

    /// Declared wire size of the target object.
    pub fn target_size(&self) -> u64 {
        self.inner.target_size()
    }

    /// Drops type information.
    pub fn untyped(&self) -> UntypedProxy {
        self.inner.clone()
    }

    /// Evicts the target from the store.
    pub fn evict(&self) -> bool {
        self.inner.evict()
    }
}

/// A resolved typed proxy: value plus the cost of getting it.
pub struct TypedResolved<T> {
    /// The target object.
    pub value: Rc<T>,
    /// Virtual time spent waiting inside resolve.
    pub wait: std::time::Duration,
    /// True when the bytes were already resident at the consumer's site.
    pub was_local: bool,
}

impl<T> std::fmt::Debug for TypedResolved<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TypedResolved")
            .field("wait", &self.wait)
            .field("was_local", &self.was_local)
            .finish_non_exhaustive()
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::bytes::MB;
    use crate::location::SiteSet;
    use crate::store::{Backend, FsParams};
    use hetflow_sim::{Dist, Sim, SimRng};

    const SITE: SiteId = SiteId(0);

    fn fs_store(sim: &Sim) -> Store {
        Store::new(
            sim.clone(),
            "fs",
            Backend::Fs(FsParams {
                members: SiteSet::of(&[SITE]),
                op_latency: Dist::Constant(0.005),
                write_bandwidth: 5e8,
                read_bandwidth: 5e8,
            }),
            SimRng::from_seed(1),
        )
    }

    #[test]
    fn typed_roundtrip() {
        let sim = Sim::new();
        let store = fs_store(&sim);
        let h = sim.spawn(async move {
            let p = Proxy::create(&store, vec![1.0f64, 2.0], MB, SITE).await.unwrap();
            let r = p.resolve(SITE).await.unwrap();
            r.value.as_ref().clone()
        });
        assert_eq!(sim.block_on(h), vec![1.0, 2.0]);
    }

    #[test]
    fn type_mismatch_detected() {
        let sim = Sim::new();
        let store = fs_store(&sim);
        let h = sim.spawn(async move {
            let p = Proxy::create(&store, 5u32, MB, SITE).await.unwrap();
            let wrong: Proxy<String> = p.untyped().typed();
            wrong.resolve(SITE).await.unwrap_err()
        });
        assert!(matches!(sim.block_on(h), StoreError::TypeMismatch(_)));
    }

    #[test]
    fn clone_points_to_same_target() {
        let sim = Sim::new();
        let store = fs_store(&sim);
        let h = sim.spawn(async move {
            let p = Proxy::create(&store, 11u64, MB, SITE).await.unwrap();
            let p2 = p.clone();
            let a = p.resolve(SITE).await.unwrap();
            let b = p2.resolve(SITE).await.unwrap();
            (*a.value, *b.value)
        });
        assert_eq!(sim.block_on(h), (11, 11));
    }

    #[test]
    fn wire_size_is_small_constant() {
        let sim = Sim::new();
        let store = fs_store(&sim);
        let h = sim.spawn(async move {
            let p = Proxy::create(&store, (), 100 * MB, SITE).await.unwrap();
            (p.untyped().wire_size(), p.target_size())
        });
        let (wire, target) = sim.block_on(h);
        assert_eq!(wire, PROXY_WIRE_BYTES);
        assert_eq!(target, 100 * MB);
        assert!(wire < 1000, "references must be small");
    }

    #[test]
    fn evicted_proxy_dangles() {
        let sim = Sim::new();
        let store = fs_store(&sim);
        let h = sim.spawn(async move {
            let p = Proxy::create(&store, 1u8, MB, SITE).await.unwrap();
            assert!(p.evict());
            p.resolve(SITE).await.unwrap_err()
        });
        assert!(matches!(sim.block_on(h), StoreError::Missing(_)));
    }
}
