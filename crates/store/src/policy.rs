//! Auto-proxy policy.
//!
//! Colmena "integrates support for ProxyStore by automatically creating
//! proxies for objects larger than a user-specified size", with a
//! threshold and backend that "can vary between task types" (§IV-D).
//! [`ProxyPolicy`] is that mapping from task topic to (store, threshold).

use crate::store::Store;
use std::collections::BTreeMap;

/// Per-topic proxying rule.
#[derive(Clone)]
pub struct TopicRule {
    /// Store to place proxied objects in.
    pub store: Store,
    /// Objects at or above this many bytes are proxied; smaller objects
    /// travel inline through the control plane. `0` proxies everything.
    pub threshold: u64,
}

/// Maps task topics to proxy rules, with an optional default.
#[derive(Clone, Default)]
pub struct ProxyPolicy {
    rules: BTreeMap<String, TopicRule>,
    default: Option<TopicRule>,
}

impl ProxyPolicy {
    /// A policy that never proxies (the plain-Parsl baseline).
    pub fn disabled() -> Self {
        ProxyPolicy::default()
    }

    /// A policy applying one rule to every topic.
    pub fn uniform(store: Store, threshold: u64) -> Self {
        ProxyPolicy { rules: BTreeMap::new(), default: Some(TopicRule { store, threshold }) }
    }

    /// Adds a topic-specific rule, overriding the default for that topic.
    pub fn with_topic(mut self, topic: impl Into<String>, store: Store, threshold: u64) -> Self {
        self.rules.insert(topic.into(), TopicRule { store, threshold });
        self
    }

    /// Sets/replaces the default rule.
    pub fn with_default(mut self, store: Store, threshold: u64) -> Self {
        self.default = Some(TopicRule { store, threshold });
        self
    }

    /// The rule applying to `topic`, if any.
    pub fn rule_for(&self, topic: &str) -> Option<&TopicRule> {
        self.rules.get(topic).or(self.default.as_ref())
    }

    /// Decides whether an object of `size` bytes in `topic` should be
    /// proxied, and into which store.
    pub fn decide(&self, topic: &str, size: u64) -> Option<&Store> {
        self.rule_for(topic)
            .filter(|r| size >= r.threshold)
            .map(|r| &r.store)
    }

    /// True when no rule exists at all.
    pub fn is_disabled(&self) -> bool {
        self.rules.is_empty() && self.default.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::{SiteId, SiteSet};
    use crate::store::{Backend, FsParams};
    use hetflow_sim::{Dist, Sim, SimRng};

    fn make_store(sim: &Sim, name: &str) -> Store {
        Store::new(
            sim.clone(),
            name,
            Backend::Fs(FsParams {
                members: SiteSet::of(&[SiteId(0)]),
                op_latency: Dist::Constant(0.001),
                write_bandwidth: 1e9,
                read_bandwidth: 1e9,
            }),
            SimRng::from_seed(1),
        )
    }

    #[test]
    fn disabled_policy_never_proxies() {
        let p = ProxyPolicy::disabled();
        assert!(p.is_disabled());
        assert!(p.decide("simulate", u64::MAX).is_none());
    }

    #[test]
    fn uniform_threshold_applies() {
        let sim = Sim::new();
        let store = make_store(&sim, "s");
        let p = ProxyPolicy::uniform(store, 10_000);
        assert!(p.decide("any", 9_999).is_none());
        assert!(p.decide("any", 10_000).is_some());
        assert!(p.decide("other", 1_000_000).is_some());
    }

    #[test]
    fn topic_rule_overrides_default() {
        let sim = Sim::new();
        let default_store = make_store(&sim, "default");
        let infer_store = make_store(&sim, "infer");
        let p = ProxyPolicy::uniform(default_store, 10_000).with_topic(
            "inference",
            infer_store,
            0,
        );
        // Tiny inference payloads still proxy (threshold 0) into the
        // topic store.
        let chosen = p.decide("inference", 1).unwrap();
        assert_eq!(chosen.name(), "infer");
        // Other topics keep the default threshold.
        assert!(p.decide("simulate", 1).is_none());
        assert_eq!(p.decide("simulate", 20_000).unwrap().name(), "default");
    }

    #[test]
    fn zero_threshold_proxies_everything() {
        let sim = Sim::new();
        let store = make_store(&sim, "s");
        let p = ProxyPolicy::uniform(store, 0);
        assert!(p.decide("t", 0).is_some());
        assert!(p.decide("t", 1).is_some());
    }
}
