//! Sites and data locality.
//!
//! A *site* is an administrative/network domain: in the paper's testbed,
//! Theta (login + KNL compute + shared Lustre), the Venti GPU server
//! (separate network, no shared file system with Theta), the cloud
//! provider hosting the FaaS and transfer services, and the UChicago RCC
//! cluster. Backends price operations by whether producer and consumer
//! share a site or a file system.

use std::fmt;

/// Identifier of a site. Values are indices into the platform topology.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u16);

impl SiteId {
    /// The raw index.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site#{}", self.0)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site#{}", self.0)
    }
}

/// A small set of sites (bitset over site indices 0..64).
///
/// Used to express "these sites share a file system" and "this object is
/// resident at these sites".
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct SiteSet(u64);

impl SiteSet {
    /// The empty set.
    pub const EMPTY: SiteSet = SiteSet(0);

    /// Builds a set from site ids.
    pub fn of(sites: &[SiteId]) -> Self {
        let mut s = SiteSet::EMPTY;
        for &site in sites {
            s.insert(site);
        }
        s
    }

    /// Adds a site.
    pub fn insert(&mut self, site: SiteId) {
        assert!(site.0 < 64, "SiteSet supports at most 64 sites");
        self.0 |= 1 << site.0;
    }

    /// Removes a site.
    pub fn remove(&mut self, site: SiteId) {
        self.0 &= !(1 << site.0);
    }

    /// Membership test.
    pub fn contains(self, site: SiteId) -> bool {
        site.0 < 64 && self.0 & (1 << site.0) != 0
    }

    /// True when no site is in the set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of member sites.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates over member sites in index order.
    pub fn iter(self) -> impl Iterator<Item = SiteId> {
        (0..64u16).filter(move |&i| self.0 & (1 << i) != 0).map(SiteId)
    }
}

impl fmt::Debug for SiteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<SiteId> for SiteSet {
    fn from_iter<I: IntoIterator<Item = SiteId>>(iter: I) -> Self {
        let mut s = SiteSet::EMPTY;
        for site in iter {
            s.insert(site);
        }
        s
    }
}

/// Convenience byte-size constants (decimal, matching the paper's usage:
/// "10 kB", "1 MB", "100 MB").
pub mod bytes {
    /// One kilobyte (10³ bytes).
    pub const KB: u64 = 1_000;
    /// One megabyte (10⁶ bytes).
    pub const MB: u64 = 1_000_000;
    /// One gigabyte (10⁹ bytes).
    pub const GB: u64 = 1_000_000_000;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_insert_contains_remove() {
        let mut s = SiteSet::EMPTY;
        assert!(s.is_empty());
        s.insert(SiteId(3));
        s.insert(SiteId(10));
        assert!(s.contains(SiteId(3)));
        assert!(s.contains(SiteId(10)));
        assert!(!s.contains(SiteId(4)));
        assert_eq!(s.len(), 2);
        s.remove(SiteId(3));
        assert!(!s.contains(SiteId(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_of_and_iter() {
        let s = SiteSet::of(&[SiteId(0), SiteId(2), SiteId(5)]);
        let v: Vec<u16> = s.iter().map(|s| s.0).collect();
        assert_eq!(v, vec![0, 2, 5]);
    }

    #[test]
    fn from_iterator() {
        let s: SiteSet = [SiteId(1), SiteId(1), SiteId(7)].into_iter().collect();
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn oversized_site_rejected() {
        let mut s = SiteSet::EMPTY;
        s.insert(SiteId(64));
    }

    #[test]
    fn byte_constants() {
        assert_eq!(bytes::KB * 1000, bytes::MB);
        assert_eq!(bytes::MB * 1000, bytes::GB);
    }
}
