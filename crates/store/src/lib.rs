//! # hetflow-store — ProxyStore reproduction
//!
//! Pass-by-reference data fabric for multi-resource workflows (§IV-C of
//! the paper). Producers [`put`](store::Store::put_raw) objects into a
//! [`Store`] and hand out lazy [`Proxy`] references; consumers resolve a
//! proxy on their own resource, paying locality-dependent costs:
//!
//! * **Redis backend** — lowest latency for small objects; requires
//!   network reachability (an SSH tunnel across sites).
//! * **File-system backend** — shared parallel FS within a facility;
//!   best for large objects.
//! * **Globus backend** — cross-site transfers through a cloud transfer
//!   service with per-user concurrency limits; transfers start at proxy
//!   *creation* time, hiding latency from consumers that arrive late.
//!
//! [`ProxyPolicy`] reproduces Colmena's automatic proxying of objects
//! above a per-topic size threshold.
//!
//! ```
//! use hetflow_store::{Backend, FsParams, Proxy, SiteId, Store};
//! use hetflow_sim::{Sim, SimRng};
//!
//! let sim = Sim::new();
//! let store = Store::new(
//!     sim.clone(),
//!     "scratch",
//!     Backend::Fs(FsParams::shared(&[SiteId(0)])),
//!     SimRng::from_seed(1),
//! );
//! let h = sim.spawn(async move {
//!     // Put 10 MB of model weights; only a ~500 B reference travels.
//!     let proxy = Proxy::create(&store, vec![1.0f32; 4], 10_000_000, SiteId(0))
//!         .await
//!         .unwrap();
//!     let resolved = proxy.resolve(SiteId(0)).await.unwrap();
//!     resolved.value.len()
//! });
//! assert_eq!(sim.block_on(h), 4);
//! ```

pub mod globus;
pub mod location;
pub mod policy;
pub mod proxy;
pub mod registry;
pub mod store;

pub use globus::{GlobusParams, GlobusService, TransferTicket};
pub use location::{bytes, SiteId, SiteSet};
pub use policy::{ProxyPolicy, TopicRule};
pub use proxy::{Proxy, TypedResolved, UntypedProxy, PROXY_WIRE_BYTES};
pub use registry::{EvictionPolicy, StoreRegistry, SweeperHandle};
pub use store::{Backend, FsParams, GlobusBackend, RedisParams, Resolved, Store, StoreError, StoreStats};
