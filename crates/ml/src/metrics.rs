//! Regression quality metrics.

/// Root-mean-square error.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty());
    let se: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t).powi(2)).sum();
    (se / pred.len() as f64).sqrt()
}

/// Mean absolute error.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty());
    pred.iter().zip(truth).map(|(p, t)| (p - t).abs()).sum::<f64>() / pred.len() as f64
}

/// Coefficient of determination R². 1 is perfect; 0 matches the mean
/// baseline; negative is worse than the mean.
pub fn r2(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty());
    let mean: f64 = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_res: f64 = pred.iter().zip(truth).map(|(p, t)| (t - p).powi(2)).sum();
    let ss_tot: f64 = truth.iter().map(|t| (t - mean).powi(2)).sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&y, &y), 0.0);
        assert_eq!(mae(&y, &y), 0.0);
        assert_eq!(r2(&y, &y), 1.0);
    }

    #[test]
    fn known_errors() {
        let p = [1.0, 2.0];
        let t = [0.0, 4.0];
        assert!((rmse(&p, &t) - (2.5f64).sqrt()).abs() < 1e-12);
        assert!((mae(&p, &t) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let t = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!(r2(&p, &t).abs() < 1e-12);
    }

    #[test]
    fn r2_constant_truth_edge_case() {
        let t = [2.0, 2.0];
        assert_eq!(r2(&[2.0, 2.0], &t), 1.0);
        assert_eq!(r2(&[1.0, 3.0], &t), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }
}
