//! The scalar property surrogate: random Fourier features + ridge.
//!
//! Stand-in for the paper's message-passing neural networks that map a
//! molecule's connectivity to its ionization potential (§III-A). One
//! model trains in closed form in milliseconds of wall time, so a full
//! active-learning campaign with repeated retraining is cheap to
//! simulate while the *learning dynamics* stay real.

use crate::features::RandomFourierFeatures;
use crate::linalg::LinalgError;
use crate::ridge::Ridge;
use hetflow_sim::SimRng;

/// Hyperparameters of the RFF-ridge surrogate.
#[derive(Clone, Copy, Debug)]
pub struct SurrogateParams {
    /// Random feature dimension.
    pub n_features: usize,
    /// RBF lengthscale.
    pub lengthscale: f64,
    /// Ridge penalty.
    pub lambda: f64,
}

impl Default for SurrogateParams {
    fn default() -> Self {
        SurrogateParams { n_features: 384, lengthscale: 4.5, lambda: 1e-2 }
    }
}

/// A fitted scalar surrogate.
#[derive(Clone, Debug)]
pub struct RffRidge {
    rff: RandomFourierFeatures,
    model: Ridge,
}

impl RffRidge {
    /// Fits on `(inputs, targets)`; the feature map is drawn from `rng`
    /// (so ensemble members differ in both data subset and features).
    pub fn fit(
        inputs: &[Vec<f64>],
        targets: &[f64],
        params: SurrogateParams,
        rng: &mut SimRng,
    ) -> Result<RffRidge, LinalgError> {
        assert_eq!(inputs.len(), targets.len());
        assert!(!inputs.is_empty(), "cannot fit on empty data");
        let d_in = inputs[0].len();
        let rff = RandomFourierFeatures::sample(d_in, params.n_features, params.lengthscale, rng);
        let x = rff.transform_batch(inputs);
        let model = Ridge::fit(&x, targets, params.lambda)?;
        Ok(RffRidge { rff, model })
    }

    /// Predicts the property of one input.
    pub fn predict(&self, input: &[f64]) -> f64 {
        self.model.predict_scalar(&self.rff.transform(input))
    }

    /// Predicts a batch.
    pub fn predict_batch(&self, inputs: &[Vec<f64>]) -> Vec<f64> {
        inputs.iter().map(|x| self.predict(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetflow_chem::MoleculeLibrary;

    #[test]
    fn learns_the_synthetic_ip_function() {
        // The whole premise of the molecular-design reproduction: the
        // surrogate must learn chem's hidden IP function from samples.
        let lib = MoleculeLibrary::generate(4000, 11);
        let mut rng = SimRng::from_seed(1);
        let train_ids: Vec<usize> = (0..800).collect();
        let inputs: Vec<Vec<f64>> =
            train_ids.iter().map(|&i| lib.features(i).to_vec()).collect();
        let targets: Vec<f64> = train_ids.iter().map(|&i| lib.true_ip(i)).collect();
        let model = RffRidge::fit(&inputs, &targets, SurrogateParams::default(), &mut rng)
            .unwrap();
        // Held-out RMSE must beat the trivial (predict-the-mean) model
        // by a wide margin.
        let test_ids: Vec<usize> = (800..1600).collect();
        let mean = targets.iter().sum::<f64>() / targets.len() as f64;
        let mut se_model = 0.0;
        let mut se_mean = 0.0;
        for &i in &test_ids {
            let truth = lib.true_ip(i);
            se_model += (model.predict(&lib.features(i)) - truth).powi(2);
            se_mean += (mean - truth).powi(2);
        }
        let rmse_model = (se_model / test_ids.len() as f64).sqrt();
        let rmse_mean = (se_mean / test_ids.len() as f64).sqrt();
        assert!(
            rmse_model < 0.5 * rmse_mean,
            "surrogate must learn: rmse {rmse_model:.3} vs baseline {rmse_mean:.3}"
        );
    }

    #[test]
    fn more_data_helps() {
        let lib = MoleculeLibrary::generate(4000, 13);
        let rmse_with = |n: usize, seed: u64| {
            let mut rng = SimRng::from_seed(seed);
            let inputs: Vec<Vec<f64>> = (0..n).map(|i| lib.features(i).to_vec()).collect();
            let targets: Vec<f64> = (0..n).map(|i| lib.true_ip(i)).collect();
            let m = RffRidge::fit(&inputs, &targets, SurrogateParams::default(), &mut rng)
                .unwrap();
            let se: f64 = (2000..2500)
                .map(|i| (m.predict(&lib.features(i)) - lib.true_ip(i)).powi(2))
                .sum();
            (se / 500.0).sqrt()
        };
        let small = rmse_with(50, 2);
        let large = rmse_with(1000, 2);
        assert!(large < small, "small-data rmse {small}, large-data rmse {large}");
    }

    #[test]
    fn deterministic_given_rng() {
        let lib = MoleculeLibrary::generate(100, 5);
        let fit = || {
            let mut rng = SimRng::from_seed(3);
            let inputs: Vec<Vec<f64>> = (0..50).map(|i| lib.features(i).to_vec()).collect();
            let targets: Vec<f64> = (0..50).map(|i| lib.true_ip(i)).collect();
            RffRidge::fit(&inputs, &targets, SurrogateParams::default(), &mut rng)
                .unwrap()
                .predict(&lib.features(99))
        };
        assert_eq!(fit(), fit());
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn empty_fit_panics() {
        let mut rng = SimRng::from_seed(1);
        let _ = RffRidge::fit(&[], &[], SurrogateParams::default(), &mut rng);
    }
}
