//! Learnable pair potential — the cluster energy/force surrogate.
//!
//! Stand-in for the paper's SchNet models (§III-B): energies and forces
//! of atomic clusters, trainable on a mix of cheap (approximate-level)
//! and expensive (reference-level) labels, differentiable so MD sampling
//! can run on the *learned* surface.
//!
//! The model is linear in its parameters: `E = Σ_{i<j} Σ_k w_k
//! φ_k(r_ij)` with Gaussian radial basis functions `φ_k`, and forces are
//! the exact analytic gradient `F = -∇E` — so a single ridge solve fits
//! energies and forces *jointly* and the fitted surface is physically
//! consistent (forces integrate to the energy).

use crate::linalg::{LinalgError, Matrix};
use crate::ridge::Ridge;
use hetflow_chem::{EnergyModel, Structure, Vec3};

/// Gaussian radial basis on pair distances.
#[derive(Clone, Debug)]
pub struct RadialBasis {
    centers: Vec<f64>,
    inv_two_w2: f64,
    width: f64,
}

impl RadialBasis {
    /// `k` centers uniformly on `[r_min, r_max]`, width `width`.
    pub fn new(k: usize, r_min: f64, r_max: f64, width: f64) -> Self {
        assert!(k >= 2 && r_max > r_min && width > 0.0);
        let centers = (0..k)
            .map(|i| r_min + (r_max - r_min) * i as f64 / (k - 1) as f64)
            .collect();
        RadialBasis { centers, inv_two_w2: 1.0 / (2.0 * width * width), width }
    }

    /// Default basis covering the cluster interaction range.
    pub fn default_for_clusters() -> Self {
        RadialBasis::new(24, 0.6, 3.2, 0.18)
    }

    /// Basis size.
    pub fn dim(&self) -> usize {
        self.centers.len()
    }

    /// `φ_k(r)` for all k.
    fn values(&self, r: f64, out: &mut [f64]) {
        for (o, &c) in out.iter_mut().zip(&self.centers) {
            let d = r - c;
            *o = (-d * d * self.inv_two_w2).exp();
        }
    }

    /// `dφ_k/dr` for all k.
    fn derivs(&self, r: f64, out: &mut [f64]) {
        for (o, &c) in out.iter_mut().zip(&self.centers) {
            let d = r - c;
            *o = -(d / (self.width * self.width)) * (-d * d * self.inv_two_w2).exp();
        }
    }
}

/// One labelled training structure.
#[derive(Clone, Debug)]
pub struct LabelledStructure {
    /// The geometry.
    pub structure: Structure,
    /// Total energy label.
    pub energy: f64,
    /// Per-atom force labels; `None` for energy-only data (the cheap
    /// pre-training set provides only energies, §III-B).
    pub forces: Option<Vec<Vec3>>,
}

impl LabelledStructure {
    /// Labels a structure with a physical model's energy (and forces).
    pub fn from_model<M: EnergyModel>(s: &Structure, model: &M, with_forces: bool) -> Self {
        let (e, f) = model.energy_forces(s);
        LabelledStructure {
            structure: s.clone(),
            energy: e,
            forces: with_forces.then_some(f),
        }
    }
}

/// Fit weights for the joint energy+force objective.
#[derive(Clone, Copy, Debug)]
pub struct PairPotParams {
    /// Ridge penalty.
    pub lambda: f64,
    /// Weight of energy residuals.
    pub energy_weight: f64,
    /// Weight of force residuals.
    pub force_weight: f64,
}

impl Default for PairPotParams {
    fn default() -> Self {
        PairPotParams { lambda: 1e-6, energy_weight: 1.0, force_weight: 1.0 }
    }
}

/// A fitted pair-potential surrogate.
#[derive(Clone, Debug)]
pub struct PairPotential {
    basis: RadialBasis,
    model: Ridge,
}

impl PairPotential {
    /// Fits on labelled structures (energies always; forces where
    /// present) with the given weights.
    pub fn fit(
        data: &[LabelledStructure],
        basis: RadialBasis,
        params: PairPotParams,
    ) -> Result<PairPotential, LinalgError> {
        assert!(!data.is_empty(), "cannot fit on empty data");
        let k = basis.dim();
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut targets: Vec<f64> = Vec::new();
        let mut phi = vec![0.0; k];
        let ew = params.energy_weight.sqrt();
        let fw = params.force_weight.sqrt();
        for ls in data {
            // Energy row: Σ_pairs φ_k(r).
            let mut erow = vec![0.0; k];
            for (_, _, _, r) in ls.structure.pairs() {
                basis.values(r, &mut phi);
                for (e, p) in erow.iter_mut().zip(&phi) {
                    *e += p;
                }
            }
            rows.push(erow.iter().map(|v| v * ew).collect());
            targets.push(ls.energy * ew);

            // Force rows: F_{iα} = -Σ_j φ'_k(r_ij) (x_iα - x_jα)/r_ij.
            if let Some(forces) = &ls.forces {
                let n = ls.structure.n_atoms();
                let mut frows = vec![vec![0.0; k]; n * 3];
                for (i, j, dvec, r) in ls.structure.pairs() {
                    basis.derivs(r, &mut phi);
                    for alpha in 0..3 {
                        let u = dvec[alpha] / r;
                        for (kk, dp) in phi.iter().enumerate() {
                            let contrib = -dp * u;
                            frows[i * 3 + alpha][kk] += contrib;
                            frows[j * 3 + alpha][kk] -= contrib;
                        }
                    }
                }
                for (i, f) in forces.iter().enumerate() {
                    for alpha in 0..3 {
                        rows.push(frows[i * 3 + alpha].iter().map(|v| v * fw).collect());
                        targets.push(f[alpha] * fw);
                    }
                }
            }
        }
        let x = Matrix::from_rows(&rows);
        // No intercept: forces fix the gauge; an energy offset would be
        // unidentifiable from forces alone.
        let y = Matrix::from_vec(targets.len(), 1, targets);
        let model = Ridge::fit_multi(&x, &y, params.lambda, false)?;
        Ok(PairPotential { basis, model })
    }

    /// Weight vector (basis coefficients).
    pub fn weights(&self) -> Vec<f64> {
        (0..self.basis.dim()).map(|i| self.model.weights()[(i, 0)]).collect()
    }
}

impl EnergyModel for PairPotential {
    fn energy_forces(&self, s: &Structure) -> (f64, Vec<Vec3>) {
        let k = self.basis.dim();
        let w = self.weights();
        let mut phi = vec![0.0; k];
        let mut energy = 0.0;
        let mut forces = vec![[0.0; 3]; s.n_atoms()];
        for (i, j, dvec, r) in s.pairs() {
            self.basis.values(r, &mut phi);
            let mut de = 0.0;
            for (p, wk) in phi.iter().zip(&w) {
                energy += p * wk;
            }
            self.basis.derivs(r, &mut phi);
            for (dp, wk) in phi.iter().zip(&w) {
                de += dp * wk;
            }
            let scale = -de / r;
            for alpha in 0..3 {
                forces[i][alpha] += scale * dvec[alpha];
                forces[j][alpha] -= scale * dvec[alpha];
            }
        }
        (energy, forces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetflow_chem::{force_rmsd, numerical_forces, pretraining_set, MorsePes};

    fn labelled(n: usize, seed: u64, model: &MorsePes, with_forces: bool) -> Vec<LabelledStructure> {
        pretraining_set(n, seed)
            .iter()
            .map(|s| LabelledStructure::from_model(s, model, with_forces))
            .collect()
    }

    #[test]
    fn learns_the_approximate_surface() {
        let pes = MorsePes::approx();
        let data = labelled(60, 1, &pes, true);
        let fitted = PairPotential::fit(
            &data,
            RadialBasis::default_for_clusters(),
            PairPotParams::default(),
        )
        .unwrap();
        // Held-out structures: forces must be close to the truth.
        let test = pretraining_set(10, 99);
        let mut rmsds = Vec::new();
        for s in &test {
            let (_, truth) = pes.energy_forces(s);
            let (_, pred) = fitted.energy_forces(s);
            rmsds.push(force_rmsd(&truth, &pred));
        }
        let mean: f64 = rmsds.iter().sum::<f64>() / rmsds.len() as f64;
        // Typical force magnitudes are O(1); demand an order better.
        assert!(mean < 0.15, "force rmsd {mean}");
    }

    #[test]
    fn surrogate_forces_are_consistent_gradient() {
        let pes = MorsePes::approx();
        let data = labelled(30, 2, &pes, true);
        let fitted = PairPotential::fit(
            &data,
            RadialBasis::default_for_clusters(),
            PairPotParams::default(),
        )
        .unwrap();
        let s = &pretraining_set(1, 55)[0];
        let (_, analytic) = fitted.energy_forces(s);
        let numeric = numerical_forces(&fitted, s, 1e-6);
        assert!(force_rmsd(&analytic, &numeric) < 1e-6);
    }

    #[test]
    fn fine_tuning_reduces_reference_error() {
        // The §III-B premise end-to-end: pre-train on cheap labels,
        // fine-tune with a few reference-level calculations, and the
        // force error against the reference surface drops.
        let approx = MorsePes::approx();
        let reference = MorsePes::reference();
        let basis = RadialBasis::default_for_clusters();

        let pretrain = labelled(80, 3, &approx, false); // energies only
        let mut seed_forces = labelled(6, 4, &approx, true);
        let mut pre_data = pretrain.clone();
        pre_data.append(&mut seed_forces);
        let pre =
            PairPotential::fit(&pre_data, basis.clone(), PairPotParams::default()).unwrap();

        // Fine-tune set: 30 reference-level calculations.
        let mut ft_data = pretrain;
        ft_data.extend(labelled(30, 5, &reference, true));
        let tuned = PairPotential::fit(
            &ft_data,
            basis,
            PairPotParams { force_weight: 5.0, ..Default::default() },
        )
        .unwrap();

        let test = pretraining_set(12, 77);
        let err = |m: &PairPotential| {
            let mut acc = 0.0;
            for s in &test {
                let (_, truth) = reference.energy_forces(s);
                let (_, pred) = m.energy_forces(s);
                acc += force_rmsd(&truth, &pred);
            }
            acc / test.len() as f64
        };
        let before = err(&pre);
        let after = err(&tuned);
        assert!(
            after < 0.6 * before,
            "fine-tuning must cut reference force error: {before:.3} -> {after:.3}"
        );
    }

    #[test]
    fn md_runs_stably_on_fitted_surface() {
        // Sampling tasks run MD on the surrogate (§III-B): the fitted
        // surface must support dynamics without exploding.
        let pes = MorsePes::approx();
        let data = labelled(60, 6, &pes, true);
        let fitted = PairPotential::fit(
            &data,
            RadialBasis::default_for_clusters(),
            PairPotParams::default(),
        )
        .unwrap();
        let start = hetflow_chem::solvated_methane(8);
        let mut rng = hetflow_sim::SimRng::from_seed(7);
        let traj = hetflow_chem::run_md(
            &fitted,
            &start,
            hetflow_chem::MdParams { dt: 0.005, steps: 200, init_temp: 0.1, sample_every: 50 },
            &mut rng,
        );
        let moved = start.rmsd_to(traj.last());
        assert!(moved > 1e-3 && moved < 3.0, "rmsd {moved}");
    }

    #[test]
    fn energy_only_data_still_fits_energies() {
        let pes = MorsePes::approx();
        let data = labelled(80, 8, &pes, false);
        let fitted = PairPotential::fit(
            &data,
            RadialBasis::default_for_clusters(),
            PairPotParams::default(),
        )
        .unwrap();
        let test = pretraining_set(10, 88);
        let mut se = 0.0;
        let mut var = 0.0;
        let mean_e: f64 =
            test.iter().map(|s| pes.energy(s)).sum::<f64>() / test.len() as f64;
        for s in &test {
            let truth = pes.energy(s);
            se += (fitted.energy(s) - truth).powi(2);
            var += (truth - mean_e).powi(2);
        }
        assert!(se < 0.3 * var, "energy fit must beat the mean baseline: {se} vs {var}");
    }

    #[test]
    fn three_body_reference_leaves_error_floor() {
        // Ablation: against a pair-only reference the pair basis fits
        // almost exactly; against the pair+three-body "harder" reference
        // (hetflow-chem's Axilrod–Teller extension) an irreducible
        // residual remains — the realistic surrogate regime.
        use hetflow_chem::harder_reference;
        let pair_ref = MorsePes::reference();
        let hard_ref = harder_reference();
        let train = pretraining_set(60, 31);
        let test = pretraining_set(10, 131);
        let err_against = |model: &dyn hetflow_chem::EnergyModel| {
            let data: Vec<LabelledStructure> = train
                .iter()
                .map(|s| {
                    let (e, f) = model.energy_forces(s);
                    LabelledStructure { structure: s.clone(), energy: e, forces: Some(f) }
                })
                .collect();
            let fitted = PairPotential::fit(
                &data,
                RadialBasis::default_for_clusters(),
                PairPotParams::default(),
            )
            .unwrap();
            let mut acc = 0.0;
            for s in &test {
                let (_, truth) = model.energy_forces(s);
                let (_, pred) = fitted.energy_forces(s);
                acc += force_rmsd(&truth, &pred);
            }
            acc / test.len() as f64
        };
        let easy = err_against(&pair_ref);
        let hard = err_against(&hard_ref);
        assert!(
            hard > 1.5 * easy,
            "three-body reference must leave a model-form floor: {easy:.4} vs {hard:.4}"
        );
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn empty_fit_panics() {
        let _ = PairPotential::fit(
            &[],
            RadialBasis::default_for_clusters(),
            PairPotParams::default(),
        );
    }
}
