//! Model selection: standardization, k-fold cross-validation, and grid
//! search over surrogate hyperparameters.
//!
//! The campaigns use fixed [`SurrogateParams`];
//! this module is how those defaults were chosen, and it lets
//! downstream users re-tune when they swap in their own property
//! functions.

use crate::linalg::LinalgError;
use crate::surrogate::{RffRidge, SurrogateParams};
use hetflow_sim::SimRng;

/// Per-feature standardization fitted on training data.
#[derive(Clone, Debug)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits means and standard deviations per feature column.
    pub fn fit(inputs: &[Vec<f64>]) -> StandardScaler {
        assert!(!inputs.is_empty(), "cannot fit a scaler on empty data");
        let d = inputs[0].len();
        let n = inputs.len() as f64;
        let mut means = vec![0.0; d];
        for x in inputs {
            for (m, v) in means.iter_mut().zip(x) {
                *m += v / n;
            }
        }
        let mut stds = vec![0.0; d];
        for x in inputs {
            for ((s, v), m) in stds.iter_mut().zip(x).zip(&means) {
                *s += (v - m) * (v - m) / n;
            }
        }
        for s in &mut stds {
            *s = s.sqrt().max(1e-12); // constant features become zeros
        }
        StandardScaler { means, stds }
    }

    /// Transforms one row.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.means.len());
        x.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Transforms a batch.
    pub fn transform_batch(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.iter().map(|x| self.transform(x)).collect()
    }
}

/// Deterministic k-fold index split.
pub fn kfold_indices(n: usize, k: usize, rng: &mut SimRng) -> Vec<Vec<usize>> {
    assert!(k >= 2 && k <= n, "need 2 <= k <= n");
    let mut idx: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut idx);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, id) in idx.into_iter().enumerate() {
        folds[i % k].push(id);
    }
    folds
}

/// Mean k-fold validation RMSE of an [`RffRidge`] with the given
/// hyperparameters.
///
/// Returns the fold-fit error (e.g. a non-positive-definite Gram
/// matrix for a degenerate lambda) instead of panicking, so a grid
/// search can surface which hyperparameter combination failed.
pub fn cv_rmse(
    inputs: &[Vec<f64>],
    targets: &[f64],
    params: SurrogateParams,
    k: usize,
    rng: &mut SimRng,
) -> Result<f64, LinalgError> {
    let folds = kfold_indices(inputs.len(), k, rng);
    let mut total_se = 0.0;
    let mut total_n = 0usize;
    for held_out in &folds {
        let held: std::collections::HashSet<usize> = held_out.iter().copied().collect();
        let train_x: Vec<Vec<f64>> = (0..inputs.len())
            .filter(|i| !held.contains(i))
            .map(|i| inputs[i].clone())
            .collect();
        let train_y: Vec<f64> = (0..inputs.len())
            .filter(|i| !held.contains(i))
            .map(|i| targets[i])
            .collect();
        let model = RffRidge::fit(&train_x, &train_y, params, rng)?;
        for &i in held_out {
            let err = model.predict(&inputs[i]) - targets[i];
            total_se += err * err;
            total_n += 1;
        }
    }
    Ok((total_se / total_n as f64).sqrt())
}

/// Result of a grid search.
#[derive(Clone, Debug)]
pub struct GridSearchResult {
    /// Best hyperparameters found.
    pub best: SurrogateParams,
    /// Its cross-validated RMSE.
    pub best_rmse: f64,
    /// Every `(params, rmse)` pair evaluated.
    pub evaluated: Vec<(SurrogateParams, f64)>,
}

/// Exhaustive grid search over lengthscale × lambda (feature count
/// fixed), using k-fold CV.
///
/// Fails with the first fold-fit error rather than panicking, so a
/// degenerate grid point (e.g. a lambda that makes the Gram matrix
/// singular) is reported, not fatal.
pub fn grid_search(
    inputs: &[Vec<f64>],
    targets: &[f64],
    n_features: usize,
    lengthscales: &[f64],
    lambdas: &[f64],
    k: usize,
    rng: &mut SimRng,
) -> Result<GridSearchResult, LinalgError> {
    assert!(!lengthscales.is_empty() && !lambdas.is_empty());
    let mut evaluated = Vec::new();
    let mut best: Option<(SurrogateParams, f64)> = None;
    for &ls in lengthscales {
        for &lam in lambdas {
            let params = SurrogateParams { n_features, lengthscale: ls, lambda: lam };
            let rmse = cv_rmse(inputs, targets, params, k, rng)?;
            // Strict `<` keeps the first of tied minima, matching the
            // evaluation order above.
            if best.is_none_or(|(_, r)| rmse < r) {
                best = Some((params, rmse));
            }
            evaluated.push((params, rmse));
        }
    }
    // The emptiness assert above guarantees at least one iteration.
    match best {
        Some((best, best_rmse)) => Ok(GridSearchResult { best, best_rmse, evaluated }),
        None => Err(LinalgError::ShapeMismatch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetflow_chem::MoleculeLibrary;

    #[test]
    fn scaler_standardizes() {
        let data = vec![vec![1.0, 100.0], vec![3.0, 300.0], vec![5.0, 500.0]];
        let scaler = StandardScaler::fit(&data);
        let t = scaler.transform_batch(&data);
        for col in 0..2 {
            let mean: f64 = t.iter().map(|r| r[col]).sum::<f64>() / 3.0;
            let var: f64 = t.iter().map(|r| r[col] * r[col]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn scaler_constant_feature_is_safe() {
        let data = vec![vec![7.0], vec![7.0]];
        let scaler = StandardScaler::fit(&data);
        let t = scaler.transform(&[7.0]);
        assert!(t[0].abs() < 1e-6);
    }

    #[test]
    fn kfold_partitions_everything() {
        let mut rng = SimRng::from_seed(1);
        let folds = kfold_indices(103, 5, &mut rng);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.concat();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
        // Balanced within one element.
        let sizes: Vec<usize> = folds.iter().map(Vec::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn grid_search_finds_reasonable_lengthscale() {
        let lib = MoleculeLibrary::generate(600, 3);
        let inputs: Vec<Vec<f64>> = (0..300).map(|i| lib.features(i).to_vec()).collect();
        let targets: Vec<f64> = (0..300).map(|i| lib.true_ip(i)).collect();
        let mut rng = SimRng::from_seed(2);
        let result = grid_search(
            &inputs,
            &targets,
            128,
            &[0.5, 4.5, 50.0],
            &[1e-2],
            3,
            &mut rng,
        )
        .expect("grid search fits");
        assert_eq!(result.evaluated.len(), 3);
        // The calibrated default (4.5) must beat the extremes on this
        // target family.
        assert!((result.best.lengthscale - 4.5).abs() < 1e-9, "{:?}", result.best);
        assert!(result.best_rmse < 2.0);
    }

    #[test]
    fn cv_rmse_is_deterministic() {
        let lib = MoleculeLibrary::generate(200, 4);
        let inputs: Vec<Vec<f64>> = (0..100).map(|i| lib.features(i).to_vec()).collect();
        let targets: Vec<f64> = (0..100).map(|i| lib.true_ip(i)).collect();
        let run = || {
            let mut rng = SimRng::from_seed(9);
            cv_rmse(
                &inputs,
                &targets,
                SurrogateParams { n_features: 64, lengthscale: 4.5, lambda: 1e-2 },
                4,
                &mut rng,
            )
            .expect("cv fits")
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }
}
