//! Bagged ensembles with parallel training.
//!
//! Both paper applications train "an ensemble of 8 models where each is
//! trained on a different, randomly-selected subset of the training
//! data" (§III-A, §III-B) and use the spread of predictions as the
//! uncertainty signal for active learning. Members are independent, so
//! training fans out across scoped OS threads — the one place in the
//! codebase where real parallelism (not virtual time) buys wall clock,
//! and the one sanctioned escape from `hetlint` rule R4: every thread
//! receives a member-derived seeded stream, so the result is
//! bit-identical to the sequential path.

use hetflow_sim::SimRng;

/// Fraction of the training set each member sees.
pub const DEFAULT_BAG_FRACTION: f64 = 0.8;

/// An ensemble of independently trained models.
#[derive(Clone, Debug)]
pub struct Ensemble<M> {
    members: Vec<M>,
}

/// Mean and standard deviation of member predictions for one input.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeanStd {
    /// Ensemble mean.
    pub mean: f64,
    /// Ensemble standard deviation (population).
    pub std: f64,
}

impl<M> Ensemble<M> {
    /// Wraps pre-trained members.
    pub fn from_members(members: Vec<M>) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        Ensemble { members }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ensemble has no members (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members.
    pub fn members(&self) -> &[M] {
        &self.members
    }

    /// Trains `n_members` members sequentially. `train` receives the
    /// member index and a member-specific RNG; it must be deterministic
    /// given those.
    pub fn fit(n_members: usize, rng: &SimRng, mut train: impl FnMut(usize, SimRng) -> M) -> Self {
        assert!(n_members > 0);
        let members = (0..n_members)
            .map(|i| train(i, rng.substream(i as u64)))
            .collect();
        Ensemble { members }
    }

    /// Trains members in parallel across OS threads. `train` must be
    /// `Sync` (it is called concurrently) and deterministic given the
    /// member index + RNG — results are bit-identical to [`Ensemble::fit`].
    pub fn fit_parallel(
        n_members: usize,
        rng: &SimRng,
        train: impl Fn(usize, SimRng) -> M + Sync,
    ) -> Self
    where
        M: Send,
    {
        assert!(n_members > 0);
        let mut slots: Vec<Option<M>> = (0..n_members).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (i, slot) in slots.iter_mut().enumerate() {
                let member_rng = rng.substream(i as u64);
                let train = &train;
                scope.spawn(move || {
                    *slot = Some(train(i, member_rng));
                });
            }
        });
        // `thread::scope` re-raises any child panic, so reaching this
        // line means every spawned closure ran its `*slot = Some(..)`;
        // the length check turns a (impossible) hole into a loud error
        // instead of a silent truncation.
        let members: Vec<M> = slots.into_iter().flatten().collect();
        assert_eq!(members.len(), n_members, "a training thread left its slot empty");
        Ensemble { members }
    }

    /// Applies a scalar prediction function across members and returns
    /// mean and std for one input.
    pub fn predict_with(&self, predict: impl Fn(&M) -> f64) -> MeanStd {
        let preds: Vec<f64> = self.members.iter().map(predict).collect();
        let n = preds.len() as f64;
        let mean = preds.iter().sum::<f64>() / n;
        let var = preds.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / n;
        MeanStd { mean, std: var.sqrt() }
    }
}

/// Draws a bagging subset: `ceil(fraction * n)` distinct indices.
pub fn bag_indices(n: usize, fraction: f64, rng: &mut SimRng) -> Vec<usize> {
    assert!(n > 0 && fraction > 0.0 && fraction <= 1.0);
    let k = ((n as f64 * fraction).ceil() as usize).clamp(1, n);
    rng.sample_indices(n, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surrogate::{RffRidge, SurrogateParams};
    use hetflow_chem::MoleculeLibrary;

    fn train_member(
        lib: &MoleculeLibrary,
        n_train: usize,
        _i: usize,
        mut rng: SimRng,
    ) -> RffRidge {
        let idx = bag_indices(n_train, DEFAULT_BAG_FRACTION, &mut rng);
        let inputs: Vec<Vec<f64>> = idx.iter().map(|&i| lib.features(i).to_vec()).collect();
        let targets: Vec<f64> = idx.iter().map(|&i| lib.true_ip(i)).collect();
        RffRidge::fit(&inputs, &targets, SurrogateParams::default(), &mut rng).unwrap()
    }

    #[test]
    fn parallel_matches_sequential() {
        let lib = MoleculeLibrary::generate(1000, 21);
        let rng = SimRng::from_seed(9);
        let seq = Ensemble::fit(4, &rng, |i, r| train_member(&lib, 400, i, r));
        let par = Ensemble::fit_parallel(4, &rng, |i, r| train_member(&lib, 400, i, r));
        let x = lib.features(999).to_vec();
        let a = seq.predict_with(|m| m.predict(&x));
        let b = par.predict_with(|m| m.predict(&x));
        assert_eq!(a, b, "parallel training must be bit-deterministic");
    }

    #[test]
    fn members_differ() {
        let lib = MoleculeLibrary::generate(1000, 22);
        let rng = SimRng::from_seed(10);
        let ens = Ensemble::fit_parallel(8, &rng, |i, r| train_member(&lib, 300, i, r));
        let x = lib.features(900).to_vec();
        let preds: Vec<f64> = ens.members().iter().map(|m| m.predict(&x)).collect();
        let distinct = preds
            .iter()
            .filter(|&&p| (p - preds[0]).abs() > 1e-9)
            .count();
        assert!(distinct >= 1, "bagged members must not be identical");
    }

    #[test]
    fn uncertainty_shrinks_near_training_data() {
        // Ensemble std should be larger far from the training set — the
        // property active learning exploits.
        let lib = MoleculeLibrary::generate(4000, 23);
        let rng = SimRng::from_seed(11);
        let n_train = 400;
        let ens = Ensemble::fit_parallel(8, &rng, |i, r| train_member(&lib, n_train, i, r));
        // Mean std on trained molecules vs on unseen ones.
        let avg_std = |ids: std::ops::Range<usize>| {
            let n = ids.len() as f64;
            ids.map(|i| {
                let x = lib.features(i).to_vec();
                ens.predict_with(|m| m.predict(&x)).std
            })
            .sum::<f64>()
                / n
        };
        let seen = avg_std(0..200);
        let unseen = avg_std(3000..3200);
        assert!(
            unseen > seen,
            "uncertainty must be higher off-distribution: seen {seen:.4}, unseen {unseen:.4}"
        );
    }

    #[test]
    fn mean_std_math() {
        let ens = Ensemble::from_members(vec![1.0f64, 2.0, 3.0]);
        let ms = ens.predict_with(|&m| m);
        assert!((ms.mean - 2.0).abs() < 1e-12);
        assert!((ms.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn bag_indices_distinct_and_sized() {
        let mut rng = SimRng::from_seed(12);
        let idx = bag_indices(100, 0.8, &mut rng);
        assert_eq!(idx.len(), 80);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 80);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_rejected() {
        let _: Ensemble<f64> = Ensemble::from_members(vec![]);
    }
}
