//! A small multilayer perceptron trained by minibatch SGD.
//!
//! An alternative surrogate to [`crate::surrogate::RffRidge`] with
//! iterative training — used by the ablation benches to show the
//! campaign results are not an artifact of the closed-form learner, and
//! as a stand-in where the paper's models are trained by gradient
//! descent over epochs.

use hetflow_sim::SimRng;

/// One hidden layer, tanh activation, linear output, MSE loss.
#[derive(Clone, Debug)]
pub struct Mlp {
    d_in: usize,
    d_hidden: usize,
    w1: Vec<f64>, // d_hidden × d_in
    b1: Vec<f64>,
    w2: Vec<f64>, // d_hidden
    b2: f64,
}

/// Training hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct MlpParams {
    /// Hidden width.
    pub hidden: usize,
    /// Learning rate.
    pub lr: f64,
    /// Epochs over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
}

impl Default for MlpParams {
    fn default() -> Self {
        MlpParams { hidden: 48, lr: 0.02, epochs: 150, batch: 32 }
    }
}

impl Mlp {
    /// Initializes with Xavier-style random weights.
    pub fn init(d_in: usize, hidden: usize, rng: &mut SimRng) -> Self {
        assert!(d_in > 0 && hidden > 0);
        let s1 = (2.0 / (d_in + hidden) as f64).sqrt();
        let s2 = (2.0 / (hidden + 1) as f64).sqrt();
        Mlp {
            d_in,
            d_hidden: hidden,
            w1: (0..hidden * d_in).map(|_| s1 * rng.standard_normal()).collect(),
            b1: vec![0.0; hidden],
            w2: (0..hidden).map(|_| s2 * rng.standard_normal()).collect(),
            b2: 0.0,
        }
    }

    /// Forward pass; returns (hidden activations, output).
    fn forward(&self, x: &[f64]) -> (Vec<f64>, f64) {
        debug_assert_eq!(x.len(), self.d_in);
        let mut h = vec![0.0; self.d_hidden];
        for (j, hj) in h.iter_mut().enumerate() {
            let mut a = self.b1[j];
            let row = &self.w1[j * self.d_in..(j + 1) * self.d_in];
            for (w, xi) in row.iter().zip(x) {
                a += w * xi;
            }
            *hj = a.tanh();
        }
        let out = self.b2 + h.iter().zip(&self.w2).map(|(a, w)| a * w).sum::<f64>();
        (h, out)
    }

    /// Predicts one input.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.forward(x).1
    }

    /// Trains with minibatch SGD; deterministic given `rng`.
    pub fn fit(
        inputs: &[Vec<f64>],
        targets: &[f64],
        params: MlpParams,
        rng: &mut SimRng,
    ) -> Mlp {
        assert_eq!(inputs.len(), targets.len());
        assert!(!inputs.is_empty(), "cannot fit on empty data");
        let d_in = inputs[0].len();
        let mut net = Mlp::init(d_in, params.hidden, rng);
        let n = inputs.len();
        let mut order: Vec<usize> = (0..n).collect();
        for _epoch in 0..params.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(params.batch.max(1)) {
                let scale = params.lr / chunk.len() as f64;
                // Accumulate gradients over the minibatch.
                let mut gw1 = vec![0.0; net.w1.len()];
                let mut gb1 = vec![0.0; net.b1.len()];
                let mut gw2 = vec![0.0; net.w2.len()];
                let mut gb2 = 0.0;
                for &i in chunk {
                    let x = &inputs[i];
                    let (h, out) = net.forward(x);
                    let err = out - targets[i]; // dL/dout for 0.5*MSE
                    gb2 += err;
                    for j in 0..net.d_hidden {
                        gw2[j] += err * h[j];
                        let dh = err * net.w2[j] * (1.0 - h[j] * h[j]);
                        gb1[j] += dh;
                        let row = &mut gw1[j * d_in..(j + 1) * d_in];
                        for (g, xi) in row.iter_mut().zip(x) {
                            *g += dh * xi;
                        }
                    }
                }
                for (w, g) in net.w1.iter_mut().zip(&gw1) {
                    *w -= scale * g;
                }
                for (b, g) in net.b1.iter_mut().zip(&gb1) {
                    *b -= scale * g;
                }
                for (w, g) in net.w2.iter_mut().zip(&gw2) {
                    *w -= scale * g;
                }
                net.b2 -= scale * gb2;
            }
        }
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;

    #[test]
    fn learns_a_nonlinear_function() {
        let mut rng = SimRng::from_seed(1);
        let inputs: Vec<Vec<f64>> = (0..400)
            .map(|_| vec![rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)])
            .collect();
        let targets: Vec<f64> =
            inputs.iter().map(|x| (x[0]).sin() + 0.5 * x[1] * x[1]).collect();
        let net = Mlp::fit(&inputs, &targets, MlpParams::default(), &mut rng);
        let test: Vec<Vec<f64>> = (0..100)
            .map(|_| vec![rng.uniform(-2.0, 2.0), rng.uniform(-2.0, 2.0)])
            .collect();
        let truth: Vec<f64> = test.iter().map(|x| (x[0]).sin() + 0.5 * x[1] * x[1]).collect();
        let pred: Vec<f64> = test.iter().map(|x| net.predict(x)).collect();
        let err = rmse(&pred, &truth);
        let spread = {
            let m = truth.iter().sum::<f64>() / truth.len() as f64;
            (truth.iter().map(|t| (t - m).powi(2)).sum::<f64>() / truth.len() as f64).sqrt()
        };
        assert!(err < 0.5 * spread, "rmse {err} vs spread {spread}");
    }

    #[test]
    fn deterministic_given_seed() {
        let train = |seed: u64| {
            let mut rng = SimRng::from_seed(seed);
            let inputs: Vec<Vec<f64>> =
                (0..50).map(|i| vec![(i as f64) / 25.0 - 1.0]).collect();
            let targets: Vec<f64> = inputs.iter().map(|x| x[0] * 2.0).collect();
            let net = Mlp::fit(
                &inputs,
                &targets,
                MlpParams { epochs: 20, ..Default::default() },
                &mut rng,
            );
            net.predict(&[0.5])
        };
        assert_eq!(train(7), train(7));
        assert_ne!(train(7), train(8));
    }

    #[test]
    fn training_reduces_error() {
        let mut rng = SimRng::from_seed(2);
        let inputs: Vec<Vec<f64>> = (0..100).map(|i| vec![(i as f64) / 50.0 - 1.0]).collect();
        let targets: Vec<f64> = inputs.iter().map(|x| 3.0 * x[0]).collect();
        let untrained = Mlp::init(1, 16, &mut rng.clone());
        let trained = Mlp::fit(
            &inputs,
            &targets,
            MlpParams { hidden: 16, epochs: 100, lr: 0.05, batch: 16 },
            &mut rng,
        );
        let p_un: Vec<f64> = inputs.iter().map(|x| untrained.predict(x)).collect();
        let p_tr: Vec<f64> = inputs.iter().map(|x| trained.predict(x)).collect();
        assert!(rmse(&p_tr, &targets) < 0.3 * rmse(&p_un, &targets));
    }

    #[test]
    #[should_panic(expected = "empty data")]
    fn empty_fit_panics() {
        let mut rng = SimRng::from_seed(1);
        let _ = Mlp::fit(&[], &[], MlpParams::default(), &mut rng);
    }
}
