//! Dense linear algebra: row-major matrices and Cholesky solves.
//!
//! Sized for surrogate training: design matrices with up to a few
//! thousand rows and a few hundred columns, normal-equation solves on
//! the feature dimension. No external BLAS — plain loops are fast enough
//! at this scale and keep the build dependency-free.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Errors from numerical routines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinalgError {
    /// Matrix is not positive definite (within tolerance).
    NotPositiveDefinite,
    /// Shape mismatch between operands.
    ShapeMismatch,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite => write!(f, "matrix not positive definite"),
            LinalgError::ShapeMismatch => write!(f, "shape mismatch"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// A dense row-major matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from nested rows; all rows must have equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty());
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Builds from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row access.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ * self` (the Gram matrix), exploiting symmetry.
    pub fn gram(&self) -> Matrix {
        let d = self.cols;
        let mut g = Matrix::zeros(d, d);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..d {
                let a = row[i];
                if a == 0.0 {
                    continue;
                }
                for j in i..d {
                    g[(i, j)] += a * row[j];
                }
            }
        }
        for i in 0..d {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// `selfᵀ * other`.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for i in 0..self.cols {
                let a = a_row[i];
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * v` for a vector `v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec shape mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Adds `lambda` to the diagonal (ridge regularization).
    pub fn add_diag(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += lambda;
        }
    }

    /// Cholesky factorization `A = L Lᵀ` for symmetric positive-definite
    /// `A`.
    pub fn cholesky(&self) -> Result<Cholesky, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::ShapeMismatch);
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// A Cholesky factor `L` with forward/back substitution solvers.
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Solves `A x = b` where `A = L Lᵀ`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n);
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Back: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// Solves `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        let n = self.l.rows();
        assert_eq!(b.rows(), n);
        let mut out = Matrix::zeros(n, b.cols());
        for c in 0..b.cols() {
            let col: Vec<f64> = (0..n).map(|r| b[(r, c)]).collect();
            let x = self.solve(&col);
            for r in 0..n {
                out[(r, c)] = x[r];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn gram_matches_t_matmul() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 10.0],
            vec![-1.0, 0.5, 2.0],
        ]);
        let g = a.gram();
        let g2 = a.t_matmul(&a);
        for i in 0..3 {
            for j in 0..3 {
                assert!((g[(i, j)] - g2[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4,2],[2,3]], b = [2,1] -> x = [0.5, 0]
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let ch = a.cholesky().unwrap();
        let x = ch.solve(&[2.0, 1.0]);
        assert!((x[0] - 0.5).abs() < 1e-12);
        assert!(x[1].abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert_eq!(a.cholesky().unwrap_err(), LinalgError::NotPositiveDefinite);
    }

    #[test]
    fn cholesky_rejects_nonsquare() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(a.cholesky().unwrap_err(), LinalgError::ShapeMismatch);
    }

    #[test]
    fn solve_matrix_multi_rhs() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let b = Matrix::from_rows(&[vec![2.0, 4.0], vec![1.0, 2.0]]);
        let x = a.cholesky().unwrap().solve_matrix(&b);
        // Column 2 is 2x column 1.
        assert!((x[(0, 1)] - 2.0 * x[(0, 0)]).abs() < 1e-12);
        assert!((x[(1, 1)] - 2.0 * x[(1, 0)]).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn cholesky_roundtrip_random_spd(seed in 0u64..500) {
            // Build A = MᵀM + I (SPD by construction), solve, verify.
            let mut rng = hetflow_sim::SimRng::from_seed(seed);
            let n = 1 + (seed as usize % 8);
            let rows: Vec<Vec<f64>> = (0..n + 2)
                .map(|_| (0..n).map(|_| rng.standard_normal()).collect())
                .collect();
            let m = Matrix::from_rows(&rows);
            let mut a = m.gram();
            a.add_diag(1.0);
            let b: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
            let x = a.cholesky().unwrap().solve(&b);
            let back = a.matvec(&x);
            for (bb, ba) in b.iter().zip(&back) {
                prop_assert!((bb - ba).abs() < 1e-8, "residual {}", (bb - ba).abs());
            }
        }

        #[test]
        fn gram_is_symmetric_psd_diag(seed in 0u64..200) {
            let mut rng = hetflow_sim::SimRng::from_seed(seed);
            let rows: Vec<Vec<f64>> = (0..5)
                .map(|_| (0..4).map(|_| rng.standard_normal()).collect())
                .collect();
            let g = Matrix::from_rows(&rows).gram();
            for i in 0..4 {
                prop_assert!(g[(i, i)] >= -1e-12);
                for j in 0..4 {
                    prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-12);
                }
            }
        }
    }
}
