//! Ridge regression (single- and multi-output) via normal equations.

use crate::linalg::{LinalgError, Matrix};

/// A fitted linear model `y = W x (+ intercept)`.
#[derive(Clone, Debug)]
pub struct Ridge {
    /// `d × k` weights (k outputs).
    weights: Matrix,
    intercepts: Vec<f64>,
}

impl Ridge {
    /// Fits `X w = y` with L2 penalty `lambda` and a fitted intercept.
    pub fn fit(x: &Matrix, y: &[f64], lambda: f64) -> Result<Ridge, LinalgError> {
        let y_mat = Matrix::from_vec(y.len(), 1, y.to_vec());
        Ridge::fit_multi(x, &y_mat, lambda, true)
    }

    /// Fits a multi-output model; `y` is `n × k`. When `center` is set,
    /// per-output intercepts absorb the means.
    pub fn fit_multi(
        x: &Matrix,
        y: &Matrix,
        lambda: f64,
        center: bool,
    ) -> Result<Ridge, LinalgError> {
        assert_eq!(x.rows(), y.rows(), "row count mismatch");
        assert!(lambda >= 0.0);
        let n = x.rows();
        let d = x.cols();
        let k = y.cols();
        // Center both X and y so the penalty does not shrink the
        // intercept and the weights are unbiased by feature offsets.
        let (x_means, y_means) = if center {
            let xm: Vec<f64> =
                (0..d).map(|c| (0..n).map(|r| x[(r, c)]).sum::<f64>() / n as f64).collect();
            let ym: Vec<f64> =
                (0..k).map(|c| (0..n).map(|r| y[(r, c)]).sum::<f64>() / n as f64).collect();
            (xm, ym)
        } else {
            (vec![0.0; d], vec![0.0; k])
        };
        let mut xc = x.clone();
        let mut yc = y.clone();
        for r in 0..n {
            for c in 0..d {
                xc[(r, c)] -= x_means[c];
            }
            for c in 0..k {
                yc[(r, c)] -= y_means[c];
            }
        }
        let mut gram = xc.gram();
        // A touch of jitter keeps the factorization stable even at
        // lambda = 0 with collinear features.
        gram.add_diag(lambda.max(1e-10));
        let xty = xc.t_matmul(&yc);
        let weights = gram.cholesky()?.solve_matrix(&xty);
        // intercept_c = ȳ_c − w_c · x̄
        let intercepts: Vec<f64> = (0..k)
            .map(|c| y_means[c] - (0..d).map(|dd| weights[(dd, c)] * x_means[dd]).sum::<f64>())
            .collect();
        Ok(Ridge { weights, intercepts })
    }

    /// Number of outputs.
    pub fn n_outputs(&self) -> usize {
        self.weights.cols()
    }

    /// Predicts all outputs for one input.
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.weights.rows(), "feature dim mismatch");
        (0..self.n_outputs())
            .map(|c| {
                self.intercepts[c]
                    + (0..x.len()).map(|d| x[d] * self.weights[(d, c)]).sum::<f64>()
            })
            .collect()
    }

    /// Predicts the first output (convenience for scalar models).
    pub fn predict_scalar(&self, x: &[f64]) -> f64 {
        self.predict(x)[0]
    }

    /// The raw weight matrix (`d × k`).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetflow_sim::SimRng;

    #[test]
    fn recovers_linear_function() {
        let mut rng = SimRng::from_seed(1);
        let true_w = [2.0, -1.0, 0.5];
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|_| (0..3).map(|_| rng.standard_normal()).collect())
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| r.iter().zip(&true_w).map(|(a, b)| a * b).sum::<f64>() + 3.0)
            .collect();
        let x = Matrix::from_rows(&rows);
        let model = Ridge::fit(&x, &y, 1e-6).unwrap();
        let pred = model.predict_scalar(&[1.0, 1.0, 1.0]);
        let expect = 2.0 - 1.0 + 0.5 + 3.0;
        assert!((pred - expect).abs() < 1e-3, "pred {pred}");
    }

    #[test]
    fn regularization_shrinks_weights() {
        let mut rng = SimRng::from_seed(2);
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|_| (0..4).map(|_| rng.standard_normal()).collect())
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 5.0 * r[0]).collect();
        let x = Matrix::from_rows(&rows);
        let loose = Ridge::fit(&x, &y, 1e-8).unwrap();
        let tight = Ridge::fit(&x, &y, 100.0).unwrap();
        assert!(tight.weights()[(0, 0)].abs() < loose.weights()[(0, 0)].abs());
    }

    #[test]
    fn multi_output_fits_independent_targets() {
        let mut rng = SimRng::from_seed(3);
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|_| (0..2).map(|_| rng.standard_normal()).collect())
            .collect();
        let y_rows: Vec<Vec<f64>> = rows.iter().map(|r| vec![r[0] * 2.0, r[1] * -3.0]).collect();
        let x = Matrix::from_rows(&rows);
        let y = Matrix::from_rows(&y_rows);
        let model = Ridge::fit_multi(&x, &y, 1e-8, true).unwrap();
        let p = model.predict(&[1.0, 1.0]);
        assert!((p[0] - 2.0).abs() < 1e-3);
        assert!((p[1] + 3.0).abs() < 1e-3);
    }

    #[test]
    fn intercept_handles_offset_targets() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 100.0 + r[0]).collect();
        let x = Matrix::from_rows(&rows);
        let model = Ridge::fit(&x, &y, 1e-6).unwrap();
        assert!((model.predict_scalar(&[0.0]) - 100.0).abs() < 0.1);
    }

    #[test]
    fn collinear_features_do_not_crash() {
        // Two identical columns: singular Gram, saved by jitter/ridge.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let x = Matrix::from_rows(&rows);
        let model = Ridge::fit(&x, &y, 1e-4).unwrap();
        assert!((model.predict_scalar(&[5.0, 5.0]) - 5.0).abs() < 0.1);
    }
}
