//! # hetflow-ml — machine-learning substrates
//!
//! The surrogate models the workflows train and query. The paper uses
//! MPNN and SchNet ensembles on GPUs; those are replaced by learners
//! that preserve the workflow-relevant properties — they genuinely learn
//! the synthetic targets, give calibrated ensemble uncertainty for
//! active learning, and train deterministically:
//!
//! * [`RffRidge`] — random-Fourier-feature ridge regression, the
//!   molecule-property surrogate (closed-form training).
//! * [`Mlp`] — a small SGD-trained network, used in ablations.
//! * [`PairPotential`] — a linear pair potential fit jointly on energies
//!   and forces; its analytic gradient is exact, so MD sampling can run
//!   on the learned surface (the §III-B sampling tasks).
//! * [`Ensemble`] — bagged ensembles with scoped-thread-parallel training
//!   and mean/std prediction for UCB acquisition ([`rank`]).
//! * [`linalg`] — the dense matrix/Cholesky kernel behind the solvers.
//!
//! ```
//! use hetflow_chem::MoleculeLibrary;
//! use hetflow_ml::{Ensemble, RffRidge, SurrogateParams, ucb};
//! use hetflow_sim::SimRng;
//!
//! let lib = MoleculeLibrary::generate(500, 1);
//! let inputs: Vec<Vec<f64>> = (0..200).map(|i| lib.features(i).to_vec()).collect();
//! let targets: Vec<f64> = (0..200).map(|i| lib.true_ip(i)).collect();
//! let rng = SimRng::from_seed(2);
//! let ensemble = Ensemble::fit_parallel(4, &rng, |_, mut r| {
//!     RffRidge::fit(&inputs, &targets, SurrogateParams::default(), &mut r).unwrap()
//! });
//! let x = lib.features(499).to_vec();
//! let ms = ensemble.predict_with(|m| m.predict(&x));
//! let score = ucb(ms, 1.0);
//! assert!(score.is_finite());
//! ```

// Index loops are the clearest form for the numeric kernels here.
#![allow(clippy::needless_range_loop)]

pub mod ensemble;
pub mod features;
pub mod linalg;
pub mod metrics;
pub mod mlp;
pub mod pairpot;
pub mod rank;
pub mod ridge;
pub mod surrogate;
pub mod tune;

pub use ensemble::{bag_indices, Ensemble, MeanStd, DEFAULT_BAG_FRACTION};
pub use features::RandomFourierFeatures;
pub use linalg::{Cholesky, LinalgError, Matrix};
pub use metrics::{mae, r2, rmse};
pub use mlp::{Mlp, MlpParams};
pub use pairpot::{LabelledStructure, PairPotParams, PairPotential, RadialBasis};
pub use rank::{rank_by_uncertainty, top_k, ucb};
pub use ridge::Ridge;
pub use surrogate::{RffRidge, SurrogateParams};
pub use tune::{cv_rmse, grid_search, kfold_indices, GridSearchResult, StandardScaler};
