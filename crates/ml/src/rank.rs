//! Acquisition scoring and task-queue reprioritization.
//!
//! The molecular-design thinker ranks candidates "by the Upper
//! Confidence Bound (UCB) of the predictions, which is the sum of the
//! mean and standard deviations of the model predictions" (§III-A).

use crate::ensemble::MeanStd;

/// UCB acquisition score: `mean + kappa * std`.
pub fn ucb(ms: MeanStd, kappa: f64) -> f64 {
    ms.mean + kappa * ms.std
}

/// Returns the indices of the `k` highest-scoring entries, best first.
///
/// Uses a partial selection: O(n) average to find the cut, then sorts
/// only the selected block — the candidate library is large (10⁵–10⁶ in
/// the paper) and `k` is small.
pub fn top_k(scores: &[f64], k: usize) -> Vec<usize> {
    let k = k.min(scores.len());
    if k == 0 {
        return Vec::new();
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    let cut = scores.len() - k;
    idx.select_nth_unstable_by(cut, |&a, &b| scores[a].total_cmp(&scores[b]));
    let mut selected = idx.split_off(cut);
    selected.sort_unstable_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    selected
}

/// Ranks by variance (highest first) — the fine-tuning application's
/// uncertainty pool orders structures "based on the variance in
/// predicted energy" (§III-B).
pub fn rank_by_uncertainty(stds: &[f64], k: usize) -> Vec<usize> {
    top_k(stds, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ucb_combines_mean_and_std() {
        let ms = MeanStd { mean: 10.0, std: 2.0 };
        assert_eq!(ucb(ms, 0.0), 10.0);
        assert_eq!(ucb(ms, 1.0), 12.0);
        assert_eq!(ucb(ms, 2.5), 15.0);
    }

    #[test]
    fn top_k_orders_best_first() {
        let scores = [1.0, 9.0, 3.0, 7.0, 5.0];
        assert_eq!(top_k(&scores, 3), vec![1, 3, 4]);
        assert_eq!(top_k(&scores, 1), vec![1]);
    }

    #[test]
    fn top_k_handles_edge_sizes() {
        let scores = [2.0, 1.0];
        assert_eq!(top_k(&scores, 0), Vec::<usize>::new());
        assert_eq!(top_k(&scores, 5), vec![0, 1]);
        assert_eq!(top_k(&[], 3), Vec::<usize>::new());
    }

    #[test]
    fn top_k_matches_full_sort_on_random_input() {
        let mut rng = hetflow_sim::SimRng::from_seed(4);
        let scores: Vec<f64> = (0..500).map(|_| rng.standard_normal()).collect();
        let fast = top_k(&scores, 25);
        let mut slow: Vec<usize> = (0..scores.len()).collect();
        slow.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        slow.truncate(25);
        assert_eq!(fast, slow);
    }

    #[test]
    fn uncertainty_rank_is_descending_std() {
        let stds = [0.1, 0.5, 0.3];
        assert_eq!(rank_by_uncertainty(&stds, 2), vec![1, 2]);
    }
}
