//! Random Fourier features — the kernel trick for linear solvers.
//!
//! `z(x) = sqrt(2/D) cos(W x + b)` with `W ~ N(0, 1/ℓ²)`, `b ~ U[0, 2π)`
//! approximates an RBF kernel with lengthscale `ℓ`. Combined with ridge
//! regression this gives a closed-form-trainable nonlinear surrogate —
//! our stand-in for the paper's MPNN/SchNet models, chosen because it
//! learns the synthetic targets well and trains deterministically.

use crate::linalg::Matrix;
use hetflow_sim::SimRng;

/// A fixed random feature map.
#[derive(Clone, Debug)]
pub struct RandomFourierFeatures {
    /// `D x d_in` projection.
    w: Matrix,
    /// Phase offsets, length `D`.
    b: Vec<f64>,
    scale: f64,
}

impl RandomFourierFeatures {
    /// Samples a feature map: `d_in` inputs → `d_out` features, RBF
    /// lengthscale `lengthscale`.
    pub fn sample(d_in: usize, d_out: usize, lengthscale: f64, rng: &mut SimRng) -> Self {
        assert!(d_in > 0 && d_out > 0 && lengthscale > 0.0);
        let mut w = Matrix::zeros(d_out, d_in);
        for i in 0..d_out {
            for j in 0..d_in {
                w[(i, j)] = rng.standard_normal() / lengthscale;
            }
        }
        let b: Vec<f64> = (0..d_out).map(|_| rng.uniform(0.0, std::f64::consts::TAU)).collect();
        let scale = (2.0 / d_out as f64).sqrt();
        RandomFourierFeatures { w, b, scale }
    }

    /// Input dimension.
    pub fn d_in(&self) -> usize {
        self.w.cols()
    }

    /// Output (feature) dimension.
    pub fn d_out(&self) -> usize {
        self.w.rows()
    }

    /// Maps one input vector.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.d_in(), "feature dim mismatch");
        let proj = self.w.matvec(x);
        proj.iter()
            .zip(&self.b)
            .map(|(p, b)| self.scale * (p + b).cos())
            .collect()
    }

    /// Maps a batch into a design matrix (`n × D`).
    pub fn transform_batch(&self, xs: &[Vec<f64>]) -> Matrix {
        let rows: Vec<Vec<f64>> = xs.iter().map(|x| self.transform(x)).collect();
        Matrix::from_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut r1 = SimRng::from_seed(1);
        let mut r2 = SimRng::from_seed(1);
        let f1 = RandomFourierFeatures::sample(3, 16, 1.0, &mut r1);
        let f2 = RandomFourierFeatures::sample(3, 16, 1.0, &mut r2);
        let x = vec![0.5, -1.0, 2.0];
        assert_eq!(f1.transform(&x), f2.transform(&x));
    }

    #[test]
    fn output_bounded() {
        let mut rng = SimRng::from_seed(2);
        let f = RandomFourierFeatures::sample(4, 64, 1.0, &mut rng);
        let z = f.transform(&[1.0, -2.0, 0.5, 3.0]);
        let bound = (2.0f64 / 64.0).sqrt();
        assert!(z.iter().all(|v| v.abs() <= bound + 1e-12));
        assert_eq!(z.len(), 64);
    }

    #[test]
    fn kernel_approximation_quality() {
        // z(x)·z(y) ≈ exp(-|x-y|²/(2ℓ²)) for large D.
        let mut rng = SimRng::from_seed(3);
        let f = RandomFourierFeatures::sample(3, 4096, 1.5, &mut rng);
        let x = vec![0.2, -0.3, 0.8];
        let y = vec![0.5, 0.1, 0.4];
        let zx = f.transform(&x);
        let zy = f.transform(&y);
        let dot: f64 = zx.iter().zip(&zy).map(|(a, b)| a * b).sum();
        let d2: f64 = x.iter().zip(&y).map(|(a, b)| (a - b).powi(2)).sum();
        let expect = (-d2 / (2.0 * 1.5 * 1.5)).exp();
        assert!((dot - expect).abs() < 0.05, "dot {dot}, kernel {expect}");
    }

    #[test]
    fn batch_matches_single() {
        let mut rng = SimRng::from_seed(4);
        let f = RandomFourierFeatures::sample(2, 8, 1.0, &mut rng);
        let xs = vec![vec![1.0, 2.0], vec![-0.5, 0.5]];
        let batch = f.transform_batch(&xs);
        assert_eq!(batch.rows(), 2);
        assert_eq!(batch.row(0), f.transform(&xs[0]).as_slice());
        assert_eq!(batch.row(1), f.transform(&xs[1]).as_slice());
    }

    #[test]
    #[should_panic(expected = "dim mismatch")]
    fn wrong_input_dim_panics() {
        let mut rng = SimRng::from_seed(5);
        let f = RandomFourierFeatures::sample(3, 8, 1.0, &mut rng);
        let _ = f.transform(&[1.0, 2.0]);
    }
}
