//! # hetflow-steer — steering policies as cooperating agents
//!
//! Reproduction of Colmena (§IV-D of the paper): a [`Thinker`] hosts the
//! steering agents; [`TaskServer`] bridges the agents' queues to a
//! compute fabric, automatically proxying payloads above a per-topic
//! threshold; [`ResourceCounter`] lets agents reallocate workers between
//! task types; [`lifecycle`] aggregates the finished-task records into
//! the latency decompositions the paper's figures report.
//!
//! ```
//! use hetflow_steer::ResourceCounter;
//! use hetflow_sim::Sim;
//!
//! let sim = Sim::new();
//! let counter = ResourceCounter::new();
//! counter.register("simulate", 6);
//! counter.register("sample", 2);
//! let c = counter.clone();
//! let h = sim.spawn(async move {
//!     // Shift two workers from simulation to sampling, as the
//!     // fine-tuning thinker's balancer does.
//!     c.reallocate("simulate", "sample", 2).await;
//!     (c.available("simulate"), c.available("sample"))
//! });
//! assert_eq!(sim.block_on(h), (4, 4));
//! ```

pub mod advisor;
pub mod lifecycle;
pub mod queues;
pub mod resources;
pub mod thinker;

pub use advisor::{Advisor, PathChoice, Recommendation};
pub use lifecycle::{Breakdown, BreakdownRow, TaskRecord};
pub use queues::{ClientQueues, CompletedTask, Payload, QueueConfig, ResolvedTask, TaskServer};
pub use resources::ResourceCounter;
pub use thinker::Thinker;
