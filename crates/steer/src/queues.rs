//! Thinker ↔ Task Server queues with automatic proxying.
//!
//! Reproduces Colmena's data path (§IV-D, Fig. 2): a *Thinker* submits
//! task requests to a *Task Server* through Redis-backed queues; the
//! server re-serializes each request and hands it to a compute fabric;
//! results retrace the path into per-topic result queues.
//!
//! When a submission or result payload exceeds the [`ProxyPolicy`]
//! threshold for its topic, the payload is placed in a store and only a
//! lightweight proxy travels — so the serialization the server performs
//! becomes size-independent, which is the mechanism behind the Fig. 3
//! improvements.

use crate::lifecycle::TaskRecord;
use hetflow_fabric::{
    Arg, BackpressureGate, Fabric, SerModel, TaskError, TaskFn, TaskId, TaskOutcome, TaskResult,
    TaskSpec,
};
use hetflow_store::{ProxyPolicy, SiteId, UntypedProxy};
use hetflow_sim::{
    channel, trace_kinds as kinds, Dist, Receiver, Sender, Sim, SimRng, Symbol, SymbolMap, Tracer,
};
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

/// A value the thinker wants to pass to (or receive from) a task,
/// together with its declared serialized size.
pub struct Payload {
    inner: PayloadInner,
}

enum PayloadInner {
    /// A value subject to the auto-proxy policy.
    Value {
        value: Rc<dyn Any>,
        bytes: u64,
    },
    /// An already-proxied object — Colmena's "users can also proxy
    /// objects manually before submitting the proxies to tasks"
    /// (§IV-D). Sharing one proxy across a batch of tasks is what lets
    /// later tasks hit the prefetched copy (§V-D3's sub-100 ms
    /// inference resolves).
    Proxied(UntypedProxy),
}

impl Payload {
    /// Wraps a value with its declared size.
    pub fn new<T: 'static>(value: T, bytes: u64) -> Payload {
        Payload { inner: PayloadInner::Value { value: Rc::new(value), bytes } }
    }

    /// Wraps an already-shared value — campaign loops submitting the
    /// same payload many times clone one `Rc` instead of allocating a
    /// fresh box per task.
    pub fn shared(value: Rc<dyn Any>, bytes: u64) -> Payload {
        Payload { inner: PayloadInner::Value { value, bytes } }
    }

    /// Wraps an existing proxy; the target is shared between every task
    /// the proxy is submitted to and moves at most once per site.
    pub fn proxied(proxy: UntypedProxy) -> Payload {
        Payload { inner: PayloadInner::Proxied(proxy) }
    }
}

/// Configuration of the thinker↔server queue pair.
#[derive(Clone)]
pub struct QueueConfig {
    /// Site the thinker and task server run on (a Theta login node in
    /// the paper's deployment).
    pub thinker_site: SiteId,
    /// Per-message queue hop latency (local Redis).
    pub queue_latency: Dist,
    /// Queue payload throughput, bytes/s.
    pub queue_bandwidth: f64,
    /// Serialization model for thinker and server passes.
    pub ser: SerModel,
    /// Auto-proxy policy applied at submission time.
    pub policy: ProxyPolicy,
}

impl QueueConfig {
    /// Paper-deployment defaults: sub-millisecond local Redis queue,
    /// CPython pickle serialization.
    pub fn login_node(thinker_site: SiteId, policy: ProxyPolicy) -> Self {
        QueueConfig {
            thinker_site,
            queue_latency: Dist::LogNormal { median: 0.0005, sigma: 0.3 },
            queue_bandwidth: 5.0e7,
            ser: SerModel::python_pickle(),
            policy,
        }
    }
}

struct Shared {
    sim: Sim,
    config: QueueConfig,
    rng: RefCell<SimRng>,
    next_id: Cell<TaskId>,
    submit_tx: Sender<TaskSpec>,
    topic_rx: SymbolMap<Receiver<TaskResult>>,
    records: RefCell<Vec<TaskRecord>>,
    tracer: Tracer,
    /// Pre-interned `"thinker"` trace actor — `submit`/`get_result`
    /// must not take the interner lock per task.
    actor: Symbol,
    outstanding: Cell<i64>,
    /// The fabric's backpressure gate, when any topic has watermarks
    /// configured. `None` (the default deployment) keeps `submit` on
    /// its original await-free admission path.
    gate: Option<BackpressureGate>,
}

/// The thinker-side handle: submit tasks, await results.
#[derive(Clone)]
pub struct ClientQueues {
    shared: Rc<Shared>,
}

impl ClientQueues {
    /// Declared wire size of `payloads` after auto-proxying under
    /// `topic`'s rule (useful for tests and capacity checks).
    pub fn wire_bytes_after_policy(&self, topic: &str, payloads: &[Payload]) -> u64 {
        let policy = &self.shared.config.policy;
        hetflow_fabric::TASK_ENVELOPE_BYTES
            + payloads
                .iter()
                .map(|p| match &p.inner {
                    PayloadInner::Proxied(proxy) => proxy.wire_size(),
                    PayloadInner::Value { bytes, .. } => {
                        if policy.decide(topic, *bytes).is_some() {
                            hetflow_store::PROXY_WIRE_BYTES
                        } else {
                            *bytes
                        }
                    }
                })
                .sum::<u64>()
    }

    /// The store the policy would proxy `topic` payloads into, if any —
    /// the handle applications use to proxy objects manually and share
    /// them across a batch of tasks.
    pub fn store_for(&self, topic: &str) -> Option<hetflow_store::Store> {
        self.shared.config.policy.rule_for(topic).map(|r| r.store.clone())
    }

    /// The thinker's site (where manual proxies should be produced).
    pub fn thinker_site(&self) -> SiteId {
        self.shared.config.thinker_site
    }

    /// Serializes (auto-proxying large payloads), stamps, and enqueues a
    /// task. Awaiting covers the thinker-side cost: serialization plus
    /// any store puts for proxied inputs.
    /// Accepts a `&str` or a pre-interned [`Symbol`] topic; hot loops
    /// should intern once and pass the symbol so submission takes no
    /// interner lock. Payloads may come from any iterable — an array
    /// avoids the per-call `Vec` a hot campaign loop would otherwise
    /// allocate.
    pub async fn submit(
        &self,
        topic: impl Into<Symbol>,
        payloads: impl IntoIterator<Item = Payload>,
        compute: TaskFn,
    ) -> TaskId {
        let topic: Symbol = topic.into();
        let shared = &self.shared;
        let sim = &shared.sim;
        // Backpressure: when the fabric's gate is closed for this topic
        // the agent parks here — before the task exists — so overload
        // never builds an unbounded backlog of stamped tasks. With no
        // gate (or the topic unregistered / open) this is await-free.
        if let Some(gate) = &shared.gate {
            gate.acquire(topic).await;
        }
        let id = shared.next_id.get();
        shared.next_id.set(id + 1);
        let created = sim.now();
        shared.tracer.emit(created, shared.actor, kinds::TASK_CREATED, id, 0.0);

        // Build args, proxying what the policy selects. The store put is
        // part of "serialization time" in the paper's decomposition. A
        // failed put poisons the task instead of panicking: it still
        // travels the pipeline so the thinker gets a failed record with
        // honest accounting.
        let proxy_start = sim.now();
        // `Args` stores up to four arguments inline, so the common
        // one-payload submission builds its argument list on the stack.
        let mut args = hetflow_fabric::Args::new();
        let mut poisoned: Option<TaskError> = None;
        for p in payloads {
            match p.inner {
                PayloadInner::Proxied(proxy) => args.push(Arg::Proxied(proxy)),
                PayloadInner::Value { value, bytes } => {
                    match shared.config.policy.decide(topic.as_str(), bytes) {
                        Some(store) if poisoned.is_none() => {
                            match store.put_raw(value, bytes, shared.config.thinker_site).await {
                                Ok(key) => args.push(Arg::Proxied(UntypedProxy::new(
                                    store.clone(),
                                    key,
                                    bytes,
                                ))),
                                Err(e) => {
                                    poisoned = Some(TaskError::PutFailed(e.to_string()));
                                    args.push(Arg::empty());
                                }
                            }
                        }
                        // Once poisoned, skip further puts: the task
                        // will never execute.
                        Some(_) => args.push(Arg::empty()),
                        None => args.push(Arg::Inline { bytes, value }),
                    }
                }
            }
        }

        let mut task = TaskSpec::new(id, topic, args, compute);
        task.failed = poisoned;
        task.timing.created = Some(created);
        task.ser_time += sim.now() - proxy_start;

        // Thinker serialization pass over the (post-proxy) envelope.
        let ser = shared.config.ser.cost(&mut shared.rng.borrow_mut(), task.wire_bytes());
        task.ser_time += ser;
        sim.sleep(ser).await;
        task.timing.submitted = Some(sim.now());
        shared.outstanding.set(shared.outstanding.get() + 1);

        // Queue transit happens off the agent's back.
        let wire = task.wire_bytes();
        let transit = self.queue_transit(wire);
        let submit_tx = shared.submit_tx.clone();
        let sim2 = sim.clone();
        sim.spawn_detached(async move {
            sim2.sleep(transit).await;
            let _ = submit_tx.send_now(task);
        });
        id
    }

    /// Awaits the next completed task on `topic`; `None` once the system
    /// is shut down.
    pub async fn get_result(&self, topic: impl Into<Symbol>) -> Option<CompletedTask> {
        let topic: Symbol = topic.into();
        let shared = &self.shared;
        let rx = shared
            .topic_rx
            .get(topic)
            // hetlint: allow(r5) — unregistered topic is a deployment wiring bug, not a runtime fault
            .unwrap_or_else(|| panic!("topic {topic} was not registered"));
        let mut result = rx.recv().await?;
        // Thinker-side deserialization of the envelope — part of the
        // serialization bin, like every other (de)serialize pass.
        let ser = shared.config.ser.cost(&mut shared.rng.borrow_mut(), result.wire_bytes());
        result.report.ser_time += ser;
        shared.sim.sleep(ser).await;
        shared.outstanding.set(shared.outstanding.get() - 1);
        shared
            .tracer
            .emit(shared.sim.now(), shared.actor, kinds::RESULT_RECEIVED, result.id, 0.0);
        Some(CompletedTask { result: Some(result), queues: self.clone() })
    }

    /// Tasks submitted but not yet received back.
    pub fn outstanding(&self) -> i64 {
        self.shared.outstanding.get()
    }

    /// Snapshot of all finished-task records.
    pub fn records(&self) -> Vec<TaskRecord> {
        self.shared.records.borrow().clone()
    }

    /// Number of finished-task records.
    pub fn record_count(&self) -> usize {
        self.shared.records.borrow().len()
    }

    fn queue_transit(&self, bytes: u64) -> Duration {
        let c = &self.shared.config;
        let lat = c.queue_latency.sample(&mut self.shared.rng.borrow_mut());
        hetflow_sim::time::secs(lat + bytes as f64 / c.queue_bandwidth)
    }

    fn push_record(&self, record: TaskRecord) {
        self.shared.records.borrow_mut().push(record);
    }

    fn site(&self) -> SiteId {
        self.shared.config.thinker_site
    }

    fn sim(&self) -> &Sim {
        &self.shared.sim
    }
}

/// A result delivered to the thinker, data possibly still remote.
///
/// Inspect [`timing`](CompletedTask::timing) cheaply (decisions that
/// don't need the data, §V-D2), or call [`resolve`](CompletedTask::resolve)
/// to obtain the value, paying any outstanding transfer wait.
pub struct CompletedTask {
    result: Option<TaskResult>,
    queues: ClientQueues,
}

impl CompletedTask {
    /// The underlying result; present until `resolve` consumes it.
    fn inner(&self) -> &TaskResult {
        self.result.as_ref().expect("not yet resolved")
    }

    /// Task id.
    pub fn id(&self) -> TaskId {
        self.inner().id
    }

    /// Task topic.
    pub fn topic(&self) -> &str {
        self.inner().topic.as_str()
    }

    /// Life-cycle stamps so far.
    pub fn timing(&self) -> hetflow_fabric::TaskTiming {
        self.inner().timing
    }

    /// True when the task failed (no need to resolve to find out —
    /// §V-D2-style cheap inspection).
    pub fn is_failed(&self) -> bool {
        self.inner().is_failed()
    }

    /// True when overload protection shed the task before it ran (cheap
    /// inspection, like [`CompletedTask::is_failed`]).
    pub fn is_shed(&self) -> bool {
        self.inner().is_shed()
    }

    /// How the task ended.
    pub fn outcome(&self) -> TaskOutcome {
        self.inner().outcome.clone()
    }

    /// Resolves the result data at the thinker's site, finishing the
    /// record. Returns the value and the final record. A failed task
    /// resolves to a placeholder value and a failed record; an
    /// unreachable proxied output degrades the record to failed instead
    /// of panicking.
    pub async fn resolve(mut self) -> ResolvedTask {
        // hetlint: allow(r5) — resolve() consumes self, so the slot can
        // only be empty if the struct was corrupted; nothing to degrade to.
        let mut result = self.result.take().expect("resolve called twice");
        let queues = &self.queues;
        let sim = queues.sim().clone();
        let (value, data_wait, was_local): (Rc<dyn Any>, Duration, bool) = match &result.output {
            Arg::Inline { value, .. } => (Rc::clone(value), Duration::ZERO, true),
            Arg::Proxied(p) => match p.resolve(queues.site()).await {
                Ok(r) => (r.value, r.wait, r.was_local),
                Err(e) => {
                    result.outcome =
                        TaskOutcome::Failed(TaskError::ResolveFailed(e.to_string()));
                    (Rc::new(()) as Rc<dyn Any>, Duration::ZERO, false)
                }
            },
        };
        result.timing.result_ready = Some(sim.now());
        let record = TaskRecord {
            id: result.id,
            topic: result.topic,
            timing: result.timing,
            report: result.report,
            input_bytes: result.input_bytes,
            output_bytes: result.output.data_bytes(),
            thinker_data_wait: data_wait,
            data_was_local: was_local,
            site: result.site,
            worker: result.worker,
            outcome: result.outcome.clone(),
        };
        queues.push_record(record.clone());
        ResolvedTask { value, record }
    }
}

/// A fully resolved task: value plus its complete record.
pub struct ResolvedTask {
    value: Rc<dyn Any>,
    /// The finished life-cycle record.
    pub record: TaskRecord,
}

impl ResolvedTask {
    /// True when the task failed; the value is a placeholder then.
    pub fn is_failed(&self) -> bool {
        self.record.is_failed()
    }

    /// True when overload protection shed the task; the value is a
    /// placeholder then, exactly as for a failed task.
    pub fn is_shed(&self) -> bool {
        self.record.is_shed()
    }

    /// The error, if the task failed.
    pub fn error(&self) -> Option<&TaskError> {
        self.record.outcome.error()
    }

    /// Downcasts the output value. Check [`ResolvedTask::is_failed`]
    /// and [`ResolvedTask::is_shed`] first: failed and shed tasks carry
    /// a `()` placeholder, not a `T`.
    pub fn value<T: 'static>(&self) -> Rc<T> {
        Rc::clone(&self.value)
            .downcast::<T>()
            // hetlint: allow(r5) — documented contract: callers check is_failed() before value()
            .unwrap_or_else(|_| panic!("task output has unexpected type"))
    }
}

/// The server-side actor pair: forwards submissions into the fabric and
/// results back to the thinker.
pub struct TaskServer;

impl TaskServer {
    /// Wires up a thinker↔server↔fabric pipeline.
    ///
    /// `fabric_results` must be the receiver half of the channel the
    /// fabric was constructed with. Returns the thinker-side handle.
    pub fn start(
        sim: &Sim,
        config: QueueConfig,
        fabric: Rc<dyn Fabric>,
        fabric_results: Receiver<TaskResult>,
        topics: &[&str],
        rng: SimRng,
        tracer: Tracer,
    ) -> ClientQueues {
        let (submit_tx, submit_rx) = channel::<TaskSpec>();
        let mut deliver_tx: SymbolMap<Sender<(TaskResult, hetflow_sim::SimTime)>> =
            SymbolMap::new();
        let mut topic_rx: SymbolMap<Receiver<TaskResult>> = SymbolMap::new();
        for &topic in topics {
            let (tx, rx) = channel::<TaskResult>();
            topic_rx.insert(Symbol::intern(topic), rx);
            // Per-topic delivery actor: the modeled Redis result queue is
            // FIFO per topic, so one long-lived actor draining deliveries
            // in order replaces a spawned task per result. Sequential
            // draining makes delivery times monotone by construction — a
            // result whose transit would land it before its predecessor
            // is released the instant the predecessor goes out, exactly
            // the `max(deliver_at, last)` the per-result tasks computed.
            let (dtx, drx) = channel::<(TaskResult, hetflow_sim::SimTime)>();
            deliver_tx.insert(Symbol::intern(topic), dtx);
            let sim2 = sim.clone();
            sim.spawn_detached(async move {
                while let Some((mut result, deliver_at)) = drx.recv().await {
                    sim2.sleep_until(deliver_at).await;
                    result.timing.thinker_notified = Some(sim2.now());
                    let _ = tx.send_now(result);
                }
            });
        }

        let shared = Rc::new(Shared {
            sim: sim.clone(),
            config: config.clone(),
            rng: RefCell::new(rng.substream(0)),
            next_id: Cell::new(0),
            submit_tx,
            topic_rx,
            records: RefCell::new(Vec::new()),
            tracer: tracer.clone(),
            actor: Symbol::intern("thinker"),
            outstanding: Cell::new(0),
            gate: fabric.backpressure(),
        });

        // Submission-forwarding actor: deserialize, re-serialize, submit.
        {
            let sim2 = sim.clone();
            let config = config.clone();
            let mut rng = rng.substream(1);
            let fabric = Rc::clone(&fabric);
            sim.spawn_detached(async move {
                while let Some(mut task) = submit_rx.recv().await {
                    task.timing.server_received = Some(sim2.now());
                    let wire = task.wire_bytes();
                    let de = config.ser.cost(&mut rng, wire);
                    let se = config.ser.cost(&mut rng, wire);
                    task.ser_time += de + se;
                    sim2.sleep(de + se).await;
                    fabric.submit(task).await;
                }
            });
        }

        // Result-forwarding actor: per-topic routing with queue transit.
        {
            let sim2 = sim.clone();
            let config = config.clone();
            let mut rng = rng.substream(2);
            sim.spawn_detached(async move {
                while let Some(mut result) = fabric_results.recv().await {
                    // Server-side deserialize + serialize pass — charged
                    // to the serialization bin like the submit path.
                    let wire = result.wire_bytes();
                    let de = config.ser.cost(&mut rng, wire);
                    let se = config.ser.cost(&mut rng, wire);
                    result.report.ser_time += de + se;
                    sim2.sleep(de + se).await;
                    let Some(dtx) = deliver_tx.get(result.topic) else {
                        // hetlint: allow(r5) — unregistered topic is a deployment wiring bug
                        panic!("result for unregistered topic {}", result.topic);
                    };
                    // Queue transit back to the thinker; the per-topic
                    // delivery actor holds the result until then.
                    let lat = config.queue_latency.sample(&mut rng);
                    let transit =
                        hetflow_sim::time::secs(lat + wire as f64 / config.queue_bandwidth);
                    let deliver_at = sim2.now() + transit;
                    let _ = dtx.send_now((result, deliver_at));
                }
            });
        }

        ClientQueues { shared }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetflow_fabric::{
        EndpointSpec, FnXExecutor, FnXParams, TaskWork, WorkerPoolConfig,
    };
    use hetflow_store::bytes::{KB, MB};
    use hetflow_store::{Backend, FsParams, SiteSet, Store};

    const LOGIN: SiteId = SiteId(0);

    fn fs_store(sim: &Sim) -> Store {
        Store::new(
            sim.clone(),
            "fs",
            Backend::Fs(FsParams {
                members: SiteSet::of(&[LOGIN]),
                op_latency: Dist::Constant(0.005),
                write_bandwidth: 5e8,
                read_bandwidth: 5e8,
            }),
            SimRng::from_seed(11),
        )
    }

    fn pipeline(policy: ProxyPolicy) -> (Sim, ClientQueues) {
        let sim = Sim::new();
        let (res_tx, res_rx) = channel();
        let fabric = FnXExecutor::new(
            &sim,
            FnXParams::default(),
            vec![EndpointSpec::reliable(
                {
                    let mut p = WorkerPoolConfig::bare(LOGIN, "theta", 2);
                    p.result_policy = policy.clone();
                    p
                },
                vec!["noop", "echo"],
            )],
            res_tx,
            SimRng::from_seed(1),
            Tracer::disabled(),
        );
        let queues = TaskServer::start(
            &sim,
            QueueConfig {
                thinker_site: LOGIN,
                queue_latency: Dist::Constant(0.0005),
                queue_bandwidth: 5.0e7,
                ser: SerModel::python_pickle(),
                policy,
            },
            Rc::new(fabric),
            res_rx,
            &["noop", "echo"],
            SimRng::from_seed(2),
            Tracer::disabled(),
        );
        (sim, queues)
    }

    fn noop_fn() -> TaskFn {
        Rc::new(|_ctx| TaskWork::noop())
    }

    #[test]
    fn end_to_end_noop_roundtrip() {
        let (sim, queues) = pipeline(ProxyPolicy::disabled());
        let q = queues.clone();
        let h = sim.spawn(async move {
            let id = q.submit("noop", vec![Payload::new((), 10 * KB)], noop_fn()).await;
            let done = q.get_result("noop").await.unwrap();
            assert_eq!(done.id(), id);
            let resolved = done.resolve().await;
            resolved.record.clone()
        });
        let record = sim.block_on(h);
        let t = record.timing;
        assert!(t.created.is_some());
        assert!(t.submitted.is_some());
        assert!(t.server_received.is_some());
        assert!(t.dispatched.is_some());
        assert!(t.worker_started.is_some());
        assert!(t.compute_finished.is_some());
        assert!(t.thinker_notified.is_some());
        assert!(t.result_ready.is_some());
        assert!(t.lifetime().unwrap() > Duration::ZERO);
        assert_eq!(queues.record_count(), 1);
    }

    #[test]
    fn echo_value_passes_through() {
        let (sim, queues) = pipeline(ProxyPolicy::disabled());
        let q = queues.clone();
        let h = sim.spawn(async move {
            q.submit(
                "echo",
                vec![Payload::new(vec![2.5f64, 3.5], KB)],
                Rc::new(|ctx| {
                    let v = ctx.input::<Vec<f64>>(0);
                    TaskWork::new(v.iter().sum::<f64>(), 8, Duration::ZERO)
                }),
            )
            .await;
            let resolved = q.get_result("echo").await.unwrap().resolve().await;
            *resolved.value::<f64>()
        });
        assert_eq!(sim.block_on(h), 6.0);
    }

    #[test]
    fn auto_proxy_shrinks_wire_size() {
        let sim = Sim::new();
        let store = fs_store(&sim);
        let (sim, queues) = {
            drop(sim);
            pipeline(ProxyPolicy::disabled())
        };
        // Rebuild a policy bound to a store on the *same* sim as the
        // pipeline for the wire-size check (no async needed).
        let store2 = Store::new(
            sim.clone(),
            "fs2",
            Backend::Fs(FsParams {
                members: SiteSet::of(&[LOGIN]),
                op_latency: Dist::Constant(0.001),
                write_bandwidth: 1e9,
                read_bandwidth: 1e9,
            }),
            SimRng::from_seed(12),
        );
        let q_noproxy = queues.wire_bytes_after_policy("noop", &[Payload::new((), MB)]);
        assert_eq!(q_noproxy, hetflow_fabric::TASK_ENVELOPE_BYTES + MB);
        let policy = ProxyPolicy::uniform(store2, 10 * KB);
        let with = ClientQueues {
            shared: Rc::clone(&queues.shared),
        };
        // Manually exercise the policy math.
        let _ = with;
        let proxied = policy.decide("noop", MB).is_some();
        assert!(proxied);
        drop(store);
    }

    #[test]
    fn proxied_payload_roundtrips_with_value() {
        let sim = Sim::new();
        let store = fs_store(&sim);
        let policy = ProxyPolicy::uniform(store.clone(), 10 * KB);
        let (res_tx, res_rx) = channel();
        let fabric = FnXExecutor::new(
            &sim,
            FnXParams::default(),
            vec![EndpointSpec::reliable(
                {
                    let mut p = WorkerPoolConfig::bare(LOGIN, "theta", 1);
                    p.result_policy = policy.clone();
                    p
                },
                vec!["echo"],
            )],
            res_tx,
            SimRng::from_seed(1),
            Tracer::disabled(),
        );
        let queues = TaskServer::start(
            &sim,
            QueueConfig::login_node(LOGIN, policy),
            Rc::new(fabric),
            res_rx,
            &["echo"],
            SimRng::from_seed(2),
            Tracer::disabled(),
        );
        let q = queues.clone();
        let h = sim.spawn(async move {
            q.submit(
                "echo",
                vec![Payload::new(vec![1u32; 1000], MB)], // proxied
                Rc::new(|ctx| {
                    let v = ctx.input::<Vec<u32>>(0);
                    // Large output: proxied on the way back too.
                    TaskWork::new(v.len() as u64, MB, Duration::ZERO)
                }),
            )
            .await;
            let resolved = q.get_result("echo").await.unwrap().resolve().await;
            (*resolved.value::<u64>(), resolved.record.clone())
        });
        let (len, record) = sim.block_on(h);
        assert_eq!(len, 1000);
        assert_eq!(record.report.local_inputs + record.report.remote_inputs, 1);
        assert_eq!(record.output_bytes, MB);
        // Store holds both the input and the output objects.
        assert_eq!(store.object_count(), 2);
    }

    #[test]
    fn proxying_speeds_up_large_payload_lifetime() {
        // The Fig. 3 headline: a 1 MB no-op is much faster when the
        // payload moves by reference.
        let lifetime = |proxy: bool| {
            let sim = Sim::new();
            let store = fs_store(&sim);
            let policy = if proxy {
                ProxyPolicy::uniform(store, 0)
            } else {
                ProxyPolicy::disabled()
            };
            let (res_tx, res_rx) = channel();
            let fabric = FnXExecutor::new(
                &sim,
                FnXParams::default(),
                vec![EndpointSpec::reliable(
                    {
                        let mut p = WorkerPoolConfig::bare(LOGIN, "theta", 1);
                        p.result_policy = policy.clone();
                        p.ser = SerModel::python_pickle();
                        p
                    },
                    vec!["noop"],
                )],
                res_tx,
                SimRng::from_seed(1),
                Tracer::disabled(),
            );
            let queues = TaskServer::start(
                &sim,
                QueueConfig::login_node(LOGIN, policy),
                Rc::new(fabric),
                res_rx,
                &["noop"],
                SimRng::from_seed(2),
                Tracer::disabled(),
            );
            let q = queues.clone();
            let h = sim.spawn(async move {
                q.submit("noop", vec![Payload::new(vec![0u8; 16], MB)], noop_fn()).await;
                let resolved = q.get_result("noop").await.unwrap().resolve().await;
                resolved.record.timing.lifetime().unwrap().as_secs_f64()
            });
            sim.block_on(h)
        };
        let with_proxy = lifetime(true);
        let without = lifetime(false);
        assert!(
            without / with_proxy > 3.0,
            "proxying must cut 1MB no-op lifetime: {without:.3}s vs {with_proxy:.3}s"
        );
    }

    #[test]
    fn outstanding_counts_in_flight() {
        let (sim, queues) = pipeline(ProxyPolicy::disabled());
        let q = queues.clone();
        let h = sim.spawn(async move {
            q.submit("noop", vec![Payload::new((), KB)], noop_fn()).await;
            q.submit("noop", vec![Payload::new((), KB)], noop_fn()).await;
            let after_submit = q.outstanding();
            q.get_result("noop").await.unwrap().resolve().await;
            (after_submit, q.outstanding())
        });
        let (during, after) = sim.block_on(h);
        assert_eq!(during, 2);
        assert_eq!(after, 1);
    }

    #[test]
    #[should_panic(expected = "was not registered")]
    fn unknown_topic_get_panics() {
        let (sim, queues) = pipeline(ProxyPolicy::disabled());
        let q = queues.clone();
        let h = sim.spawn(async move {
            q.get_result("mystery").await;
        });
        sim.block_on(h);
    }
}
