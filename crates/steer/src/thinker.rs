//! The Thinker: a collection of cooperating steering agents.
//!
//! Colmena expresses steering policy as "interacting agents, which are
//! known collectively as a Thinker" (§IV-D): each agent is a concurrent
//! routine reacting to events — a result arriving, a counter crossing a
//! threshold — and submitting new work. Here agents are async tasks on
//! the simulation; [`Thinker`] tracks them so a campaign can await
//! orderly shutdown and attribute panics to a named agent.

use hetflow_sim::{Event, JoinHandle, Sim};
use std::cell::RefCell;
use std::future::Future;
use std::rc::Rc;

/// Agent registry for one application.
pub struct Thinker {
    sim: Sim,
    agents: RefCell<Vec<(String, JoinHandle<()>)>>,
    /// Set when the campaign's termination condition is reached; agents
    /// poll or await this to wind down (Colmena's `done` flag).
    pub done: Event,
}

impl Thinker {
    /// Creates an empty thinker on `sim`.
    pub fn new(sim: &Sim) -> Rc<Thinker> {
        Rc::new(Thinker {
            sim: sim.clone(),
            agents: RefCell::new(Vec::new()),
            done: Event::new(),
        })
    }

    /// Spawns a named agent.
    pub fn agent<F>(&self, name: impl Into<String>, fut: F)
    where
        F: Future<Output = ()> + 'static,
    {
        let handle = self.sim.spawn(fut);
        self.agents.borrow_mut().push((name.into(), handle));
    }

    /// Number of registered agents.
    pub fn agent_count(&self) -> usize {
        self.agents.borrow().len()
    }

    /// Names of agents that have finished.
    pub fn finished_agents(&self) -> Vec<String> {
        self.agents
            .borrow()
            .iter()
            .filter(|(_, h)| h.is_finished())
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Signals completion to every agent.
    pub fn finish(&self) {
        self.done.set();
    }

    /// True once [`Thinker::finish`] was called.
    pub fn is_done(&self) -> bool {
        self.done.is_set()
    }

    /// The simulation handle.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetflow_sim::time::secs;

    #[test]
    fn agents_run_and_finish() {
        let sim = Sim::new();
        let thinker = Thinker::new(&sim);
        let t2 = Rc::clone(&thinker);
        let s = sim.clone();
        thinker.agent("worker-allocator", async move {
            s.sleep(secs(1.0)).await;
            t2.finish();
        });
        let t3 = Rc::clone(&thinker);
        thinker.agent("waiter", async move {
            t3.done.wait().await;
        });
        assert_eq!(thinker.agent_count(), 2);
        let r = sim.run();
        assert_eq!(r.pending_tasks, 0);
        assert!(thinker.is_done());
        assert_eq!(thinker.finished_agents().len(), 2);
    }

    #[test]
    fn done_flag_observable_before_set() {
        let sim = Sim::new();
        let thinker = Thinker::new(&sim);
        assert!(!thinker.is_done());
        thinker.finish();
        assert!(thinker.is_done());
    }
}
