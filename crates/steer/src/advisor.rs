//! Data-movement advisor — §V-F's recommendations as an executable
//! rule set.
//!
//! The paper closes with concrete guidance:
//!
//! 1. use pass-by-reference and steering policies that hide transfer
//!    latency;
//! 2. transmit data between sites directly for payloads larger than
//!    10 kB — Redis if messages stay under ~100 MB and a direct
//!    connection is feasible, Globus otherwise;
//! 3. keep pass-by-reference even on a conventional workflow system
//!    when data exceed 10 kB, especially if data are reused.
//!
//! [`Advisor`] applies those rules to the observed task records of a
//! run and emits per-topic recommendations, flagging topics whose
//! payloads are so small that proxying them is counterproductive
//! ("our application could be accelerated by avoiding the overhead of
//! proxying small messages", §V-E2).

use crate::lifecycle::TaskRecord;
use hetflow_sim::Samples;
use std::collections::BTreeMap;

/// The §V-F size breakpoints.
pub const INLINE_BELOW: u64 = 10_000;
/// Above this, direct stores stop being clearly better than a transfer
/// service.
pub const DIRECT_STORE_BELOW: u64 = 100_000_000;

/// Recommended data path for one task topic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathChoice {
    /// Send inline through the control plane (payloads < 10 kB).
    Inline,
    /// Pass by reference via a direct store (Redis) — needs an open
    /// port or tunnel between the resources.
    DirectStore,
    /// Pass by reference via the cloud transfer service (Globus).
    TransferService,
}

/// One per-topic recommendation.
#[derive(Clone, Debug)]
pub struct Recommendation {
    /// Task topic.
    pub topic: String,
    /// Median payload size observed (max of input/output medians).
    pub payload_bytes: u64,
    /// Whether the topic's data crosses sites (worker site differs from
    /// the thinker's).
    pub crosses_sites: bool,
    /// The recommended path when direct connections are possible.
    pub with_ports: PathChoice,
    /// The recommended path when they are not.
    pub without_ports: PathChoice,
    /// Median overhead observed in the analyzed run, seconds.
    pub observed_overhead: f64,
}

/// Applies the §V-F rules to observed records.
pub struct Advisor;

impl Advisor {
    /// Produces one recommendation per topic present in `records`.
    /// `thinker_site` determines which topics cross sites.
    pub fn recommend(
        records: &[TaskRecord],
        thinker_site: hetflow_store::SiteId,
    ) -> Vec<Recommendation> {
        let mut by_topic: BTreeMap<&str, Vec<&TaskRecord>> = BTreeMap::new();
        for r in records {
            by_topic.entry(r.topic.as_str()).or_default().push(r);
        }
        by_topic
            .into_iter()
            .map(|(topic, rs)| {
                let mut inputs = Samples::new();
                let mut outputs = Samples::new();
                let mut overheads = Samples::new();
                let crosses = rs.iter().any(|r| r.site != thinker_site);
                for r in &rs {
                    inputs.record(r.input_bytes as f64);
                    outputs.record(r.output_bytes as f64);
                    if let Some(o) = r.timing.overhead() {
                        overheads.record(o.as_secs_f64());
                    }
                }
                let payload = inputs.median().max(outputs.median()) as u64;
                let with_ports = Self::choose(payload, true);
                let without_ports = Self::choose(payload, false);
                Recommendation {
                    topic: topic.to_owned(),
                    payload_bytes: payload,
                    crosses_sites: crosses,
                    with_ports,
                    without_ports,
                    observed_overhead: overheads.median(),
                }
            })
            .collect()
    }

    /// The raw rule: payload size × port feasibility → path.
    pub fn choose(payload_bytes: u64, direct_connection_feasible: bool) -> PathChoice {
        if payload_bytes < INLINE_BELOW {
            PathChoice::Inline
        } else if direct_connection_feasible && payload_bytes < DIRECT_STORE_BELOW {
            PathChoice::DirectStore
        } else {
            PathChoice::TransferService
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // timing fixtures read best as sequential stamps
mod tests {
    use super::*;
    use hetflow_fabric::{TaskTiming, WorkerReport};
    use hetflow_store::SiteId;
    use hetflow_sim::SimTime;
    use std::time::Duration;

    const THINKER: SiteId = SiteId(0);
    const REMOTE: SiteId = SiteId(1);

    fn record(topic: &str, input: u64, output: u64, site: SiteId) -> TaskRecord {
        let mut t = TaskTiming::default();
        t.created = Some(SimTime::ZERO);
        t.inputs_resolved = Some(SimTime::from_millis(100));
        t.compute_finished = Some(SimTime::from_millis(1100));
        t.thinker_notified = Some(SimTime::from_millis(1200));
        t.result_ready = Some(SimTime::from_millis(1300));
        TaskRecord {
            id: 0,
            topic: topic.into(),
            timing: t,
            report: WorkerReport::default(),
            input_bytes: input,
            output_bytes: output,
            thinker_data_wait: Duration::ZERO,
            data_was_local: true,
            site,
            worker: "w".into(),
            outcome: hetflow_fabric::TaskOutcome::Success,
        }
    }

    #[test]
    fn rule_breakpoints() {
        assert_eq!(Advisor::choose(2_000, true), PathChoice::Inline);
        assert_eq!(Advisor::choose(2_000, false), PathChoice::Inline);
        assert_eq!(Advisor::choose(1_000_000, true), PathChoice::DirectStore);
        assert_eq!(Advisor::choose(1_000_000, false), PathChoice::TransferService);
        assert_eq!(Advisor::choose(500_000_000, true), PathChoice::TransferService);
    }

    #[test]
    fn recommends_per_topic() {
        let records = vec![
            record("simulate", 20_000, 20_000, THINKER),
            record("simulate", 20_000, 20_000, THINKER),
            record("infer", 2_400_000_000, 300_000_000, REMOTE),
            record("tiny", 500, 100, THINKER),
        ];
        let recs = Advisor::recommend(&records, THINKER);
        assert_eq!(recs.len(), 3);
        let by_topic: BTreeMap<&str, &Recommendation> =
            recs.iter().map(|r| (r.topic.as_str(), r)).collect();
        let infer = by_topic["infer"];
        assert!(infer.crosses_sites);
        assert_eq!(infer.with_ports, PathChoice::TransferService, "2.4 GB > 100 MB");
        let sim = by_topic["simulate"];
        assert!(!sim.crosses_sites);
        assert_eq!(sim.with_ports, PathChoice::DirectStore);
        let tiny = by_topic["tiny"];
        assert_eq!(tiny.with_ports, PathChoice::Inline, "small payloads stay inline");
        assert_eq!(tiny.without_ports, PathChoice::Inline);
    }

    #[test]
    fn overhead_summarized() {
        let records = vec![record("a", 50_000, 50_000, THINKER)];
        let recs = Advisor::recommend(&records, THINKER);
        // lifetime 1.3 s − compute 1.0 s = 0.3 s overhead.
        assert!((recs[0].observed_overhead - 0.3).abs() < 1e-9);
    }

    #[test]
    fn empty_records_empty_recs() {
        assert!(Advisor::recommend(&[], THINKER).is_empty());
    }
}
