//! Resource allocation between task pools.
//!
//! Colmena thinkers balance a fixed worker allocation between task types
//! at runtime — the fine-tuning application "balances the number of
//! workers devoted to simulation and sampling to maintain a constant
//! number of structures in the audit pool" (§III-B). [`ResourceCounter`]
//! is that mechanism: named pools of slots, with awaitable acquisition
//! and atomic reallocation between pools.

use hetflow_sim::{Permit, Semaphore};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

struct PoolSlots {
    sem: Semaphore,
    registered: std::cell::Cell<usize>,
    /// Set while the fabric endpoints backing this pool are circuit-
    /// broken; allocators consult it to steer rebalancing away from a
    /// pool whose slots cannot currently make progress.
    degraded: std::cell::Cell<bool>,
}

/// Named pools of worker slots.
#[derive(Clone, Default)]
pub struct ResourceCounter {
    pools: Rc<RefCell<BTreeMap<String, Rc<PoolSlots>>>>,
}

impl ResourceCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a pool holding `slots` slots. Panics when the name is
    /// already taken.
    pub fn register(&self, pool: impl Into<String>, slots: usize) {
        let name = pool.into();
        let mut pools = self.pools.borrow_mut();
        assert!(!pools.contains_key(&name), "pool {name} registered twice");
        pools.insert(
            name,
            Rc::new(PoolSlots {
                sem: Semaphore::new(slots),
                registered: std::cell::Cell::new(slots),
                degraded: std::cell::Cell::new(false),
            }),
        );
    }

    fn pool(&self, name: &str) -> Rc<PoolSlots> {
        Rc::clone(
            self.pools
                .borrow()
                .get(name)
                // hetlint: allow(r5) — unknown pool name is a configuration bug, not a runtime fault
                .unwrap_or_else(|| panic!("unknown resource pool {name}")),
        )
    }

    /// Awaits one slot from `pool`; the permit returns it on drop.
    pub async fn acquire(&self, pool: &str) -> Permit {
        self.pool(pool).sem.acquire().await
    }

    /// Takes a slot only if immediately available.
    pub fn try_acquire(&self, pool: &str) -> Option<Permit> {
        self.pool(pool).sem.try_acquire()
    }

    /// Slots currently free in `pool`.
    pub fn available(&self, pool: &str) -> usize {
        self.pool(pool).sem.available()
    }

    /// Total slots ever registered/moved into `pool`.
    pub fn registered(&self, pool: &str) -> usize {
        self.pool(pool).registered.get()
    }

    /// Tasks currently waiting on `pool`.
    pub fn waiting(&self, pool: &str) -> usize {
        self.pool(pool).sem.waiting()
    }

    /// Flags `pool` as (not) degraded. Wired to the fabric's breaker
    /// observers: a pool goes degraded while its backing endpoint's
    /// circuit is open and recovers when it closes again.
    pub fn set_degraded(&self, pool: &str, degraded: bool) {
        self.pool(pool).degraded.set(degraded);
    }

    /// True while `pool` is flagged degraded (backing endpoint circuit-
    /// broken). Allocators should not move slots *into* such a pool.
    pub fn is_degraded(&self, pool: &str) -> bool {
        self.pool(pool).degraded.get()
    }

    /// Returns `n` slots to `pool` without an RAII permit — used when
    /// acquisition and release happen in different agents (dispatcher
    /// acquires, result receiver releases).
    pub fn release(&self, pool: &str, n: usize) {
        self.pool(pool).sem.add_permits(n);
    }

    /// Moves `n` slots from `from` to `to`, waiting until the source
    /// slots are free (so busy workers finish their current task before
    /// switching pools).
    pub async fn reallocate(&self, from: &str, to: &str, n: usize) {
        let src = self.pool(from);
        let dst = self.pool(to);
        let permit = src.sem.acquire_many(n).await;
        permit.forget();
        src.registered.set(src.registered.get() - n);
        dst.sem.add_permits(n);
        dst.registered.set(dst.registered.get() + n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetflow_sim::{time::secs, Sim, SimTime};

    #[test]
    fn register_and_acquire() {
        let sim = Sim::new();
        let rc = ResourceCounter::new();
        rc.register("simulate", 2);
        assert_eq!(rc.available("simulate"), 2);
        let rc2 = rc.clone();
        let h = sim.spawn(async move {
            let _a = rc2.acquire("simulate").await;
            let _b = rc2.acquire("simulate").await;
            rc2.available("simulate")
        });
        assert_eq!(sim.block_on(h), 0);
        assert_eq!(rc.available("simulate"), 2, "permits returned on drop");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_pool_panics() {
        let rc = ResourceCounter::new();
        rc.register("a", 1);
        rc.register("a", 1);
    }

    #[test]
    #[should_panic(expected = "unknown resource pool")]
    fn unknown_pool_panics() {
        let rc = ResourceCounter::new();
        rc.available("ghost");
    }

    #[test]
    fn reallocate_moves_slots() {
        let sim = Sim::new();
        let rc = ResourceCounter::new();
        rc.register("simulate", 4);
        rc.register("sample", 0);
        let rc2 = rc.clone();
        let h = sim.spawn(async move {
            rc2.reallocate("simulate", "sample", 3).await;
            (rc2.available("simulate"), rc2.available("sample"))
        });
        assert_eq!(sim.block_on(h), (1, 3));
        assert_eq!(rc.registered("simulate"), 1);
        assert_eq!(rc.registered("sample"), 3);
    }

    #[test]
    fn reallocate_waits_for_busy_slots() {
        let sim = Sim::new();
        let rc = ResourceCounter::new();
        rc.register("simulate", 1);
        rc.register("sample", 0);
        // Occupy the only slot for 5 seconds.
        {
            let rc = rc.clone();
            let s = sim.clone();
            sim.spawn(async move {
                let _p = rc.acquire("simulate").await;
                s.sleep(secs(5.0)).await;
            });
        }
        let rc2 = rc.clone();
        let s = sim.clone();
        let h = sim.spawn(async move {
            s.sleep(secs(0.1)).await;
            rc2.reallocate("simulate", "sample", 1).await;
            s.now()
        });
        assert_eq!(sim.block_on(h), SimTime::from_secs(5));
        assert_eq!(rc.available("sample"), 1);
    }

    #[test]
    fn degraded_flag_round_trips() {
        let rc = ResourceCounter::new();
        rc.register("simulate", 2);
        assert!(!rc.is_degraded("simulate"), "pools start healthy");
        rc.set_degraded("simulate", true);
        assert!(rc.is_degraded("simulate"));
        rc.set_degraded("simulate", false);
        assert!(!rc.is_degraded("simulate"));
    }

    #[test]
    fn try_acquire_does_not_block() {
        let sim = Sim::new();
        let rc = ResourceCounter::new();
        rc.register("gpu", 1);
        let p = rc.try_acquire("gpu");
        assert!(p.is_some());
        assert!(rc.try_acquire("gpu").is_none());
        drop(p);
        assert!(rc.try_acquire("gpu").is_some());
        drop(sim);
    }
}
