//! Finished-task records and latency decomposition.
//!
//! Every resolved task leaves a [`TaskRecord`]; [`Breakdown`] aggregates
//! the per-component statistics the paper's figures report (Fig. 3/4:
//! component medians/means; Fig. 5: notification + data wait; Fig. 7b:
//! per-topic overheads).

use hetflow_fabric::{TaskOutcome, TaskTiming, WorkerReport};
use hetflow_store::SiteId;
use hetflow_sim::{Samples, Symbol};
use std::collections::BTreeSet;
use std::time::Duration;

/// The complete life-cycle record of one finished task.
#[derive(Clone, Debug)]
pub struct TaskRecord {
    /// Task id.
    pub id: u64,
    /// Task topic.
    pub topic: Symbol,
    /// Life-cycle stamps.
    pub timing: TaskTiming,
    /// Worker-side observations.
    pub report: WorkerReport,
    /// Input data size (bytes of underlying data).
    pub input_bytes: u64,
    /// Output data size (bytes).
    pub output_bytes: u64,
    /// Time the thinker waited to resolve the result data.
    pub thinker_data_wait: Duration,
    /// True when the result data was already at the thinker's site.
    pub data_was_local: bool,
    /// Site that executed the task.
    pub site: SiteId,
    /// Worker label.
    pub worker: Symbol,
    /// How the task ended — failed tasks are records too, so the
    /// steering loop can observe and react to them.
    pub outcome: TaskOutcome,
}

impl TaskRecord {
    /// True when the task failed.
    pub fn is_failed(&self) -> bool {
        self.outcome.is_failed()
    }

    /// True when overload protection shed the task before it ran.
    pub fn is_shed(&self) -> bool {
        self.outcome.is_shed()
    }
}

/// Per-component latency statistics over a set of records.
#[derive(Clone, Debug, Default)]
pub struct Breakdown {
    /// Thinker → server communication.
    pub thinker_to_server: Samples,
    /// Serialization (thinker + server + worker passes + proxying).
    pub serialization: Samples,
    /// Server → worker communication.
    pub server_to_worker: Samples,
    /// Time on the worker.
    pub time_on_worker: Samples,
    /// Worker → server communication.
    pub worker_to_server: Samples,
    /// Server → thinker notification.
    pub server_to_thinker: Samples,
    /// Completion → thinker notified (Fig. 5 top).
    pub notification: Samples,
    /// Thinker notified → data readable (Fig. 5 bottom).
    pub data_wait: Samples,
    /// Full lifetime.
    pub lifetime: Samples,
    /// Lifetime minus compute (Fig. 7b's "overhead").
    pub overhead: Samples,
    /// Worker-side proxy resolve wait.
    pub resolve_wait: Samples,
    /// Time lost to failed attempts and retry backoff (nonzero only
    /// under failure injection) — the bin that makes failure-path
    /// decompositions add up.
    pub wasted: Samples,
    /// Number of records aggregated.
    pub count: usize,
    /// Number of failed records among them.
    pub failed: usize,
    /// Number of records overload protection shed before they ran.
    /// Conservation: `count == finished + failed + shed` for any
    /// duplicate-free record set.
    pub shed: usize,
    /// Duplicate records dropped: later deliveries for a task id that
    /// already has a record (cancelled hedge copies that slipped past
    /// the fabric's arbitration, or replayed notifications). Their
    /// worker time lands in `wasted`, nowhere else — a task id is never
    /// double-counted as both failed and finished.
    pub cancelled: usize,
    /// Total hedge copies issued across the aggregated records.
    pub hedged: u64,
    /// Total failover reroutes across the aggregated records.
    pub rerouted: u64,
}

impl Breakdown {
    /// Aggregates `records`, optionally filtered by topic.
    pub fn of<'a>(records: impl IntoIterator<Item = &'a TaskRecord>, topic: Option<&str>) -> Self {
        let mut b = Breakdown::default();
        let mut seen = BTreeSet::new();
        for r in records {
            if let Some(t) = topic {
                if r.topic != t {
                    continue;
                }
            }
            if !seen.insert(r.id) {
                // Duplicate terminal record for an already-counted id:
                // bin its worker time as waste and move on.
                b.cancelled += 1;
                b.wasted.record(
                    (r.report.compute_time + r.report.wasted_time).as_secs_f64(),
                );
                continue;
            }
            b.count += 1;
            b.hedged += u64::from(r.report.hedges);
            b.rerouted += u64::from(r.report.reroutes);
            let t = &r.timing;
            let push = |s: &mut Samples, v: Option<Duration>| {
                if let Some(v) = v {
                    s.record(v.as_secs_f64());
                }
            };
            push(&mut b.thinker_to_server, t.thinker_to_server());
            push(&mut b.server_to_worker, t.server_to_worker());
            push(&mut b.time_on_worker, t.time_on_worker());
            push(&mut b.worker_to_server, t.worker_to_server());
            push(&mut b.server_to_thinker, t.server_to_thinker());
            push(&mut b.notification, t.notification());
            push(&mut b.data_wait, t.data_wait());
            push(&mut b.lifetime, t.lifetime());
            push(&mut b.overhead, t.overhead());
            b.serialization.record(r.report.ser_time.as_secs_f64());
            b.resolve_wait.record(r.report.resolve_wait.as_secs_f64());
            b.wasted.record(r.report.wasted_time.as_secs_f64());
            if r.is_failed() {
                b.failed += 1;
            } else if r.is_shed() {
                b.shed += 1;
            }
        }
        b
    }

    /// Formats one labelled row of medians in milliseconds — the unit
    /// the figure harnesses print.
    pub fn median_row(&self) -> BreakdownRow {
        BreakdownRow {
            thinker_to_server_ms: self.thinker_to_server.median() * 1e3,
            serialization_ms: self.serialization.median() * 1e3,
            server_to_worker_ms: self.server_to_worker.median() * 1e3,
            time_on_worker_ms: self.time_on_worker.median() * 1e3,
            worker_to_server_ms: self.worker_to_server.median() * 1e3,
            lifetime_ms: self.lifetime.median() * 1e3,
        }
    }

    /// Same components as means (Fig. 4 reports means).
    pub fn mean_row(&self) -> BreakdownRow {
        BreakdownRow {
            thinker_to_server_ms: self.thinker_to_server.mean() * 1e3,
            serialization_ms: self.serialization.mean() * 1e3,
            server_to_worker_ms: self.server_to_worker.mean() * 1e3,
            time_on_worker_ms: self.time_on_worker.mean() * 1e3,
            worker_to_server_ms: self.worker_to_server.mean() * 1e3,
            lifetime_ms: self.lifetime.mean() * 1e3,
        }
    }
}

/// One row of component statistics, in milliseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BreakdownRow {
    /// Thinker → server communication.
    pub thinker_to_server_ms: f64,
    /// Serialization total.
    pub serialization_ms: f64,
    /// Server → worker communication.
    pub server_to_worker_ms: f64,
    /// Time on worker.
    pub time_on_worker_ms: f64,
    /// Worker → server communication.
    pub worker_to_server_ms: f64,
    /// Full lifetime.
    pub lifetime_ms: f64,
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // timing fixtures read best as sequential stamps
mod tests {
    use super::*;
    use hetflow_sim::SimTime;

    fn record(topic: &str, start: u64) -> TaskRecord {
        let mut t = TaskTiming::default();
        t.created = Some(SimTime::from_secs(start));
        t.submitted = Some(SimTime::from_secs(start) + Duration::from_millis(10));
        t.server_received = Some(SimTime::from_secs(start) + Duration::from_millis(20));
        t.dispatched = Some(SimTime::from_secs(start) + Duration::from_millis(30));
        t.worker_started = Some(SimTime::from_secs(start) + Duration::from_millis(130));
        t.inputs_resolved = Some(SimTime::from_secs(start) + Duration::from_millis(150));
        t.compute_finished = Some(SimTime::from_secs(start) + Duration::from_millis(1150));
        t.result_dispatched = Some(SimTime::from_secs(start) + Duration::from_millis(1160));
        t.server_result_received = Some(SimTime::from_secs(start) + Duration::from_millis(1260));
        t.thinker_notified = Some(SimTime::from_secs(start) + Duration::from_millis(1270));
        t.result_ready = Some(SimTime::from_secs(start) + Duration::from_millis(1290));
        TaskRecord {
            id: start,
            topic: topic.into(),
            timing: t,
            report: WorkerReport {
                resolve_wait: Duration::from_millis(15),
                compute_time: Duration::from_secs(1),
                ser_time: Duration::from_millis(5),
                local_inputs: 1,
                remote_inputs: 0,
                attempts: 1,
                wasted_time: Duration::ZERO,
                hedges: 0,
                reroutes: 0,
            },
            input_bytes: 2000,
            output_bytes: 1000,
            thinker_data_wait: Duration::from_millis(20),
            data_was_local: true,
            site: SiteId(0),
            worker: "w/0".into(),
            outcome: TaskOutcome::Success,
        }
    }

    #[test]
    fn breakdown_aggregates_components() {
        let records = vec![record("a", 0), record("a", 10), record("b", 20)];
        let b = Breakdown::of(&records, Some("a"));
        assert_eq!(b.count, 2);
        assert!((b.thinker_to_server.median() - 0.010).abs() < 1e-12);
        assert!((b.server_to_worker.median() - 0.100).abs() < 1e-12);
        assert!((b.time_on_worker.median() - 1.030).abs() < 1e-12);
        assert!((b.notification.median() - 0.120).abs() < 1e-12);
        assert!((b.data_wait.median() - 0.020).abs() < 1e-12);
        assert!((b.lifetime.median() - 1.290).abs() < 1e-12);
        // overhead = lifetime - compute = 0.290
        assert!((b.overhead.median() - 0.290).abs() < 1e-12);
    }

    #[test]
    fn breakdown_without_filter_takes_all() {
        let records = vec![record("a", 0), record("b", 10)];
        let b = Breakdown::of(&records, None);
        assert_eq!(b.count, 2);
    }

    #[test]
    fn median_and_mean_rows() {
        let records = vec![record("a", 0)];
        let b = Breakdown::of(&records, None);
        let med = b.median_row();
        let mean = b.mean_row();
        assert_eq!(med, mean, "single record: median == mean");
        assert!((med.lifetime_ms - 1290.0).abs() < 1e-9);
        assert!((med.serialization_ms - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_is_zeroed() {
        let b = Breakdown::of(&[], None);
        assert_eq!(b.count, 0);
        assert_eq!(b.median_row(), BreakdownRow::default());
    }

    #[test]
    fn duplicate_ids_bin_as_wasted_not_double_counted() {
        let winner = record("a", 0);
        let mut loser = record("a", 0); // same id — a cancelled hedge copy
        loser.outcome = TaskOutcome::Failed(hetflow_fabric::TaskError::Timeout {
            after: Duration::from_secs(1),
        });
        let b = Breakdown::of(&[winner, loser], None);
        assert_eq!(b.count, 1, "one terminal outcome per id");
        assert_eq!(b.failed, 0, "the duplicate must not count as a failure");
        assert_eq!(b.cancelled, 1);
        // The duplicate's worker time (1s compute) lands in the wasted
        // bin; the winner contributes its own zero-waste sample.
        assert_eq!(b.wasted.len(), 2);
        assert!((b.wasted.max() - 1.0).abs() < 1e-12);
        assert_eq!(b.lifetime.len(), 1, "components aggregate the winner only");
    }

    #[test]
    fn shed_records_count_as_shed_not_failed() {
        let ok = record("a", 0);
        let mut shed = record("a", 10);
        shed.outcome = TaskOutcome::Shed;
        let b = Breakdown::of(&[ok, shed], None);
        assert_eq!(b.count, 2);
        assert_eq!(b.failed, 0);
        assert_eq!(b.shed, 1);
    }

    #[test]
    fn hedge_and_reroute_counters_sum_report_fields() {
        let mut a = record("a", 0);
        a.report.hedges = 1;
        let mut c = record("a", 10);
        c.report.reroutes = 2;
        let b = Breakdown::of(&[a, c], None);
        assert_eq!(b.hedged, 1);
        assert_eq!(b.rerouted, 2);
        assert_eq!(b.cancelled, 0);
    }
}
