//! Figure 3: median component times of a no-op task through Colmena +
//! FnX, with task inputs passed (a) inline, (b) via a file-system
//! ProxyStore, (c) via a Redis ProxyStore. 10 kB and 1 MB inputs, 50
//! tasks per cell, thinker + task server on the Theta login node, one
//! KNL worker (§V-C1).
//!
//! Shape targets from the paper: server→worker communication dominates
//! the lifetime; proxying cuts it 2–3× at 10 kB and up to 10× at 1 MB;
//! thinker→server shows similar gains for larger objects.

use hetflow_bench::{print_breakdown_header, print_breakdown_row, size_label, NoopPipeline, StoreKind};

fn main() {
    const N_TASKS: usize = 50;
    println!("=== Fig. 3: no-op task overheads, FnX fabric, 50 tasks/cell ===\n");
    print_breakdown_header();
    let mut no_proxy = Vec::new();
    let mut proxied = Vec::new();
    for &size in &[10_000u64, 1_000_000] {
        for store in [StoreKind::None, StoreKind::Fs, StoreKind::Redis] {
            let b = NoopPipeline::fig3(store).run(size, N_TASKS);
            let row = b.median_row();
            print_breakdown_row(store.label(), &size_label(size), &row);
            match store {
                StoreKind::None => no_proxy.push((size, row)),
                StoreKind::Redis => proxied.push((size, row)),
                _ => {}
            }
        }
        println!();
    }

    println!("--- shape checks vs paper ---");
    for ((size, np), (_, px)) in no_proxy.iter().zip(&proxied) {
        let ratio = np.server_to_worker_ms / px.server_to_worker_ms;
        let expected = if *size == 10_000 { "2-3x" } else { "~10x" };
        println!(
            "server->worker speedup from proxying @ {}: {:.1}x (paper: {})",
            size_label(*size),
            ratio,
            expected
        );
        let tts = np.thinker_to_server_ms / px.thinker_to_server_ms;
        println!(
            "thinker->server speedup from proxying @ {}: {:.1}x (paper: gains grow with size)",
            size_label(*size),
            tts
        );
    }
}
