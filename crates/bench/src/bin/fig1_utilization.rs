//! Figure 1: resource-utilization traces for both applications — the
//! number of tasks running on each resource and the cumulative data
//! transferred to each resource over time. The paper collected these
//! with 20 T4 GPUs and 8 KNL workers on a Parsl deployment without
//! pass-by-reference; we reproduce that configuration.
//!
//! Shape targets: molecular design keeps the GPUs busy in long waves
//! (train-then-infer rounds) and moves an order of magnitude more data
//! (tens of GB to the GPU resource) than surrogate fine-tuning, whose
//! GPU activity is sporadic.

use hetflow_apps::finetune::{self, FinetuneParams};
use hetflow_apps::moldesign::{self, MolDesignParams};
use hetflow_core::platform::{THETA, VENTI};
use hetflow_core::{deploy, DeploymentSpec, UtilizationReport, WorkflowConfig};
use hetflow_sim::{Sim, Tracer};
use std::time::Duration;

fn main() {
    println!("=== Fig. 1: resource utilization, Parsl without pass-by-reference ===");

    // --- Application 1: molecular design --------------------------------
    let sim = Sim::new();
    let deployment = deploy(&sim, WorkflowConfig::Parsl, &DeploymentSpec::default(), Tracer::disabled());
    let outcome = moldesign::run(
        &sim,
        &deployment,
        MolDesignParams {
            library_size: 8_000,
            budget: Duration::from_secs(5 * 3600),
            ..Default::default()
        },
    );
    let report = outcome.utilization();
    println!("\n--- molecular design ---");
    report.print_series(13);
    let md_gpu_bytes = report.total_bytes(VENTI);
    summary(&report);

    // --- Application 2: surrogate fine-tuning ---------------------------
    let sim = Sim::new();
    let deployment = deploy(&sim, WorkflowConfig::Parsl, &DeploymentSpec::default(), Tracer::disabled());
    let outcome = finetune::run(&sim, &deployment, FinetuneParams::default());
    let report = UtilizationReport::from_records(&outcome.records);
    println!("\n--- surrogate fine-tuning ---");
    report.print_series(13);
    let ft_gpu_bytes = report.total_bytes(VENTI);
    summary(&report);

    println!("\n--- shape checks vs paper ---");
    println!(
        "data to GPU resource: moldesign {:.1} GB vs finetune {:.2} GB \
         (paper: order-of-magnitude gap, O(10) GB vs O(1) GB)",
        md_gpu_bytes as f64 / 1e9,
        ft_gpu_bytes as f64 / 1e9
    );
    assert!(
        md_gpu_bytes > 5 * ft_gpu_bytes,
        "molecular design must move much more data"
    );
}

fn summary(report: &UtilizationReport) {
    println!(
        "mean tasks running: theta {:.1}, venti {:.1}; bytes to venti {:.2} GB, to theta {:.2} GB",
        report.mean_running(THETA),
        report.mean_running(VENTI),
        report.total_bytes(VENTI) as f64 / 1e9,
        report.total_bytes(THETA) as f64 / 1e9,
    );
}
