//! Ablation: the auto-proxy size threshold (§V-E2 / §V-F).
//!
//! Sweep the threshold on the fine-tuning campaign (its task mix spans
//! 20 kB to 21 MB) and report per-task-type median overhead. Small
//! thresholds force tiny payloads through the store (adding round
//! trips); huge thresholds push megabytes through the control plane.
//! The paper's 10 kB recommendation should sit at or near the sweet
//! spot.

use hetflow_apps::finetune::{self, FinetuneParams};
use hetflow_core::{deploy, DeploymentSpec, WorkflowConfig};
use hetflow_steer::Breakdown;
use hetflow_sim::{Sim, Tracer};

fn main() {
    println!("=== ablation: auto-proxy threshold (parsl+redis, fine-tuning) ===\n");
    let thresholds: [(u64, &str); 5] = [
        (0, "0"),
        (1_000, "1kB"),
        (10_000, "10kB"),
        (1_000_000, "1MB"),
        (u64::MAX, "inf"),
    ];
    println!(
        "{:>9} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "threshold", "sample (ms)", "simulate (ms)", "train (ms)", "infer (ms)", "all p50 (ms)"
    );
    let mut all_medians = Vec::new();
    for (threshold, label) in thresholds {
        let sim = Sim::new();
        let spec = DeploymentSpec {
            proxy_threshold: Some(threshold),
            ..Default::default()
        };
        let d = deploy(&sim, WorkflowConfig::ParslRedis, &spec, Tracer::disabled());
        let o = finetune::run(&sim, &d, FinetuneParams::default());
        let med = |topic| Breakdown::of(&o.records, Some(topic)).overhead.median() * 1e3;
        let overall = Breakdown::of(&o.records, None).overhead.median() * 1e3;
        println!(
            "{:>9} {:>14.0} {:>14.0} {:>14.0} {:>14.0} {:>14.0}",
            label,
            med("sample"),
            med("simulate"),
            med("train"),
            med("infer"),
            overall
        );
        all_medians.push((threshold, overall));
    }
    println!("\n--- shape check vs paper ---");
    let at = |t: u64| match all_medians.iter().find(|(x, _)| *x == t) {
        Some((_, m)) => *m,
        None => {
            eprintln!("threshold {t} missing from the sweep results");
            std::process::exit(2);
        }
    };
    println!(
        "overall overhead: always-proxy {:.0} ms, 10kB {:.0} ms, never-proxy {:.0} ms",
        at(0),
        at(10_000),
        at(u64::MAX)
    );
    assert!(
        at(10_000) <= at(0) + 1.0 && at(10_000) < at(u64::MAX),
        "the paper's 10 kB threshold should be at or near the optimum"
    );
}
