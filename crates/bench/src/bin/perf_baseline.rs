//! Perf baseline: emits `BENCH_hetflow.json`, the one artifact CI
//! tracks for throughput regressions across PRs.
//!
//! Three probes, all cheap enough for every CI run:
//!
//! - `events_per_sec` — raw DES churn: a few hundred interleaved
//!   sleepers hammer the timer wheel; timer fires per wall second.
//! - `tasks_per_sec` — end-to-end no-op campaign through the FnX
//!   fabric (the Fig. 3 §V-C1 wiring): completed tasks per wall
//!   second, including steering-queue and store hops.
//! - `peak_rss_kb` — the `VmHWM` high-water mark from
//!   `/proc/self/status` (0 on platforms without procfs).
//!
//! Wall-clock reads are legal here: hetlint R1 scopes to sim-driven
//! crates, and `bench` is a driver, not a simulation actor.
//!
//! Usage: `perf_baseline [output.json]` (default `BENCH_hetflow.json`
//! in the current directory). The JSON is also echoed to stdout so CI
//! logs carry the numbers even if the artifact upload fails.

use std::time::{Duration, Instant};

use hetflow_bench::{NoopPipeline, StoreKind};
use hetflow_sim::Sim;

/// Timer-wheel churn: `sleepers` tasks each awaiting `rounds` staggered
/// timers. Returns (timer fires, wall seconds).
fn timer_churn(sleepers: usize, rounds: usize) -> (u64, f64) {
    let start = Instant::now();
    let sim = Sim::new();
    for s in 0..sleepers {
        let sim2 = sim.clone();
        sim.spawn(async move {
            for r in 0..rounds {
                // Staggered, co-prime-ish delays keep the wheel busy
                // rather than batching every fire at one instant.
                let us = (1 + (s * 31 + r * 7) % 97) as u64;
                sim2.sleep(Duration::from_micros(us)).await;
            }
        });
    }
    let report = sim.run();
    (report.timer_fires, start.elapsed().as_secs_f64())
}

/// End-to-end no-op campaign on the FnX fabric. Returns (completed
/// tasks, wall seconds).
fn noop_campaign(n_tasks: usize) -> (usize, f64) {
    let start = Instant::now();
    let breakdown = NoopPipeline::fig3(StoreKind::None).run(10_000, n_tasks);
    (breakdown.count, start.elapsed().as_secs_f64())
}

/// `VmHWM` in kB from procfs; 0 when unavailable so the artifact keeps
/// a stable shape on every platform.
fn peak_rss_kb() -> u64 {
    let status = match std::fs::read_to_string("/proc/self/status") {
        Ok(s) => s,
        Err(_) => return 0,
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let digits: String = rest.chars().filter(|c| c.is_ascii_digit()).collect();
            if let Ok(v) = digits.parse() {
                return v;
            }
        }
    }
    0
}

fn rate(count: u64, secs: f64) -> f64 {
    count as f64 / secs.max(1e-9)
}

fn render(fires: u64, churn_secs: f64, tasks: usize, campaign_secs: f64, rss_kb: u64) -> String {
    format!(
        "{{\n  \"tool\": \"hetflow-bench\",\n  \"schema_version\": 1,\n  \
         \"events_per_sec\": {:.0},\n  \"tasks_per_sec\": {:.1},\n  \
         \"peak_rss_kb\": {rss_kb},\n  \"detail\": {{\n    \
         \"timer_fires\": {fires},\n    \"timer_wall_secs\": {churn_secs:.4},\n    \
         \"noop_tasks\": {tasks},\n    \"noop_wall_secs\": {campaign_secs:.4}\n  }}\n}}\n",
        rate(fires, churn_secs),
        rate(tasks as u64, campaign_secs),
    )
}

fn main() -> std::process::ExitCode {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_hetflow.json".to_string());

    let (fires, churn_secs) = timer_churn(200, 200);
    let (tasks, campaign_secs) = noop_campaign(300);
    let rss_kb = peak_rss_kb();

    let doc = render(fires, churn_secs, tasks, campaign_secs, rss_kb);
    print!("{doc}");
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("perf_baseline: cannot write {out_path}: {e}");
        return std::process::ExitCode::from(2);
    }
    eprintln!("perf_baseline: wrote {out_path}");
    std::process::ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_fires_every_timer() {
        let (fires, _) = timer_churn(10, 10);
        assert_eq!(fires, 100);
    }

    #[test]
    fn campaign_completes_every_task() {
        let (tasks, _) = noop_campaign(5);
        assert_eq!(tasks, 5);
    }

    #[test]
    fn rss_probe_never_fails() {
        // Either a real VmHWM or the 0 fallback; both keep the schema.
        let _ = peak_rss_kb();
    }

    #[test]
    fn artifact_shape_is_stable() {
        let doc = render(100, 0.5, 10, 0.25, 4096);
        for key in [
            "\"tool\": \"hetflow-bench\"",
            "\"schema_version\": 1",
            "\"events_per_sec\": 200",
            "\"tasks_per_sec\": 40.0",
            "\"peak_rss_kb\": 4096",
            "\"timer_fires\": 100",
            "\"noop_tasks\": 10",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
    }

    #[test]
    fn rate_guards_zero_elapsed() {
        assert!(rate(100, 0.0).is_finite());
    }
}
