//! Perf baseline: emits `BENCH_hetflow.json`, the one artifact CI
//! tracks for throughput regressions across PRs.
//!
//! Three probes, all cheap enough for every CI run:
//!
//! - `events_per_sec` — raw DES churn: a few hundred interleaved
//!   sleepers hammer the timer wheel; timer fires per wall second.
//! - `tasks_per_sec` — end-to-end no-op campaign through the FnX
//!   fabric (the Fig. 3 §V-C1 wiring): completed tasks per wall
//!   second, including steering-queue and store hops.
//! - `peak_rss_kb` — the `VmHWM` high-water mark from
//!   `/proc/self/status`. On platforms without procfs the field is
//!   `null`, never a silent `0`: a zero would read as "no memory
//!   used" to a regression gate, while `null` plus the companion
//!   `rss_source` field says "not measured here".
//!
//! Wall-clock reads are legal here: hetlint R1 scopes to sim-driven
//! crates, and `bench` is a driver, not a simulation actor.
//!
//! Usage: `perf_baseline [output.json] [--compare committed.json]`.
//! With `--compare`, the run exits nonzero when either throughput rate
//! regresses more than 30% against the committed baseline — wide
//! enough that shared-runner noise passes, narrow enough that an
//! accidental O(n) slip in the kernel does not. The JSON is also
//! echoed to stdout so CI logs carry the numbers even if the artifact
//! upload fails.

use std::time::{Duration, Instant};

use hetflow_bench::{NoopPipeline, StoreKind};
use hetflow_sim::Sim;

/// Regression gate: fail `--compare` when a rate drops below this
/// fraction of the committed baseline.
const COMPARE_FLOOR: f64 = 0.70;

/// Timer-wheel churn: `sleepers` tasks each awaiting `rounds` staggered
/// timers. Returns (timer fires, wall seconds).
fn timer_churn(sleepers: usize, rounds: usize) -> (u64, f64) {
    let start = Instant::now();
    let sim = Sim::new();
    for s in 0..sleepers {
        let sim2 = sim.clone();
        sim.spawn(async move {
            for r in 0..rounds {
                // Staggered, co-prime-ish delays keep the wheel busy
                // rather than batching every fire at one instant.
                let us = (1 + (s * 31 + r * 7) % 97) as u64;
                sim2.sleep(Duration::from_micros(us)).await;
            }
        });
    }
    let report = sim.run();
    (report.timer_fires, start.elapsed().as_secs_f64())
}

/// End-to-end no-op campaign on the FnX fabric. Returns (completed
/// tasks, wall seconds).
fn noop_campaign(n_tasks: usize) -> (usize, f64) {
    let start = Instant::now();
    let breakdown = NoopPipeline::fig3(StoreKind::None).run(10_000, n_tasks);
    (breakdown.count, start.elapsed().as_secs_f64())
}

/// `VmHWM` in kB from procfs; `None` when the platform has no procfs
/// (or the field is missing) so the artifact says "unmeasured" instead
/// of masquerading as a 0 kB process.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let digits: String = rest.chars().filter(|c| c.is_ascii_digit()).collect();
            if let Ok(v) = digits.parse() {
                return Some(v);
            }
        }
    }
    None
}

fn rate(count: u64, secs: f64) -> f64 {
    count as f64 / secs.max(1e-9)
}

fn render(fires: u64, churn_secs: f64, tasks: usize, campaign_secs: f64, rss_kb: Option<u64>) -> String {
    let (rss, rss_source) = match rss_kb {
        Some(v) => (v.to_string(), "procfs"),
        None => ("null".to_string(), "unavailable"),
    };
    format!(
        "{{\n  \"tool\": \"hetflow-bench\",\n  \"schema_version\": 2,\n  \
         \"events_per_sec\": {:.0},\n  \"tasks_per_sec\": {:.1},\n  \
         \"peak_rss_kb\": {rss},\n  \"rss_source\": \"{rss_source}\",\n  \"detail\": {{\n    \
         \"timer_fires\": {fires},\n    \"timer_wall_secs\": {churn_secs:.4},\n    \
         \"noop_tasks\": {tasks},\n    \"noop_wall_secs\": {campaign_secs:.4}\n  }}\n}}\n",
        rate(fires, churn_secs),
        rate(tasks as u64, campaign_secs),
    )
}

/// Pulls a top-level numeric field out of a baseline artifact. The
/// artifact is our own stable shape (`"key": 123.4,`), so a scan
/// beats a JSON dependency; returns `None` on absent or non-numeric
/// values (including the `null` RSS sentinel).
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares a fresh run against a committed baseline; returns the list
/// of human-readable gate failures (empty = pass). Missing baseline
/// fields are a pass — an older-schema artifact must not brick CI.
fn compare(baseline: &str, events_per_sec: f64, tasks_per_sec: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for (key, got) in [("events_per_sec", events_per_sec), ("tasks_per_sec", tasks_per_sec)] {
        let Some(want) = json_number(baseline, key) else { continue };
        if want <= 0.0 {
            continue;
        }
        let ratio = got / want;
        if ratio < COMPARE_FLOOR {
            failures.push(format!(
                "{key} regressed: {got:.0} vs committed {want:.0} \
                 ({:.0}% of baseline, floor {:.0}%)",
                ratio * 100.0,
                COMPARE_FLOOR * 100.0
            ));
        } else if ratio < 1.0 {
            eprintln!(
                "perf_baseline: {key} at {:.0}% of committed baseline \
                 ({got:.0} vs {want:.0}) — within the {:.0}% floor, not failing",
                ratio * 100.0,
                COMPARE_FLOOR * 100.0
            );
        }
    }
    failures
}

fn main() -> std::process::ExitCode {
    let mut out_path = String::from("BENCH_hetflow.json");
    let mut compare_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--compare" {
            compare_path = args.next();
            if compare_path.is_none() {
                eprintln!("perf_baseline: --compare needs a baseline path");
                return std::process::ExitCode::from(2);
            }
        } else {
            out_path = arg;
        }
    }

    let (fires, churn_secs) = timer_churn(200, 200);
    let (tasks, campaign_secs) = noop_campaign(300);
    let rss_kb = peak_rss_kb();

    let doc = render(fires, churn_secs, tasks, campaign_secs, rss_kb);
    print!("{doc}");
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("perf_baseline: cannot write {out_path}: {e}");
        return std::process::ExitCode::from(2);
    }
    eprintln!("perf_baseline: wrote {out_path}");

    if let Some(path) = compare_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("perf_baseline: cannot read baseline {path}: {e}");
                return std::process::ExitCode::from(2);
            }
        };
        let failures =
            compare(&baseline, rate(fires, churn_secs), rate(tasks as u64, campaign_secs));
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("perf_baseline: FAIL: {f}");
            }
            return std::process::ExitCode::from(1);
        }
        eprintln!("perf_baseline: within {:.0}% of {path}", COMPARE_FLOOR * 100.0);
    }
    std::process::ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_fires_every_timer() {
        let (fires, _) = timer_churn(10, 10);
        assert_eq!(fires, 100);
    }

    #[test]
    fn campaign_completes_every_task() {
        let (tasks, _) = noop_campaign(5);
        assert_eq!(tasks, 5);
    }

    #[test]
    fn rss_probe_never_fails() {
        // Either a real VmHWM or the None sentinel; both keep the schema.
        let _ = peak_rss_kb();
    }

    #[test]
    fn artifact_shape_is_stable() {
        let doc = render(100, 0.5, 10, 0.25, Some(4096));
        for key in [
            "\"tool\": \"hetflow-bench\"",
            "\"schema_version\": 2",
            "\"events_per_sec\": 200",
            "\"tasks_per_sec\": 40.0",
            "\"peak_rss_kb\": 4096",
            "\"rss_source\": \"procfs\"",
            "\"timer_fires\": 100",
            "\"noop_tasks\": 10",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
    }

    #[test]
    fn missing_rss_renders_null_sentinel() {
        let doc = render(100, 0.5, 10, 0.25, None);
        assert!(doc.contains("\"peak_rss_kb\": null"), "null sentinel in {doc}");
        assert!(doc.contains("\"rss_source\": \"unavailable\""), "source tag in {doc}");
        assert!(!doc.contains("\"peak_rss_kb\": 0"), "never a silent zero");
    }

    #[test]
    fn rate_guards_zero_elapsed() {
        assert!(rate(100, 0.0).is_finite());
    }

    #[test]
    fn json_number_reads_artifact_fields() {
        let doc = render(100, 0.5, 10, 0.25, None);
        assert_eq!(json_number(&doc, "events_per_sec"), Some(200.0));
        assert_eq!(json_number(&doc, "tasks_per_sec"), Some(40.0));
        // The null sentinel is "absent" to the gate, not 0.
        assert_eq!(json_number(&doc, "peak_rss_kb"), None);
        assert_eq!(json_number(&doc, "no_such_key"), None);
    }

    #[test]
    fn compare_passes_within_floor_and_fails_beyond() {
        let baseline = render(1000, 1.0, 100, 1.0, Some(1)); // 1000 ev/s, 100 t/s
        assert!(compare(&baseline, 1000.0, 100.0).is_empty(), "equal passes");
        assert!(compare(&baseline, 750.0, 80.0).is_empty(), "noise passes");
        let failures = compare(&baseline, 600.0, 100.0);
        assert_eq!(failures.len(), 1, "40% events drop fails: {failures:?}");
        assert!(failures[0].contains("events_per_sec"));
        let failures = compare(&baseline, 1000.0, 50.0);
        assert_eq!(failures.len(), 1, "50% tasks drop fails: {failures:?}");
    }

    #[test]
    fn compare_tolerates_older_schema_baselines() {
        // A baseline missing the rate keys gates nothing.
        assert!(compare("{\"schema_version\": 1}", 10.0, 10.0).is_empty());
    }
}
