//! Perf baseline: emits `BENCH_hetflow.json`, the one artifact CI
//! tracks for throughput regressions across PRs.
//!
//! Schema v3 probes, all cheap enough for every CI run:
//!
//! - `events_per_sec` — raw DES churn: a few hundred interleaved
//!   sleepers hammer the timer wheel; timer fires per wall second.
//! - `tasks_per_sec` — end-to-end no-op campaign through the FnX
//!   fabric (the Fig. 3 §V-C1 wiring): completed tasks per wall
//!   second, including steering-queue and store hops.
//! - `channel_ops_per_sec` — message deliveries per wall second
//!   through the pooled-waker channel (producer/consumer ping).
//! - `store_ops_per_sec` — put+get round trips per wall second
//!   against the arena-backed object store.
//! - `campaign_tasks_per_sec` — a small proxied campaign (Redis
//!   store, 100 kB payloads): the *real* lifecycle with store puts
//!   and proxy resolves, not just control-plane no-ops.
//! - `peak_rss_kb` — the `VmHWM` high-water mark from
//!   `/proc/self/status`. On platforms without procfs the field is
//!   `null`, never a silent `0`: a zero would read as "no memory
//!   used" to a regression gate, while `null` plus the companion
//!   `rss_source` field says "not measured here".
//!
//! Every throughput probe reports its best of three runs (minimum
//! wall time), so one scheduler hiccup on a shared CI runner does not
//! masquerade as a regression.
//!
//! Wall-clock reads are legal here: hetlint R1 scopes to sim-driven
//! crates, and `bench` is a driver, not a simulation actor.
//!
//! Usage: `perf_baseline [output.json] [--compare committed.json]`.
//! With `--compare`, the run exits nonzero when any gated rate
//! regresses more than 30% against the committed baseline — wide
//! enough that shared-runner noise passes, narrow enough that an
//! accidental O(n) slip in the kernel does not. The JSON is also
//! echoed to stdout so CI logs carry the numbers even if the artifact
//! upload fails.
//!
//! Tolerance notes: the 70% floor applies only to the wall-clock
//! rates above. The overload probe lives in its own binary
//! (`overload_sweep`, `BENCH_overload.json`) and needs *no*
//! tolerance at all — every number there is virtual-time-derived and
//! deterministic, so it self-gates on exact thresholds (goodput at 2x
//! saturation >= 80% of peak, bounded p99 queue wait) instead of a
//! noise floor. Do not fold virtual-time metrics into this artifact's
//! compare gate: a deterministic number wrapped in a 30% band is a
//! regression hiding place.

use std::time::{Duration, Instant};

use hetflow_bench::{NoopPipeline, StoreKind};
use hetflow_sim::{channel, Sim};

/// Regression gate: fail `--compare` when a rate drops below this
/// fraction of the committed baseline.
const COMPARE_FLOOR: f64 = 0.70;

/// Runs `probe` three times and returns the fastest run (count,
/// minimum wall seconds): best-of-3 keeps one scheduler hiccup on a
/// shared runner from reading as a regression.
fn best_of_3<C: Copy>(mut probe: impl FnMut() -> (C, f64)) -> (C, f64) {
    let mut best = probe();
    for _ in 0..2 {
        let run = probe();
        if run.1 < best.1 {
            best = run;
        }
    }
    best
}

/// Timer-wheel churn: `sleepers` tasks each awaiting `rounds` staggered
/// timers. Returns (timer fires, wall seconds).
fn timer_churn(sleepers: usize, rounds: usize) -> (u64, f64) {
    let start = Instant::now();
    let sim = Sim::new();
    for s in 0..sleepers {
        let sim2 = sim.clone();
        sim.spawn(async move {
            for r in 0..rounds {
                // Staggered, co-prime-ish delays keep the wheel busy
                // rather than batching every fire at one instant.
                let us = (1 + (s * 31 + r * 7) % 97) as u64;
                sim2.sleep(Duration::from_micros(us)).await;
            }
        });
    }
    let report = sim.run();
    (report.timer_fires, start.elapsed().as_secs_f64())
}

/// End-to-end no-op campaign on the FnX fabric. Returns (completed
/// tasks, wall seconds).
fn noop_campaign(n_tasks: usize) -> (usize, f64) {
    let start = Instant::now();
    let breakdown = NoopPipeline::fig3(StoreKind::None).run(10_000, n_tasks);
    (breakdown.count, start.elapsed().as_secs_f64())
}

/// Channel throughput: one producer streams `n_msgs` values to one
/// consumer through the pooled-waker channel, with the consumer
/// parked between sends so every delivery exercises the waker slot.
/// Returns (messages delivered, wall seconds).
fn channel_churn(n_msgs: usize) -> (usize, f64) {
    let start = Instant::now();
    let sim = Sim::new();
    let (tx, rx) = channel::<usize>();
    let sim2 = sim.clone();
    sim.spawn(async move {
        for i in 0..n_msgs {
            // A 1 µs gap per message forces the receiver to park and
            // re-register its waker slot every iteration — the
            // register/wake/release cycle is exactly what we measure.
            sim2.sleep(Duration::from_micros(1)).await;
            let _ = tx.send_now(i);
        }
    });
    let h = sim.spawn(async move {
        let mut got = 0usize;
        while rx.recv().await.is_some() {
            got += 1;
        }
        got
    });
    let got = sim.block_on(h);
    (got, start.elapsed().as_secs_f64())
}

/// Store object churn: `n_ops` put+get round trips against an
/// Fs-model store (arena-backed object table, count-based eviction so
/// slots recycle). Returns (round trips, wall seconds).
fn store_churn(n_ops: usize) -> (usize, f64) {
    use hetflow_store::{Backend, EvictionPolicy, FsParams, SiteId, SiteSet, Store};
    use std::rc::Rc;
    let start = Instant::now();
    let sim = Sim::new();
    let site = SiteId(0);
    let store = Store::new(
        sim.clone(),
        "bench-fs",
        Backend::Fs(FsParams {
            members: SiteSet::of(&[site]),
            op_latency: hetflow_sim::Dist::Constant(0.0001),
            write_bandwidth: 1e9,
            read_bandwidth: 1e9,
        }),
        hetflow_sim::SimRng::from_seed(7),
    );
    store.set_eviction(EvictionPolicy::AfterResolves(1));
    let s = store.clone();
    let h = sim.spawn(async move {
        let value: Rc<dyn std::any::Any> = Rc::new(());
        let mut done = 0usize;
        for _ in 0..n_ops {
            let Ok(key) = s.put_raw(Rc::clone(&value), 1_000, site).await else { break };
            if s.get_raw(key, site).await.is_err() {
                break;
            }
            done += 1;
        }
        done
    });
    let done = sim.block_on(h);
    (done, start.elapsed().as_secs_f64())
}

/// A small *proxied* campaign: 100 kB payloads auto-proxied through a
/// Redis-model store — store puts, proxy resolves, result envelopes,
/// the full data-plane lifecycle. Returns (tasks, wall seconds).
fn proxied_campaign(n_tasks: usize) -> (usize, f64) {
    let start = Instant::now();
    let breakdown = NoopPipeline::fig3(StoreKind::Redis).run(100_000, n_tasks);
    (breakdown.count, start.elapsed().as_secs_f64())
}

/// `VmHWM` in kB from procfs; `None` when the platform has no procfs
/// (or the field is missing) so the artifact says "unmeasured" instead
/// of masquerading as a 0 kB process.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let digits: String = rest.chars().filter(|c| c.is_ascii_digit()).collect();
            if let Ok(v) = digits.parse() {
                return Some(v);
            }
        }
    }
    None
}

fn rate(count: u64, secs: f64) -> f64 {
    count as f64 / secs.max(1e-9)
}

/// Every measurement the artifact carries.
struct Measurements {
    fires: u64,
    churn_secs: f64,
    tasks: usize,
    campaign_secs: f64,
    channel_msgs: usize,
    channel_secs: f64,
    store_ops: usize,
    store_secs: f64,
    proxied_tasks: usize,
    proxied_secs: f64,
    rss_kb: Option<u64>,
}

impl Measurements {
    fn events_per_sec(&self) -> f64 {
        rate(self.fires, self.churn_secs)
    }
    fn tasks_per_sec(&self) -> f64 {
        rate(self.tasks as u64, self.campaign_secs)
    }
    fn channel_ops_per_sec(&self) -> f64 {
        rate(self.channel_msgs as u64, self.channel_secs)
    }
    fn store_ops_per_sec(&self) -> f64 {
        rate(self.store_ops as u64, self.store_secs)
    }
    fn campaign_tasks_per_sec(&self) -> f64 {
        rate(self.proxied_tasks as u64, self.proxied_secs)
    }

    /// The `(key, value)` pairs the `--compare` gate checks.
    fn gated_rates(&self) -> [(&'static str, f64); 5] {
        [
            ("events_per_sec", self.events_per_sec()),
            ("tasks_per_sec", self.tasks_per_sec()),
            ("channel_ops_per_sec", self.channel_ops_per_sec()),
            ("store_ops_per_sec", self.store_ops_per_sec()),
            ("campaign_tasks_per_sec", self.campaign_tasks_per_sec()),
        ]
    }
}

fn render(m: &Measurements) -> String {
    let (rss, rss_source) = match m.rss_kb {
        Some(v) => (v.to_string(), "procfs"),
        None => ("null".to_string(), "unavailable"),
    };
    format!(
        "{{\n  \"tool\": \"hetflow-bench\",\n  \"schema_version\": 3,\n  \
         \"events_per_sec\": {:.0},\n  \"tasks_per_sec\": {:.1},\n  \
         \"channel_ops_per_sec\": {:.0},\n  \"store_ops_per_sec\": {:.0},\n  \
         \"campaign_tasks_per_sec\": {:.1},\n  \
         \"peak_rss_kb\": {rss},\n  \"rss_source\": \"{rss_source}\",\n  \"detail\": {{\n    \
         \"timer_fires\": {},\n    \"timer_wall_secs\": {:.4},\n    \
         \"noop_tasks\": {},\n    \"noop_wall_secs\": {:.4},\n    \
         \"channel_msgs\": {},\n    \"channel_wall_secs\": {:.4},\n    \
         \"store_round_trips\": {},\n    \"store_wall_secs\": {:.4},\n    \
         \"proxied_tasks\": {},\n    \"proxied_wall_secs\": {:.4}\n  }}\n}}\n",
        m.events_per_sec(),
        m.tasks_per_sec(),
        m.channel_ops_per_sec(),
        m.store_ops_per_sec(),
        m.campaign_tasks_per_sec(),
        m.fires,
        m.churn_secs,
        m.tasks,
        m.campaign_secs,
        m.channel_msgs,
        m.channel_secs,
        m.store_ops,
        m.store_secs,
        m.proxied_tasks,
        m.proxied_secs,
    )
}

/// Pulls a top-level numeric field out of a baseline artifact. The
/// artifact is our own stable shape (`"key": 123.4,`), so a scan
/// beats a JSON dependency; returns `None` on absent or non-numeric
/// values (including the `null` RSS sentinel).
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares a fresh run against a committed baseline; returns the list
/// of human-readable gate failures (empty = pass). Missing baseline
/// fields are a pass — an older-schema artifact must not brick CI.
fn compare(baseline: &str, rates: &[(&str, f64)]) -> Vec<String> {
    let mut failures = Vec::new();
    for &(key, got) in rates {
        let Some(want) = json_number(baseline, key) else { continue };
        if want <= 0.0 {
            continue;
        }
        let ratio = got / want;
        if ratio < COMPARE_FLOOR {
            failures.push(format!(
                "{key} regressed: {got:.0} vs committed {want:.0} \
                 ({:.0}% of baseline, floor {:.0}%)",
                ratio * 100.0,
                COMPARE_FLOOR * 100.0
            ));
        } else if ratio < 1.0 {
            eprintln!(
                "perf_baseline: {key} at {:.0}% of committed baseline \
                 ({got:.0} vs {want:.0}) — within the {:.0}% floor, not failing",
                ratio * 100.0,
                COMPARE_FLOOR * 100.0
            );
        }
    }
    failures
}

fn main() -> std::process::ExitCode {
    let mut out_path = String::from("BENCH_hetflow.json");
    let mut compare_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--compare" {
            compare_path = args.next();
            if compare_path.is_none() {
                eprintln!("perf_baseline: --compare needs a baseline path");
                return std::process::ExitCode::from(2);
            }
        } else {
            out_path = arg;
        }
    }

    let (fires, churn_secs) = best_of_3(|| timer_churn(200, 200));
    let (tasks, campaign_secs) = best_of_3(|| noop_campaign(300));
    let (channel_msgs, channel_secs) = best_of_3(|| channel_churn(50_000));
    let (store_ops, store_secs) = best_of_3(|| store_churn(20_000));
    let (proxied_tasks, proxied_secs) = best_of_3(|| proxied_campaign(150));
    let m = Measurements {
        fires,
        churn_secs,
        tasks,
        campaign_secs,
        channel_msgs,
        channel_secs,
        store_ops,
        store_secs,
        proxied_tasks,
        proxied_secs,
        rss_kb: peak_rss_kb(),
    };

    let doc = render(&m);
    print!("{doc}");
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("perf_baseline: cannot write {out_path}: {e}");
        return std::process::ExitCode::from(2);
    }
    eprintln!("perf_baseline: wrote {out_path}");

    if let Some(path) = compare_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("perf_baseline: cannot read baseline {path}: {e}");
                return std::process::ExitCode::from(2);
            }
        };
        let failures = compare(&baseline, &m.gated_rates());
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("perf_baseline: FAIL: {f}");
            }
            return std::process::ExitCode::from(1);
        }
        eprintln!("perf_baseline: within {:.0}% of {path}", COMPARE_FLOOR * 100.0);
    }
    std::process::ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Measurements {
        Measurements {
            fires: 100,
            churn_secs: 0.5,
            tasks: 10,
            campaign_secs: 0.25,
            channel_msgs: 500,
            channel_secs: 0.1,
            store_ops: 300,
            store_secs: 0.2,
            proxied_tasks: 20,
            proxied_secs: 0.4,
            rss_kb: Some(4096),
        }
    }

    #[test]
    fn churn_fires_every_timer() {
        let (fires, _) = timer_churn(10, 10);
        assert_eq!(fires, 100);
    }

    #[test]
    fn campaign_completes_every_task() {
        let (tasks, _) = noop_campaign(5);
        assert_eq!(tasks, 5);
    }

    #[test]
    fn channel_probe_delivers_every_message() {
        let (got, _) = channel_churn(100);
        assert_eq!(got, 100);
    }

    #[test]
    fn store_probe_round_trips_every_op() {
        let (done, _) = store_churn(50);
        assert_eq!(done, 50);
    }

    #[test]
    fn proxied_campaign_completes_every_task() {
        let (tasks, _) = proxied_campaign(3);
        assert_eq!(tasks, 3);
    }

    #[test]
    fn best_of_3_keeps_fastest_run() {
        let mut walls = [0.9, 0.2, 0.5].into_iter();
        let (count, secs) = best_of_3(|| (1u64, walls.next().unwrap()));
        assert_eq!(count, 1);
        assert_eq!(secs, 0.2);
    }

    #[test]
    fn rss_probe_never_fails() {
        // Either a real VmHWM or the None sentinel; both keep the schema.
        let _ = peak_rss_kb();
    }

    #[test]
    fn artifact_shape_is_stable() {
        let doc = render(&sample());
        for key in [
            "\"tool\": \"hetflow-bench\"",
            "\"schema_version\": 3",
            "\"events_per_sec\": 200",
            "\"tasks_per_sec\": 40.0",
            "\"channel_ops_per_sec\": 5000",
            "\"store_ops_per_sec\": 1500",
            "\"campaign_tasks_per_sec\": 50.0",
            "\"peak_rss_kb\": 4096",
            "\"rss_source\": \"procfs\"",
            "\"timer_fires\": 100",
            "\"noop_tasks\": 10",
            "\"channel_msgs\": 500",
            "\"store_round_trips\": 300",
            "\"proxied_tasks\": 20",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
    }

    #[test]
    fn missing_rss_renders_null_sentinel() {
        let mut m = sample();
        m.rss_kb = None;
        let doc = render(&m);
        assert!(doc.contains("\"peak_rss_kb\": null"), "null sentinel in {doc}");
        assert!(doc.contains("\"rss_source\": \"unavailable\""), "source tag in {doc}");
        assert!(!doc.contains("\"peak_rss_kb\": 0"), "never a silent zero");
    }

    #[test]
    fn rate_guards_zero_elapsed() {
        assert!(rate(100, 0.0).is_finite());
    }

    #[test]
    fn json_number_reads_artifact_fields() {
        let mut m = sample();
        m.rss_kb = None;
        let doc = render(&m);
        assert_eq!(json_number(&doc, "events_per_sec"), Some(200.0));
        assert_eq!(json_number(&doc, "tasks_per_sec"), Some(40.0));
        assert_eq!(json_number(&doc, "channel_ops_per_sec"), Some(5000.0));
        assert_eq!(json_number(&doc, "store_ops_per_sec"), Some(1500.0));
        assert_eq!(json_number(&doc, "campaign_tasks_per_sec"), Some(50.0));
        // The null sentinel is "absent" to the gate, not 0.
        assert_eq!(json_number(&doc, "peak_rss_kb"), None);
        assert_eq!(json_number(&doc, "no_such_key"), None);
    }

    #[test]
    fn compare_gates_every_schema_v3_rate() {
        let baseline = render(&sample());
        let good = sample().gated_rates();
        assert!(compare(&baseline, &good).is_empty(), "equal passes");
        for i in 0..good.len() {
            let mut dropped = good;
            dropped[i].1 *= 0.5; // well below the 70% floor
            let failures = compare(&baseline, &dropped);
            assert_eq!(failures.len(), 1, "{} drop fails: {failures:?}", good[i].0);
            assert!(failures[0].contains(good[i].0));
            let mut noisy = good;
            noisy[i].1 *= 0.8; // within the floor
            assert!(compare(&baseline, &noisy).is_empty(), "{} noise passes", good[i].0);
        }
    }

    #[test]
    fn compare_tolerates_older_schema_baselines() {
        // A v2 baseline missing the new keys gates only what it has.
        let v2 = "{\"schema_version\": 2, \"events_per_sec\": 100}";
        let rates = [("events_per_sec", 100.0), ("channel_ops_per_sec", 5.0)];
        assert!(compare(v2, &rates).is_empty());
        assert_eq!(compare(v2, &[("events_per_sec", 50.0)]).len(), 1);
        // And one missing every rate key gates nothing.
        assert!(compare("{\"schema_version\": 1}", &rates).is_empty());
    }
}
