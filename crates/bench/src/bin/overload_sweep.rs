//! Overload sweep: emits `BENCH_overload.json`, the offered-load vs
//! goodput/shed-rate/p99-queue-wait characterization of the overload
//! protection stack (bounded queues + admission control).
//!
//! An open-loop generator submits fixed-service-time tasks to an FnX
//! endpoint at a swept multiple of the endpoint's saturation rate
//! (`workers / service_time`). The endpoint runs the full protection
//! stack: a token-bucket admission controller slightly above
//! saturation, a bounded worker queue shedding lowest-priority-then-
//! oldest on overflow. Per sweep point the run records, in *virtual*
//! time:
//!
//! - **goodput** — successful completions per second over the whole
//!   run (including drain);
//! - **shed fraction** — shed results / all results;
//! - **p99 queue wait** — 99th percentile of dispatch→worker-start
//!   delay among successes, the "bounded latency" half of the story.
//!
//! The artifact also reports the knee (the smallest multiplier whose
//! goodput reaches 95% of peak) and self-gates on the robustness
//! acceptance criteria: goodput at 2× saturation must hold ≥ 80% of
//! peak and its p99 queue wait must stay under `P99_BOUND_SECS` — an
//! unprotected queue would grow without bound instead.
//!
//! Wall-clock use is legal here (hetlint R1 scopes to sim-driven
//! crates; bench is a driver), but this binary never needs it: every
//! reported number is virtual-time-derived and deterministic, so the
//! artifact is byte-stable across machines.
//!
//! Usage: `overload_sweep [output.json]`.

use hetflow_core::platform::THETA;
use hetflow_core::Calibration;
use hetflow_fabric::{
    AdmissionConfig, EndpointSpec, Fabric, FnXExecutor, ReliabilityPolicies, ReliabilityPolicy,
    TaskResult, TaskSpec, TaskWork, WorkerPoolConfig,
};
use hetflow_sim::{channel, time, OverflowPolicy, Sim, SimRng, Tracer};
use std::cell::RefCell;
use std::rc::Rc;

/// Workers on the endpoint under test.
const WORKERS: usize = 8;
/// Constant service time per task, seconds.
const SERVICE_SECS: f64 = 1.0;
/// Virtual seconds the generator offers load for.
const HORIZON_SECS: f64 = 300.0;
/// Bounded worker queue: two tasks waiting per worker.
const QUEUE_CAPACITY: usize = 2 * WORKERS;
/// Offered-load multipliers swept, relative to saturation.
const MULTIPLIERS: [f64; 7] = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0];
/// Self-gate: p99 queue wait at 2× saturation must stay under this.
const P99_BOUND_SECS: f64 = 10.0;
/// Self-gate: goodput at 2× saturation as a fraction of peak.
const GOODPUT_FLOOR: f64 = 0.80;

/// One sweep point's virtual-time measurements.
#[derive(Clone, Copy, Debug)]
struct SweepPoint {
    multiplier: f64,
    offered_per_sec: f64,
    submitted: u64,
    completed: u64,
    shed: u64,
    failed: u64,
    goodput_per_sec: f64,
    shed_fraction: f64,
    p99_queue_wait_secs: f64,
    end_secs: f64,
}

/// Terminal-outcome tallies shared between the result consumer and the
/// driver.
#[derive(Default)]
struct Tally {
    completed: u64,
    shed: u64,
    failed: u64,
    /// Dispatch → worker-start delay per success, seconds.
    queue_waits: Vec<f64>,
}

impl Tally {
    fn absorb(&mut self, result: &TaskResult) {
        if result.is_shed() {
            self.shed += 1;
        } else if result.is_failed() {
            self.failed += 1;
        } else {
            self.completed += 1;
            if let (Some(d), Some(w)) =
                (result.timing.dispatched, result.timing.worker_started)
            {
                self.queue_waits.push(w.duration_since(d).as_secs_f64());
            }
        }
    }

    fn total(&self) -> u64 {
        self.completed + self.shed + self.failed
    }
}

/// A fixed-service-time task with a small inline payload.
fn sweep_task(id: u64) -> TaskSpec {
    let value: Rc<dyn std::any::Any> = Rc::new(());
    TaskSpec::new(
        id,
        "noop",
        hetflow_fabric::Arg::Inline { bytes: 1_000, value },
        Rc::new(|_ctx| TaskWork::new((), 1_000, time::secs(SERVICE_SECS))),
    )
}

/// The protection stack under test: admission slightly above
/// saturation, bounded queue shedding lowest priority first.
fn protection(saturation: f64) -> ReliabilityPolicies {
    let policy = ReliabilityPolicy {
        admission: AdmissionConfig {
            rate: saturation * 1.1,
            burst: QUEUE_CAPACITY as f64,
            max_in_flight: 8 * WORKERS,
        },
        ..Default::default()
    };
    ReliabilityPolicies { default: policy, ..Default::default() }
}

/// Runs one offered-load point; everything is virtual time.
fn run_point(multiplier: f64, horizon_secs: f64) -> SweepPoint {
    let saturation = WORKERS as f64 / SERVICE_SECS;
    let offered = multiplier * saturation;
    let cal = Calibration::default();

    let sim = Sim::new();
    let pool = WorkerPoolConfig {
        site: THETA,
        label: "theta".into(),
        workers: WORKERS,
        result_policy: hetflow_store::ProxyPolicy::disabled(),
        ser: cal.ser.clone(),
        local_hop: cal.worker_hop.clone(),
        failure: None,
        retry: hetflow_fabric::RetryPolicies::default(),
        start_delays: Vec::new(),
        pace: hetflow_fabric::Knob::new(1.0),
        crash: hetflow_fabric::Knob::new(0.0),
        queue_capacity: QUEUE_CAPACITY,
        overflow: OverflowPolicy::ShedLowestPriority,
    };
    let (results_tx, results_rx) = channel::<TaskResult>();
    let fabric = Rc::new(FnXExecutor::with_reliability(
        &sim,
        cal.fnx.clone(),
        vec![EndpointSpec::reliable(pool, vec!["noop"])],
        results_tx,
        SimRng::stream(42, "overload-sweep"),
        Tracer::disabled(),
        protection(saturation),
    ));

    // Result consumer: tallies every terminal outcome.
    let tally = Rc::new(RefCell::new(Tally::default()));
    {
        let tally = Rc::clone(&tally);
        sim.spawn_detached(async move {
            while let Some(result) = results_rx.recv().await {
                tally.borrow_mut().absorb(&result);
            }
        });
    }

    // Open-loop generator: one detached submission per interval, so a
    // slow submission path can never throttle the offered load.
    let submitted = {
        let sim2 = sim.clone();
        let interval = time::secs(1.0 / offered);
        let h = sim.spawn(async move {
            let mut id = 0u64;
            while sim2.now().as_secs_f64() < horizon_secs {
                let f = Rc::clone(&fabric);
                let spec = sweep_task(id);
                sim2.spawn_detached(async move {
                    f.submit(spec).await;
                });
                id += 1;
                sim2.sleep(interval).await;
            }
            id
        });
        sim.block_on(h)
    };
    // Drain everything in flight; quiescence means every submission
    // reached a terminal outcome.
    sim.run();

    let end_secs = sim.now().as_secs_f64();
    let t = tally.borrow();
    debug_assert_eq!(t.total(), submitted, "conservation: every submission terminates");
    let mut waits = t.queue_waits.clone();
    waits.sort_by(|a, b| a.total_cmp(b));
    let p99 = if waits.is_empty() {
        0.0
    } else {
        waits[((waits.len() - 1) as f64 * 0.99).round() as usize]
    };
    SweepPoint {
        multiplier,
        offered_per_sec: offered,
        submitted,
        completed: t.completed,
        shed: t.shed,
        failed: t.failed,
        goodput_per_sec: t.completed as f64 / end_secs.max(1e-9),
        shed_fraction: t.shed as f64 / (t.total().max(1)) as f64,
        p99_queue_wait_secs: p99,
        end_secs,
    }
}

/// The smallest multiplier whose goodput reaches 95% of the peak —
/// where the goodput curve flattens.
fn knee(points: &[SweepPoint]) -> f64 {
    let peak = peak_goodput(points);
    points
        .iter()
        .find(|p| p.goodput_per_sec >= 0.95 * peak)
        .map(|p| p.multiplier)
        .unwrap_or(0.0)
}

fn peak_goodput(points: &[SweepPoint]) -> f64 {
    points.iter().map(|p| p.goodput_per_sec).fold(0.0, f64::max)
}

fn render(points: &[SweepPoint]) -> String {
    let peak = peak_goodput(points);
    let at_2x = points.iter().find(|p| p.multiplier == 2.0);
    let goodput_2x_frac = at_2x.map(|p| p.goodput_per_sec / peak.max(1e-9)).unwrap_or(0.0);
    let mut rows = String::new();
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 < points.len() { "," } else { "" };
        rows.push_str(&format!(
            "    {{\"multiplier\": {:.2}, \"offered_per_sec\": {:.2}, \
             \"submitted\": {}, \"completed\": {}, \"shed\": {}, \"failed\": {}, \
             \"goodput_per_sec\": {:.3}, \"shed_fraction\": {:.4}, \
             \"p99_queue_wait_secs\": {:.3}, \"end_secs\": {:.1}}}{sep}\n",
            p.multiplier,
            p.offered_per_sec,
            p.submitted,
            p.completed,
            p.shed,
            p.failed,
            p.goodput_per_sec,
            p.shed_fraction,
            p.p99_queue_wait_secs,
            p.end_secs,
        ));
    }
    format!(
        "{{\n  \"tool\": \"hetflow-bench\",\n  \"bench\": \"overload_sweep\",\n  \
         \"schema_version\": 1,\n  \"workers\": {WORKERS},\n  \
         \"service_secs\": {SERVICE_SECS:.1},\n  \
         \"saturation_per_sec\": {:.2},\n  \"horizon_secs\": {HORIZON_SECS:.0},\n  \
         \"queue_capacity\": {QUEUE_CAPACITY},\n  \
         \"peak_goodput_per_sec\": {peak:.3},\n  \"knee_multiplier\": {:.2},\n  \
         \"goodput_at_2x_fraction_of_peak\": {goodput_2x_frac:.3},\n  \"points\": [\n{rows}  ]\n}}\n",
        WORKERS as f64 / SERVICE_SECS,
        knee(points),
    )
}

/// The acceptance gates this artifact carries; empty = pass.
fn gate(points: &[SweepPoint]) -> Vec<String> {
    let mut failures = Vec::new();
    let peak = peak_goodput(points);
    let Some(p2) = points.iter().find(|p| p.multiplier == 2.0) else {
        return vec!["sweep has no 2x point".into()];
    };
    if p2.goodput_per_sec < GOODPUT_FLOOR * peak {
        failures.push(format!(
            "goodput at 2x saturation collapsed: {:.2}/s vs peak {:.2}/s (floor {:.0}%)",
            p2.goodput_per_sec,
            peak,
            GOODPUT_FLOOR * 100.0
        ));
    }
    if p2.p99_queue_wait_secs > P99_BOUND_SECS {
        failures.push(format!(
            "p99 queue wait at 2x saturation unbounded: {:.1}s > {P99_BOUND_SECS:.1}s",
            p2.p99_queue_wait_secs
        ));
    }
    failures
}

fn main() -> std::process::ExitCode {
    let out_path =
        std::env::args().nth(1).unwrap_or_else(|| String::from("BENCH_overload.json"));
    let points: Vec<SweepPoint> =
        MULTIPLIERS.iter().map(|&m| run_point(m, HORIZON_SECS)).collect();

    let doc = render(&points);
    print!("{doc}");
    if let Err(e) = std::fs::write(&out_path, &doc) {
        eprintln!("overload_sweep: cannot write {out_path}: {e}");
        return std::process::ExitCode::from(2);
    }
    eprintln!("overload_sweep: wrote {out_path}");

    let failures = gate(&points);
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("overload_sweep: FAIL: {f}");
        }
        return std::process::ExitCode::from(1);
    }
    std::process::ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn underload_completes_everything_without_shedding() {
        let p = run_point(0.5, 60.0);
        assert_eq!(p.shed, 0, "no shedding below saturation");
        assert_eq!(p.failed, 0);
        assert_eq!(p.completed, p.submitted);
        assert!(p.p99_queue_wait_secs < 1.0, "p99 {}", p.p99_queue_wait_secs);
    }

    #[test]
    fn heavy_overload_sheds_but_keeps_goodput_and_bounded_waits() {
        let under = run_point(0.75, 60.0);
        let over = run_point(2.0, 60.0);
        assert!(over.shed > 0, "2x saturation must shed");
        assert!(
            over.goodput_per_sec >= GOODPUT_FLOOR * under.goodput_per_sec,
            "goodput collapsed: {:.2} vs {:.2}",
            over.goodput_per_sec,
            under.goodput_per_sec
        );
        assert!(
            over.p99_queue_wait_secs <= P99_BOUND_SECS,
            "p99 unbounded: {}",
            over.p99_queue_wait_secs
        );
    }

    #[test]
    fn points_are_deterministic() {
        let a = run_point(1.5, 30.0);
        let b = run_point(1.5, 30.0);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.shed, b.shed);
        assert_eq!(a.p99_queue_wait_secs.to_bits(), b.p99_queue_wait_secs.to_bits());
    }

    #[test]
    fn artifact_shape_is_stable() {
        let points = [
            SweepPoint {
                multiplier: 1.0,
                offered_per_sec: 8.0,
                submitted: 100,
                completed: 100,
                shed: 0,
                failed: 0,
                goodput_per_sec: 7.5,
                shed_fraction: 0.0,
                p99_queue_wait_secs: 0.4,
                end_secs: 13.0,
            },
            SweepPoint {
                multiplier: 2.0,
                offered_per_sec: 16.0,
                submitted: 200,
                completed: 110,
                shed: 90,
                failed: 0,
                goodput_per_sec: 7.4,
                shed_fraction: 0.45,
                p99_queue_wait_secs: 2.5,
                end_secs: 14.5,
            },
        ];
        let doc = render(&points);
        for key in [
            "\"bench\": \"overload_sweep\"",
            "\"schema_version\": 1",
            "\"peak_goodput_per_sec\": 7.500",
            "\"knee_multiplier\": 1.00",
            "\"goodput_at_2x_fraction_of_peak\": 0.987",
            "\"shed_fraction\": 0.4500",
            "\"p99_queue_wait_secs\": 2.500",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
        assert!(gate(&points).is_empty(), "sample passes its own gate");
    }

    #[test]
    fn gate_catches_collapse_and_unbounded_waits() {
        let good = SweepPoint {
            multiplier: 1.0,
            offered_per_sec: 8.0,
            submitted: 100,
            completed: 100,
            shed: 0,
            failed: 0,
            goodput_per_sec: 8.0,
            shed_fraction: 0.0,
            p99_queue_wait_secs: 0.4,
            end_secs: 13.0,
        };
        let mut bad2x = good;
        bad2x.multiplier = 2.0;
        bad2x.goodput_per_sec = 3.0; // collapse
        bad2x.p99_queue_wait_secs = 60.0; // unbounded
        let failures = gate(&[good, bad2x]);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(gate(&[good]).len() == 1, "missing 2x point is a failure");
    }
}
