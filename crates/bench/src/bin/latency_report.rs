//! §V-D in-text statistics: the three latencies an effective steering
//! system must minimize, measured on the FnX+Globus molecular-design
//! campaign.
//!
//! * **Reaction time** — result completing → available to the thinker
//!   (notification ~100 ms–1 s; data access >1 s only cross-site).
//! * **Decision time** — result received → next decision (paper: 5 ms
//!   median to launch the next simulation; ~4 s for decisions that must
//!   read remote data).
//! * **Dispatch time** — decision → task running (paper: ~100 ms for
//!   simulations via the FaaS HTTPS call; 2.5 s / 3.8 s for the first
//!   training / inference task of a round, 67 % / 95 % of which is
//!   proxy resolution; 12 % of inference proxies resolve in <100 ms
//!   thanks to ahead-of-time transfers).
//!
//! Run with `--no-prefetch` to ablate ProxyStore's ahead-of-time
//! transfer (transfers then start at resolve time, not put time).

use hetflow_apps::moldesign::{self, MolDesignParams};
use hetflow_core::{deploy, DeploymentSpec, WorkflowConfig};
use hetflow_steer::Breakdown;
use hetflow_sim::{Samples, Sim, Tracer};
use std::time::Duration;

fn main() {
    let no_prefetch = std::env::args().any(|a| a == "--no-prefetch");
    let sim = Sim::new();
    let mut spec = DeploymentSpec::default();
    if no_prefetch {
        // Ablation: model the loss of ahead-of-time transfers by making
        // every transfer start only when the consumer asks — approximated
        // by zeroing the transfer service's concurrency (forcing full
        // queueing) is wrong; instead we disable the push below by
        // raising the request latency to cover the median transfer too.
        spec.calibration.globus.request_latency =
            hetflow_sim::Dist::Constant(0.45 + 1.9);
        spec.calibration.globus.service_time = hetflow_sim::Dist::Constant(0.0);
    }
    let deployment = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, Tracer::disabled());
    let outcome = moldesign::run(
        &sim,
        &deployment,
        MolDesignParams {
            library_size: 8_000,
            budget: Duration::from_secs(5 * 3600),
            ..Default::default()
        },
    );
    println!(
        "=== §V-D latency report: fnx+globus molecular design{} ===\n",
        if no_prefetch { " (prefetch ablated)" } else { "" }
    );

    // Reaction time.
    println!("-- reaction time --");
    for topic in ["simulate", "train", "infer"] {
        let b = Breakdown::of(&outcome.records, Some(topic));
        println!(
            "{topic:<10} notify p50 {:>6.0} ms | data wait p50 {:>6.0} ms",
            b.notification.median() * 1e3,
            b.data_wait.median() * 1e3
        );
    }

    // Decision time: completion-to-next-submission gaps for simulations.
    // The dispatcher reacts to a freed slot; measure created-stamp gaps
    // after notifications.
    let mut decision = Samples::new();
    let mut notifications: Vec<_> = outcome
        .records
        .iter()
        .filter(|r| r.topic == "simulate")
        .filter_map(|r| r.timing.thinker_notified)
        .collect();
    notifications.sort();
    let mut creations: Vec<_> = outcome
        .records
        .iter()
        .filter(|r| r.topic == "simulate")
        .filter_map(|r| r.timing.created)
        .collect();
    creations.sort();
    for n in &notifications {
        // First submission at or after this notification.
        if let Some(c) = creations.iter().find(|c| *c >= n) {
            decision.record((*c - *n).as_secs_f64());
        }
    }
    println!("\n-- decision time --");
    println!(
        "notification -> next simulation submitted: p50 {:.0} ms (paper: 5 ms, negligible vs reaction)",
        decision.median() * 1e3
    );

    // Dispatch time.
    println!("\n-- dispatch time --");
    for topic in ["simulate", "train", "infer"] {
        let b = Breakdown::of(&outcome.records, Some(topic));
        let resolve_share = if b.time_on_worker.median() > 0.0 {
            100.0 * b.resolve_wait.median()
                / (b.server_to_worker.median() + b.resolve_wait.median()).max(1e-9)
        } else {
            0.0
        };
        println!(
            "{topic:<10} server->worker p50 {:>6.0} ms | input resolve p50 {:>6.0} ms ({resolve_share:.0}% of start latency)",
            b.server_to_worker.median() * 1e3,
            b.resolve_wait.median() * 1e3,
        );
    }

    // Ahead-of-time caching effectiveness.
    let (local, remote) = outcome
        .records
        .iter()
        .filter(|r| r.topic == "infer")
        .fold((0u32, 0u32), |(l, r), rec| {
            (l + rec.report.local_inputs, r + rec.report.remote_inputs)
        });
    println!(
        "\ninference input proxies already local at resolve time: {:.0}% ({local} of {}) \
         (paper: 12% resolve <100 ms, thanks to ahead-of-time transfer)",
        100.0 * f64::from(local) / f64::from(local + remote).max(1.0),
        local + remote,
    );
    let train_b = Breakdown::of(&outcome.records, Some("train"));
    let infer_b = Breakdown::of(&outcome.records, Some("infer"));
    println!(
        "train / infer overhead medians: {:.1} s / {:.1} s vs task times 340 s / 900 s \
         (paper: <1% / <10% of runtime)",
        train_b.overhead.median(),
        infer_b.overhead.median()
    );
}
