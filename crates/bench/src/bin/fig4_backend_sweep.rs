//! Figure 4: mean component times of a no-op task with inputs proxied
//! through each ProxyStore backend, across input sizes 10 kB → 100 MB
//! (§V-C2). Redis and file-system runs place the thinker on the Theta
//! login node; the Globus run places it at UChicago RCC (inter-site).
//!
//! Shape targets: Redis lowest latency for small objects; file system
//! comparable at large sizes; Globus worker time ~constant seconds,
//! independent of input size up to 100 MB; Globus competitive with the
//! direct options beyond ~10 MB.

use hetflow_bench::{print_breakdown_header, print_breakdown_row, size_label, NoopPipeline, StoreKind};
use hetflow_steer::BreakdownRow;
use std::collections::BTreeMap;

fn main() {
    const N_TASKS: usize = 30;
    let sizes: &[u64] = &[10_000, 100_000, 1_000_000, 10_000_000, 100_000_000];
    println!("=== Fig. 4: ProxyStore backend sweep, mean times, 30 tasks/cell ===\n");
    print_breakdown_header();
    let mut rows: BTreeMap<(&str, u64), BreakdownRow> = BTreeMap::new();
    for store in [StoreKind::Redis, StoreKind::Fs, StoreKind::Globus] {
        for &size in sizes {
            let b = NoopPipeline::fig4(store).run(size, N_TASKS);
            let row = b.mean_row();
            print_breakdown_row(store.label(), &size_label(size), &row);
            rows.insert((store.label(), size), row);
        }
        println!();
    }

    println!("--- shape checks vs paper ---");
    let small = 10_000u64;
    let ser = |s: &str, z: u64| rows[&(s, z)].serialization_ms;
    let worker = |s: &str, z: u64| rows[&(s, z)].time_on_worker_ms;
    let life = |s: &str, z: u64| rows[&(s, z)].lifetime_ms;
    println!(
        "redis vs fs serialization @10kB: {:.2} vs {:.2} ms (paper: Redis much lower)",
        ser("redis", small),
        ser("fs", small)
    );
    println!(
        "redis vs fs serialization @100MB: {:.0} vs {:.0} ms (paper: comparable)",
        ser("redis", 100_000_000),
        ser("fs", 100_000_000)
    );
    println!(
        "globus worker time across sizes: {:.0} / {:.0} / {:.0} ms (paper: constant, seconds)",
        worker("globus", 10_000),
        worker("globus", 1_000_000),
        worker("globus", 100_000_000)
    );
    // §V-F: the 100 MB regime — where does the crossover land?
    println!(
        "lifetime @100MB  redis {:.0} / fs {:.0} / globus {:.0} ms",
        life("redis", 100_000_000),
        life("fs", 100_000_000),
        life("globus", 100_000_000)
    );
    let competitive = life("globus", 100_000_000) / life("redis", 100_000_000);
    println!(
        "globus/redis lifetime ratio @100MB: {competitive:.1}x (paper: competitive beyond ~10 MB)"
    );
}
