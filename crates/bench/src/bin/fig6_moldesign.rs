//! Figure 6 (+ §V-E1 in-text statistics): the molecular-design campaign
//! across the three workflow configurations, three seeds each.
//!
//! (a) molecules with IP above threshold found vs simulation node-time;
//! (b) median ML makespan (paper: FnX+Globus 1565 s < Parsl+Redis
//! 1676 s < Parsl 1828 s) and median CPU idle time between simulations
//! (paper: ~500 ms FnX, ~100 ms Parsl+Redis; both small enough for over
//! 99 % utilization). In-text: FnX+Globus and Parsl+Redis find
//! statistically indistinguishable molecule counts (145.0 vs 140.3, run
//! spread 129–149).

use hetflow_apps::moldesign::{self, MolDesignParams};
use hetflow_core::{deploy, DeploymentSpec, WorkflowConfig};
use hetflow_sim::{Samples, Sim, Tracer};
use std::time::Duration;

const SEEDS: [u64; 3] = [7, 8, 9];

fn main() {
    let base = MolDesignParams {
        library_size: 10_000,
        budget: Duration::from_secs(6 * 3600),
        ..Default::default()
    };
    println!(
        "=== Fig. 6: molecular design, {} candidates, 6 node-hours, {} seeds/config ===\n",
        base.library_size,
        SEEDS.len()
    );

    let mut summary = Vec::new();
    for config in WorkflowConfig::all() {
        let mut found = Samples::new();
        let mut makespans = Samples::new();
        let mut idles = Samples::new();
        let mut curves = Vec::new();
        for seed in SEEDS {
            let sim = Sim::new();
            let spec = DeploymentSpec { seed, ..Default::default() };
            let deployment = deploy(&sim, config, &spec, Tracer::disabled());
            let params = MolDesignParams { seed, ..base.clone() };
            let outcome = moldesign::run(&sim, &deployment, params);
            found.record(outcome.found as f64);
            makespans.extend_from(&outcome.ml_makespans);
            idles.extend_from(&outcome.cpu_idle);
            curves.push(outcome.found_curve);
        }

        // (a) found-vs-node-time curve, averaged over seeds, printed on
        // a coarse grid.
        println!("--- {} : found vs node-hours (mean of seeds) ---", config.label());
        print!("  node-h:");
        for h in 1..=6 {
            print!(" {h:>6}");
        }
        println!();
        print!("  found :");
        for h in 1..=6 {
            let t = (h * 3600) as f64;
            let mean: f64 = curves
                .iter()
                .map(|c| {
                    c.iter().take_while(|&&(x, _)| x <= t).last().map(|&(_, f)| f).unwrap_or(0)
                        as f64
                })
                .sum::<f64>()
                / curves.len() as f64;
            print!(" {mean:>6.1}");
        }
        println!("\n");
        summary.push((config, found, makespans, idles));
    }

    // (b) table.
    println!(
        "{:<12} {:>14} {:>16} {:>14} {:>12}",
        "config", "found (mean)", "found (min-max)", "ml-makespan", "cpu-idle"
    );
    for (config, found, makespans, idles) in &summary {
        println!(
            "{:<12} {:>14.1} {:>9.0}-{:<6.0} {:>11.0} s {:>9.0} ms",
            config.label(),
            found.mean(),
            found.min(),
            found.max(),
            makespans.median(),
            idles.median() * 1e3,
        );
    }

    println!("\n--- shape checks vs paper ---");
    let get = |c: WorkflowConfig| summary.iter().find(|(cc, ..)| *cc == c).unwrap();
    let (_, f_fnx, m_fnx, i_fnx) = get(WorkflowConfig::FnXGlobus);
    let (_, f_red, m_red, i_red) = get(WorkflowConfig::ParslRedis);
    let (_, _f_par, m_par, _) = get(WorkflowConfig::Parsl);
    println!(
        "ml makespan ordering: fnx {:.0} <= parsl+redis {:.0} <= parsl {:.0} (paper: 1565/1676/1828)",
        m_fnx.median(),
        m_red.median(),
        m_par.median()
    );
    println!(
        "scientific parity: fnx found {:.1} vs parsl+redis {:.1}, overlap of ranges {}-{} / {}-{}",
        f_fnx.mean(),
        f_red.mean(),
        f_fnx.min(),
        f_fnx.max(),
        f_red.min(),
        f_red.max()
    );
    println!(
        "cpu idle: fnx {:.0} ms vs parsl+redis {:.0} ms (paper: ~500 vs ~100 ms, both <1% of 60 s tasks)",
        i_fnx.median() * 1e3,
        i_red.median() * 1e3
    );
    let util = 1.0 - i_fnx.median() / (60.0 + i_fnx.median());
    println!("implied fnx CPU utilization: {:.1}% (paper: >99%)", 100.0 * util);
}
