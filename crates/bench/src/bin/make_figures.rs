//! Runs every figure regenerator in paper order. Equivalent to:
//!
//! ```sh
//! for f in fig1_utilization fig3_noop_overheads fig4_backend_sweep \
//!          fig5_notification fig6_moldesign fig7_finetune latency_report; do
//!   cargo run --release -p hetflow-bench --bin $f
//! done
//! ```

use std::process::Command;

fn main() {
    let bins = [
        "fig1_utilization",
        "fig3_noop_overheads",
        "fig4_backend_sweep",
        "fig5_notification",
        "latency_report",
        "fig6_moldesign",
        "fig7_finetune",
        "advisor_report",
        "ablation_backlog",
        "ablation_threshold",
        "ablation_steering",
    ];
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot locate the figure binaries: current_exe failed: {e}");
            std::process::exit(2);
        }
    };
    let Some(dir) = exe.parent().map(std::path::Path::to_path_buf) else {
        eprintln!("cannot locate the figure binaries: {} has no parent", exe.display());
        std::process::exit(2);
    };
    for bin in bins {
        println!("\n################ {bin} ################\n");
        let status = Command::new(dir.join(bin))
            .status()
            // hetlint: allow(r5) — CLI driver: a figure binary that cannot launch must abort loudly
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!("\nall figures regenerated");
}
