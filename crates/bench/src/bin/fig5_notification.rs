//! Figure 5: result-notification timings in the molecular-design
//! application on the FnX+Globus deployment (§V-D1).
//!
//! Top panel: time between a task finishing its computation and the
//! thinker being notified, per task type. Bottom panel: how long the
//! thinker then waits for the result *data*.
//!
//! Shape targets: simulation notification fastest (~0.5 s median,
//! shared file system — no transfer to start); training/inference
//! notification limited by the ~500 ms HTTPS call that initiates a
//! Globus transfer; data waits exceed 1 s only for cross-resource
//! results (1–5 s Globus transfers).

use hetflow_apps::moldesign::{self, MolDesignParams};
use hetflow_core::{deploy, DeploymentSpec, WorkflowConfig};
use hetflow_steer::Breakdown;
use hetflow_sim::{Sim, Tracer};
use std::time::Duration;

fn main() {
    let sim = Sim::new();
    let deployment = deploy(
        &sim,
        WorkflowConfig::FnXGlobus,
        &DeploymentSpec::default(),
        Tracer::disabled(),
    );
    let params = MolDesignParams {
        library_size: 8_000,
        budget: Duration::from_secs(5 * 3600),
        ..Default::default()
    };
    let outcome = moldesign::run(&sim, &deployment, params);
    println!(
        "=== Fig. 5: notification timings, molecular design on fnx+globus ===\n\
         campaign: {} simulations, {} records\n",
        outcome.simulations,
        outcome.records.len()
    );

    println!(
        "{:<10} {:>6} {:>18} {:>18} {:>18}",
        "task", "n", "notify p50 (ms)", "notify p90 (ms)", "data-wait p50 (ms)"
    );
    for topic in ["simulate", "train", "infer"] {
        let b = Breakdown::of(&outcome.records, Some(topic));
        let notify = b.notification.quantiles(&[0.5, 0.9]);
        println!(
            "{:<10} {:>6} {:>18.0} {:>18.0} {:>18.0}",
            topic,
            b.count,
            notify[0] * 1e3,
            notify[1] * 1e3,
            b.data_wait.median() * 1e3,
        );
    }

    println!("\n--- shape checks vs paper ---");
    let sim_b = Breakdown::of(&outcome.records, Some("simulate"));
    let train_b = Breakdown::of(&outcome.records, Some("train"));
    let infer_b = Breakdown::of(&outcome.records, Some("infer"));
    println!(
        "simulate notify {:.0} ms < train notify {:.0} ms (paper: sim fastest, no transfer init)",
        sim_b.notification.median() * 1e3,
        train_b.notification.median() * 1e3
    );
    println!(
        "cross-site data waits: train {:.1} s, infer {:.1} s (paper: 1-5 s Globus transfers)",
        train_b.data_wait.median(),
        infer_b.data_wait.median()
    );
    println!(
        "local data wait: simulate {:.2} s (paper: >1 s only when crossing resources)",
        sim_b.data_wait.median()
    );
}
