//! Ablation: simulation backlog depth (§V-E1).
//!
//! "Utilization can be improved even further by submitting at least one
//! more simulation task to execute than there are CPU workers
//! available." Sweep the backlog 0 → 3 on the FnX+Globus deployment and
//! measure the idle gap between simulation tasks and the implied CPU
//! utilization.

use hetflow_apps::moldesign::{self, MolDesignParams};
use hetflow_core::{deploy, DeploymentSpec, WorkflowConfig};
use hetflow_sim::{Sim, Tracer};
use std::time::Duration;

fn main() {
    println!("=== ablation: simulation backlog depth (fnx+globus) ===\n");
    println!("{:>8} {:>14} {:>14} {:>13}", "backlog", "idle p50 (ms)", "idle p90 (ms)", "utilization");
    let mut idle0 = 0.0;
    let mut idle_last = 0.0;
    for backlog in 0..=3usize {
        let sim = Sim::new();
        let deployment = deploy(
            &sim,
            WorkflowConfig::FnXGlobus,
            &DeploymentSpec::default(),
            Tracer::disabled(),
        );
        let outcome = moldesign::run(
            &sim,
            &deployment,
            MolDesignParams {
                library_size: 6_000,
                budget: Duration::from_secs(4 * 3600),
                backlog,
                ..Default::default()
            },
        );
        let idle_q = outcome.cpu_idle.quantiles(&[0.5, 0.9]);
        let idle = idle_q[0];
        let util = 60.0 / (60.0 + idle);
        println!(
            "{:>8} {:>14.0} {:>14.0} {:>12.2}%",
            backlog,
            idle * 1e3,
            idle_q[1] * 1e3,
            100.0 * util
        );
        if backlog == 0 {
            idle0 = idle;
        }
        idle_last = idle;
    }
    println!("\n--- shape check vs paper ---");
    println!(
        "backlog 0 idle {:.0} ms -> backlog 3 idle {:.0} ms (paper: backlog hides the \
         notify+dispatch loop)",
        idle0 * 1e3,
        idle_last * 1e3
    );
    assert!(idle_last < 0.25 * idle0, "backlog must slash idle time");
}
