//! §V-F recommendations, derived from a real campaign's records: run
//! the fine-tuning application and let the advisor propose a data path
//! per task type.

use hetflow_apps::finetune::{self, FinetuneParams};
use hetflow_core::platform::THETA;
use hetflow_core::{deploy, DeploymentSpec, WorkflowConfig};
use hetflow_steer::{Advisor, PathChoice};
use hetflow_sim::{Sim, Tracer};

fn main() {
    let sim = Sim::new();
    let d = deploy(&sim, WorkflowConfig::FnXGlobus, &DeploymentSpec::default(), Tracer::disabled());
    let outcome = finetune::run(&sim, &d, FinetuneParams::default());
    println!("=== §V-F advisor: surrogate fine-tuning on fnx+globus ===\n");
    println!(
        "{:<10} {:>12} {:>8} {:>16} {:>18} {:>12}",
        "topic", "payload", "x-site", "with ports", "without ports", "overhead"
    );
    let recs = Advisor::recommend(&outcome.records, THETA);
    for r in &recs {
        println!(
            "{:<10} {:>12} {:>8} {:>16} {:>18} {:>10.2} s",
            r.topic,
            format_bytes(r.payload_bytes),
            r.crosses_sites,
            label(r.with_ports),
            label(r.without_ports),
            r.observed_overhead,
        );
    }
    println!("\n(paper: >10 kB => pass by reference; <100 MB with open ports => Redis;");
    println!(" otherwise Globus; sub-10 kB messages should stay inline)");
}

fn label(p: PathChoice) -> &'static str {
    match p {
        PathChoice::Inline => "inline",
        PathChoice::DirectStore => "redis",
        PathChoice::TransferService => "globus",
    }
}

fn format_bytes(b: u64) -> String {
    if b >= 1_000_000_000 {
        format!("{:.1} GB", b as f64 / 1e9)
    } else if b >= 1_000_000 {
        format!("{:.1} MB", b as f64 / 1e6)
    } else {
        format!("{:.1} kB", b as f64 / 1e3)
    }
}
