//! Ablation: AI steering on/off. The paper's premise (§III-A) is that
//! active learning concentrates the simulation budget on promising
//! candidates; with steering disabled, the same budget is spent on a
//! random queue and the discovery rate collapses to the base rate.

use hetflow_apps::moldesign::{self, MolDesignParams, SteeringMode};
use hetflow_core::{deploy, DeploymentSpec, WorkflowConfig};
use hetflow_sim::{Sim, Tracer};
use std::time::Duration;

fn main() {
    println!("=== ablation: steering policy (fnx+globus, 3 seeds) ===\n");
    println!("{:<16} {:>6} {:>8} {:>10}", "policy", "sims", "found", "hit-rate");
    let mut rates = Vec::new();
    for steering in [SteeringMode::ActiveLearning, SteeringMode::Random] {
        let mut sims = 0usize;
        let mut found = 0usize;
        for seed in [7u64, 8, 9] {
            let sim = Sim::new();
            let d = deploy(
                &sim,
                WorkflowConfig::FnXGlobus,
                &DeploymentSpec { seed, ..Default::default() },
                Tracer::disabled(),
            );
            let o = moldesign::run(
                &sim,
                &d,
                MolDesignParams {
                    library_size: 6_000,
                    budget: Duration::from_secs(4 * 3600),
                    steering,
                    seed,
                    ..Default::default()
                },
            );
            sims += o.simulations;
            found += o.found;
        }
        let rate = found as f64 / sims as f64;
        println!("{:<16} {:>6} {:>8} {:>9.2}%", format!("{steering:?}"), sims, found, 100.0 * rate);
        rates.push(rate);
    }
    println!("\n--- shape check ---");
    println!(
        "active-learning hit rate {:.2}% vs random {:.2}% ({:.1}x)",
        100.0 * rates[0],
        100.0 * rates[1],
        rates[0] / rates[1].max(1e-9)
    );
    assert!(rates[0] > 3.0 * rates[1], "steering must beat random decisively");
}
