//! Figure 7: the surrogate fine-tuning campaign across the three
//! workflow configurations, three seeds each.
//!
//! (a) force RMSD on the held-out reference-level test set after
//! fine-tuning (paper: 1.30/1.47/1.36 eV/Å — indistinguishable within
//! run-to-run spread; dashed line = error before fine-tuning).
//! (b) median per-task-type overheads, including the time waiting for
//! result data (grey in the paper). Shape targets: GPU-task overhead
//! largest for FnX+Globus (dominated by Globus transfers, ~2 s per
//! direction); plain-Parsl CPU overhead grows with payload (820 ms for
//! 3 MB sampling vs 20 ms for 20 kB simulation); proxied overheads are
//! size-independent.

use hetflow_apps::finetune::{self, FinetuneParams};
use hetflow_core::{deploy, DeploymentSpec, WorkflowConfig};
use hetflow_steer::Breakdown;
use hetflow_sim::{Samples, Sim, Tracer};

const SEEDS: [u64; 3] = [11, 12, 13];

fn main() {
    let base = FinetuneParams::default();
    println!(
        "=== Fig. 7: surrogate fine-tuning, {} pretrain + {} new structures, {} seeds ===\n",
        base.pretrain_structures,
        base.target_new,
        SEEDS.len()
    );

    struct Row {
        config: WorkflowConfig,
        rmsd: Samples,
        initial: f64,
        overheads: Vec<(String, f64, f64)>, // (topic, overhead_ms, data_wait_ms)
    }

    let mut rows = Vec::new();
    for config in WorkflowConfig::all() {
        let mut rmsd = Samples::new();
        let mut initial = 0.0;
        let mut records = Vec::new();
        for seed in SEEDS {
            let sim = Sim::new();
            let spec = DeploymentSpec { seed, ..Default::default() };
            let deployment = deploy(&sim, config, &spec, Tracer::disabled());
            let params = FinetuneParams { seed, ..base.clone() };
            let outcome = finetune::run(&sim, &deployment, params);
            rmsd.record(outcome.final_force_rmsd);
            initial = outcome.initial_force_rmsd;
            records.extend(outcome.records);
        }
        let mut overheads = Vec::new();
        for topic in ["sample", "simulate", "train", "infer"] {
            let b = Breakdown::of(&records, Some(topic));
            overheads.push((
                topic.to_owned(),
                b.overhead.median() * 1e3,
                b.data_wait.median() * 1e3,
            ));
        }
        rows.push(Row { config, rmsd, initial, overheads });
    }

    println!("--- (a) force RMSD on the test set ---");
    println!("{:<12} {:>16} {:>14}", "config", "rmsd (mean±sem)", "pre-finetune");
    for r in &rows {
        println!(
            "{:<12} {:>10.3}±{:<5.3} {:>14.3}",
            r.config.label(),
            r.rmsd.mean(),
            r.rmsd.std_err(),
            r.initial
        );
    }

    println!("\n--- (b) median per-task overheads (ms); [data-wait share] ---");
    print!("{:<12}", "config");
    for t in ["sample", "simulate", "train", "infer"] {
        print!(" {t:>18}");
    }
    println!();
    for r in &rows {
        print!("{:<12}", r.config.label());
        for (_, overhead, wait) in &r.overheads {
            print!(" {:>9.0} [{:>5.0}]", overhead, wait);
        }
        println!();
    }

    println!("\n--- shape checks vs paper ---");
    let get = |c: WorkflowConfig| rows.iter().find(|r| r.config == c).unwrap();
    let fnx = get(WorkflowConfig::FnXGlobus);
    let redis = get(WorkflowConfig::ParslRedis);
    let parsl = get(WorkflowConfig::Parsl);
    // (a) parity: spreads overlap.
    let spread = |r: &Row| (r.rmsd.min(), r.rmsd.max());
    println!(
        "rmsd ranges: fnx {:?} redis {:?} parsl {:?} (paper: run-to-run spread exceeds config gaps)",
        spread(fnx),
        spread(redis),
        spread(parsl)
    );
    for r in &rows {
        assert!(
            r.rmsd.mean() < r.initial,
            "{}: fine-tuning must improve on {:.3}",
            r.config.label(),
            r.initial
        );
    }
    // (b) FnX GPU-task overhead largest; Parsl payload-dependence.
    let train_overhead = |r: &Row| r.overheads[2].1;
    println!(
        "train-task overhead: fnx {:.0} ms > parsl+redis {:.0} ms (paper: Globus transfer dominates)",
        train_overhead(fnx),
        train_overhead(redis)
    );
    let sample_parsl = parsl.overheads[0].1;
    let sim_parsl = parsl.overheads[1].1;
    println!(
        "plain parsl: sampling (3 MB) {:.0} ms vs simulation (20 kB) {:.0} ms \
         (paper: 820 vs 20 ms — strongly size-dependent)",
        sample_parsl, sim_parsl
    );
    let sample_redis = redis.overheads[0].1;
    let sim_redis = redis.overheads[1].1;
    println!(
        "parsl+redis: sampling {:.0} ms vs simulation {:.0} ms \
         (paper: 200 vs 170 ms — roughly size-independent)",
        sample_redis, sim_redis
    );
}
