//! # hetflow-bench — experiment harnesses
//!
//! Shared wiring for the figure-regeneration binaries (`src/bin/fig*`)
//! and the criterion microbenches (`benches/`). The builders here are
//! deliberately more flexible than [`hetflow_core::deploy`]: the
//! synthetic experiments of §V-C place the thinker at different sites
//! and pin single backends, which the production configurations never
//! do.

use hetflow_core::platform::{RCC, THETA, VENTI};
use hetflow_core::Calibration;
use hetflow_fabric::{
    EndpointSpec, Fabric, FnXExecutor, HtexEndpoint, HtexExecutor, TaskWork, WorkerPoolConfig,
};
use hetflow_steer::{Breakdown, ClientQueues, Payload, QueueConfig, TaskServer};
use hetflow_store::{Backend, GlobusBackend, GlobusService, ProxyPolicy, SiteId, Store};
use hetflow_sim::{channel, Sim, SimRng, Tracer};
use std::rc::Rc;

/// Which compute fabric a synthetic pipeline uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FabricKind {
    /// Cloud-managed FaaS (FuncX model).
    FnX,
    /// Direct-connection executor (Parsl HTEX model).
    Htex,
}

/// Which ProxyStore backend a synthetic pipeline proxies through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreKind {
    /// No proxying: payloads ride the control plane.
    None,
    /// Redis-model store on the Theta login node.
    Redis,
    /// Shared-file-system store.
    Fs,
    /// Globus-model store between the thinker's site and Theta.
    Globus,
}

impl StoreKind {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            StoreKind::None => "no-proxy",
            StoreKind::Redis => "redis",
            StoreKind::Fs => "fs",
            StoreKind::Globus => "globus",
        }
    }
}

/// Configuration of a synthetic no-op pipeline (§V-C).
#[derive(Clone)]
pub struct NoopPipeline {
    /// Compute fabric.
    pub fabric: FabricKind,
    /// Proxy backend ([`StoreKind::None`] disables proxying).
    pub store: StoreKind,
    /// Auto-proxy threshold in bytes (0 = proxy everything, the Fig. 3
    /// setting).
    pub threshold: u64,
    /// Where the thinker and task server live (Fig. 4 places them at
    /// RCC for the Globus backend).
    pub thinker_site: SiteId,
    /// Number of workers on the Theta endpoint.
    pub workers: usize,
    /// Cost-model constants.
    pub calibration: Calibration,
    /// Master seed.
    pub seed: u64,
}

impl NoopPipeline {
    /// The §V-C1 setup: thinker and server on the Theta login node, one
    /// KNL worker.
    pub fn fig3(store: StoreKind) -> Self {
        NoopPipeline {
            fabric: FabricKind::FnX,
            store,
            threshold: 0,
            thinker_site: THETA,
            workers: 1,
            calibration: Calibration::default(),
            seed: 1234,
        }
    }

    /// The §V-C2 setup: the Globus variant moves the thinker to RCC.
    pub fn fig4(store: StoreKind) -> Self {
        let thinker_site = if store == StoreKind::Globus { RCC } else { THETA };
        NoopPipeline { thinker_site, ..NoopPipeline::fig3(store) }
    }

    /// Builds the pipeline on `sim` and returns the thinker handle.
    pub fn build(&self, sim: &Sim) -> ClientQueues {
        let cal = &self.calibration;
        let rng = SimRng::stream(self.seed, "noop-pipeline");

        let policy = match self.store {
            StoreKind::None => ProxyPolicy::disabled(),
            StoreKind::Redis => {
                let store = Store::new(
                    sim.clone(),
                    "redis",
                    Backend::Redis(cal.redis.clone()),
                    rng.substream(1),
                );
                ProxyPolicy::uniform(store, self.threshold)
            }
            StoreKind::Fs => {
                let store = Store::new(
                    sim.clone(),
                    "fs",
                    Backend::Fs(cal.fs_theta.clone()),
                    rng.substream(1),
                );
                ProxyPolicy::uniform(store, self.threshold)
            }
            StoreKind::Globus => {
                let service = GlobusService::new(sim.clone(), cal.globus.clone(), rng.substream(2));
                let store = Store::new(
                    sim.clone(),
                    "globus",
                    Backend::Globus(Box::new(GlobusBackend {
                        service,
                        src_fs: cal.fs_for(self.thinker_site),
                        dst_fs: cal.fs_theta.clone(),
                        push_to: vec![self.thinker_site, THETA],
                    })),
                    rng.substream(1),
                );
                ProxyPolicy::uniform(store, self.threshold)
            }
        };

        let pool = WorkerPoolConfig {
            site: THETA,
            label: "theta".into(),
            workers: self.workers,
            result_policy: policy.clone(),
            ser: cal.ser.clone(),
            local_hop: cal.worker_hop.clone(),
            failure: None,
            retry: hetflow_fabric::RetryPolicies::default(),
            start_delays: Vec::new(),
            pace: hetflow_fabric::Knob::new(1.0),
            crash: hetflow_fabric::Knob::new(0.0),
            queue_capacity: 0,
            overflow: hetflow_sim::OverflowPolicy::default(),
        };

        let (results_tx, results_rx) = channel();
        let fabric: Rc<dyn Fabric> = match self.fabric {
            FabricKind::FnX => Rc::new(FnXExecutor::new(
                sim,
                cal.fnx.clone(),
                vec![EndpointSpec::reliable(pool, vec!["noop"])],
                results_tx,
                rng.substream(3),
                Tracer::disabled(),
            )),
            FabricKind::Htex => Rc::new(HtexExecutor::new(
                sim,
                cal.htex.clone(),
                vec![HtexEndpoint {
                    pool,
                    topics: vec!["noop"],
                    link: cal.link_theta.clone(),
                }],
                results_tx,
                rng.substream(3),
                Tracer::disabled(),
            )),
        };

        TaskServer::start(
            sim,
            QueueConfig {
                thinker_site: self.thinker_site,
                queue_latency: cal.queue_latency.clone(),
                queue_bandwidth: cal.queue_bandwidth,
                ser: cal.ser.clone(),
                policy,
            },
            fabric,
            results_rx,
            &["noop"],
            rng.substream(4),
            Tracer::disabled(),
        )
    }

    /// Runs `n_tasks` no-op tasks with `size`-byte inputs and returns
    /// the latency breakdown (§V-C runs 50 tasks per cell).
    pub fn run(&self, size: u64, n_tasks: usize) -> Breakdown {
        let sim = Sim::new();
        let queues = self.build(&sim);
        let q = queues.clone();
        let driver = sim.spawn(async move {
            // Hoisted out of the loop: the topic symbol, the compute
            // closure, and the placeholder payload value are shared by
            // every task instead of re-created per submission.
            let topic = hetflow_sim::Symbol::intern("noop");
            let compute: hetflow_fabric::TaskFn = Rc::new(|_| TaskWork::noop());
            let unit: Rc<dyn std::any::Any> = Rc::new(());
            for _ in 0..n_tasks {
                q.submit(
                    topic,
                    [Payload::shared(Rc::clone(&unit), size)],
                    Rc::clone(&compute),
                )
                .await;
                // Sequential, as in the paper's synthetic experiment: one
                // task in flight at a time isolates per-task costs.
                let done = q.get_result(topic).await.expect("result");
                done.resolve().await;
            }
        });
        sim.block_on(driver);
        Breakdown::of(&queues.records(), Some("noop"))
    }
}

/// Prints a breakdown row in the format shared by fig3/fig4.
pub fn print_breakdown_header() {
    println!(
        "{:<10} {:<9} {:>9} {:>11} {:>11} {:>11} {:>11} {:>11}",
        "backend", "size", "t->s(ms)", "serial(ms)", "s->w(ms)", "worker(ms)", "w->s(ms)", "life(ms)"
    );
}

/// One formatted row.
pub fn print_breakdown_row(backend: &str, size_label: &str, row: &hetflow_steer::BreakdownRow) {
    println!(
        "{:<10} {:<9} {:>9.1} {:>11.1} {:>11.1} {:>11.1} {:>11.1} {:>11.1}",
        backend,
        size_label,
        row.thinker_to_server_ms,
        row.serialization_ms,
        row.server_to_worker_ms,
        row.time_on_worker_ms,
        row.worker_to_server_ms,
        row.lifetime_ms
    );
}

/// Human size label.
pub fn size_label(bytes: u64) -> String {
    if bytes >= 1_000_000_000 {
        format!("{}GB", bytes / 1_000_000_000)
    } else if bytes >= 1_000_000 {
        format!("{}MB", bytes / 1_000_000)
    } else {
        format!("{}kB", bytes / 1_000)
    }
}

/// The Venti site, re-exported for bin targets.
pub const GPU_SITE: SiteId = VENTI;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_pipelines_run() {
        for store in [StoreKind::None, StoreKind::Fs, StoreKind::Redis] {
            let b = NoopPipeline::fig3(store).run(10_000, 5);
            assert_eq!(b.count, 5, "{}", store.label());
            assert!(b.lifetime.median() > 0.0);
        }
    }

    #[test]
    fn fig3_proxy_beats_no_proxy_at_1mb() {
        let no_proxy = NoopPipeline::fig3(StoreKind::None).run(1_000_000, 10);
        let redis = NoopPipeline::fig3(StoreKind::Redis).run(1_000_000, 10);
        let ratio = no_proxy.server_to_worker.median() / redis.server_to_worker.median();
        assert!(ratio > 5.0, "server->worker speedup {ratio:.1} (paper: up to 10x)");
    }

    #[test]
    fn fig4_globus_pipeline_crosses_sites() {
        let b = NoopPipeline::fig4(StoreKind::Globus).run(1_000_000, 5);
        assert_eq!(b.count, 5);
        // Worker time includes waiting for the Globus transfer: seconds.
        assert!(b.time_on_worker.mean() > 0.5, "{}", b.time_on_worker.mean());
    }

    #[test]
    fn size_labels() {
        assert_eq!(size_label(10_000), "10kB");
        assert_eq!(size_label(1_000_000), "1MB");
        assert_eq!(size_label(2_000_000_000), "2GB");
    }
}
