//! Microbenchmarks of the DES kernel: event throughput, channel
//! round-trips, semaphore handoff. These bound how large a campaign the
//! simulator can execute per wall-second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetflow_sim::{channel, time::secs, Semaphore, Sim};

fn bench_timer_wheel(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/timers");
    for &n in &[1_000usize, 10_000] {
        g.bench_with_input(BenchmarkId::new("sleepers", n), &n, |b, &n| {
            b.iter(|| {
                let sim = Sim::new();
                for i in 0..n {
                    let s = sim.clone();
                    sim.spawn(async move {
                        s.sleep(secs((i % 97) as f64 * 0.01)).await;
                    });
                }
                let r = sim.run();
                assert_eq!(r.pending_tasks, 0);
            });
        });
    }
    g.finish();
}

fn bench_channel_pingpong(c: &mut Criterion) {
    c.bench_function("kernel/channel_pingpong_10k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let (atx, arx) = channel::<u64>();
            let (btx, brx) = channel::<u64>();
            sim.spawn(async move {
                while let Some(v) = arx.recv().await {
                    if btx.send_now(v + 1).is_err() {
                        break;
                    }
                }
            });
            let h = sim.spawn(async move {
                let mut v = 0;
                for _ in 0..10_000 {
                    atx.send_now(v).unwrap();
                    v = brx.recv().await.unwrap();
                }
                v
            });
            assert_eq!(sim.block_on(h), 10_000);
        });
    });
}

fn bench_semaphore_handoff(c: &mut Criterion) {
    c.bench_function("kernel/semaphore_4way_2k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let sem = Semaphore::new(4);
            for _ in 0..2_000 {
                let sem = sem.clone();
                let s = sim.clone();
                sim.spawn(async move {
                    let _p = sem.acquire().await;
                    s.sleep(secs(0.001)).await;
                });
            }
            sim.run();
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_timer_wheel, bench_channel_pingpong, bench_semaphore_handoff
}
criterion_main!(benches);
