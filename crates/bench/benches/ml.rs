//! ML-substrate microbenches: surrogate training/inference, ensemble
//! parallelism, pair-potential fitting, PES force evaluation, MD
//! stepping — the real computations the campaigns run inside task
//! closures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetflow_chem::{
    pretraining_set, run_md, solvated_methane, EnergyModel, MdParams, MoleculeLibrary, MorsePes,
};
use hetflow_ml::{
    Ensemble, LabelledStructure, PairPotParams, PairPotential, RadialBasis, RffRidge,
    SurrogateParams,
};
use hetflow_sim::SimRng;

fn bench_surrogate(c: &mut Criterion) {
    let lib = MoleculeLibrary::generate(4000, 1);
    let inputs: Vec<Vec<f64>> = (0..400).map(|i| lib.features(i).to_vec()).collect();
    let targets: Vec<f64> = (0..400).map(|i| lib.true_ip(i)).collect();
    c.bench_function("ml/rff_ridge_fit_400", |b| {
        b.iter(|| {
            let mut rng = SimRng::from_seed(2);
            RffRidge::fit(&inputs, &targets, SurrogateParams::default(), &mut rng).unwrap()
        });
    });
    let mut rng = SimRng::from_seed(2);
    let model = RffRidge::fit(&inputs, &targets, SurrogateParams::default(), &mut rng).unwrap();
    c.bench_function("ml/rff_predict_4000", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..lib.len() {
                acc += model.predict(&lib.features(i));
            }
            acc
        });
    });
}

fn bench_ensemble_parallelism(c: &mut Criterion) {
    let lib = MoleculeLibrary::generate(2000, 3);
    let inputs: Vec<Vec<f64>> = (0..600).map(|i| lib.features(i).to_vec()).collect();
    let targets: Vec<f64> = (0..600).map(|i| lib.true_ip(i)).collect();
    let train = |_i: usize, mut rng: SimRng| {
        RffRidge::fit(&inputs, &targets, SurrogateParams::default(), &mut rng).unwrap()
    };
    let mut g = c.benchmark_group("ml/ensemble8_fit");
    g.sample_size(10);
    let rng = SimRng::from_seed(4);
    g.bench_function("sequential", |b| b.iter(|| Ensemble::fit(8, &rng, train)));
    g.bench_function("parallel", |b| b.iter(|| Ensemble::fit_parallel(8, &rng, train)));
    g.finish();
}

fn bench_pairpot(c: &mut Criterion) {
    let pes = MorsePes::approx();
    let data: Vec<LabelledStructure> = pretraining_set(60, 5)
        .iter()
        .map(|s| LabelledStructure::from_model(s, &pes, true))
        .collect();
    c.bench_function("ml/pairpot_fit_60f", |b| {
        b.iter(|| {
            PairPotential::fit(&data, RadialBasis::default_for_clusters(), PairPotParams::default())
                .unwrap()
        });
    });
}

fn bench_forces_and_md(c: &mut Criterion) {
    let s = solvated_methane(1);
    let pes = MorsePes::reference();
    c.bench_function("chem/pes_energy_forces_16atoms", |b| {
        b.iter(|| pes.energy_forces(&s));
    });
    let mut g = c.benchmark_group("chem/md_steps");
    for &steps in &[20usize, 200] {
        g.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, &steps| {
            b.iter(|| {
                let mut rng = SimRng::from_seed(6);
                run_md(
                    &pes,
                    &s,
                    MdParams { dt: 0.005, steps, init_temp: 0.1, sample_every: steps },
                    &mut rng,
                )
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_surrogate, bench_ensemble_parallelism, bench_pairpot, bench_forces_and_md
}
criterion_main!(benches);
