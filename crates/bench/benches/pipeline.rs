//! End-to-end pipeline benches: how fast the simulator executes a
//! no-op workload through each fabric, and a scaled-down campaign. The
//! measured wall time is simulator throughput; the virtual-time results
//! are asserted by the figure binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use hetflow_apps::moldesign::{self, MolDesignParams};
use hetflow_bench::{FabricKind, NoopPipeline, StoreKind};
use hetflow_core::{deploy, DeploymentSpec, WorkflowConfig};
use hetflow_sim::{Sim, Tracer};
use std::time::Duration;

fn bench_noop_pipelines(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline/noop50");
    for fabric in [FabricKind::FnX, FabricKind::Htex] {
        for store in [StoreKind::None, StoreKind::Redis] {
            let label = format!("{fabric:?}/{}", store.label());
            g.bench_function(&label, |b| {
                b.iter(|| {
                    let mut p = NoopPipeline::fig3(store);
                    p.fabric = fabric;
                    p.run(100_000, 50)
                });
            });
        }
    }
    g.finish();
}

fn bench_mini_campaign(c: &mut Criterion) {
    c.bench_function("pipeline/moldesign_mini", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let spec = DeploymentSpec { cpu_workers: 4, gpu_workers: 4, ..Default::default() };
            let d = deploy(&sim, WorkflowConfig::FnXGlobus, &spec, Tracer::disabled());
            let outcome = moldesign::run(
                &sim,
                &d,
                MolDesignParams {
                    library_size: 1_000,
                    budget: Duration::from_secs(1800),
                    ensemble_size: 2,
                    retrain_after: 6,
                    ..Default::default()
                },
            );
            outcome.simulations
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(10));
    targets = bench_noop_pipelines, bench_mini_campaign
}
criterion_main!(benches);
