//! Ablation benches for the design choices DESIGN.md calls out. Each
//! measures the *virtual-time* consequence of a mechanism by running
//! the experiment inside the bench body and asserting the expected
//! direction; criterion records the (wall-time) cost of evaluating it.

use criterion::{criterion_group, criterion_main, Criterion};
use hetflow_bench::{NoopPipeline, StoreKind};
use hetflow_core::platform::THETA;
use hetflow_core::Calibration;
use hetflow_store::{GlobusParams, GlobusService, SiteId};
use hetflow_sim::{Sim, SimRng};
use std::time::Duration;

/// Ablation 1: pass-by-reference on/off (the paper's headline
/// mechanism). Virtual lifetime at 1 MB must drop by >3x with proxying.
fn ablation_proxy_on_off(c: &mut Criterion) {
    c.bench_function("ablation/proxy_on_off", |b| {
        b.iter(|| {
            let on = NoopPipeline::fig3(StoreKind::Redis).run(1_000_000, 10);
            let off = NoopPipeline::fig3(StoreKind::None).run(1_000_000, 10);
            let ratio = off.lifetime.median() / on.lifetime.median();
            assert!(ratio > 3.0, "proxying must win at 1MB: {ratio:.1}x");
            ratio
        });
    });
}

/// Ablation 2: proxy threshold. §V-F notes small messages are *hurt* by
/// proxying (store round trips exceed inline cost), so the optimal
/// threshold is nonzero.
fn ablation_threshold(c: &mut Criterion) {
    c.bench_function("ablation/threshold_small_payloads", |b| {
        b.iter(|| {
            // 5 kB payloads: inline (threshold above) vs forced proxy.
            let mut inline = NoopPipeline::fig3(StoreKind::Fs);
            inline.threshold = 10_000; // 5 kB stays inline
            let inline_b = inline.run(5_000, 10);
            let mut forced = NoopPipeline::fig3(StoreKind::Fs);
            forced.threshold = 0;
            let forced_b = forced.run(5_000, 10);
            // The worker must wait on an fs round trip when proxied.
            assert!(
                forced_b.time_on_worker.median() > inline_b.time_on_worker.median(),
                "proxying tiny payloads should cost worker time: {} vs {}",
                forced_b.time_on_worker.median(),
                inline_b.time_on_worker.median()
            );
            forced_b.time_on_worker.median() / inline_b.time_on_worker.median()
        });
    });
}

/// Ablation 3: Globus transfer batching (§V-D1 suggests fusing
/// transfers to dodge the per-user concurrency limit).
fn ablation_transfer_batching(c: &mut Criterion) {
    c.bench_function("ablation/transfer_batching", |b| {
        b.iter(|| {
            let run = |batch: Option<Duration>| {
                let sim = Sim::new();
                let params = GlobusParams { batch_window: batch, ..Default::default() };
                let svc = GlobusService::new(sim.clone(), params, SimRng::from_seed(3));
                // A burst of 12 concurrent transfers on one route — what a
                // training round's simultaneous results produce.
                let waiters: Vec<_> = (0..12)
                    .map(|_| {
                        let svc = svc.clone();
                        sim.spawn(async move {
                            let ticket = svc.initiate(10_000_000, THETA, SiteId(1)).await;
                            ticket.wait().await;
                        })
                    })
                    .collect();
                let h = sim.spawn(async move {
                    hetflow_sim::join_all(waiters).await;
                });
                sim.block_on(h);
                (sim.now().as_secs_f64(), svc.transfer_jobs())
            };
            let (t_plain, jobs_plain) = run(None);
            let (t_batched, jobs_batched) = run(Some(Duration::from_millis(200)));
            assert!(jobs_batched < jobs_plain, "batching must fuse jobs");
            assert!(
                t_batched < t_plain,
                "batching must beat the concurrency limit: {t_batched:.1} vs {t_plain:.1}"
            );
            t_plain / t_batched
        });
    });
}

/// Ablation 4: ahead-of-time transfer (ProxyStore initiates the Globus
/// push at put time). Compare a consumer arriving 5 s after the put
/// with one resolving immediately.
fn ablation_prefetch(c: &mut Criterion) {
    c.bench_function("ablation/prefetch_hides_transfer", |b| {
        b.iter(|| {
            let cal = Calibration::default();
            let sim = Sim::new();
            let service = GlobusService::new(sim.clone(), cal.globus.clone(), SimRng::from_seed(4));
            let store = hetflow_store::Store::new(
                sim.clone(),
                "g",
                hetflow_store::Backend::Globus(Box::new(hetflow_store::GlobusBackend {
                    service,
                    src_fs: cal.fs_theta.clone(),
                    dst_fs: cal.fs_venti.clone(),
                    push_to: vec![SiteId(1)],
                })),
                SimRng::from_seed(5),
            );
            let h = sim.spawn(async move {
                let early = hetflow_store::Proxy::create(&store, (), 10_000_000, THETA)
                    .await
                    .unwrap();
                let late = hetflow_store::Proxy::create(&store, (), 10_000_000, THETA)
                    .await
                    .unwrap();
                // Immediate consumer pays the transfer.
                let eager = early.resolve(SiteId(1)).await.unwrap().wait;
                // Late consumer finds the data already resident.
                let sim2 = store.sim().clone();
                sim2.sleep(hetflow_sim::time::secs(15.0)).await;
                let lazy = late.resolve(SiteId(1)).await.unwrap().wait;
                (eager, lazy)
            });
            let (eager, lazy) = sim.block_on(h);
            assert!(
                lazy < eager / 3,
                "prefetch must hide the transfer: {lazy:?} vs {eager:?}"
            );
            eager.as_secs_f64() / lazy.as_secs_f64().max(1e-6)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_proxy_on_off, ablation_threshold, ablation_transfer_batching, ablation_prefetch
}
criterion_main!(benches);
