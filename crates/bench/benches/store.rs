//! ProxyStore backend microbenches: put + resolve per backend and
//! object size (the Fig. 4 cells as criterion measurements of the
//! simulator itself — wall time here is simulator overhead, the virtual
//! costs are asserted in the fig4 binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetflow_core::platform::{THETA, VENTI};
use hetflow_core::Calibration;
use hetflow_store::{Backend, GlobusBackend, GlobusService, Proxy, Store};
use hetflow_sim::{Sim, SimRng};

fn store_for(sim: &Sim, kind: &str, cal: &Calibration) -> (Store, hetflow_store::SiteId) {
    match kind {
        "redis" => (
            Store::new(sim.clone(), "redis", Backend::Redis(cal.redis.clone()), SimRng::from_seed(1)),
            VENTI, // tunnel consumer
        ),
        "fs" => (
            Store::new(sim.clone(), "fs", Backend::Fs(cal.fs_theta.clone()), SimRng::from_seed(1)),
            THETA,
        ),
        _ => {
            let service = GlobusService::new(sim.clone(), cal.globus.clone(), SimRng::from_seed(2));
            (
                Store::new(
                    sim.clone(),
                    "globus",
                    Backend::Globus(Box::new(GlobusBackend {
                        service,
                        src_fs: cal.fs_theta.clone(),
                        dst_fs: cal.fs_venti.clone(),
                        push_to: vec![VENTI],
                    })),
                    SimRng::from_seed(1),
                ),
                VENTI,
            )
        }
    }
}

fn bench_put_resolve(c: &mut Criterion) {
    let cal = Calibration::default();
    let mut g = c.benchmark_group("store/put_resolve");
    for kind in ["redis", "fs", "globus"] {
        for &size in &[10_000u64, 10_000_000] {
            g.bench_with_input(
                BenchmarkId::new(kind, size),
                &(kind, size),
                |b, &(kind, size)| {
                    b.iter(|| {
                        let sim = Sim::new();
                        let (store, consumer) = store_for(&sim, kind, &cal);
                        let h = sim.spawn(async move {
                            for _ in 0..20 {
                                let p = Proxy::create(&store, 0u8, size, THETA).await.unwrap();
                                p.resolve(consumer).await.unwrap();
                            }
                        });
                        sim.block_on(h);
                    });
                },
            );
        }
    }
    g.finish();
}

fn bench_eviction_churn(c: &mut Criterion) {
    let cal = Calibration::default();
    c.bench_function("store/evict_churn_1k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            let (store, _) = store_for(&sim, "fs", &cal);
            let h = sim.spawn(async move {
                for _ in 0..1_000 {
                    let p = Proxy::create(&store, 0u8, 1_000_000, THETA).await.unwrap();
                    p.resolve(THETA).await.unwrap();
                    p.evict();
                }
                store.resident_bytes()
            });
            assert_eq!(sim.block_on(h), 0);
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_put_resolve, bench_eviction_churn
}
criterion_main!(benches);
