//! Fixture tests: one passing and one failing fixture per rule, plus
//! suppression behavior and false-positive guards.
//!
//! Fixture sources live under `tests/fixtures/` (cargo does not compile
//! files in test subdirectories) and are linted via [`lint_source`]
//! under a synthetic sim-driven context, exactly the code path the
//! workspace walk uses.

use hetflow_lint::{lint_set, lint_source, ratchet, FileContext, FileKind, RuleId};

/// Lints a fixture as if it were sim-driven library code.
fn lint_sim(source: &str) -> hetflow_lint::FileReport {
    let ctx = FileContext::new("sim", FileKind::LibSrc, "crates/sim/src/fixture.rs");
    lint_source(&ctx, source)
}

/// Lints a synthetic multi-file workspace (exercises R7–R9).
fn lint_workspace(inputs: Vec<(FileContext, &str)>) -> hetflow_lint::Report {
    let owned: Vec<(FileContext, String)> =
        inputs.into_iter().map(|(c, s)| (c, s.to_string())).collect();
    // Generous budgets: these tests are about the cross-file rules.
    let budgets = ratchet::parse("sim = 99\nsteer = 99\napps = 99\nfabric = 99\n").unwrap();
    lint_set(&owned, &budgets)
}

fn rules_of(report: &hetflow_lint::FileReport) -> Vec<RuleId> {
    report.violations.iter().map(|v| v.rule).collect()
}

#[test]
fn r1_bad_flags_every_wall_clock_read() {
    let report = lint_sim(include_str!("fixtures/r1_bad.rs"));
    let rules = rules_of(&report);
    assert!(rules.iter().all(|r| *r == RuleId::R1), "{rules:?}");
    // Instant (use + call), SystemTime (use + call), thread::sleep.
    assert!(rules.len() >= 5, "expected ≥5 R1 hits, got {rules:?}");
}

#[test]
fn r1_good_is_clean_despite_comments_and_strings() {
    let report = lint_sim(include_str!("fixtures/r1_good.rs"));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn r2_bad_flags_all_three_entropy_sources() {
    let report = lint_sim(include_str!("fixtures/r2_bad.rs"));
    let rules = rules_of(&report);
    assert_eq!(rules, vec![RuleId::R2, RuleId::R2, RuleId::R2], "{:?}", report.violations);
}

#[test]
fn r2_good_named_streams_are_clean() {
    let report = lint_sim(include_str!("fixtures/r2_good.rs"));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn r2_exempts_the_rng_module_itself() {
    let ctx = FileContext::new("sim", FileKind::LibSrc, "crates/sim/src/rng.rs");
    let report = lint_source(&ctx, include_str!("fixtures/r2_bad.rs"));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn r3_bad_flags_iteration_over_hash_containers() {
    let report = lint_sim(include_str!("fixtures/r3_bad.rs"));
    let rules = rules_of(&report);
    assert!(rules.iter().all(|r| *r == RuleId::R3), "{:?}", report.violations);
    // route.iter(), route.keys(), for s in &seen.
    assert!(rules.len() >= 3, "expected ≥3 R3 hits, got {:?}", report.violations);
}

#[test]
fn r3_good_keyed_lookup_and_btreemap_are_clean() {
    let report = lint_sim(include_str!("fixtures/r3_good.rs"));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn r3_does_not_apply_outside_sim_driven_crates() {
    let ctx = FileContext::new("ml", FileKind::LibSrc, "crates/ml/src/fixture.rs");
    let report = lint_source(&ctx, include_str!("fixtures/r3_bad.rs"));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn r4_bad_flags_os_thread_spawn() {
    let report = lint_sim(include_str!("fixtures/r4_bad.rs"));
    assert_eq!(rules_of(&report), vec![RuleId::R4], "{:?}", report.violations);
}

#[test]
fn r4_good_sim_spawn_is_clean() {
    let report = lint_sim(include_str!("fixtures/r4_good.rs"));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn r4_exempts_the_ml_crate() {
    let ctx = FileContext::new("ml", FileKind::LibSrc, "crates/ml/src/fixture.rs");
    let report = lint_source(&ctx, include_str!("fixtures/r4_bad.rs"));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn r5_counts_library_sites_minus_annotations_and_tests() {
    let report = lint_sim(include_str!("fixtures/r5_budget.rs"));
    // Three countable sites (two unwrap/expect, one panic!): the
    // annotated one and the two inside #[cfg(test)] are excluded.
    assert_eq!(report.unwrap_sites.len(), 3, "{:?}", report.unwrap_sites);
}

#[test]
fn r5_ignores_non_library_files() {
    let ctx = FileContext::new("sim", FileKind::Test, "crates/sim/tests/fixture.rs");
    let report = lint_source(&ctx, include_str!("fixtures/r5_budget.rs"));
    assert!(report.unwrap_sites.is_empty());
}

#[test]
fn r6_bad_flags_ad_hoc_partial_cmp_calls() {
    let report = lint_sim(include_str!("fixtures/r6_bad.rs"));
    assert_eq!(rules_of(&report), vec![RuleId::R6], "{:?}", report.violations);
}

#[test]
fn r6_good_blesses_delegating_definitions_and_total_cmp() {
    let report = lint_sim(include_str!("fixtures/r6_good.rs"));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn reasoned_allow_suppresses_and_is_reported_as_such() {
    let report = lint_sim(include_str!("fixtures/allow_reasoned.rs"));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.suppressed.len(), 1);
    assert!(report.bad_allows.is_empty());
    assert_eq!(report.suppressed[0].rule, RuleId::R1);
}

#[test]
fn reasonless_allow_is_a_violation_in_its_own_right() {
    let report = lint_sim(include_str!("fixtures/allow_reasonless.rs"));
    assert!(report.violations.is_empty(), "the hit itself is suppressed");
    assert_eq!(report.bad_allows.len(), 1, "{:?}", report.bad_allows);
    assert_eq!(report.bad_allows[0].rule, RuleId::BadAllow);
}

// ---- regressions the substring scanner got wrong -----------------------

#[test]
fn r1_aliased_import_call_site_caught() {
    // Old scanner: only the `use std::time::Instant` line matched; the
    // call through the `Wall` alias was invisible.
    let report = lint_sim(include_str!("fixtures/r1_alias_bad.rs"));
    let rules = rules_of(&report);
    assert!(rules.iter().all(|r| *r == RuleId::R1), "{:?}", report.violations);
    assert!(
        report.violations.iter().any(|v| v.line == 9 && v.message.contains("Wall")),
        "Wall::now() call site must be flagged: {:?}",
        report.violations
    );
}

#[test]
fn r3_three_line_chain_caught() {
    // Old scanner: the 2-line join window missed `route\n.borrow()\n.iter()`.
    let report = lint_sim(include_str!("fixtures/r3_multiline_bad.rs"));
    assert_eq!(rules_of(&report), vec![RuleId::R3], "{:?}", report.violations);
    assert_eq!(report.violations[0].line, 9, "anchored on the container name");
}

#[test]
fn r3_for_over_keys_reported_exactly_once() {
    // Old scanner: `for k in route.keys()` fired both the method check
    // and the for-in check — two reports for one loop.
    let report = lint_sim(include_str!("fixtures/r3_single_report.rs"));
    assert_eq!(rules_of(&report), vec![RuleId::R3], "{:?}", report.violations);
}

#[test]
fn r3_name_tracking_handles_ascription_and_tuples() {
    let report = lint_sim(include_str!("fixtures/r3_names.rs"));
    let rules = rules_of(&report);
    assert_eq!(rules, vec![RuleId::R3, RuleId::R3], "{:?}", report.violations);
    // The two real containers are flagged; `scores` (a Vec of maps, the
    // old false positive) and `order` (a BTreeMap) are not.
    for v in &report.violations {
        assert!(
            v.message.contains("`m`") || v.message.contains("`lookup`"),
            "unexpected: {v}"
        );
    }
}

#[test]
fn lexer_torture_fixture_is_silent() {
    let report = lint_sim(include_str!("fixtures/lexer_torture.rs"));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.suppressed.is_empty(), "{:?}", report.suppressed);
    assert!(report.bad_allows.is_empty(), "{:?}", report.bad_allows);
    assert!(report.unwrap_sites.is_empty(), "{:?}", report.unwrap_sites);
}

// ---- workspace-wide rules (R7–R9) --------------------------------------

#[test]
fn r7_duplicate_stream_names_across_files_flagged() {
    let report = lint_workspace(vec![
        (
            FileContext::new("steer", FileKind::LibSrc, "crates/steer/src/a.rs"),
            include_str!("fixtures/r7_collide_a.rs"),
        ),
        (
            FileContext::new("apps", FileKind::LibSrc, "crates/apps/src/b.rs"),
            include_str!("fixtures/r7_collide_b.rs"),
        ),
    ]);
    let r7: Vec<_> = report.violations.iter().filter(|v| v.rule == RuleId::R7).collect();
    assert_eq!(r7.len(), 2, "both colliding sites flagged: {:?}", report.violations);
    assert!(r7.iter().all(|v| v.message.contains("policy-noise")));
    assert!(
        !report.violations.iter().any(|v| v.message.contains("warmup-unique")),
        "unique stream names stay clean"
    );
}

#[test]
fn r8_registry_drift_flagged_in_both_directions() {
    let report = lint_workspace(vec![
        (
            FileContext::new("sim", FileKind::LibSrc, "crates/sim/src/trace.rs"),
            include_str!("fixtures/r8_registry.rs"),
        ),
        (
            FileContext::new("fabric", FileKind::LibSrc, "crates/fabric/src/htex.rs"),
            include_str!("fixtures/r8_emitters.rs"),
        ),
    ]);
    let r8: Vec<_> = report.violations.iter().filter(|v| v.rule == RuleId::R8).collect();
    assert_eq!(r8.len(), 3, "{:?}", report.violations);
    assert!(r8.iter().any(|v| v.message.contains("UNKNOWN_KIND")));
    assert!(r8.iter().any(|v| v.message.contains("ad_hoc_kind")));
    assert!(
        r8.iter().any(|v| v.message.contains("DEAD_KIND") && v.path.ends_with("trace.rs")),
        "never-emitted kind flagged at its declaration"
    );
}

#[test]
fn r8_skipped_when_no_registry_in_scope() {
    // Without a trace module in the set (fixture runs, partial trees),
    // emit sites cannot be judged and R8 must stay quiet.
    let report = lint_workspace(vec![(
        FileContext::new("fabric", FileKind::LibSrc, "crates/fabric/src/htex.rs"),
        include_str!("fixtures/r8_emitters.rs"),
    )]);
    assert!(
        !report.violations.iter().any(|v| v.rule == RuleId::R8),
        "{:?}",
        report.violations
    );
}

#[test]
fn r9_stale_suppression_flagged_live_one_kept() {
    let report = lint_workspace(vec![
        (
            FileContext::new("steer", FileKind::LibSrc, "crates/steer/src/stale.rs"),
            include_str!("fixtures/r9_stale.rs"),
        ),
        (
            // A live suppression (covers a real R1 hit) must NOT be
            // reported as stale.
            FileContext::new("sim", FileKind::LibSrc, "crates/sim/src/live.rs"),
            include_str!("fixtures/allow_reasoned.rs"),
        ),
    ]);
    let r9: Vec<_> = report.violations.iter().filter(|v| v.rule == RuleId::R9).collect();
    assert_eq!(r9.len(), 1, "{:?}", report.violations);
    assert!(r9[0].path.ends_with("stale.rs"));
    assert!(r9[0].message.contains("allow(r3)"));
    assert_eq!(report.suppressed.len(), 1, "the live allow still suppresses");
}

#[test]
fn json_report_round_trips() {
    use hetflow_lint::json;
    let report = lint_workspace(vec![
        (
            FileContext::new("sim", FileKind::LibSrc, "crates/sim/src/trace.rs"),
            include_str!("fixtures/r8_registry.rs"),
        ),
        (
            FileContext::new("fabric", FileKind::LibSrc, "crates/fabric/src/htex.rs"),
            include_str!("fixtures/r8_emitters.rs"),
        ),
        (
            FileContext::new("steer", FileKind::LibSrc, "crates/steer/src/stale.rs"),
            include_str!("fixtures/r9_stale.rs"),
        ),
    ]);
    let doc = json::report_to_json(&report);
    let v = json::parse(&doc).expect("serializer output must parse");
    assert_eq!(v.get("tool").and_then(json::Value::as_str), Some("hetlint"));
    assert_eq!(v.get("clean").and_then(json::Value::as_bool), Some(false));
    let parsed_violations = v
        .get("violations")
        .and_then(json::Value::as_arr)
        .expect("violations array");
    assert_eq!(parsed_violations.len(), report.violations.len());
    for (parsed, orig) in parsed_violations.iter().zip(&report.violations) {
        assert_eq!(parsed.get("rule").and_then(json::Value::as_str), Some(orig.rule.key()));
        assert_eq!(
            parsed.get("line").and_then(json::Value::as_u64),
            Some(orig.line as u64)
        );
        assert_eq!(
            parsed.get("message").and_then(json::Value::as_str),
            Some(orig.message.as_str())
        );
    }
    assert_eq!(
        v.get("files_scanned").and_then(json::Value::as_u64),
        Some(report.files_scanned as u64)
    );
}
