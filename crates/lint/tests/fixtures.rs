//! Fixture tests: one passing and one failing fixture per rule, plus
//! suppression behavior and false-positive guards.
//!
//! Fixture sources live under `tests/fixtures/` (cargo does not compile
//! files in test subdirectories) and are linted via [`lint_source`]
//! under a synthetic sim-driven context, exactly the code path the
//! workspace walk uses.

use hetflow_lint::{lint_source, FileContext, FileKind, RuleId};

/// Lints a fixture as if it were sim-driven library code.
fn lint_sim(source: &str) -> hetflow_lint::FileReport {
    let ctx = FileContext::new("sim", FileKind::LibSrc, "crates/sim/src/fixture.rs");
    lint_source(&ctx, source)
}

fn rules_of(report: &hetflow_lint::FileReport) -> Vec<RuleId> {
    report.violations.iter().map(|v| v.rule).collect()
}

#[test]
fn r1_bad_flags_every_wall_clock_read() {
    let report = lint_sim(include_str!("fixtures/r1_bad.rs"));
    let rules = rules_of(&report);
    assert!(rules.iter().all(|r| *r == RuleId::R1), "{rules:?}");
    // Instant (use + call), SystemTime (use + call), thread::sleep.
    assert!(rules.len() >= 5, "expected ≥5 R1 hits, got {rules:?}");
}

#[test]
fn r1_good_is_clean_despite_comments_and_strings() {
    let report = lint_sim(include_str!("fixtures/r1_good.rs"));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn r2_bad_flags_all_three_entropy_sources() {
    let report = lint_sim(include_str!("fixtures/r2_bad.rs"));
    let rules = rules_of(&report);
    assert_eq!(rules, vec![RuleId::R2, RuleId::R2, RuleId::R2], "{:?}", report.violations);
}

#[test]
fn r2_good_named_streams_are_clean() {
    let report = lint_sim(include_str!("fixtures/r2_good.rs"));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn r2_exempts_the_rng_module_itself() {
    let ctx = FileContext::new("sim", FileKind::LibSrc, "crates/sim/src/rng.rs");
    let report = lint_source(&ctx, include_str!("fixtures/r2_bad.rs"));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn r3_bad_flags_iteration_over_hash_containers() {
    let report = lint_sim(include_str!("fixtures/r3_bad.rs"));
    let rules = rules_of(&report);
    assert!(rules.iter().all(|r| *r == RuleId::R3), "{:?}", report.violations);
    // route.iter(), route.keys(), for s in &seen.
    assert!(rules.len() >= 3, "expected ≥3 R3 hits, got {:?}", report.violations);
}

#[test]
fn r3_good_keyed_lookup_and_btreemap_are_clean() {
    let report = lint_sim(include_str!("fixtures/r3_good.rs"));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn r3_does_not_apply_outside_sim_driven_crates() {
    let ctx = FileContext::new("ml", FileKind::LibSrc, "crates/ml/src/fixture.rs");
    let report = lint_source(&ctx, include_str!("fixtures/r3_bad.rs"));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn r4_bad_flags_os_thread_spawn() {
    let report = lint_sim(include_str!("fixtures/r4_bad.rs"));
    assert_eq!(rules_of(&report), vec![RuleId::R4], "{:?}", report.violations);
}

#[test]
fn r4_good_sim_spawn_is_clean() {
    let report = lint_sim(include_str!("fixtures/r4_good.rs"));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn r4_exempts_the_ml_crate() {
    let ctx = FileContext::new("ml", FileKind::LibSrc, "crates/ml/src/fixture.rs");
    let report = lint_source(&ctx, include_str!("fixtures/r4_bad.rs"));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn r5_counts_library_sites_minus_annotations_and_tests() {
    let report = lint_sim(include_str!("fixtures/r5_budget.rs"));
    // Three countable sites (two unwrap/expect, one panic!): the
    // annotated one and the two inside #[cfg(test)] are excluded.
    assert_eq!(report.unwrap_sites.len(), 3, "{:?}", report.unwrap_sites);
}

#[test]
fn r5_ignores_non_library_files() {
    let ctx = FileContext::new("sim", FileKind::Test, "crates/sim/tests/fixture.rs");
    let report = lint_source(&ctx, include_str!("fixtures/r5_budget.rs"));
    assert!(report.unwrap_sites.is_empty());
}

#[test]
fn r6_bad_flags_ad_hoc_partial_cmp_calls() {
    let report = lint_sim(include_str!("fixtures/r6_bad.rs"));
    assert_eq!(rules_of(&report), vec![RuleId::R6], "{:?}", report.violations);
}

#[test]
fn r6_good_blesses_delegating_definitions_and_total_cmp() {
    let report = lint_sim(include_str!("fixtures/r6_good.rs"));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn reasoned_allow_suppresses_and_is_reported_as_such() {
    let report = lint_sim(include_str!("fixtures/allow_reasoned.rs"));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.suppressed.len(), 1);
    assert!(report.bad_allows.is_empty());
    assert_eq!(report.suppressed[0].rule, RuleId::R1);
}

#[test]
fn reasonless_allow_is_a_violation_in_its_own_right() {
    let report = lint_sim(include_str!("fixtures/allow_reasonless.rs"));
    assert!(report.violations.is_empty(), "the hit itself is suppressed");
    assert_eq!(report.bad_allows.len(), 1, "{:?}", report.bad_allows);
    assert_eq!(report.bad_allows[0].rule, RuleId::BadAllow);
}
