//! R16 good: every path drops its guard before any suspension point,
//! including the early-return branch.

impl Pump {
    async fn drain(&self) {
        let g = self.state.lock();
        let next = peek(g);
        drop(g);
        self.tick().await;
    }

    fn flush(&self) {
        let g = self.state.lock();
        if is_empty(g) {
            return;
        }
        drop(g);
        self.park();
    }
}
