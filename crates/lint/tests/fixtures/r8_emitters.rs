//! R8 fixture: emit sites. One goes through a registered constant
//! (clean), one references a constant absent from the registry, one
//! uses an ad-hoc string literal.

use crate::trace::{kinds, Tracer};

pub fn lifecycle(tracer: &Tracer, t: u64, id: u64) {
    tracer.emit(t, "thinker", kinds::TASK_CREATED, id, 0.0);
    tracer.emit(t, "thinker", kinds::UNKNOWN_KIND, id, 0.0);
    tracer.emit(t, "worker/0", "ad_hoc_kind", id, 1.0);
}
