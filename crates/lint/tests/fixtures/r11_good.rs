//! R11 good: the guard is dropped before the blocking wait, and both
//! multi-lock paths agree on one global acquisition order.

struct Pool;

impl Pool {
    fn handoff(&self) {
        let guard = self.state.lock();
        let item = guard.front();
        drop(guard);
        self.cond.wait(self.parked);
    }
}

fn first() {
    let a = reg.lock();
    let b = shard.lock();
    drop(b);
    drop(a);
}

fn second() {
    let a = reg.lock();
    let b = shard.lock();
    drop(b);
    drop(a);
}
