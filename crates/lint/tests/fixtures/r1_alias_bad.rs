//! R1 regression: an aliased import of a banned type. The substring
//! scanner only knew the literal names `Instant`/`SystemTime`, so the
//! call sites through `Wall` below were invisible to it; the token
//! analyzer tracks `use … as` renames.

use std::time::Instant as Wall;

pub fn measure() -> f64 {
    let start = Wall::now();
    work();
    start.elapsed().as_secs_f64()
}

fn work() {}
