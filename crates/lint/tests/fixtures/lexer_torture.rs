//! Lexer torture fixture: every construct below would trip a
//! text-matching scanner, and none of it is real code the rules should
//! see. A correct lint run reports NOTHING for this file.

/* Nested block comments: /* thread_rng() inside, still a comment:
   Instant::now(); map.iter(); */ thread::spawn(|| {}); */

pub fn raw_strings() -> (&'static str, &'static [u8]) {
    // Raw string: the banned names are data, not code.
    let doc = r#"call thread_rng() or SystemTime::now(), then "quote" it"#;
    let bytes = b"OsRng is just bytes here";
    let _ = doc;
    (r"also \ no escapes", bytes)
}

pub fn lifetimes_vs_chars<'a>(s: &'a str) -> (char, char, &'a str) {
    // 'a is a lifetime; 'a' and '\'' are chars. A confused lexer that
    // treats 'a as an unterminated char literal would swallow the rest
    // of the line, including real tokens.
    let x: char = 'a';
    let quote = '\'';
    (x, quote, s)
}

pub fn suppression_in_string() -> &'static str {
    // The annotation text lives inside a string literal: it must NOT
    // suppress anything (and must not register as a suppression).
    "// hetlint: allow(r1) — not a real annotation"
}

pub fn numbers() -> f64 {
    let hex = 0xFF_u64;
    let range: u64 = (0..10).sum();
    let sci = 1.5e-3_f64;
    let tuple = (1.0_f64, 2.0_f64);
    hex as f64 + range as f64 + sci + tuple.0 + tuple.1
}
