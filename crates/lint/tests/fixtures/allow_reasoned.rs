//! Suppression fixture: a reasoned allow covers the next code line.

fn timed() {
    // hetlint: allow(r1) — host-side profiling harness, not sim state
    let t0 = Instant::now();
    let _ = t0;
}
