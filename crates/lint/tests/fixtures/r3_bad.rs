//! R3 failing fixture: order-leaking iteration over hash containers.
use std::collections::{HashMap, HashSet};

struct Router {
    route: HashMap<String, usize>,
}

fn leak(r: &Router, seen: HashSet<u64>) -> usize {
    let mut total = 0;
    for (_, v) in r.route.iter() {
        total += v;
    }
    for k in r.route.keys() {
        total += k.len();
    }
    for s in &seen {
        total += *s as usize;
    }
    total
}
