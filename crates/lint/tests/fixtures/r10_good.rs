//! R10 good: the actor emits through the Tracer; the console helper
//! exists but is unreachable from every simulation entry point.

pub async fn actor(tracer: &Tracer) {
    let value = step();
    tracer.emit(TraceKind::StepDone, value);
}

fn step() -> u64 {
    41 + 1
}

fn debug_console() {
    println!("not on any simulation path");
}
