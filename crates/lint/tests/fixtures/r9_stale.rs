//! R9 fixture: the code below was migrated to `BTreeMap`, but the
//! suppression that once covered a `HashMap` iteration was left
//! behind. It now covers nothing and must be flagged as stale.

use std::collections::BTreeMap;

pub fn totals(route: &BTreeMap<String, u64>) -> u64 {
    // hetlint: allow(r3) — iteration was sorted downstream (obsolete)
    route.iter().map(|(_, v)| *v).sum()
}

/// Doc mentions of the syntax, like `hetlint: allow(<rule>) — <why>`,
/// are not annotations and must not be flagged.
pub fn documented() {}
