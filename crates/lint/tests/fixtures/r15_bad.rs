//! R15 bad: the Result of a fabric-effect send is discarded, on a
//! branch-guarded path.

fn relay(inner: &Inner, task: Task, urgent: bool) {
    if urgent {
        let _ = inner.tasks.send_now(task);
    }
}
