//! R14 bad: a wall-clock read and hash-iteration order each flow
//! through one binding into a trace/seed sink.

fn stamp(tracer: &Tracer) {
    let t = SystemTime::now();
    let label = wrap(t);
    tracer.emit(kinds::TASK_DONE, label);
}

fn correlate(master: &SimRng) {
    let pending = HashMap::new();
    let name = pending.keys();
    let rng = SimRng::stream(master, name);
}
