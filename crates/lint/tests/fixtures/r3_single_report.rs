//! R3 regression: `for k in route.keys()` matched BOTH the old
//! method-iteration check and the old `for … in` check, producing two
//! reports for one loop. The token analyzer attributes it to the chain
//! check alone: exactly one violation.

use std::collections::HashMap;

pub fn visit(route: &HashMap<String, u64>) {
    for k in route.keys() {
        log(k);
    }
}

fn log(_k: &str) {}
