//! R3 regression: a chain wrapped across three lines. The old scanner
//! joined only two adjacent lines, so this exact shape — name, borrow
//! hop, and iteration method each on their own line — sailed through.

use std::cell::RefCell;
use std::collections::HashMap;

pub fn drain(route: &RefCell<HashMap<String, u64>>) -> u64 {
    route
        .borrow()
        .iter()
        .map(|(_, v)| *v)
        .sum()
}
