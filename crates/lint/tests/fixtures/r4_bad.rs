//! R4 failing fixture: OS threads outside ml.

fn fan_out(jobs: Vec<Job>) {
    for job in jobs {
        std::thread::spawn(move || job.run());
    }
}
