//! R14 good: the same sinks fed from deterministic inputs — virtual
//! time and a configured stream name.

fn stamp(sim: &Sim, tracer: &Tracer) {
    let t = sim.now();
    let label = wrap(t);
    tracer.emit(kinds::TASK_DONE, label);
}

fn correlate(master: &SimRng) {
    let name = configured_name();
    let rng = SimRng::stream(master, name);
}
