//! R15 good: fabric-effect Results are propagated; discarding a
//! non-effect Result is not R15's business.

fn relay(inner: &Inner, task: Task) -> Result<(), SendError> {
    inner.tasks.send_now(task)?;
    Ok(())
}

fn observe(inner: &Inner) {
    let _ = inner.metrics.snapshot();
}
