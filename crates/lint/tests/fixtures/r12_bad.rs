//! R12 bad: a SimRng stored in a thread-crossing container, and a live
//! stream handle pushed through a channel send.

pub struct SharedPolicy {
    rng: Arc<SimRng>,
}

pub fn leak_stream(master: &SimRng, tx: &Sender<Job>) {
    let worker_rng = master.substream(7);
    tx.send(worker_rng);
}
