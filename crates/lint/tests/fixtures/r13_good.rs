//! R13 good: faults take the typed failure path; the one remaining
//! abort is a reasoned invariant and carries an allow.

pub struct Htex;

impl Htex {
    pub fn submit(&self, spec: TaskSpec) -> Result<(), TaskFailure> {
        let slot = free_slot().ok_or(TaskFailure::Saturated)?;
        // hetlint: allow(r5) — free_slot() returned this index one line up
        let lane = lanes.get(slot).expect("slot in range");
        enqueue(lane, spec)
    }
}

fn enqueue(lane: Lane, spec: TaskSpec) -> Result<(), TaskFailure> {
    Ok(())
}
