//! R3 name-tracking regressions for `declared_name`'s replacement.
//!
//! The old helper stripped every generic wrapper indiscriminately, so
//! `let scores: Vec<HashMap<…>>` registered `scores` as a hash
//! container — iterating a Vec of maps is deterministic, yet it was
//! flagged. It also mis-handled tuple patterns, attributing the
//! container to the wrong element. The token analyzer resolves both.

use std::collections::{BTreeMap, HashMap};

pub fn vec_of_maps(inputs: &[(String, f64)]) -> usize {
    // `scores` is a Vec; iterating it is fine (old false positive).
    let scores: Vec<HashMap<String, f64>> = build(inputs);
    scores.iter().count()
}

pub fn ascribed(inputs: &[(String, f64)]) -> usize {
    // `m` IS a hash container; iterating it must be flagged.
    let m: HashMap<String, f64> = inputs.iter().cloned().collect();
    m.iter().count()
}

pub fn tuple_pattern() -> usize {
    // The container is the FIRST element: `lookup` must be tracked,
    // `order` (a BTreeMap) must not.
    let (lookup, order) = (HashMap::new(), BTreeMap::new());
    seed(&lookup, &order);
    let a = lookup.iter().count(); // flagged
    let b = order.iter().count(); // clean
    a + b
}

fn build(_inputs: &[(String, f64)]) -> Vec<HashMap<String, f64>> {
    Vec::new()
}

fn seed(_a: &HashMap<u32, u32>, _b: &BTreeMap<u32, u32>) {}
