//! R5 fixture: three library unwraps and an explicit panic, one
//! annotated away, plus test-only unwraps that never count.

fn three_sites(x: Option<u32>, y: Result<u32, E>) -> u32 {
    let a = x.unwrap();
    let b = y.expect("calibration table is complete");
    // hetlint: allow(r5) — index is bounds-checked two lines above
    let c = TABLE.get(0).unwrap();
    if a + b + c == 0 {
        panic!("explicit panics count against the same budget");
    }
    a + b + c
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_only_unwraps_do_not_count() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let w: Result<u32, ()> = Ok(2);
        assert_eq!(w.expect("fine in tests"), 2);
    }
}
