//! R5 fixture: three library unwraps, one annotated away, plus test-only
//! unwraps that never count.

fn two_sites(x: Option<u32>, y: Result<u32, E>) -> u32 {
    let a = x.unwrap();
    let b = y.expect("calibration table is complete");
    // hetlint: allow(r5) — index is bounds-checked two lines above
    let c = TABLE.get(0).unwrap();
    a + b + c
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_only_unwraps_do_not_count() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let w: Result<u32, ()> = Ok(2);
        assert_eq!(w.expect("fine in tests"), 2);
    }
}
