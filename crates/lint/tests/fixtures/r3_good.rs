//! R3 passing fixture: keyed lookup on a HashMap is fine, and BTreeMap
//! iteration is fine. `route.iter()` in this comment must not fire.
use std::collections::{BTreeMap, HashMap};

struct Router {
    route: HashMap<String, usize>,
    ordered: BTreeMap<String, usize>,
}

fn lookup(r: &mut Router, key: &str) -> usize {
    r.route.insert(key.to_string(), 1);
    if r.route.contains_key(key) {
        let mut total = *r.route.get(key).unwrap_or(&0);
        for (_, v) in r.ordered.iter() {
            total += v;
        }
        total
    } else {
        0
    }
}
