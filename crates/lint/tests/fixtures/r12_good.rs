//! R12 good: the seed and stream index cross the channel; the stream
//! itself is derived on the receiving side.

pub struct StreamSpec {
    pub index: u64,
}

pub fn hand_off(tx: &Sender<StreamSpec>) {
    tx.send(StreamSpec { index: 7 });
}

pub fn on_receive(spec: StreamSpec, master: &SimRng) -> SimRng {
    master.substream(spec.index)
}
