//! R4 passing fixture: virtual concurrency via the simulator. The token
//! thread::spawn appears only in this comment and the string below.

fn fan_out(sim: &Sim, jobs: Vec<Job>) {
    let note = "thread::spawn is banned here";
    let _ = note;
    for job in jobs {
        sim.spawn(async move { job.run().await });
    }
}
