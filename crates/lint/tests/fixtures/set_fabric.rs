//! Cross-crate set fixture, fabric side: dispatch fans out into store
//! and steer code living in other crates' files.

pub struct Htex;

impl Htex {
    pub fn submit(&self, spec: TaskSpec) {
        stage(spec);
    }
}

fn stage(spec: TaskSpec) {
    let backend = steer::select::choose_backend(spec.load);
    store::blob::fetch(spec.key, backend);
}
