//! R1 failing fixture: wall-clock reads in a sim-driven crate.
use std::time::{Duration, Instant, SystemTime};

fn measure() -> Duration {
    let start = Instant::now();
    std::thread::sleep(Duration::from_millis(5));
    let _ = SystemTime::now();
    start.elapsed()
}
