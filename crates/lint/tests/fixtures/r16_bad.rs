//! R16 bad: one guard live across an `.await`, another across a
//! blocking Condvar wait.

impl Pump {
    async fn drain(&self) {
        let g = self.state.lock();
        self.tick().await;
        drop(g);
    }

    fn flush(&self) {
        let g = self.state.lock();
        self.cv.wait(g);
    }
}
