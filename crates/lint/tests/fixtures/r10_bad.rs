//! R10 bad: an async simulation actor transitively reaches a print
//! macro three hops down; the witness chain names every hop.

pub async fn actor() {
    run_step();
}

fn run_step() {
    record_outcome();
}

fn record_outcome() {
    println!("step done");
}
