//! Cross-crate set fixture, store side: an un-allowed unwrap and an
//! ambient print, both reachable only through fabric dispatch.

pub fn fetch(key: u64, backend: usize) -> Blob {
    let blob = cache_lookup(key, backend).unwrap();
    audit(key);
    blob
}

fn audit(key: u64) {
    println!("fetched {key}");
}
