//! Cross-crate set fixture, steer side: consulted on the dispatch
//! path, but sink-free and panic-free.

pub fn choose_backend(load: u64) -> usize {
    if load > 8 {
        1
    } else {
        0
    }
}
