//! R2 failing fixture: ambient entropy outside sim::rng.

fn seed_badly() -> u64 {
    let mut r = thread_rng();
    let s = SmallRng::from_entropy();
    let o = OsRng;
    mix(r.gen(), s, o)
}
