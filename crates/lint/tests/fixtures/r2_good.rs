//! R2 passing fixture: named seeded streams. `thread_rng` appears only
//! in this comment and in a string below.

fn seed_well(master: &SimRng) -> SimRng {
    let label = "never call thread_rng or OsRng";
    let _ = label;
    master.stream("steer.batch")
}
