//! R11 bad: a guard held across a Condvar wait, a guard held across a
//! transitively-blocking call, and a lock-order inversion.

struct Pool;

impl Pool {
    fn direct(&self) {
        let guard = self.state.lock();
        self.cond.wait(guard);
    }

    fn indirect(&self) {
        let guard = self.state.lock();
        self.drain_backlog();
        drop(guard);
    }

    fn drain_backlog(&self) {
        self.cond.wait(self.backlog);
    }
}

fn forward() {
    let a = reg.lock();
    let b = shard.lock();
    drop(b);
    drop(a);
}

fn backward() {
    let b = shard.lock();
    let a = reg.lock();
    drop(a);
    drop(b);
}
