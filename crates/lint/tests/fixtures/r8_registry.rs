//! R8 fixture: a stand-in trace module. `TASK_CREATED` is emitted by
//! the emitter fixture; `DEAD_KIND` is registered but never emitted and
//! must be flagged at its declaration.

pub mod kinds {
    pub const TASK_CREATED: &str = "task_created";
    pub const DEAD_KIND: &str = "dead_kind";
}

pub struct Tracer;

impl Tracer {
    pub fn emit(&self, _t: u64, _actor: &str, _kind: &'static str, _entity: u64, _value: f64) {}
}
