//! Suppression fixture: an allow with no reason is itself a violation.

fn timed() {
    let t0 = Instant::now(); // hetlint: allow(r1)
    let _ = t0;
}
