//! R6 failing fixture: ad-hoc partial ordering of floats.

fn pick_best(scores: &mut Vec<(usize, f64)>) {
    scores.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
}
