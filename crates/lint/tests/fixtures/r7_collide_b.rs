//! R7 fixture, file B: reuses the stream name "policy-noise" from file
//! A. Both sites must be flagged; method-style derivation counts too.

pub fn perturb(master: &mut crate::rng::SimRng) -> f64 {
    let mut rng = master.stream("policy-noise");
    rng.next_f64()
}
