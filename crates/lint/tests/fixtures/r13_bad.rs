//! R13 bad: an un-allowed unwrap on the fabric dispatch path.

pub struct Htex;

impl Htex {
    pub fn submit(&self, spec: TaskSpec) {
        enqueue(spec);
    }
}

fn enqueue(spec: TaskSpec) {
    let slot = free_slot().unwrap();
    lanes.push(slot, spec);
}
