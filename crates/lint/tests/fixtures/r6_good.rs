//! R6 passing fixture: total orders only. A delegating `partial_cmp`
//! *definition* is the blessed wrapper pattern.

struct Key(f64);

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Key) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn pick_best(scores: &mut Vec<(usize, f64)>) {
    scores.sort_by(|a, b| a.1.total_cmp(&b.1));
}
