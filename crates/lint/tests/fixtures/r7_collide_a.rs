//! R7 fixture, file A: derives the stream "policy-noise" — so does
//! file B, which makes the two sequences identical (correlated
//! randomness). Also derives a unique name that must stay clean.

use crate::rng::SimRng;

pub fn jitter(seed: u64) -> f64 {
    let mut rng = SimRng::stream(seed, "policy-noise");
    rng.next_f64()
}

pub fn warmup(seed: u64) -> f64 {
    let mut rng = SimRng::stream(seed, "warmup-unique");
    rng.next_f64()
}
