//! R1 passing fixture: virtual time only. The words Instant and
//! SystemTime in comments must not fire, nor in strings.

fn wait(sim: &Sim) {
    // Instant::now() would be wrong here; Sim::now() is virtual.
    let t0 = sim.now();
    sim.sleep(Duration::from_millis(5));
    let msg = "no Instant or SystemTime or thread::sleep here";
    let _ = (t0, msg);
}
