//! Interprocedural fixture tests (R10–R13): a good/bad pair per rule,
//! exact witness-path assertions, and a multi-file cross-crate set.
//!
//! Everything here goes through [`lint_set`] — the per-file pass plus
//! the workspace cross-check — because the interprocedural rules only
//! exist at the set level: a lone `println!` is legal until the call
//! graph proves a simulation entry point reaches it.

use hetflow_lint::{lint_set, lint_set_full, ratchet, FileContext, FileKind, Report, RuleId, Violation};

fn inputs(files: Vec<(&str, &str, &str)>) -> Vec<(FileContext, String)> {
    files
        .into_iter()
        .map(|(krate, rel, src)| {
            (FileContext::new(krate, FileKind::LibSrc, rel), src.to_string())
        })
        .collect()
}

fn lint(files: Vec<(&str, &str, &str)>, budgets: &str) -> Report {
    let budgets = ratchet::parse(budgets).expect("fixture ratchet parses");
    lint_set(&inputs(files), &budgets)
}

fn rule_hits(report: &Report, rule: RuleId) -> Vec<&Violation> {
    report.violations.iter().filter(|v| v.rule == rule).collect()
}

// ---- R10 sim-purity -----------------------------------------------------

#[test]
fn r10_bad_witness_chain_names_every_hop() {
    let report = lint(
        vec![("sim", "crates/sim/src/purity.rs", include_str!("fixtures/r10_bad.rs"))],
        "",
    );
    let r10 = rule_hits(&report, RuleId::R10);
    assert_eq!(r10.len(), 1, "{:?}", report.violations);
    assert_eq!(r10[0].line, 13, "anchored on the println! sink");
    assert!(
        r10[0].message.contains(
            "via sim::purity::actor -> sim::purity::run_step -> sim::purity::record_outcome"
        ),
        "witness path wrong: {}",
        r10[0].message
    );
}

#[test]
fn r10_good_tracer_and_unreachable_console_are_clean() {
    let report = lint(
        vec![("sim", "crates/sim/src/purity.rs", include_str!("fixtures/r10_good.rs"))],
        "",
    );
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.clean(), "sink exists but no entry reaches it");
}

// ---- R11 lock discipline ------------------------------------------------

#[test]
fn r11_bad_inverted_orders_flagged_guard_across_migrated_to_r16() {
    let report = lint(
        vec![("sim", "crates/sim/src/locks.rs", include_str!("fixtures/r11_bad.rs"))],
        "",
    );
    // R11 now owns only the lock-order inversion; the guards held
    // across blocking calls in the same fixture are R16's, decided on
    // CFG paths instead of token spans.
    let r11 = rule_hits(&report, RuleId::R11);
    assert_eq!(r11.len(), 2, "{r11:?}");
    assert!(
        r11.iter().any(|v| v.line == 25
            && v.message.contains("`reg` then `shard` here")
            && v.message.contains("crates/sim/src/locks.rs:32")),
        "forward side of the inversion: {r11:?}"
    );
    assert!(
        r11.iter().any(|v| v.line == 32
            && v.message.contains("`shard` then `reg` here")
            && v.message.contains("crates/sim/src/locks.rs:25")),
        "backward side of the inversion: {r11:?}"
    );
    let r16 = rule_hits(&report, RuleId::R16);
    assert_eq!(r16.len(), 2, "{r16:?}");
    assert!(
        r16.iter().any(|v| v.line == 9
            && v.message.contains("blocking `wait`")
            && v.message.contains("witness path: line 8 -> line 9")),
        "guard across Condvar::wait with witness: {r16:?}"
    );
    assert!(
        r16.iter().any(|v| v.line == 14
            && v.message.contains("sim::locks::Pool::drain_backlog")
            && v.message.contains("transitively")),
        "guard across a transitively-blocking callee: {r16:?}"
    );
}

#[test]
fn r11_good_drop_before_wait_and_one_order_are_clean() {
    let report = lint(
        vec![("sim", "crates/sim/src/locks.rs", include_str!("fixtures/r11_good.rs"))],
        "",
    );
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

// ---- R12 RNG-stream provenance ------------------------------------------

#[test]
fn r12_bad_container_escape_and_channel_send() {
    let report = lint(
        vec![("steer", "crates/steer/src/rngleak.rs", include_str!("fixtures/r12_bad.rs"))],
        "",
    );
    let r12 = rule_hits(&report, RuleId::R12);
    assert_eq!(r12.len(), 2, "{r12:?}");
    assert!(
        r12.iter().any(|v| v.line == 5 && v.message.contains("`Arc<..>`")),
        "Arc<SimRng> field: {r12:?}"
    );
    assert!(
        r12.iter().any(|v| v.line == 10
            && v.message.contains("`worker_rng`")
            && v.message.contains("steer::rngleak::leak_stream")),
        "substream sent through a channel: {r12:?}"
    );
}

#[test]
fn r12_good_seed_crosses_stream_derived_on_receiving_side() {
    let report = lint(
        vec![("steer", "crates/steer/src/rngplumb.rs", include_str!("fixtures/r12_good.rs"))],
        "",
    );
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

// ---- R13 panic reachability ---------------------------------------------

#[test]
fn r13_bad_over_budget_reports_site_with_witness() {
    let report = lint(
        vec![(
            "fabric",
            "crates/fabric/src/dispatchpath.rs",
            include_str!("fixtures/r13_bad.rs"),
        )],
        "fabric = 9\n",
    );
    assert_eq!(report.reachable_panics, Some((1, 0)));
    let r13 = rule_hits(&report, RuleId::R13);
    assert_eq!(r13.len(), 1, "{:?}", report.violations);
    assert_eq!(r13[0].line, 12, "anchored on the unwrap");
    assert!(
        r13[0]
            .message
            .contains("via fabric::dispatchpath::Htex::submit -> fabric::dispatchpath::enqueue"),
        "witness path wrong: {}",
        r13[0].message
    );
    assert!(!report.clean());
}

#[test]
fn r13_good_typed_path_plus_reasoned_allow_is_clean() {
    let report = lint(
        vec![(
            "fabric",
            "crates/fabric/src/dispatchpath.rs",
            include_str!("fixtures/r13_good.rs"),
        )],
        "",
    );
    assert_eq!(report.reachable_panics, Some((0, 0)));
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.bad_allows.is_empty(), "the allow carries a reason");
    assert!(report.clean());
}

// ---- multi-file cross-crate set -----------------------------------------

fn cross_crate_set() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        ("fabric", "crates/fabric/src/htex.rs", include_str!("fixtures/set_fabric.rs")),
        ("store", "crates/store/src/blob.rs", include_str!("fixtures/set_store.rs")),
        ("steer", "crates/steer/src/select.rs", include_str!("fixtures/set_steer.rs")),
    ]
}

#[test]
fn set_r10_witness_crosses_three_files() {
    let report = lint(cross_crate_set(), "store = 9\nreachable-panics = 1\n");
    let r10 = rule_hits(&report, RuleId::R10);
    assert_eq!(r10.len(), 1, "{:?}", report.violations);
    assert!(r10[0].path.ends_with("blob.rs"), "flagged at the sink, not the entry");
    assert_eq!(r10[0].line, 11);
    assert!(
        r10[0].message.contains(
            "via fabric::htex::Htex::submit -> fabric::htex::stage -> \
             store::blob::fetch -> store::blob::audit"
        ),
        "witness path wrong: {}",
        r10[0].message
    );
}

#[test]
fn set_r13_within_budget_notes_over_budget_fires() {
    let within = lint(cross_crate_set(), "store = 9\nreachable-panics = 1\n");
    assert_eq!(within.reachable_panics, Some((1, 1)));
    assert!(rule_hits(&within, RuleId::R13).is_empty(), "{:?}", within.violations);
    assert!(
        within
            .notes
            .iter()
            .any(|n| n.contains("within budget") && n.contains("store::blob::fetch")),
        "within-budget sites surface as notes: {:?}",
        within.notes
    );

    let over = lint(cross_crate_set(), "store = 9\n");
    assert_eq!(over.reachable_panics, Some((1, 0)));
    let r13 = rule_hits(&over, RuleId::R13);
    assert_eq!(r13.len(), 1, "{:?}", over.violations);
    assert!(r13[0].path.ends_with("blob.rs"));
    assert_eq!(r13[0].line, 5, "anchored on the unwrap in fetch");
}

#[test]
fn set_callgraph_json_round_trips() {
    use hetflow_lint::json;
    let budgets = ratchet::parse("store = 9\nreachable-panics = 1\n").unwrap();
    let (_report, graph) = lint_set_full(&inputs(cross_crate_set()), &budgets);
    let doc = json::graph_to_json(&graph);
    let v = json::parse(&doc).expect("graph serializer output must parse");
    assert_eq!(v.get("tool").and_then(json::Value::as_str), Some("hetlint-callgraph"));
    let nodes = v.get("nodes").and_then(json::Value::as_arr).expect("nodes array");
    assert_eq!(nodes.len(), graph.nodes.len());
    assert!(
        nodes.iter().any(|n| {
            n.get("qname").and_then(json::Value::as_str) == Some("store::blob::fetch")
        }),
        "cross-crate node present in the JSON"
    );
    let edges = v.get("edges").and_then(json::Value::as_arr).expect("edges array");
    let n_edges: usize = graph.edges.iter().map(Vec::len).sum();
    assert_eq!(edges.len(), n_edges, "one [from, to] pair per edge");
}
