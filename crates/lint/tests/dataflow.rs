//! Dataflow fixture tests (R14–R16): a good/bad pair per rule with
//! exact witness-path assertions, budget/allow behavior against the
//! `r14`/`r15` ratchet keys, and the `--dataflow` document.
//!
//! Everything goes through [`lint_set`] / [`lint_set_all`] — the
//! per-file pass plus the workspace cross-check — because the dataflow
//! rules only exist at the set level: taint propagates through the
//! converged per-function summaries of the whole call graph.

use hetflow_lint::{
    json, lint_set, lint_set_all, ratchet, FileContext, FileKind, Report, RuleId, Violation,
};

fn inputs(files: Vec<(&str, &str, &str)>) -> Vec<(FileContext, String)> {
    files
        .into_iter()
        .map(|(krate, rel, src)| {
            (FileContext::new(krate, FileKind::LibSrc, rel), src.to_string())
        })
        .collect()
}

fn lint(files: Vec<(&str, &str, &str)>, budgets: &str) -> Report {
    let budgets = ratchet::parse(budgets).expect("fixture ratchet parses");
    lint_set(&inputs(files), &budgets)
}

fn rule_hits(report: &Report, rule: RuleId) -> Vec<&Violation> {
    report.violations.iter().filter(|v| v.rule == rule).collect()
}

// ---- R14 nondeterminism taint -------------------------------------------

#[test]
fn r14_bad_wall_clock_and_hash_order_chains_name_every_hop() {
    let report = lint(
        vec![("sim", "crates/sim/src/flows.rs", include_str!("fixtures/r14_bad.rs"))],
        "",
    );
    let r14 = rule_hits(&report, RuleId::R14);
    assert_eq!(r14.len(), 2, "{:?}", report.violations);
    assert!(
        r14.iter().any(|v| v.line == 7
            && v.message.contains("feeds Tracer::emit with wall-clock time")
            && v.message.contains("SystemTime::now() (line 5)")
            && v.message.contains("-> `t` (line 5)")
            && v.message.contains("-> `label` (line 6)")
            && v.message.contains("-> Tracer::emit (line 7)")),
        "wall-clock chain wrong: {r14:?}"
    );
    assert!(
        r14.iter().any(|v| v.line == 13
            && v.message.contains("feeds SimRng::stream with hash-iteration order")
            && v.message.contains("`pending.keys()` iteration order (line 12)")
            && v.message.contains("-> `name` (line 12)")
            && v.message.contains("-> SimRng::stream (line 13)")),
        "hash-order chain wrong: {r14:?}"
    );
    assert_eq!(report.nondet_taint, Some((2, 0)));
    assert!(!report.clean());
}

#[test]
fn r14_good_virtual_time_and_configured_name_are_clean() {
    let report = lint(
        vec![("sim", "crates/sim/src/flows.rs", include_str!("fixtures/r14_good.rs"))],
        "",
    );
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.nondet_taint, Some((0, 0)));
    assert!(report.clean());
}

#[test]
fn r14_within_budget_surfaces_as_notes_not_violations() {
    let report = lint(
        vec![("sim", "crates/sim/src/flows.rs", include_str!("fixtures/r14_bad.rs"))],
        "r14 = 2\n",
    );
    assert!(rule_hits(&report, RuleId::R14).is_empty(), "{:?}", report.violations);
    assert_eq!(report.nondet_taint, Some((2, 2)));
    assert_eq!(
        report
            .notes
            .iter()
            .filter(|n| n.contains("R14 within budget"))
            .count(),
        2,
        "{:?}",
        report.notes
    );
    // The fixture still trips R1 (SystemTime) and R3 (hash iteration) —
    // the budget absorbs only the taint-flow findings.
    assert!(
        report
            .violations
            .iter()
            .all(|v| matches!(v.rule, RuleId::R1 | RuleId::R3)),
        "{:?}",
        report.violations
    );
}

// ---- R15 discarded fabric effects ---------------------------------------

#[test]
fn r15_bad_discard_carries_the_entry_path() {
    let report = lint(
        vec![("fabric", "crates/fabric/src/relay.rs", include_str!("fixtures/r15_bad.rs"))],
        "",
    );
    let r15 = rule_hits(&report, RuleId::R15);
    assert_eq!(r15.len(), 1, "{:?}", report.violations);
    assert_eq!(r15[0].line, 6);
    assert!(
        r15[0].message.contains("discards the Result of `inner.tasks.send_now()`"),
        "{}",
        r15[0].message
    );
    assert!(
        r15[0].message.contains("(path entry -> line 5 -> line 6)"),
        "entry path wrong: {}",
        r15[0].message
    );
    assert_eq!(report.discarded_effects, Some((1, 0)));
    assert!(!report.clean());
}

#[test]
fn r15_good_propagated_and_non_effect_discard_are_clean() {
    let report = lint(
        vec![("fabric", "crates/fabric/src/relay.rs", include_str!("fixtures/r15_good.rs"))],
        "",
    );
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.discarded_effects, Some((0, 0)));
    assert!(report.clean());
}

#[test]
fn r15_budget_absorbs_the_site_and_notes_it() {
    let report = lint(
        vec![("fabric", "crates/fabric/src/relay.rs", include_str!("fixtures/r15_bad.rs"))],
        "r15 = 1\n",
    );
    assert!(rule_hits(&report, RuleId::R15).is_empty(), "{:?}", report.violations);
    assert_eq!(report.discarded_effects, Some((1, 1)));
    assert!(
        report.notes.iter().any(|n| n.contains("R15 within budget")
            && n.contains("crates/fabric/src/relay.rs:6")),
        "{:?}",
        report.notes
    );
    assert!(report.clean());
}

// ---- R16 lock across suspension -----------------------------------------

#[test]
fn r16_bad_await_and_blocking_wait_print_witness_paths() {
    let report = lint(
        vec![("sim", "crates/sim/src/pump.rs", include_str!("fixtures/r16_bad.rs"))],
        "",
    );
    let r16 = rule_hits(&report, RuleId::R16);
    assert_eq!(r16.len(), 2, "{:?}", report.violations);
    assert!(
        r16.iter().any(|v| v.line == 7
            && v.message.contains("holds guard `g`")
            && v.message.contains("an `.await` suspension point")
            && v.message.contains("witness path: line 6 -> line 7")),
        "guard across await: {r16:?}"
    );
    assert!(
        r16.iter().any(|v| v.line == 13
            && v.message.contains("blocking `wait`")
            && v.message.contains("witness path: line 12 -> line 13")),
        "guard across Condvar::wait: {r16:?}"
    );
    assert!(!report.clean());
}

#[test]
fn r16_good_drop_before_suspension_on_every_path_is_clean() {
    let report = lint(
        vec![("sim", "crates/sim/src/pump.rs", include_str!("fixtures/r16_good.rs"))],
        "",
    );
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.clean());
}

// ---- the --dataflow document --------------------------------------------

#[test]
fn dataflow_doc_records_summaries_and_findings_and_round_trips() {
    let budgets = ratchet::parse("").unwrap();
    let set = inputs(vec![
        ("sim", "crates/sim/src/flows.rs", include_str!("fixtures/r14_bad.rs")),
        ("fabric", "crates/fabric/src/relay.rs", include_str!("fixtures/r15_bad.rs")),
    ]);
    let out = lint_set_all(&set, &budgets);
    assert!(
        out.dataflow.fns.iter().any(|f| f.qname == "sim::flows::stamp"),
        "summaries cover every parsed fn: {:?}",
        out.dataflow.fns.iter().map(|f| &f.qname).collect::<Vec<_>>()
    );
    let rules: Vec<&str> = out.dataflow.findings.iter().map(|f| f.rule.as_str()).collect();
    assert!(rules.contains(&"r14") && rules.contains(&"r15"), "{rules:?}");
    assert!(
        out.dataflow.findings.iter().all(|f| !f.suppressed),
        "nothing is allowed in these fixtures"
    );
    let doc = json::dataflow_to_json(&out.dataflow);
    let v = json::parse(&doc).expect("dataflow serializer output must parse");
    assert_eq!(
        v.get("tool").and_then(json::Value::as_str),
        Some("hetlint-dataflow")
    );
    assert_eq!(
        v.get("findings").and_then(json::Value::as_arr).map(<[json::Value]>::len),
        Some(out.dataflow.findings.len())
    );
    assert_eq!(
        v.get("functions").and_then(json::Value::as_arr).map(<[json::Value]>::len),
        Some(out.dataflow.fns.len())
    );
}
