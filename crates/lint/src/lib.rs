//! hetlint: the hetflow determinism & invariant static-analysis pass.
//!
//! The repo's central validity claim is bit-reproducibility: the same
//! seed must yield the same trace on any machine. That property is easy
//! to break with one stray wall-clock read or hash-order iteration, and
//! such regressions are invisible until an expensive campaign diverges.
//! hetlint lexes every Rust source in the workspace into a real token
//! stream (comments and string literals can never trigger rules) and
//! enforces the determinism contract as machine-checked rules:
//!
//! - **R1** no `std::time::{Instant, SystemTime}` / `thread::sleep` in
//!   sim-driven crates — virtual time only. Aliased imports
//!   (`use std::time::Instant as T`) are tracked.
//! - **R2** no ambient entropy (`thread_rng`, `from_entropy`, `OsRng`)
//!   outside `sim::rng` — named seeded streams only.
//! - **R3** no order-leaking iteration over `HashMap`/`HashSet` in
//!   sim-driven crates — keyed lookup is fine, iteration is not.
//!   Chains are followed across any number of lines.
//! - **R4** no OS-thread spawns outside `ml` — whose scoped,
//!   member-seeded fan-out is the sanctioned escape hatch.
//! - **R5** an `unwrap()`/`expect()`/`panic!()` budget per library
//!   crate, read from the checked-in `hetlint.ratchet` file — a ratchet
//!   that may go down but not up. Runtime faults must travel the typed
//!   failure path (`TaskOutcome::Failed`); only invariant violations
//!   may abort, and each needs a reasoned allow.
//! - **R6** float ordering must be total — `f64::total_cmp` or an
//!   `Ord`-delegating wrapper, never ad-hoc `.partial_cmp().unwrap()`.
//!
//! After the per-file pass, a workspace-wide phase sees every file at
//! once:
//!
//! - **R7** duplicate `SimRng` stream-name literals across distinct
//!   derivation sites — identical names mean identical sequences
//!   (correlated randomness).
//! - **R8** drift between emitted trace-event kinds and the central
//!   registry in `crates/sim/src/trace.rs` — emitted-but-unregistered
//!   or registered-but-never-emitted kinds are silent digest drift.
//! - **R9** stale `hetlint: allow(..)` annotations that no longer cover
//!   any hit — they must be removed, not left to silently re-arm.
//!
//! Violations are suppressed in place with
//! `// hetlint: allow(<rule>) — <reason>`; the reason is mandatory and
//! every suppression is counted in the report. R9 itself cannot be
//! suppressed.

pub mod cache;
pub mod cfg;
pub mod dataflow;
pub mod graph;
pub mod interproc;
pub mod json;
pub mod lexer;
pub mod parser;
pub mod ratchet;
pub mod rules;
pub mod scan;
pub mod workspace;

use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose behavior feeds the simulation trace. The root package
/// (`hetflow`) re-exports and drives them, so it is held to the same
/// contract.
pub const SIM_DRIVEN: &[&str] = &["sim", "store", "fabric", "steer", "core", "apps", "hetflow"];

/// The rule that produced a violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Wall-clock time in a sim-driven crate.
    R1,
    /// Ambient entropy outside `sim::rng`.
    R2,
    /// Order-leaking hash-container iteration.
    R3,
    /// OS-thread spawn outside `ml`.
    R4,
    /// Unwrap budget exceeded.
    R5,
    /// Non-total float ordering.
    R6,
    /// Duplicate seed-stream name across distinct sites.
    R7,
    /// Trace-kind registry drift.
    R8,
    /// Stale suppression.
    R9,
    /// Ambient I/O reachable from a simulation entry point.
    R10,
    /// Lock guard held across a blocking call, or inverted lock order.
    R11,
    /// `SimRng` crossing a thread or channel boundary.
    R12,
    /// Panic site reachable from fabric dispatch, over the ratchet.
    R13,
    /// Nondeterministic value flowing into a trace/seed/intern sink.
    R14,
    /// Discarded `Result` of a fabric effect.
    R15,
    /// Lock guard live across an `.await` or blocking call, on a CFG
    /// path.
    R16,
    /// Malformed suppression (missing reason).
    BadAllow,
}

/// Canonical keys of every numbered rule, in order — the single source
/// for `--explain` listings and "valid rules" error text.
pub const RULE_KEYS: &[&str] = &[
    "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10", "r11", "r12", "r13", "r14",
    "r15", "r16",
];

/// The human-readable rule range (`R1..R16`), derived from
/// [`RULE_KEYS`] so help text can never drift from the rule set.
pub fn rule_range() -> String {
    format!(
        "R{}..R{}",
        RULE_KEYS.first().map_or("?", |k| &k[1..]),
        RULE_KEYS.last().map_or("?", |k| &k[1..])
    )
}

impl RuleId {
    /// The rule for a canonical key (inverse of [`RuleId::key`]); used
    /// by the analysis cache to deserialize violations.
    pub fn from_key(key: &str) -> Option<RuleId> {
        const ALL: &[RuleId] = &[
            RuleId::R1,
            RuleId::R2,
            RuleId::R3,
            RuleId::R4,
            RuleId::R5,
            RuleId::R6,
            RuleId::R7,
            RuleId::R8,
            RuleId::R9,
            RuleId::R10,
            RuleId::R11,
            RuleId::R12,
            RuleId::R13,
            RuleId::R14,
            RuleId::R15,
            RuleId::R16,
            RuleId::BadAllow,
        ];
        ALL.iter().copied().find(|r| r.key() == key)
    }

    /// The canonical lowercase key used in `allow(..)` annotations.
    pub fn key(self) -> &'static str {
        match self {
            RuleId::R1 => "r1",
            RuleId::R2 => "r2",
            RuleId::R3 => "r3",
            RuleId::R4 => "r4",
            RuleId::R5 => "r5",
            RuleId::R6 => "r6",
            RuleId::R7 => "r7",
            RuleId::R8 => "r8",
            RuleId::R9 => "r9",
            RuleId::R10 => "r10",
            RuleId::R11 => "r11",
            RuleId::R12 => "r12",
            RuleId::R13 => "r13",
            RuleId::R14 => "r14",
            RuleId::R15 => "r15",
            RuleId::R16 => "r16",
            RuleId::BadAllow => "bad-allow",
        }
    }

    /// A one-line description for report headers.
    pub fn title(self) -> &'static str {
        match self {
            RuleId::R1 => "R1 virtual-time: no wall clock in sim-driven crates",
            RuleId::R2 => "R2 seeded-rng: no ambient entropy outside sim::rng",
            RuleId::R3 => "R3 hash-order: no HashMap/HashSet iteration in sim-driven crates",
            RuleId::R4 => "R4 threads: no OS-thread spawn outside ml",
            RuleId::R5 => "R5 unwrap-budget: unwrap()/expect()/panic!() ratchet per library crate",
            RuleId::R6 => "R6 total-order: float ordering must be total",
            RuleId::R7 => "R7 seed-streams: stream-name literals must be workspace-unique",
            RuleId::R8 => "R8 trace-kinds: emitted kinds and the registry must agree",
            RuleId::R9 => "R9 stale-allow: suppressions must cover a live violation",
            RuleId::R10 => "R10 sim-purity: no ambient I/O reachable from simulation entry points",
            RuleId::R11 => "R11 lock-discipline: locks must be acquired in one global order",
            RuleId::R12 => "R12 rng-provenance: SimRng must not cross thread/channel boundaries",
            RuleId::R13 => "R13 panic-reach: panics reachable from fabric dispatch are ratcheted",
            RuleId::R14 => "R14 nondet-taint: nondeterministic values must not reach trace/seed sinks",
            RuleId::R15 => "R15 discarded-effects: fabric-effect Results must not be discarded",
            RuleId::R16 => "R16 lock-across-await: no guard live on a path to a suspension point",
            RuleId::BadAllow => "suppressions must carry a reason",
        }
    }
}

/// A long-form explanation of one rule, for `hetlint --explain <rule>`.
/// Accepts canonical keys and the same aliases as `allow(..)`; `None`
/// for unknown rules.
pub fn explain(rule: &str) -> Option<&'static str> {
    let key = scan::normalize_rule(rule);
    Some(match key.as_str() {
        "r1" => {
            "R1 virtual-time — sim-driven crates must not read the wall clock \
             (std::time::Instant, SystemTime, thread::sleep). The simulation owns time; \
             a wall-clock read makes runs machine-dependent and breaks bit-reproducibility. \
             Aliased imports are tracked. Fix: take time from the Sim handle."
        }
        "r2" => {
            "R2 seeded-rng — no ambient entropy (thread_rng, from_entropy, OsRng) outside \
             crates/sim/src/rng.rs. All randomness derives from the campaign master seed \
             through named streams (SimRng::stream) and substreams, so every draw is \
             attributable and replayable."
        }
        "r3" => {
            "R3 hash-order — no iteration over HashMap/HashSet in sim-driven crates. \
             Iteration order varies across runs and platforms, leaking nondeterminism into \
             anything order-sensitive (schedulers, traces). Keyed lookup is fine. Fix: \
             BTreeMap, or collect-and-sort before iterating."
        }
        "r4" => {
            "R4 threads — no OS-thread spawns outside the ml crate. The simulation is \
             single-threaded over virtual time by design; ml's scoped, member-seeded \
             ensemble fan-out is the one sanctioned escape because its result is \
             bit-identical to the sequential path."
        }
        "r5" => {
            "R5 unwrap-budget — unwrap()/expect()/panic!() sites in pre-test library code \
             are counted per crate against the checked-in hetlint.ratchet. Budgets only go \
             down. Runtime faults must take the typed task-failure path; only invariant \
             violations may abort, each under a reasoned `hetlint: allow(r5) — <why>`."
        }
        "r6" => {
            "R6 total-order — float comparisons feeding sorts or heaps must be total: \
             f64::total_cmp or an Ord-delegating wrapper, never .partial_cmp().unwrap(). \
             NaN-poisoned partial orders panic or, worse, silently reorder."
        }
        "r7" => {
            "R7 seed-streams — SimRng stream-name literals must be workspace-unique. Two \
             sites deriving streams from the same name get identical sequences: correlated \
             randomness that biases campaign comparisons while every digest still matches."
        }
        "r8" => {
            "R8 trace-kinds — every emitted trace-event kind must be declared in the \
             central registry (crates/sim/src/trace.rs kinds::), and every registered kind \
             must be emitted somewhere. Drift in either direction is silent digest drift."
        }
        "r9" => {
            "R9 stale-allow — a reasoned allow(..) that no longer covers any hit must be \
             removed. Left in place it would silently re-arm if the code regresses. Not \
             itself suppressible: the fix is deleting a line."
        }
        "r10" => {
            "R10 sim-purity — functions reachable (over the workspace call graph) from \
             simulation entry points (async fns and task-spawning fns in sim-driven \
             crates, fabric dispatch) must not reach ambient I/O: std::fs, std::env, \
             std::net, std::io streams, or print macros. The Tracer is the one sanctioned \
             side channel. Violations print the concrete witness call chain; suppress at \
             the sink with allow(r10)."
        }
        "r11" => {
            "R11 lock-discipline — two locks must never be acquired in inverted orders in \
             different functions; pick one global order. (Guards held across blocking \
             calls are R16's job, now decided on real CFG paths rather than token spans.)"
        }
        "r12" => {
            "R12 rng-provenance — a SimRng handle must not be stored in a thread-crossing \
             container (Arc, Mutex, RwLock, channel endpoints) or passed through a channel \
             send. Streams move by ownership along the derivation tree; smuggling one \
             across a thread boundary destroys substream provenance. Send a seed or \
             stream name and derive on the receiving side."
        }
        "r13" => {
            "R13 panic-reach — every unwrap()/expect()/panic!() site transitively \
             reachable from fabric dispatch (submit/deliver) is counted against the \
             `reachable-panics` budget in hetlint.ratchet. A panic on the dispatch path \
             kills the whole campaign, not one task. Sites under a reasoned allow(r5) are \
             exempt; the same annotation serves both rules."
        }
        "r14" => {
            "R14 nondet-taint — a value derived from ambient nondeterminism (wall-clock \
             reads, HashMap/HashSet iteration order, thread ids, env::var, {:p} pointer \
             formatting) must not flow into Tracer::emit, the digest fold, SimRng seeds \
             or stream names, or Symbol interning. The dataflow engine follows the value \
             through bindings, branches, and calls; every message prints the hop chain. \
             Sites are counted against the `r14` key in hetlint.ratchet. Fix: derive the \
             value from virtual time, sorted iteration, or named streams; annotate truly \
             diagnostic flows with `hetlint: allow(r14) — <why>`."
        }
        "r15" => {
            "R15 discarded-effects — `let _ = …` on a fabric effect (submit, deliver, \
             send_now, try_send, send) silently drops a delivery failure: the campaign \
             continues with a lost message and no trace of why. Flow-sensitive; the \
             message carries the entry-to-statement path. Counted against the `r15` key \
             in hetlint.ratchet. Teardown-tolerant discards take a reasoned \
             `hetlint: allow(r15) — <why>`."
        }
        "r16" => {
            "R16 lock-across-await — a Mutex guard must not be live on any CFG path from \
             its acquisition to an `.await` point, a blocking call (Condvar::wait, \
             synchronous channel send/recv, joins, thread::scope), or a call into a \
             function that can block transitively. Path-sensitive: a branch that drops \
             the guard before suspending is clean, and every violation prints the \
             concrete witness path through the function. Channel operations immediately \
             .awaited are virtual-time suspensions and only count as the await itself."
        }
        "bad-allow" => {
            "bad-allow — every suppression needs a reason: \
             `hetlint: allow(<rule>) — <why>`. A bare allow() is itself a violation."
        }
        _ => return None,
    })
}

/// What part of a crate a file belongs to; drives which rules apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` library (and `src/bin/`) code — all rules, R5 included.
    LibSrc,
    /// Integration tests under `tests/`.
    Test,
    /// Benches under `benches/`.
    Bench,
    /// Examples under `examples/`.
    Example,
}

/// Where a file sits in the workspace, for rule applicability.
#[derive(Clone, Debug)]
pub struct FileContext {
    /// Short crate name (`sim`, `store`, …; the root package is
    /// `hetflow`).
    pub crate_name: String,
    /// Section of the crate the file lives in.
    pub kind: FileKind,
    /// Workspace-relative path, for reporting.
    pub rel_path: String,
}

impl FileContext {
    /// Builds a context directly (used by fixture tests).
    pub fn new(crate_name: &str, kind: FileKind, rel_path: &str) -> FileContext {
        FileContext {
            crate_name: crate_name.to_string(),
            kind,
            rel_path: rel_path.to_string(),
        }
    }

    /// True when the file's crate must obey the virtual-time and
    /// hash-order rules.
    pub fn sim_driven(&self) -> bool {
        SIM_DRIVEN.contains(&self.crate_name.as_str())
    }

    /// True for the one module allowed to touch raw seed material.
    pub fn is_rng_module(&self) -> bool {
        self.rel_path.ends_with("crates/sim/src/rng.rs") || self.rel_path == "src/rng.rs"
    }

    /// True for the module holding the central trace-event-kind
    /// registry (R8).
    pub fn is_trace_module(&self) -> bool {
        self.rel_path.ends_with("crates/sim/src/trace.rs") || self.rel_path == "src/trace.rs"
    }
}

/// A single rule hit, before suppression filtering.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
    /// The annotation covering this hit, when one exists.
    pub suppression: Option<scan::Suppression>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule.key(), self.message)
    }
}

/// The outcome of linting one source text (unit of fixture testing).
#[derive(Debug, Default)]
pub struct FileReport {
    /// Rule hits that no annotation covers.
    pub violations: Vec<Violation>,
    /// Rule hits covered by an `allow(..)`.
    pub suppressed: Vec<Violation>,
    /// Suppressions with an empty reason (each is itself a violation).
    pub bad_allows: Vec<Violation>,
    /// Lines of pre-test `unwrap()`/`expect(`/`panic!(` sites that no
    /// allow covers (R5 raw material).
    pub unwrap_sites: Vec<usize>,
}

impl FileReport {
    /// True when the per-file pass produced nothing at all — the state
    /// a freshly deserialized cache entry must reproduce exactly.
    pub fn is_empty(&self) -> bool {
        self.violations.is_empty()
            && self.suppressed.is_empty()
            && self.bad_allows.is_empty()
            && self.unwrap_sites.is_empty()
    }
}

/// One file after the per-file pass, carrying everything the
/// workspace-wide phase needs.
#[derive(Debug)]
pub struct LintedFile {
    /// Where the file sits.
    pub ctx: FileContext,
    /// Per-file results; the cross-file phase appends to it.
    pub report: FileReport,
    /// The suppression table (annotations plus per-line code/comment
    /// maps) — everything the cross-file phase needs to resolve
    /// `allow(..)` coverage, without retaining the token stream. Kept
    /// token-free so a cached entry can reconstruct it.
    pub suppr: scan::SupprIndex,
    /// Seed-stream derivation sites (R7 raw material).
    pub stream_uses: Vec<rules::StreamUse>,
    /// Trace emit sites (R8 raw material).
    pub emit_sites: Vec<rules::EmitSite>,
    /// Registry entries, non-empty only for the trace module (R8).
    pub registry: Vec<rules::RegistryEntry>,
    /// `(rule key, annotation line)` pairs for every suppression that
    /// covered a hit — R9 flags the reasoned ones left over.
    pub matched_allows: Vec<(String, usize)>,
    /// Item-level parse: fn items with calls/sinks/locks/panics, plus
    /// file-level R12 escapes (raw material for R10–R13).
    pub items: parser::ParsedFile,
}

/// Runs the per-file pass over one source text.
pub fn lint_file(ctx: &FileContext, source: &str) -> LintedFile {
    let prepared = scan::prepare(source);
    let mut report = FileReport::default();
    let mut matched_allows: Vec<(String, usize)> = Vec::new();
    for v in rules::check_file(ctx, &prepared) {
        match &v.suppression {
            Some(s) if !s.reason.is_empty() => {
                matched_allows.push((v.rule.key().to_string(), s.line));
                report.suppressed.push(v);
            }
            Some(s) => {
                matched_allows.push((v.rule.key().to_string(), s.line));
                let line = s.line;
                report.bad_allows.push(Violation {
                    rule: RuleId::BadAllow,
                    path: ctx.rel_path.clone(),
                    line,
                    message: format!(
                        "allow({}) without a reason; write `hetlint: allow({}) — <why>`",
                        v.rule.key(),
                        v.rule.key()
                    ),
                    suppression: None,
                });
                report.suppressed.push(v);
            }
            None => report.violations.push(v),
        }
    }
    // Reason-less suppressions are flagged even when nothing fired under
    // them — a stale or typo'd allow must not linger silently.
    for s in &prepared.suppr.suppressions {
        if s.reason.is_empty() && !report.bad_allows.iter().any(|b| b.line == s.line) {
            report.bad_allows.push(Violation {
                rule: RuleId::BadAllow,
                path: ctx.rel_path.clone(),
                line: s.line,
                message: format!(
                    "allow({}) without a reason; write `hetlint: allow({}) — <why>`",
                    s.rule, s.rule
                ),
                suppression: None,
            });
        }
    }
    let r5 = rules::count_unwraps(ctx, &prepared);
    report.unwrap_sites = r5.sites;
    for line in r5.used_allow_lines {
        matched_allows.push(("r5".to_string(), line));
    }
    let stream_uses = rules::stream_uses(ctx, &prepared);
    let emit_sites = rules::emit_sites(ctx, &prepared);
    let registry = rules::registry_entries(ctx, &prepared);
    let items = parser::parse_items(ctx, &prepared);
    LintedFile {
        ctx: ctx.clone(),
        report,
        suppr: prepared.suppr,
        stream_uses,
        emit_sites,
        registry,
        matched_allows,
        items,
    }
}

/// Lints one source text under the given context, per-file rules only.
/// This is the pure core used by fixture tests; the workspace-wide
/// rules (R7–R9) need [`lint_set`].
pub fn lint_source(ctx: &FileContext, source: &str) -> FileReport {
    lint_file(ctx, source).report
}

/// Aggregate result of a workspace walk.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed violations, in path order.
    pub violations: Vec<Violation>,
    /// Suppressed hits (reasoned allows), for the summary line.
    pub suppressed: Vec<Violation>,
    /// Reason-less allows.
    pub bad_allows: Vec<Violation>,
    /// Per-crate `(crate, count, budget)` rows for R5.
    pub unwrap_rows: Vec<(String, usize, usize)>,
    /// `(count, budget)` of un-allowed panic sites reachable from
    /// fabric dispatch (R13); `None` when the interprocedural phase
    /// did not run.
    pub reachable_panics: Option<(usize, usize)>,
    /// `(count, budget)` of un-allowed nondeterminism-taint flows
    /// (R14); `None` when the dataflow phase did not run.
    pub nondet_taint: Option<(usize, usize)>,
    /// `(count, budget)` of un-allowed discarded fabric effects (R15);
    /// `None` when the dataflow phase did not run.
    pub discarded_effects: Option<(usize, usize)>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Informational findings that do not fail the run (e.g. ratchet
    /// slack — a budget that could be lowered).
    pub notes: Vec<String>,
}

impl Report {
    /// True when the workspace passes the determinism contract.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
            && self.bad_allows.is_empty()
            && self.unwrap_rows.iter().all(|(_, count, budget)| count <= budget)
            && self.reachable_panics.is_none_or(|(count, budget)| count <= budget)
            && self.nondet_taint.is_none_or(|(count, budget)| count <= budget)
            && self.discarded_effects.is_none_or(|(count, budget)| count <= budget)
    }
}

/// Lints a set of sources as one workspace: the per-file pass over each
/// file, then the cross-file phase (R7–R9), then R5 accounting against
/// the given ratchet. This is [`run`] without the filesystem walk, so
/// fixture tests can exercise the workspace-wide rules on synthetic
/// trees.
pub fn lint_set(inputs: &[(FileContext, String)], budgets: &ratchet::Ratchet) -> Report {
    lint_set_full(inputs, budgets).0
}

/// Everything one workspace pass produces: the report, the call graph
/// (`--callgraph`), and the dataflow document (`--dataflow`).
#[derive(Debug, Default)]
pub struct WorkspaceOutput {
    /// The aggregate report.
    pub report: Report,
    /// The workspace call graph.
    pub graph: graph::CallGraph,
    /// Converged dataflow summaries and R14–R16 findings.
    pub dataflow: dataflow::Doc,
}

/// As [`lint_set`], also returning the workspace call graph (for
/// `hetlint --callgraph` and the graph-artifact CI step).
pub fn lint_set_full(
    inputs: &[(FileContext, String)],
    budgets: &ratchet::Ratchet,
) -> (Report, graph::CallGraph) {
    let out = lint_set_all(inputs, budgets);
    (out.report, out.graph)
}

/// The full workspace pass: per-file rules over each file, the
/// cross-file phase (R7–R9), the interprocedural rules (R10–R13), the
/// dataflow rules (R14–R16), and ratchet accounting.
pub fn lint_set_all(
    inputs: &[(FileContext, String)],
    budgets: &ratchet::Ratchet,
) -> WorkspaceOutput {
    let files: Vec<LintedFile> = inputs
        .iter()
        .map(|(ctx, source)| lint_file(ctx, source))
        .collect();
    finish_workspace(files, budgets)
}

/// The cross-file tail of a workspace pass: runs R7–R16 over files that
/// have already been through the per-file pass (fresh or from the
/// cache) and assembles the aggregate report.
pub fn finish_workspace(
    mut files: Vec<LintedFile>,
    budgets: &ratchet::Ratchet,
) -> WorkspaceOutput {
    let outcome = workspace::cross_check(&mut files, budgets);

    let mut report = Report { files_scanned: files.len(), ..Report::default() };
    report.reachable_panics = Some(outcome.interproc.reachable_panics);
    report.nondet_taint = Some(outcome.dataflow.nondet_taint);
    report.discarded_effects = Some(outcome.dataflow.discarded_effects);
    report.notes.extend(outcome.interproc.notes);
    report.notes.extend(outcome.dataflow.notes);
    let mut counts: Vec<(String, usize)> = Vec::new();
    for f in files {
        report.violations.extend(f.report.violations);
        report.suppressed.extend(f.report.suppressed);
        report.bad_allows.extend(f.report.bad_allows);
        if !f.report.unwrap_sites.is_empty() {
            match counts.iter_mut().find(|(name, _)| *name == f.ctx.crate_name) {
                Some((_, n)) => *n += f.report.unwrap_sites.len(),
                None => counts.push((f.ctx.crate_name.clone(), f.report.unwrap_sites.len())),
            }
        }
    }
    // Rows cover the union of ratcheted crates and crates with sites, so
    // both "over budget" and "slack" are visible.
    let mut row_names: Vec<String> =
        budgets.budgets.iter().map(|(name, _)| name.clone()).collect();
    for (name, _) in &counts {
        if !row_names.iter().any(|n| n == name) {
            row_names.push(name.clone());
        }
    }
    row_names.sort();
    for name in row_names {
        let count = counts
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, c)| *c)
            .unwrap_or(0);
        let budget = budgets.budget_for(&name).unwrap_or(0);
        if count < budget {
            report.notes.push(format!(
                "R5 slack: crate `{name}` uses {count}/{budget} — the ratchet can be \
                 lowered to {count}"
            ));
        }
        report.unwrap_rows.push((name, count, budget));
    }
    WorkspaceOutput {
        report,
        graph: outcome.interproc.graph,
        dataflow: outcome.dataflow.doc,
    }
}

/// Classifies a workspace-relative path into a [`FileContext`]; `None`
/// for files hetlint does not police (vendored stand-ins, the lint
/// fixtures themselves, build scripts of foreign origin).
pub fn classify(rel: &str) -> Option<FileContext> {
    let rel = rel.replace('\\', "/");
    if rel.starts_with("vendor/") || rel.starts_with("target/") || rel.starts_with(".git/") {
        return None;
    }
    if rel.starts_with("crates/lint/tests/fixtures/") {
        return None;
    }
    let (crate_name, rest) = if let Some(tail) = rel.strip_prefix("crates/") {
        let (name, rest) = tail.split_once('/')?;
        let name = name.strip_prefix("hetflow-").unwrap_or(name);
        (name.to_string(), rest)
    } else {
        ("hetflow".to_string(), rel.as_str())
    };
    let kind = if rest.starts_with("src/") {
        FileKind::LibSrc
    } else if rest.starts_with("tests/") {
        FileKind::Test
    } else if rest.starts_with("benches/") {
        FileKind::Bench
    } else if rest.starts_with("examples/") {
        FileKind::Example
    } else {
        return None;
    };
    Some(FileContext { crate_name, kind, rel_path: rel })
}

/// Recursively collects `.rs` files under `root`, skipping build output,
/// vendored crates, and the lint fixtures.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if matches!(name, "target" | "vendor" | ".git" | "fixtures" | "node_modules") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                found.push(path);
            }
        }
    }
    found.sort();
    Ok(found)
}

/// Walks the workspace at `root`, loads and verifies the ratchet file,
/// and lints every classified source file (per-file and workspace-wide
/// phases).
pub fn run(root: &Path) -> std::io::Result<Report> {
    run_full(root).map(|(report, _)| report)
}

/// As [`run`], also returning the workspace call graph.
pub fn run_full(root: &Path) -> std::io::Result<(Report, graph::CallGraph)> {
    run_all(root).map(|out| (out.report, out.graph))
}

/// The full filesystem entry point: walks the workspace, loads the
/// ratchet, and runs every phase, returning the report, call graph,
/// and dataflow document. No cache — see [`run_all_cached`].
pub fn run_all(root: &Path) -> std::io::Result<WorkspaceOutput> {
    run_all_cached(root, None).map(|(out, _)| out)
}

/// As [`run_all`], with the per-file pass served through the incremental
/// cache when `cache_dir` is given. The cross-file phases (R7–R16)
/// always run fresh; only lexing, per-file rules, and CFG construction
/// are cached. Returns hit/miss counts alongside the output.
pub fn run_all_cached(
    root: &Path,
    cache_dir: Option<&Path>,
) -> std::io::Result<(WorkspaceOutput, cache::CacheStats)> {
    let budgets = ratchet::load(root)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let mut stats = cache::CacheStats::default();
    let mut files: Vec<LintedFile> = Vec::new();
    for path in collect_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(ctx) = classify(&rel) else { continue };
        let source = std::fs::read_to_string(&path)?;
        files.push(match cache_dir {
            Some(dir) => cache::lint_file_cached(dir, &ctx, &source, &mut stats),
            None => {
                stats.misses += 1;
                lint_file(&ctx, &source)
            }
        });
    }
    Ok((finish_workspace(files, &budgets), stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_crate_src() {
        let ctx = classify("crates/sim/src/executor.rs").unwrap();
        assert_eq!(ctx.crate_name, "sim");
        assert_eq!(ctx.kind, FileKind::LibSrc);
        assert!(ctx.sim_driven());
    }

    #[test]
    fn classify_root_tests_as_hetflow() {
        let ctx = classify("tests/determinism.rs").unwrap();
        assert_eq!(ctx.crate_name, "hetflow");
        assert_eq!(ctx.kind, FileKind::Test);
        assert!(ctx.sim_driven());
    }

    #[test]
    fn classify_skips_vendor_and_fixtures() {
        assert!(classify("vendor/proptest/src/lib.rs").is_none());
        assert!(classify("crates/lint/tests/fixtures/bad_r1.rs").is_none());
    }

    #[test]
    fn trace_module_detected() {
        let ctx = classify("crates/sim/src/trace.rs").unwrap();
        assert!(ctx.is_trace_module());
        let other = classify("crates/sim/src/executor.rs").unwrap();
        assert!(!other.is_trace_module());
    }

    #[test]
    fn rng_module_is_exempt_from_r2() {
        let ctx = classify("crates/sim/src/rng.rs").unwrap();
        assert!(ctx.is_rng_module());
        let report = lint_source(&ctx, "let x = OsRng;\n");
        assert!(report.violations.is_empty());
    }

    #[test]
    fn ml_crate_not_sim_driven_but_r2_applies() {
        let ctx = classify("crates/ml/src/ensemble.rs").unwrap();
        assert!(!ctx.sim_driven());
        let report = lint_source(&ctx, "let r = thread_rng();\n");
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, RuleId::R2);
    }

    #[test]
    fn reasoned_allow_suppresses_and_is_counted() {
        let ctx = classify("crates/steer/src/policy.rs").unwrap();
        let src = "use std::time::Instant; // hetlint: allow(r1) — doc example only\n";
        let report = lint_source(&ctx, src);
        assert!(report.violations.is_empty());
        assert_eq!(report.suppressed.len(), 1);
        assert!(report.bad_allows.is_empty());
    }

    #[test]
    fn reasonless_allow_is_flagged() {
        let ctx = classify("crates/steer/src/policy.rs").unwrap();
        let src = "use std::time::Instant; // hetlint: allow(r1)\n";
        let report = lint_source(&ctx, src);
        assert!(report.violations.is_empty());
        assert_eq!(report.bad_allows.len(), 1);
        assert_eq!(report.bad_allows[0].rule, RuleId::BadAllow);
    }

    #[test]
    fn unwrap_sites_stop_at_test_module() {
        let ctx = classify("crates/store/src/store.rs").unwrap();
        let src = "fn f() { x.unwrap(); y.expect(\"msg\"); }\n#[cfg(test)]\nmod tests { fn g() { z.unwrap(); } }\n";
        let report = lint_source(&ctx, src);
        assert_eq!(report.unwrap_sites.len(), 2);
    }

    #[test]
    fn lint_set_accounts_budgets_and_slack() {
        let ctx = classify("crates/store/src/store.rs").unwrap();
        let inputs = vec![(ctx, "fn f() { x.unwrap(); }\n".to_string())];
        let budgets = ratchet::parse("store = 2\n").unwrap();
        let report = lint_set(&inputs, &budgets);
        assert!(report.clean());
        assert_eq!(report.unwrap_rows, vec![("store".to_string(), 1, 2)]);
        assert_eq!(report.notes.len(), 1);
        let tight = ratchet::parse("store = 0\n").unwrap();
        let report2 = lint_set(&inputs, &tight);
        assert!(!report2.clean());
    }
}
