//! hetlint: the hetflow determinism & invariant static-analysis pass.
//!
//! The repo's central validity claim is bit-reproducibility: the same
//! seed must yield the same trace on any machine. That property is easy
//! to break with one stray wall-clock read or hash-order iteration, and
//! such regressions are invisible until an expensive campaign diverges.
//! hetlint walks every Rust source in the workspace and enforces the
//! determinism contract as machine-checked rules:
//!
//! - **R1** no `std::time::{Instant, SystemTime}` / `thread::sleep` in
//!   sim-driven crates — virtual time only.
//! - **R2** no ambient entropy (`thread_rng`, `from_entropy`, `OsRng`)
//!   outside `sim::rng` — named seeded streams only.
//! - **R3** no order-leaking iteration over `HashMap`/`HashSet` in
//!   sim-driven crates — keyed lookup is fine, iteration is not.
//! - **R4** no OS-thread spawns outside `ml` — whose scoped,
//!   member-seeded fan-out is the sanctioned escape hatch.
//! - **R5** an `unwrap()`/`expect()`/`panic!()` budget per library
//!   crate — a ratchet that may go down but not up. Runtime faults must
//!   travel the typed failure path (`TaskOutcome::Failed`); only
//!   invariant violations may abort, and each needs a reasoned allow.
//! - **R6** float ordering must be total — `f64::total_cmp` or an
//!   `Ord`-delegating wrapper, never ad-hoc `.partial_cmp().unwrap()`.
//!
//! Violations are suppressed in place with
//! `// hetlint: allow(<rule>) — <reason>`; the reason is mandatory and
//! every suppression is counted in the report.

pub mod rules;
pub mod scan;

use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose behavior feeds the simulation trace. The root package
/// (`hetflow`) re-exports and drives them, so it is held to the same
/// contract.
pub const SIM_DRIVEN: &[&str] = &["sim", "store", "fabric", "steer", "core", "apps", "hetflow"];

/// Per-library-crate `unwrap()`/`expect()`/`panic!()` budgets (rule R5).
///
/// This is a ratchet: numbers may be lowered as call sites are converted
/// to `Result` plumbing or the typed task-failure path
/// (`TaskOutcome::Failed`), but raising one requires a design
/// discussion. Counts cover only pre-`#[cfg(test)]` library code;
/// annotated lines (`hetlint: allow(r5)`) are excluded from the count —
/// the annotation marks an invariant-violation abort (a programming or
/// wiring bug), never a runtime fault, which must surface as a failed
/// task instead of a panic.
pub const UNWRAP_BUDGETS: &[(&str, usize)] = &[
    ("sim", 5),
    ("store", 1),
    ("fabric", 0),
    ("steer", 2),
    ("chem", 2),
    ("ml", 3),
    ("core", 0),
    ("apps", 3),
    ("bench", 6),
    ("hetflow", 0),
    ("lint", 0),
];

/// The rule that produced a violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Wall-clock time in a sim-driven crate.
    R1,
    /// Ambient entropy outside `sim::rng`.
    R2,
    /// Order-leaking hash-container iteration.
    R3,
    /// OS-thread spawn outside `ml`.
    R4,
    /// Unwrap budget exceeded.
    R5,
    /// Non-total float ordering.
    R6,
    /// Malformed suppression (missing reason).
    BadAllow,
}

impl RuleId {
    /// The canonical lowercase key used in `allow(..)` annotations.
    pub fn key(self) -> &'static str {
        match self {
            RuleId::R1 => "r1",
            RuleId::R2 => "r2",
            RuleId::R3 => "r3",
            RuleId::R4 => "r4",
            RuleId::R5 => "r5",
            RuleId::R6 => "r6",
            RuleId::BadAllow => "bad-allow",
        }
    }

    /// A one-line description for report headers.
    pub fn title(self) -> &'static str {
        match self {
            RuleId::R1 => "R1 virtual-time: no wall clock in sim-driven crates",
            RuleId::R2 => "R2 seeded-rng: no ambient entropy outside sim::rng",
            RuleId::R3 => "R3 hash-order: no HashMap/HashSet iteration in sim-driven crates",
            RuleId::R4 => "R4 threads: no OS-thread spawn outside ml",
            RuleId::R5 => "R5 unwrap-budget: unwrap()/expect()/panic!() ratchet per library crate",
            RuleId::R6 => "R6 total-order: float ordering must be total",
            RuleId::BadAllow => "suppressions must carry a reason",
        }
    }
}

/// What part of a crate a file belongs to; drives which rules apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` library (and `src/bin/`) code — all rules, R5 included.
    LibSrc,
    /// Integration tests under `tests/`.
    Test,
    /// Benches under `benches/`.
    Bench,
    /// Examples under `examples/`.
    Example,
}

/// Where a file sits in the workspace, for rule applicability.
#[derive(Clone, Debug)]
pub struct FileContext {
    /// Short crate name (`sim`, `store`, …; the root package is
    /// `hetflow`).
    pub crate_name: String,
    /// Section of the crate the file lives in.
    pub kind: FileKind,
    /// Workspace-relative path, for reporting.
    pub rel_path: String,
}

impl FileContext {
    /// Builds a context directly (used by fixture tests).
    pub fn new(crate_name: &str, kind: FileKind, rel_path: &str) -> FileContext {
        FileContext {
            crate_name: crate_name.to_string(),
            kind,
            rel_path: rel_path.to_string(),
        }
    }

    /// True when the file's crate must obey the virtual-time and
    /// hash-order rules.
    pub fn sim_driven(&self) -> bool {
        SIM_DRIVEN.contains(&self.crate_name.as_str())
    }

    /// True for the one module allowed to touch raw seed material.
    pub fn is_rng_module(&self) -> bool {
        self.rel_path.ends_with("crates/sim/src/rng.rs") || self.rel_path == "src/rng.rs"
    }
}

/// A single rule hit, before suppression filtering.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
    /// The annotation covering this hit, when one exists.
    pub suppression: Option<scan::Suppression>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule.key(), self.message)
    }
}

/// The outcome of linting one source text (unit of fixture testing).
#[derive(Debug, Default)]
pub struct FileReport {
    /// Rule hits that no annotation covers.
    pub violations: Vec<Violation>,
    /// Rule hits covered by a reasoned `allow(..)`.
    pub suppressed: Vec<Violation>,
    /// Suppressions with an empty reason (each is itself a violation).
    pub bad_allows: Vec<Violation>,
    /// Lines of pre-test `unwrap()`/`expect(`/`panic!(` sites (R5 raw
    /// material).
    pub unwrap_sites: Vec<usize>,
}

/// Lints one source text under the given context. This is the pure core
/// used both by the workspace walk and by fixture tests.
pub fn lint_source(ctx: &FileContext, source: &str) -> FileReport {
    let prepared = scan::prepare(source);
    let mut report = FileReport::default();
    for v in rules::check_file(ctx, &prepared) {
        match &v.suppression {
            Some(s) if !s.reason.is_empty() => report.suppressed.push(v),
            Some(s) => {
                let line = s.line;
                report.bad_allows.push(Violation {
                    rule: RuleId::BadAllow,
                    path: ctx.rel_path.clone(),
                    line,
                    message: format!(
                        "allow({}) without a reason; write `hetlint: allow({}) — <why>`",
                        v.rule.key(),
                        v.rule.key()
                    ),
                    suppression: None,
                });
                report.suppressed.push(v);
            }
            None => report.violations.push(v),
        }
    }
    // Reason-less suppressions are flagged even when nothing fired under
    // them — a stale or typo'd allow must not linger silently.
    for s in &prepared.suppressions {
        if s.reason.is_empty() && !report.bad_allows.iter().any(|b| b.line == s.line) {
            report.bad_allows.push(Violation {
                rule: RuleId::BadAllow,
                path: ctx.rel_path.clone(),
                line: s.line,
                message: format!(
                    "allow({}) without a reason; write `hetlint: allow({}) — <why>`",
                    s.rule, s.rule
                ),
                suppression: None,
            });
        }
    }
    report.unwrap_sites = rules::count_unwraps(ctx, &prepared);
    report
}

/// Aggregate result of a workspace walk.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed violations, in path order.
    pub violations: Vec<Violation>,
    /// Suppressed hits (reasoned allows), for the summary line.
    pub suppressed: Vec<Violation>,
    /// Reason-less allows.
    pub bad_allows: Vec<Violation>,
    /// Per-crate `(crate, count, budget)` rows for R5.
    pub unwrap_rows: Vec<(String, usize, usize)>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the workspace passes the determinism contract.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
            && self.bad_allows.is_empty()
            && self.unwrap_rows.iter().all(|(_, count, budget)| count <= budget)
    }
}

/// Classifies a workspace-relative path into a [`FileContext`]; `None`
/// for files hetlint does not police (vendored stand-ins, the lint
/// fixtures themselves, build scripts of foreign origin).
pub fn classify(rel: &str) -> Option<FileContext> {
    let rel = rel.replace('\\', "/");
    if rel.starts_with("vendor/") || rel.starts_with("target/") || rel.starts_with(".git/") {
        return None;
    }
    if rel.starts_with("crates/lint/tests/fixtures/") {
        return None;
    }
    let (crate_name, rest) = if let Some(tail) = rel.strip_prefix("crates/") {
        let (name, rest) = tail.split_once('/')?;
        let name = name.strip_prefix("hetflow-").unwrap_or(name);
        (name.to_string(), rest)
    } else {
        ("hetflow".to_string(), rel.as_str())
    };
    let kind = if rest.starts_with("src/") {
        FileKind::LibSrc
    } else if rest.starts_with("tests/") {
        FileKind::Test
    } else if rest.starts_with("benches/") {
        FileKind::Bench
    } else if rest.starts_with("examples/") {
        FileKind::Example
    } else {
        return None;
    };
    Some(FileContext { crate_name, kind, rel_path: rel })
}

/// Recursively collects `.rs` files under `root`, skipping build output,
/// vendored crates, and the lint fixtures.
pub fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if matches!(name, "target" | "vendor" | ".git" | "fixtures" | "node_modules") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                found.push(path);
            }
        }
    }
    found.sort();
    Ok(found)
}

/// Walks the workspace at `root` and lints every classified source file.
pub fn run(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut unwraps: Vec<(String, usize)> = Vec::new();
    for path in collect_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(ctx) = classify(&rel) else { continue };
        let source = std::fs::read_to_string(&path)?;
        report.files_scanned += 1;
        let file = lint_source(&ctx, &source);
        report.violations.extend(file.violations);
        report.suppressed.extend(file.suppressed);
        report.bad_allows.extend(file.bad_allows);
        if !file.unwrap_sites.is_empty() {
            match unwraps.iter_mut().find(|(name, _)| *name == ctx.crate_name) {
                Some((_, n)) => *n += file.unwrap_sites.len(),
                None => unwraps.push((ctx.crate_name.clone(), file.unwrap_sites.len())),
            }
        }
    }
    unwraps.sort();
    for (name, count) in unwraps {
        let budget = UNWRAP_BUDGETS
            .iter()
            .find(|(b, _)| *b == name)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        report.unwrap_rows.push((name, count, budget));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_crate_src() {
        let ctx = classify("crates/sim/src/executor.rs").unwrap();
        assert_eq!(ctx.crate_name, "sim");
        assert_eq!(ctx.kind, FileKind::LibSrc);
        assert!(ctx.sim_driven());
    }

    #[test]
    fn classify_root_tests_as_hetflow() {
        let ctx = classify("tests/determinism.rs").unwrap();
        assert_eq!(ctx.crate_name, "hetflow");
        assert_eq!(ctx.kind, FileKind::Test);
        assert!(ctx.sim_driven());
    }

    #[test]
    fn classify_skips_vendor_and_fixtures() {
        assert!(classify("vendor/proptest/src/lib.rs").is_none());
        assert!(classify("crates/lint/tests/fixtures/bad_r1.rs").is_none());
    }

    #[test]
    fn rng_module_is_exempt_from_r2() {
        let ctx = classify("crates/sim/src/rng.rs").unwrap();
        assert!(ctx.is_rng_module());
        let report = lint_source(&ctx, "let x = OsRng;\n");
        assert!(report.violations.is_empty());
    }

    #[test]
    fn ml_crate_not_sim_driven_but_r2_applies() {
        let ctx = classify("crates/ml/src/ensemble.rs").unwrap();
        assert!(!ctx.sim_driven());
        let report = lint_source(&ctx, "let r = thread_rng();\n");
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, RuleId::R2);
    }

    #[test]
    fn reasoned_allow_suppresses_and_is_counted() {
        let ctx = classify("crates/steer/src/policy.rs").unwrap();
        let src = "use std::time::Instant; // hetlint: allow(r1) — doc example only\n";
        let report = lint_source(&ctx, src);
        assert!(report.violations.is_empty());
        assert_eq!(report.suppressed.len(), 1);
        assert!(report.bad_allows.is_empty());
    }

    #[test]
    fn reasonless_allow_is_flagged() {
        let ctx = classify("crates/steer/src/policy.rs").unwrap();
        let src = "use std::time::Instant; // hetlint: allow(r1)\n";
        let report = lint_source(&ctx, src);
        assert!(report.violations.is_empty());
        assert_eq!(report.bad_allows.len(), 1);
        assert_eq!(report.bad_allows[0].rule, RuleId::BadAllow);
    }

    #[test]
    fn unwrap_sites_stop_at_test_module() {
        let ctx = classify("crates/store/src/store.rs").unwrap();
        let src = "fn f() { x.unwrap(); y.expect(\"msg\"); }\n#[cfg(test)]\nmod tests { fn g() { z.unwrap(); } }\n";
        let report = lint_source(&ctx, src);
        assert_eq!(report.unwrap_sites.len(), 2);
    }
}
