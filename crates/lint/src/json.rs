//! JSON output for `hetlint --format json`, plus a minimal parser.
//!
//! The build is hermetic (no serde), so both directions are
//! hand-rolled: [`report_to_json`] serializes a [`crate::Report`] with
//! a stable field order, and [`parse`] is a small recursive-descent
//! JSON reader used by the round-trip tests and available to any gate
//! that wants to consume the report without string matching.

use crate::dataflow;
use crate::graph::CallGraph;
use crate::{Report, Violation};

/// Escapes a string for embedding in a JSON document (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xf;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn violation_obj(v: &Violation, indent: &str) -> String {
    let mut fields = vec![
        format!("\"rule\": {}", escape(v.rule.key())),
        format!("\"path\": {}", escape(&v.path)),
        format!("\"line\": {}", v.line),
        format!("\"message\": {}", escape(&v.message)),
    ];
    if let Some(s) = &v.suppression {
        fields.push(format!("\"reason\": {}", escape(&s.reason)));
    }
    format!("{indent}{{ {} }}", fields.join(", "))
}

fn violation_array(items: &[Violation], indent: &str) -> String {
    if items.is_empty() {
        return "[]".to_string();
    }
    let inner = format!("{indent}  ");
    let body: Vec<String> = items.iter().map(|v| violation_obj(v, &inner)).collect();
    format!("[\n{}\n{indent}]", body.join(",\n"))
}

/// Serializes a workspace report. Field order is stable; consumers may
/// rely on it for diffing artifacts across runs.
pub fn report_to_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"hetlint\",\n");
    out.push_str("  \"schema_version\": 4,\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("  \"clean\": {},\n", report.clean()));
    out.push_str(&format!(
        "  \"violations\": {},\n",
        violation_array(&report.violations, "  ")
    ));
    out.push_str(&format!(
        "  \"suppressed\": {},\n",
        violation_array(&report.suppressed, "  ")
    ));
    out.push_str(&format!(
        "  \"bad_allows\": {},\n",
        violation_array(&report.bad_allows, "  ")
    ));
    if report.unwrap_rows.is_empty() {
        out.push_str("  \"unwrap_budget\": [],\n");
    } else {
        let rows: Vec<String> = report
            .unwrap_rows
            .iter()
            .map(|(name, count, budget)| {
                format!(
                    "    {{ \"crate\": {}, \"count\": {count}, \"budget\": {budget}, \
                     \"over\": {} }}",
                    escape(name),
                    count > budget
                )
            })
            .collect();
        out.push_str(&format!(
            "  \"unwrap_budget\": [\n{}\n  ],\n",
            rows.join(",\n")
        ));
    }
    for (key, row) in [
        ("reachable_panics", report.reachable_panics),
        ("nondet_taint", report.nondet_taint),
        ("discarded_effects", report.discarded_effects),
    ] {
        match row {
            Some((count, budget)) => out.push_str(&format!(
                "  \"{key}\": {{ \"count\": {count}, \"budget\": {budget}, \
                 \"over\": {} }},\n",
                count > budget
            )),
            None => out.push_str(&format!("  \"{key}\": null,\n")),
        }
    }
    if report.notes.is_empty() {
        out.push_str("  \"notes\": []\n");
    } else {
        let notes: Vec<String> = report
            .notes
            .iter()
            .map(|n| format!("    {}", escape(n)))
            .collect();
        out.push_str(&format!("  \"notes\": [\n{}\n  ]\n", notes.join(",\n")));
    }
    out.push('}');
    out
}

/// Serializes the workspace call graph for `hetlint --callgraph`.
/// Nodes carry qualified names and defining locations; edges are
/// `[from, to]` index pairs into the node array. The document
/// round-trips through [`parse`].
pub fn graph_to_json(graph: &CallGraph) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"hetlint-callgraph\",\n");
    out.push_str("  \"schema_version\": 1,\n");
    if graph.nodes.is_empty() {
        out.push_str("  \"nodes\": [],\n");
    } else {
        let rows: Vec<String> = graph
            .nodes
            .iter()
            .enumerate()
            .map(|(id, n)| {
                format!(
                    "    {{ \"id\": {id}, \"qname\": {}, \"crate\": {}, \"path\": {}, \
                     \"line\": {} }}",
                    escape(&n.qname),
                    escape(&n.crate_name),
                    escape(&n.path),
                    n.line
                )
            })
            .collect();
        out.push_str(&format!("  \"nodes\": [\n{}\n  ],\n", rows.join(",\n")));
    }
    let mut pairs: Vec<String> = Vec::new();
    for (from, row) in graph.edges.iter().enumerate() {
        for &to in row {
            pairs.push(format!("[{from}, {to}]"));
        }
    }
    if pairs.is_empty() {
        out.push_str("  \"edges\": []\n");
    } else {
        out.push_str(&format!("  \"edges\": [\n    {}\n  ]\n", pairs.join(",\n    ")));
    }
    out.push('}');
    out
}

/// Serializes the converged dataflow document for
/// `hetlint --dataflow`: per-function summaries (return taint,
/// parameter flows, blocking) and every R14–R16 finding, suppressed
/// included. The document round-trips through [`parse`].
pub fn dataflow_to_json(doc: &dataflow::Doc) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"hetlint-dataflow\",\n");
    out.push_str("  \"schema_version\": 4,\n");
    if doc.fns.is_empty() {
        out.push_str("  \"functions\": [],\n");
    } else {
        let rows: Vec<String> = doc
            .fns
            .iter()
            .map(|f| {
                let returns = f
                    .returns_taint
                    .as_deref()
                    .map_or("null".to_string(), escape);
                let sinks: Vec<String> =
                    f.param_sinks.iter().map(|s| escape(s)).collect();
                format!(
                    "    {{ \"qname\": {}, \"path\": {}, \"line\": {}, \"blocks\": {}, \
                     \"returns_taint\": {returns}, \"param_to_return\": {}, \
                     \"param_sinks\": [{}], \"may_block\": {} }}",
                    escape(&f.qname),
                    escape(&f.path),
                    f.line,
                    f.blocks,
                    f.param_to_return,
                    sinks.join(", "),
                    f.may_block
                )
            })
            .collect();
        out.push_str(&format!("  \"functions\": [\n{}\n  ],\n", rows.join(",\n")));
    }
    if doc.findings.is_empty() {
        out.push_str("  \"findings\": []\n");
    } else {
        let rows: Vec<String> = doc
            .findings
            .iter()
            .map(|f| {
                format!(
                    "    {{ \"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \
                     \"suppressed\": {} }}",
                    escape(&f.rule),
                    escape(&f.path),
                    f.line,
                    escape(&f.message),
                    f.suppressed
                )
            })
            .collect();
        out.push_str(&format!("  \"findings\": [\n{}\n  ]\n", rows.join(",\n")));
    }
    out.push('}');
    out
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as f64; the report only emits integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Renders a [`Value`] back to compact JSON. Integers print without a
/// fractional part, so documents built from counts and line numbers
/// round-trip bit-identically — the property the analysis cache's
/// equality tests rely on.
pub fn render(v: &Value) -> String {
    let mut out = String::new();
    render_into(v, &mut out);
    out
}

fn render_into(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => {
            out.push_str(&format!("{}", *n as i64));
        }
        Value::Num(n) => out.push_str(&format!("{n}")),
        Value::Str(s) => out.push_str(&escape(s)),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Value::Obj(members) => {
            out.push('{');
            for (i, (key, value)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&escape(key));
                out.push(':');
                render_into(value, out);
            }
            out.push('}');
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { chars: text.chars().collect(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing data at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect_char(&mut self, want: char) -> Result<(), String> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            other => Err(format!(
                "expected `{want}` at offset {}, got {other:?}",
                self.pos
            )),
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => self.string().map(Value::Str),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        for want in word.chars() {
            if self.bump() != Some(want) {
                return Err(format!("malformed literal near offset {}", self.pos));
            }
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some('-' | '+' | '.' | 'e' | 'E') | Some('0'..='9')
        ) {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number `{text}` at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_char('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let Some(d) = self.bump().and_then(|c| c.to_digit(16)) else {
                                return Err(format!(
                                    "bad \\u escape at offset {}",
                                    self.pos
                                ));
                            };
                            code = code * 16 + d;
                        }
                        let Some(c) = char::from_u32(code) else {
                            return Err(format!("invalid codepoint \\u{code:04x}"));
                        };
                        out.push(c);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect_char('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Value::Arr(items)),
                other => return Err(format!("expected `,` or `]`, got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect_char('{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_char(':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Value::Obj(members)),
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": "x\ny", "c": true, "d": null}"#).unwrap();
        assert_eq!(v.get("a").and_then(|a| a.as_arr()).map(<[Value]>::len), Some(3));
        assert_eq!(v.get("b").and_then(Value::as_str), Some("x\ny"));
        assert_eq!(v.get("c").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("d"), Some(&Value::Null));
    }

    #[test]
    fn escape_round_trips() {
        let ugly = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"s\": {}}}", escape(ugly));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some(ugly));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_docs() {
        assert!(parse("{} extra").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escape_parses() {
        let v = parse("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn every_control_char_escapes_and_round_trips() {
        // U+0000..=U+001F must all be escaped (raw control bytes are
        // invalid JSON) and survive a full render → parse cycle.
        let all_controls: String = (0u32..=0x1f).map(|c| char::from_u32(c).unwrap()).collect();
        let escaped = escape(&all_controls);
        let inner = &escaped[1..escaped.len() - 1];
        assert!(
            inner.chars().all(|c| c as u32 >= 0x20),
            "escaped form must contain no raw control characters: {inner:?}"
        );
        let doc = Value::Obj(vec![("s".to_string(), Value::Str(all_controls.clone()))]);
        let back = parse(&render(&doc)).unwrap();
        assert_eq!(back.get("s").and_then(Value::as_str), Some(all_controls.as_str()));
    }

    #[test]
    fn render_round_trips_nested_values() {
        let doc = Value::Obj(vec![
            ("n".to_string(), Value::Num(42.0)),
            ("f".to_string(), Value::Num(2.5)),
            ("b".to_string(), Value::Bool(true)),
            ("z".to_string(), Value::Null),
            (
                "a".to_string(),
                Value::Arr(vec![Value::Str("x\ny".to_string()), Value::Num(0.0)]),
            ),
        ]);
        let text = render(&doc);
        assert_eq!(parse(&text).unwrap(), doc);
        // Integers render without a fractional part.
        assert!(text.contains("\"n\":42"), "got {text}");
    }
}
