//! The workspace-wide analysis phase: rules that no single file can
//! decide.
//!
//! After every file is lexed and per-file rules have run, this phase
//! sees the whole workspace at once:
//!
//! - **R7** — two call sites deriving a `SimRng` stream from the same
//!   name literal get *identical* random sequences. That is correlated
//!   randomness: two logically independent processes move in lockstep,
//!   which silently biases campaign comparisons while every per-run
//!   digest still matches.
//! - **R8** — the trace digest folds event-kind strings; a kind emitted
//!   anywhere but absent from the central registry
//!   (`crates/sim/src/trace.rs`), or registered but never emitted, is
//!   silent digest drift waiting to happen.
//! - **R9** — a `hetlint: allow(..)` that no longer covers any hit is a
//!   stale exemption; left in place it would silently re-arm if the
//!   code around it regresses, so it must be removed.

use crate::dataflow;
use crate::interproc;
use crate::ratchet::Ratchet;
use crate::rules::EmitKindRef;
use crate::scan;
use crate::{LintedFile, RuleId, Violation};

/// What the full cross-file phase hands back: the interprocedural
/// outcome (R13 accounting, call graph) and the dataflow outcome
/// (R14/R15 accounting, the `--dataflow` document).
#[derive(Debug, Default)]
pub struct CrossOutcome {
    /// R10–R13 results.
    pub interproc: interproc::Outcome,
    /// R14–R16 results.
    pub dataflow: dataflow::Outcome,
}

/// Runs the cross-file rules, appending hits to each file's report.
/// Order matters: R9 must run last so it sees which suppressions R7,
/// R8, the interprocedural rules (R10–R13), and the dataflow rules
/// (R14–R16) consumed.
pub fn cross_check(files: &mut [LintedFile], budgets: &Ratchet) -> CrossOutcome {
    r7_stream_collisions(files);
    r8_trace_registry(files);
    let interproc = interproc::check(files, budgets);
    let dataflow = dataflow::check(files, budgets, &interproc.graph);
    r9_stale_allows(files);
    CrossOutcome { interproc, dataflow }
}

/// Routes one cross-file hit through the owning file's suppressions.
fn push_hit(file: &mut LintedFile, rule: RuleId, line: usize, message: String) {
    let found = scan::find_suppression(&file.suppr, rule.key(), line).cloned();
    match found {
        Some(s) => {
            file.matched_allows.push((rule.key().to_string(), s.line));
            // An empty reason is already flagged as a bad allow by the
            // per-file pass; here it still counts as covering the hit.
            file.report.suppressed.push(Violation {
                rule,
                path: file.ctx.rel_path.clone(),
                line,
                message,
                suppression: Some(s),
            });
        }
        None => file.report.violations.push(Violation {
            rule,
            path: file.ctx.rel_path.clone(),
            line,
            message,
            suppression: None,
        }),
    }
}

/// R7 — duplicate seed-stream names across distinct derivation sites.
fn r7_stream_collisions(files: &mut [LintedFile]) {
    // (name, file index, line) for every literal-named derivation site.
    let mut sites: Vec<(String, usize, usize)> = Vec::new();
    for (idx, f) in files.iter().enumerate() {
        for u in &f.stream_uses {
            sites.push((u.name.clone(), idx, u.line));
        }
    }
    sites.sort();
    let mut i = 0;
    while i < sites.len() {
        let mut j = i + 1;
        while j < sites.len() && sites[j].0 == sites[i].0 {
            j += 1;
        }
        if j - i >= 2 {
            let name = sites[i].0.clone();
            let locations: Vec<String> = sites[i..j]
                .iter()
                .map(|(_, fi, line)| format!("{}:{}", files[*fi].ctx.rel_path, line))
                .collect();
            let all = locations.join(", ");
            let colliding: Vec<(usize, usize)> =
                sites[i..j].iter().map(|(_, fi, line)| (*fi, *line)).collect();
            for (fi, line) in colliding {
                let message = format!(
                    "seed stream \"{name}\" is derived at {} distinct sites ({all}); \
                     identical names yield identical sequences (correlated randomness) — \
                     give each site a unique stream name",
                    j - i
                );
                push_hit(&mut files[fi], RuleId::R7, line, message);
            }
        }
        i = j;
    }
}

/// R8 — drift between emitted trace-event kinds and the central
/// registry. Skipped entirely when the scanned set contains no registry
/// module (fixture runs, partial trees).
fn r8_trace_registry(files: &mut [LintedFile]) {
    let mut registry: Vec<(String, String, usize, usize)> = Vec::new(); // const, value, file, line
    for (idx, f) in files.iter().enumerate() {
        for e in &f.registry {
            registry.push((e.const_name.clone(), e.value.clone(), idx, e.line));
        }
    }
    if registry.is_empty() {
        return;
    }
    // Emitted-but-unregistered: every emit site must resolve to a
    // registered constant or a registered value.
    let mut used_consts: Vec<String> = Vec::new();
    let mut used_values: Vec<String> = Vec::new();
    let mut hits: Vec<(usize, usize, String)> = Vec::new();
    for (idx, f) in files.iter().enumerate() {
        for site in &f.emit_sites {
            match &site.kind {
                EmitKindRef::Const(name) => {
                    if registry.iter().any(|(c, _, _, _)| c == name) {
                        if !used_consts.contains(name) {
                            used_consts.push(name.clone());
                        }
                    } else {
                        hits.push((
                            idx,
                            site.line,
                            format!(
                                "emit() references kinds::{name}, which is not declared in \
                                 the trace-kind registry (crates/sim/src/trace.rs)"
                            ),
                        ));
                    }
                }
                EmitKindRef::Literal(value) => {
                    if registry.iter().any(|(_, v, _, _)| v == value) {
                        if !used_values.contains(value) {
                            used_values.push(value.clone());
                        }
                    } else {
                        hits.push((
                            idx,
                            site.line,
                            format!(
                                "emit() uses ad-hoc kind \"{value}\" absent from the \
                                 trace-kind registry (crates/sim/src/trace.rs); register a \
                                 kinds:: constant and emit through it"
                            ),
                        ));
                    }
                }
            }
        }
    }
    // Registered-but-never-emitted: a dead registry entry means the
    // digest fold no longer covers a kind anyone thought it did.
    for (const_name, value, idx, line) in &registry {
        if !used_consts.contains(const_name) && !used_values.contains(value) {
            hits.push((
                *idx,
                *line,
                format!(
                    "registered trace kind {const_name} (\"{value}\") is never emitted by \
                     library code; remove the registry entry or restore the emit site"
                ),
            ));
        }
    }
    for (idx, line, message) in hits {
        push_hit(&mut files[idx], RuleId::R8, line, message);
    }
}

/// Rules a suppression can legitimately target; `allow(<anything else>)`
/// is a doc placeholder or typo and R9 leaves it to the bad-allow check.
const SUPPRESSIBLE: &[&str] = &[
    "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r10", "r11", "r12", "r13", "r14", "r15",
    "r16",
];

/// R9 — reasoned suppressions that covered nothing this run. Not itself
/// suppressible: the fix is deleting a line, never annotating it.
fn r9_stale_allows(files: &mut [LintedFile]) {
    for f in files.iter_mut() {
        for s in &f.suppr.suppressions {
            if s.reason.is_empty() {
                continue; // already reported as a bad allow
            }
            if !SUPPRESSIBLE.contains(&s.rule.as_str()) {
                continue;
            }
            let matched = f
                .matched_allows
                .iter()
                .any(|(rule, line)| *rule == s.rule && *line == s.line);
            if !matched {
                f.report.violations.push(Violation {
                    rule: RuleId::R9,
                    path: f.ctx.rel_path.clone(),
                    line: s.line,
                    message: format!(
                        "stale suppression: allow({}) no longer matches any violation; \
                         remove the annotation so the ratchet stays honest",
                        s.rule
                    ),
                    suppression: None,
                });
            }
        }
    }
}
