//! A std-only token-stream lexer for Rust sources.
//!
//! hetlint rules operate on real tokens rather than per-line substring
//! matching: the lexer resolves exactly the ambiguities that made the
//! old scanner both miss violations (chains wrapped across three or
//! more lines, aliased imports) and report phantoms (double-counted
//! window boundaries, identifiers buried in nested generics). It
//! handles nested block comments, raw strings with any hash arity
//! (`r#"…"#`), byte and raw-byte strings, char literals vs lifetimes,
//! escapes, and numeric literals.
//!
//! Comment text is collected per line — that is where
//! `hetlint: allow(..)` annotations live — and never reaches the token
//! stream; string contents become single [`TokKind::Str`] tokens. No
//! rule can fire on a comment or inside a string by construction.

/// What a token is; the minimum vocabulary the rules need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`let`, `HashMap`, `iter`, …).
    Ident,
    /// A lifetime such as `'a` (text excludes the leading quote).
    Lifetime,
    /// Char or byte-char literal; the inner text is not preserved.
    Char,
    /// String literal of any flavor (cooked, raw, byte, raw-byte);
    /// `text` holds the literal's contents with simple escapes
    /// resolved, so rules can compare values (e.g. stream names).
    Str,
    /// Numeric literal (integer or float, any base).
    Num,
    /// Punctuation. `::`, `..`, and `..=` are single tokens; every
    /// other punctuation mark is one character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Identifier/punctuation text, or a string literal's contents.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// A fully lexed source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream in source order.
    pub tokens: Vec<Tok>,
    /// Comment text per line (index = line − 1); empty when none.
    pub comments: Vec<String>,
    /// True for lines holding at least part of a code token
    /// (multi-line string literals mark every line they span).
    pub has_code: Vec<bool>,
}

impl Lexed {
    fn ensure_line(&mut self, line: usize) {
        while self.comments.len() < line {
            self.comments.push(String::new());
        }
        while self.has_code.len() < line {
            self.has_code.push(false);
        }
    }

    fn push_tok(&mut self, kind: TokKind, text: String, line: usize) {
        self.ensure_line(line);
        self.has_code[line - 1] = true;
        self.tokens.push(Tok { kind, text, line });
    }

    fn push_comment(&mut self, line: usize, text: &str) {
        self.ensure_line(line);
        self.comments[line - 1].push_str(text);
    }

    fn mark_code(&mut self, line: usize) {
        self.ensure_line(line);
        self.has_code[line - 1] = true;
    }

    /// Comment text on a 1-based line (empty when out of range).
    pub fn comment_on(&self, line: usize) -> &str {
        match line.checked_sub(1).and_then(|i| self.comments.get(i)) {
            Some(s) => s.as_str(),
            None => "",
        }
    }

    /// True when the 1-based line carries any code token.
    pub fn code_on(&self, line: usize) -> bool {
        line.checked_sub(1)
            .and_then(|i| self.has_code.get(i))
            .copied()
            .unwrap_or(false)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens plus per-line comment and code maps.
///
/// The lexer is forgiving: malformed input (an unterminated string, a
/// stray quote) never panics, it just degrades into punct tokens. That
/// keeps the tool usable on work-in-progress files.
pub fn lex(source: &str) -> Lexed {
    let c: Vec<char> = source.chars().collect();
    let n = c.len();
    let mut out = Lexed::default();
    let mut line = 1usize;
    out.ensure_line(1);
    let mut i = 0usize;

    while i < n {
        let ch = c[i];
        if ch == '\n' {
            line += 1;
            out.ensure_line(line);
            i += 1;
            continue;
        }
        if ch.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if ch == '/' && c.get(i + 1) == Some(&'/') {
            i += 2;
            let start = i;
            while i < n && c[i] != '\n' {
                i += 1;
            }
            let text: String = c[start..i].iter().collect();
            out.push_comment(line, &text);
            continue;
        }
        // Block comment (nested).
        if ch == '/' && c.get(i + 1) == Some(&'*') {
            i += 2;
            let mut depth = 1u32;
            let mut buf = String::new();
            while i < n && depth > 0 {
                if c[i] == '*' && c.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                    continue;
                }
                if c[i] == '/' && c.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                    continue;
                }
                if c[i] == '\n' {
                    out.push_comment(line, &buf);
                    buf.clear();
                    line += 1;
                    out.ensure_line(line);
                    i += 1;
                    continue;
                }
                buf.push(c[i]);
                i += 1;
            }
            out.push_comment(line, &buf);
            continue;
        }
        // Cooked string.
        if ch == '"' {
            i += 1;
            let (value, ni, nl) = cooked_string(&c, i, line, &mut out);
            out.push_tok(TokKind::Str, value, line);
            i = ni;
            line = nl;
            continue;
        }
        // Raw / byte string prefixes: r"…", r#"…"#, b"…", br#"…"#, b'x'.
        if ch == 'r' || ch == 'b' {
            if let Some((value, ni, nl, kind)) = string_with_prefix(&c, i, line, &mut out) {
                out.push_tok(kind, value, line);
                i = ni;
                line = nl;
                continue;
            }
        }
        // Char literal vs lifetime.
        if ch == '\'' {
            if c.get(i + 1) == Some(&'\\') {
                // Escaped char literal: skip to the closing quote.
                let mut j = i + 2;
                if j < n {
                    j += 1; // the escaped character itself
                }
                // \u{…} spans several chars.
                while j < n && c[j] != '\'' && c[j] != '\n' {
                    j += 1;
                }
                out.push_tok(TokKind::Char, String::new(), line);
                i = if j < n && c[j] == '\'' { j + 1 } else { j };
                continue;
            }
            if c.get(i + 2) == Some(&'\'') && c.get(i + 1) != Some(&'\'') {
                out.push_tok(TokKind::Char, String::new(), line);
                i += 3;
                continue;
            }
            if c.get(i + 1).copied().is_some_and(is_ident_start) {
                let mut j = i + 1;
                while j < n && is_ident_continue(c[j]) {
                    j += 1;
                }
                let text: String = c[i + 1..j].iter().collect();
                out.push_tok(TokKind::Lifetime, text, line);
                i = j;
                continue;
            }
            out.push_tok(TokKind::Punct, "'".to_string(), line);
            i += 1;
            continue;
        }
        // Number.
        if ch.is_ascii_digit() {
            let mut text = String::new();
            while i < n && (c[i].is_ascii_alphanumeric() || c[i] == '_') {
                text.push(c[i]);
                i += 1;
                if matches!(text.chars().next_back(), Some('e' | 'E'))
                    && !text.starts_with("0x")
                    && i < n
                    && (c[i] == '+' || c[i] == '-')
                {
                    text.push(c[i]);
                    i += 1;
                }
            }
            // A fractional part only when a digit follows the dot, so
            // `0..n` and tuple indexing `pair.0.len()` stay exact.
            if i < n && c[i] == '.' && c.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                text.push('.');
                i += 1;
                while i < n && (c[i].is_ascii_alphanumeric() || c[i] == '_') {
                    text.push(c[i]);
                    i += 1;
                    if matches!(text.chars().next_back(), Some('e' | 'E'))
                        && i < n
                        && (c[i] == '+' || c[i] == '-')
                    {
                        text.push(c[i]);
                        i += 1;
                    }
                }
            }
            out.push_tok(TokKind::Num, text, line);
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(ch) {
            let mut j = i;
            while j < n && is_ident_continue(c[j]) {
                j += 1;
            }
            let text: String = c[i..j].iter().collect();
            out.push_tok(TokKind::Ident, text, line);
            i = j;
            continue;
        }
        // Punctuation; join `::`, `..=`, `..`.
        if ch == ':' && c.get(i + 1) == Some(&':') {
            out.push_tok(TokKind::Punct, "::".to_string(), line);
            i += 2;
            continue;
        }
        if ch == '.' && c.get(i + 1) == Some(&'.') {
            let (text, adv) = if c.get(i + 2) == Some(&'=') { ("..=", 3) } else { ("..", 2) };
            out.push_tok(TokKind::Punct, text.to_string(), line);
            i += adv;
            continue;
        }
        out.push_tok(TokKind::Punct, ch.to_string(), line);
        i += 1;
    }
    out
}

/// Consumes a cooked (escaped) string body starting just after the
/// opening quote; returns (contents, next index, next line).
fn cooked_string(c: &[char], mut i: usize, mut line: usize, out: &mut Lexed) -> (String, usize, usize) {
    let n = c.len();
    let mut value = String::new();
    while i < n {
        match c[i] {
            '"' => return (value, i + 1, line),
            '\\' => {
                let esc = c.get(i + 1).copied();
                i += 2;
                match esc {
                    Some('n') => value.push('\n'),
                    Some('t') => value.push('\t'),
                    Some('r') => value.push('\r'),
                    Some('0') => value.push('\0'),
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('\'') => value.push('\''),
                    Some('\n') => {
                        // Line continuation: the newline and leading
                        // whitespace on the next line are skipped.
                        line += 1;
                        out.mark_code(line);
                        while i < n && c[i] != '\n' && c[i].is_whitespace() {
                            i += 1;
                        }
                    }
                    // \x.. and \u{..}: contents are irrelevant to any
                    // rule; swallow up to the escape's end heuristically.
                    Some('u') if c.get(i) == Some(&'{') => {
                        while i < n && c[i] != '}' && c[i] != '\n' {
                            i += 1;
                        }
                        if i < n && c[i] == '}' {
                            i += 1;
                        }
                    }
                    Some('x') => i += 2,
                    _ => {}
                }
            }
            '\n' => {
                value.push('\n');
                line += 1;
                out.mark_code(line);
                i += 1;
            }
            other => {
                value.push(other);
                i += 1;
            }
        }
    }
    (value, i, line)
}

/// Tries to lex a raw/byte string (or byte char) starting at `i`
/// (which holds `r` or `b`). Returns `None` when the prefix is just the
/// start of an ordinary identifier.
fn string_with_prefix(
    c: &[char],
    i: usize,
    line: usize,
    out: &mut Lexed,
) -> Option<(String, usize, usize, TokKind)> {
    let n = c.len();
    let mut j = i;
    let mut raw = false;
    if c[j] == 'b' {
        j += 1;
        if c.get(j) == Some(&'\'') {
            // Byte char b'x' / b'\n'.
            let mut k = j + 1;
            if c.get(k) == Some(&'\\') {
                k += 2;
            } else {
                k += 1;
            }
            while k < n && c[k] != '\'' && c[k] != '\n' {
                k += 1;
            }
            let end = if k < n && c[k] == '\'' { k + 1 } else { k };
            return Some((String::new(), end, line, TokKind::Char));
        }
    }
    if c.get(j) == Some(&'r') {
        raw = true;
        j += 1;
    } else if c[i] == 'r' {
        raw = true;
        j = i + 1;
    }
    if raw {
        let mut hashes = 0usize;
        while c.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
        if c.get(j) != Some(&'"') {
            return None;
        }
        j += 1;
        // Raw body: ends at `"` followed by `hashes` `#`s.
        let mut value = String::new();
        let mut cur_line = line;
        while j < n {
            if c[j] == '"' {
                let mut all = true;
                for k in 0..hashes {
                    if c.get(j + 1 + k) != Some(&'#') {
                        all = false;
                        break;
                    }
                }
                if all {
                    return Some((value, j + 1 + hashes, cur_line, TokKind::Str));
                }
            }
            if c[j] == '\n' {
                cur_line += 1;
                out.mark_code(cur_line);
            }
            value.push(c[j]);
            j += 1;
        }
        return Some((value, j, cur_line, TokKind::Str));
    }
    // Cooked byte string b"…".
    if c[i] == 'b' && c.get(j) == Some(&'"') {
        let (value, ni, nl) = cooked_string(c, j + 1, line, out);
        return Some((value, ni, nl, TokKind::Str));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let l = lex("let x = 1;\nlet y = x;\n");
        assert_eq!(l.tokens[0].text, "let");
        assert_eq!(l.tokens[0].line, 1);
        let y = l.tokens.iter().find(|t| t.text == "y").unwrap();
        assert_eq!(y.line, 2);
        assert!(l.code_on(1) && l.code_on(2));
    }

    #[test]
    fn line_comment_collected_not_tokenized() {
        let l = lex("call(); // HashMap.iter() in a comment\n");
        assert!(l.comment_on(1).contains("HashMap.iter()"));
        assert!(!l.tokens.iter().any(|t| t.text == "HashMap"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("x /* a /* b */ c */ y\n");
        let ids = l.tokens.iter().map(|t| t.text.clone()).collect::<Vec<_>>();
        assert_eq!(ids, vec!["x", "y"]);
        assert!(l.comment_on(1).contains('a'));
        assert!(l.comment_on(1).contains('c'));
    }

    #[test]
    fn doubly_nested_block_comment_spanning_lines() {
        let l = lex("a /* one /* two\nthree */ four */ b\n");
        let ids: Vec<_> = l.tokens.iter().map(|t| t.text.clone()).collect();
        assert_eq!(ids, vec!["a", "b"]);
        assert_eq!(l.tokens[1].line, 2);
        assert!(l.comment_on(1).contains("one"));
        assert!(l.comment_on(2).contains("four"));
    }

    #[test]
    fn cooked_string_is_one_token_with_value() {
        let toks = kinds("let s = \"Instant::now()\";\n");
        let s = toks.iter().find(|(k, _)| *k == TokKind::Str).unwrap();
        assert_eq!(s.1, "Instant::now()");
        assert!(!idents("let s = \"Instant::now()\";\n").contains(&"Instant".to_string()));
    }

    #[test]
    fn escaped_quotes_do_not_end_string() {
        let toks = kinds("let s = \"a\\\"b\"; next()\n");
        let s = toks.iter().find(|(k, _)| *k == TokKind::Str).unwrap();
        assert_eq!(s.1, "a\"b");
        assert!(kinds("let s = \"a\\\"b\"; next()\n")
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "next"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds("let s = r#\"thread::spawn \"quoted\"\"#; f()\n");
        let s = toks.iter().find(|(k, _)| *k == TokKind::Str).unwrap();
        assert_eq!(s.1, "thread::spawn \"quoted\"");
        assert!(!idents("let s = r#\"thread::spawn\"#; f()\n").contains(&"thread".to_string()));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds("let a = b\"OsRng\"; let c = br#\"x\"#;\n");
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0].1, "OsRng");
        assert_eq!(strs[1].1, "x");
        assert!(!idents("let a = b\"OsRng\";\n").contains(&"OsRng".to_string()));
    }

    #[test]
    fn byte_char_literal() {
        let toks = kinds("let a = b'x'; let b = b'\\n';\n");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let l = lex("fn f<'a>(c: char) -> &'a str { if c == 'x' { s } else { t } }\n");
        let lifetimes: Vec<_> =
            l.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| t.text.clone()).collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
        // 'x' must not leak an `x` identifier token.
        assert!(!l.tokens.iter().any(|t| t.kind == TokKind::Ident && t.text == "x"));
    }

    #[test]
    fn escaped_char_literals() {
        let l = lex("let q = '\\''; let n = '\\n'; let u = '\\u{1F600}';\n");
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(), 3);
    }

    #[test]
    fn static_lifetime() {
        let l = lex("const S: &'static str = \"x\";\n");
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "static"));
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("for i in 0..10 { let f = 1.5e-3; let h = 0xFF_u32; }\n");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "1.5e-3"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "0xFF_u32"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Punct && t == ".."));
        // `0..10` splits into two numbers, not a malformed float.
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "10"));
    }

    #[test]
    fn tuple_indexing_keeps_dot_separate() {
        let toks = kinds("pair.0.len()\n");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Punct && t == "."));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "len"));
    }

    #[test]
    fn double_colon_is_one_token() {
        let toks = kinds("std::thread::spawn(f)\n");
        assert_eq!(toks.iter().filter(|(k, t)| *k == TokKind::Punct && t == "::").count(), 2);
    }

    #[test]
    fn r_prefixed_identifier_is_not_a_raw_string() {
        let ids = idents("let result = r2d2 + rate;\n");
        assert!(ids.contains(&"result".to_string()));
        assert!(ids.contains(&"r2d2".to_string()));
        assert!(ids.contains(&"rate".to_string()));
    }

    #[test]
    fn multiline_string_marks_all_lines_as_code() {
        let l = lex("let s = \"one\ntwo\";\nnext();\n");
        assert!(l.code_on(1));
        assert!(l.code_on(2));
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn comment_inside_string_stays_in_string() {
        let l = lex("let s = \"// hetlint: allow(r1) — nope\";\n");
        assert!(l.comment_on(1).is_empty());
        let s = l.tokens.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert!(s.text.contains("hetlint"));
    }

    #[test]
    fn string_inside_comment_stays_in_comment() {
        let l = lex("// \"not code\" thread::spawn\nf();\n");
        assert!(l.comment_on(1).contains("thread::spawn"));
        assert!(!l.tokens.iter().any(|t| t.text == "thread"));
    }
}
