//! The incremental analysis cache: per-file results keyed by content
//! hash.
//!
//! The per-file pass (lex → per-file rules → item parse → CFG build) is
//! where hetlint spends almost all of its time, and it is a pure
//! function of one file's text plus its [`FileContext`]. That makes it
//! cacheable: each linted file serializes to one JSON entry under
//! `target/hetlint-cache/`, keyed by the FNV-1a hash of its
//! workspace-relative path and validated against the FNV-1a hash of its
//! content. A warm run re-lexes nothing; it deserializes the entry and
//! goes straight to the cross-file phases (R7–R16), which always run
//! fresh because they see the whole workspace at once.
//!
//! **Invalidation rule.** An entry is used only when *all three* match:
//! the schema fingerprint (bumped whenever any per-file rule, the
//! parser, or the CFG builder changes behavior — see [`CACHE_SCHEMA`]),
//! the source content hash, and the relative path recorded inside the
//! entry. Anything else — missing file, parse error, truncated write,
//! field drift — is a cache miss, never an error: the file is re-linted
//! from source and the entry rewritten. Writes go through a temp file
//! and rename so concurrent runs never observe a half-written entry,
//! and a read-only filesystem degrades to cold runs rather than
//! failures.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::cfg::{Block, CallKind, Cfg, Stmt, StmtCall, StmtLock};
use crate::json::{self, Value};
use crate::parser::{
    BlockingSite, CallSite, Callee, DropSite, FnItem, LockSite, PanicSite, ParsedFile,
    RngSendSite, RngTypeEscape, SinkSite,
};
use crate::rules::{EmitKindRef, EmitSite, RegistryEntry, StreamUse};
use crate::scan::{SupprIndex, Suppression};
use crate::{FileContext, FileReport, LintedFile, RuleId, Violation};

/// Bumped whenever the per-file pass changes behavior: a new or changed
/// rule R1–R6, a parser or CFG change, or any field added to
/// [`LintedFile`]. Combined with the crate version into the entry
/// fingerprint, so a rebuilt tool never trusts entries written by an
/// older one.
pub const CACHE_SCHEMA: u32 = 1;

/// The full invalidation fingerprint written into every entry.
pub fn fingerprint() -> String {
    format!("hetlint-cache/{CACHE_SCHEMA}/{}", env!("CARGO_PKG_VERSION"))
}

/// FNV-1a, 64-bit. Chosen over anything fancier because it is four
/// lines, allocation-free, and collision resistance only has to beat
/// "two revisions of the same file while an entry is live".
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Where the cache lives for a workspace root. Inside `target/` so
/// `cargo clean` clears it and the source walk never scans it.
pub fn default_dir(root: &Path) -> PathBuf {
    root.join("target").join("hetlint-cache")
}

/// Hit/miss accounting for the summary line and the CI warm-run gate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Files served from a valid entry.
    pub hits: usize,
    /// Files re-linted from source (no entry, stale, or unreadable).
    pub misses: usize,
}

/// One entry per source file, named by the path hash so nested
/// workspace paths flatten into one directory.
fn entry_path(dir: &Path, rel_path: &str) -> PathBuf {
    dir.join(format!("{:016x}.json", fnv1a(rel_path.as_bytes())))
}

/// Loads the entry for `ctx.rel_path` if it matches `source` exactly;
/// `None` is a cache miss (absent, stale, or malformed — all equal).
pub fn load(dir: &Path, ctx: &FileContext, source: &str) -> Option<LintedFile> {
    let text = fs::read_to_string(entry_path(dir, &ctx.rel_path)).ok()?;
    let doc = json::parse(&text).ok()?;
    if doc.get("fingerprint")?.as_str()? != fingerprint() {
        return None;
    }
    if doc.get("source_hash")?.as_str()? != format!("{:016x}", fnv1a(source.as_bytes())) {
        return None;
    }
    if doc.get("path")?.as_str()? != ctx.rel_path {
        return None;
    }
    de_file(ctx, doc.get("file")?)
}

/// Writes the entry for one linted file: temp file then rename, so a
/// concurrent reader sees either the old entry or the new one, never a
/// prefix.
pub fn store(dir: &Path, source: &str, file: &LintedFile) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let doc = obj(vec![
        ("fingerprint", s(&fingerprint())),
        ("source_hash", s(&format!("{:016x}", fnv1a(source.as_bytes())))),
        ("path", s(&file.ctx.rel_path)),
        ("file", ser_file(file)),
    ]);
    let dest = entry_path(dir, &file.ctx.rel_path);
    let tmp = dest.with_extension(format!("tmp.{}", std::process::id()));
    fs::write(&tmp, json::render(&doc))?;
    fs::rename(&tmp, &dest)
}

/// The per-file pass with the cache in front: hit → deserialize, miss →
/// [`crate::lint_file`] then best-effort store (an unwritable cache
/// directory degrades to cold runs, it never fails the lint).
pub fn lint_file_cached(
    dir: &Path,
    ctx: &FileContext,
    source: &str,
    stats: &mut CacheStats,
) -> LintedFile {
    if let Some(file) = load(dir, ctx, source) {
        stats.hits += 1;
        return file;
    }
    stats.misses += 1;
    let file = crate::lint_file(ctx, source);
    let _ = store(dir, source, &file);
    file
}

// ---------------------------------------------------------------------
// Serialization: LintedFile → Value. Field names are short because a
// workspace writes one entry per source file; the document is a cache,
// not an interface.
// ---------------------------------------------------------------------

fn s(text: &str) -> Value {
    Value::Str(text.to_string())
}

fn n(value: usize) -> Value {
    Value::Num(value as f64)
}

fn b(value: bool) -> Value {
    Value::Bool(value)
}

fn obj(members: Vec<(&str, Value)>) -> Value {
    Value::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn arr<T>(items: &[T], f: impl Fn(&T) -> Value) -> Value {
    Value::Arr(items.iter().map(f).collect())
}

fn strs(items: &[String]) -> Value {
    arr(items, |x| s(x))
}

fn nums(items: &[usize]) -> Value {
    arr(items, |&x| n(x))
}

/// A `Vec<bool>` line map packed into a `'1'`/`'0'` string; one char
/// per line keeps entries readable without a byte per JSON element.
fn bits(flags: &[bool]) -> Value {
    Value::Str(flags.iter().map(|&f| if f { '1' } else { '0' }).collect())
}

fn ser_file(file: &LintedFile) -> Value {
    obj(vec![
        ("report", ser_report(&file.report)),
        ("suppr", ser_suppr(&file.suppr)),
        ("streams", arr(&file.stream_uses, ser_stream)),
        ("emits", arr(&file.emit_sites, ser_emit)),
        ("registry", arr(&file.registry, ser_registry)),
        (
            "matched",
            arr(&file.matched_allows, |(rule, line)| {
                Value::Arr(vec![s(rule), n(*line)])
            }),
        ),
        ("items", ser_items(&file.items)),
    ])
}

fn ser_report(report: &FileReport) -> Value {
    obj(vec![
        ("violations", arr(&report.violations, ser_violation)),
        ("suppressed", arr(&report.suppressed, ser_violation)),
        ("bad_allows", arr(&report.bad_allows, ser_violation)),
        ("unwraps", nums(&report.unwrap_sites)),
    ])
}

fn ser_violation(v: &Violation) -> Value {
    let mut fields = vec![
        ("rule", s(v.rule.key())),
        ("path", s(&v.path)),
        ("line", n(v.line)),
        ("msg", s(&v.message)),
    ];
    if let Some(sup) = &v.suppression {
        fields.push(("allow", ser_suppression(sup)));
    }
    obj(fields)
}

fn ser_suppression(sup: &Suppression) -> Value {
    obj(vec![
        ("rule", s(&sup.rule)),
        ("reason", s(&sup.reason)),
        ("line", n(sup.line)),
    ])
}

fn ser_suppr(suppr: &SupprIndex) -> Value {
    obj(vec![
        ("allows", arr(&suppr.suppressions, ser_suppression)),
        ("code", bits(&suppr.code)),
        ("commented", bits(&suppr.commented)),
    ])
}

fn ser_stream(u: &StreamUse) -> Value {
    obj(vec![("name", s(&u.name)), ("line", n(u.line))])
}

fn ser_emit(e: &EmitSite) -> Value {
    let (tag, value) = match &e.kind {
        EmitKindRef::Const(name) => ("const", name),
        EmitKindRef::Literal(value) => ("lit", value),
    };
    obj(vec![("k", s(tag)), ("v", s(value)), ("line", n(e.line))])
}

fn ser_registry(e: &RegistryEntry) -> Value {
    obj(vec![
        ("const", s(&e.const_name)),
        ("value", s(&e.value)),
        ("line", n(e.line)),
    ])
}

fn ser_items(items: &ParsedFile) -> Value {
    obj(vec![
        ("fns", arr(&items.fns, ser_fn)),
        (
            "escapes",
            arr(&items.rng_type_escapes, |e: &RngTypeEscape| {
                obj(vec![("container", s(&e.container)), ("line", n(e.line))])
            }),
        ),
    ])
}

fn ser_fn(f: &FnItem) -> Value {
    obj(vec![
        ("name", s(&f.name)),
        ("qname", s(&f.qname)),
        (
            "impl_type",
            f.impl_type.as_deref().map_or(Value::Null, s),
        ),
        ("is_async", b(f.is_async)),
        ("has_await", b(f.has_await)),
        ("line", n(f.line)),
        ("params", strs(&f.params)),
        ("cfg", ser_cfg(&f.cfg)),
        ("calls", arr(&f.calls, ser_call_site)),
        (
            "sinks",
            arr(&f.sinks, |x: &SinkSite| {
                obj(vec![("what", s(&x.what)), ("line", n(x.line))])
            }),
        ),
        ("locks", arr(&f.locks, ser_lock_site)),
        (
            "blocking",
            arr(&f.blocking, |x: &BlockingSite| {
                obj(vec![("what", s(&x.what)), ("tok", n(x.tok)), ("line", n(x.line))])
            }),
        ),
        (
            "drops",
            arr(&f.drops, |x: &DropSite| {
                obj(vec![("name", s(&x.name)), ("tok", n(x.tok)), ("line", n(x.line))])
            }),
        ),
        (
            "panics",
            arr(&f.panics, |x: &PanicSite| {
                obj(vec![
                    ("what", s(&x.what)),
                    ("line", n(x.line)),
                    ("allowed", b(x.allowed)),
                ])
            }),
        ),
        (
            "rng_sends",
            arr(&f.rng_sends, |x: &RngSendSite| {
                obj(vec![("binding", s(&x.binding)), ("line", n(x.line))])
            }),
        ),
    ])
}

fn ser_call_site(c: &CallSite) -> Value {
    let callee = match &c.callee {
        Callee::Path(segs) => obj(vec![("k", s("path")), ("segs", strs(segs))]),
        Callee::Method(name) => obj(vec![("k", s("method")), ("name", s(name))]),
        Callee::Macro(name) => obj(vec![("k", s("macro")), ("name", s(name))]),
    };
    obj(vec![("callee", callee), ("line", n(c.line))])
}

fn ser_lock_site(l: &LockSite) -> Value {
    obj(vec![
        ("target", s(&l.target)),
        ("guard", l.guard.as_deref().map_or(Value::Null, s)),
        ("tok", n(l.tok)),
        ("line", n(l.line)),
    ])
}

fn ser_cfg(cfg: &Cfg) -> Value {
    obj(vec![
        ("entry", n(cfg.entry)),
        ("exit", n(cfg.exit)),
        (
            "blocks",
            arr(&cfg.blocks, |blk: &Block| {
                obj(vec![
                    ("stmts", arr(&blk.stmts, ser_stmt)),
                    ("succs", nums(&blk.succs)),
                ])
            }),
        ),
    ])
}

fn ser_stmt(st: &Stmt) -> Value {
    obj(vec![
        ("line", n(st.line)),
        ("defs", strs(&st.defs)),
        ("uses", strs(&st.uses)),
        ("calls", arr(&st.calls, ser_stmt_call)),
        ("discard", b(st.is_discard)),
        ("await", b(st.has_await)),
        ("try", b(st.has_try)),
        ("ret", b(st.is_return)),
        (
            "locks",
            arr(&st.locks, |l: &StmtLock| {
                obj(vec![
                    ("target", s(&l.target)),
                    ("guard", l.guard.as_deref().map_or(Value::Null, s)),
                    ("line", n(l.line)),
                ])
            }),
        ),
        ("drops", strs(&st.drops)),
        ("blocking", strs(&st.blocking)),
    ])
}

fn ser_stmt_call(c: &StmtCall) -> Value {
    let kind = match c.kind {
        CallKind::Path => "path",
        CallKind::Method => "method",
        CallKind::Macro => "macro",
    };
    obj(vec![
        ("name", s(&c.name)),
        ("segs", strs(&c.segs)),
        ("recv", s(&c.recv)),
        ("args", strs(&c.args)),
        ("strs", strs(&c.strs)),
        ("kind", s(kind)),
        ("line", n(c.line)),
    ])
}

// ---------------------------------------------------------------------
// Deserialization: Value → LintedFile. Every accessor is `?`-chained;
// one missing or mistyped field turns the whole entry into a miss.
// ---------------------------------------------------------------------

fn du(v: &Value) -> Option<usize> {
    v.as_u64().map(|x| x as usize)
}

fn dstr(v: &Value) -> Option<String> {
    v.as_str().map(str::to_string)
}

fn dopt_str(v: &Value) -> Option<Option<String>> {
    match v {
        Value::Null => Some(None),
        Value::Str(text) => Some(Some(text.clone())),
        _ => None,
    }
}

fn dvec<T>(v: &Value, f: impl Fn(&Value) -> Option<T>) -> Option<Vec<T>> {
    v.as_arr()?.iter().map(f).collect()
}

fn dbits(v: &Value) -> Option<Vec<bool>> {
    v.as_str()?
        .chars()
        .map(|c| match c {
            '1' => Some(true),
            '0' => Some(false),
            _ => None,
        })
        .collect()
}

fn de_file(ctx: &FileContext, v: &Value) -> Option<LintedFile> {
    Some(LintedFile {
        ctx: ctx.clone(),
        report: de_report(v.get("report")?)?,
        suppr: de_suppr(v.get("suppr")?)?,
        stream_uses: dvec(v.get("streams")?, de_stream)?,
        emit_sites: dvec(v.get("emits")?, de_emit)?,
        registry: dvec(v.get("registry")?, de_registry)?,
        matched_allows: dvec(v.get("matched")?, |pair| {
            let items = pair.as_arr()?;
            match items {
                [rule, line] => Some((dstr(rule)?, du(line)?)),
                _ => None,
            }
        })?,
        items: de_items(v.get("items")?)?,
    })
}

fn de_report(v: &Value) -> Option<FileReport> {
    Some(FileReport {
        violations: dvec(v.get("violations")?, de_violation)?,
        suppressed: dvec(v.get("suppressed")?, de_violation)?,
        bad_allows: dvec(v.get("bad_allows")?, de_violation)?,
        unwrap_sites: dvec(v.get("unwraps")?, du)?,
    })
}

fn de_violation(v: &Value) -> Option<Violation> {
    Some(Violation {
        rule: RuleId::from_key(v.get("rule")?.as_str()?)?,
        path: dstr(v.get("path")?)?,
        line: du(v.get("line")?)?,
        message: dstr(v.get("msg")?)?,
        suppression: match v.get("allow") {
            Some(sup) => Some(de_suppression(sup)?),
            None => None,
        },
    })
}

fn de_suppression(v: &Value) -> Option<Suppression> {
    Some(Suppression {
        rule: dstr(v.get("rule")?)?,
        reason: dstr(v.get("reason")?)?,
        line: du(v.get("line")?)?,
    })
}

fn de_suppr(v: &Value) -> Option<SupprIndex> {
    Some(SupprIndex {
        suppressions: dvec(v.get("allows")?, de_suppression)?,
        code: dbits(v.get("code")?)?,
        commented: dbits(v.get("commented")?)?,
    })
}

fn de_stream(v: &Value) -> Option<StreamUse> {
    Some(StreamUse { name: dstr(v.get("name")?)?, line: du(v.get("line")?)? })
}

fn de_emit(v: &Value) -> Option<EmitSite> {
    let value = dstr(v.get("v")?)?;
    let kind = match v.get("k")?.as_str()? {
        "const" => EmitKindRef::Const(value),
        "lit" => EmitKindRef::Literal(value),
        _ => return None,
    };
    Some(EmitSite { kind, line: du(v.get("line")?)? })
}

fn de_registry(v: &Value) -> Option<RegistryEntry> {
    Some(RegistryEntry {
        const_name: dstr(v.get("const")?)?,
        value: dstr(v.get("value")?)?,
        line: du(v.get("line")?)?,
    })
}

fn de_items(v: &Value) -> Option<ParsedFile> {
    Some(ParsedFile {
        fns: dvec(v.get("fns")?, de_fn)?,
        rng_type_escapes: dvec(v.get("escapes")?, |e| {
            Some(RngTypeEscape {
                container: dstr(e.get("container")?)?,
                line: du(e.get("line")?)?,
            })
        })?,
    })
}

fn de_fn(v: &Value) -> Option<FnItem> {
    Some(FnItem {
        name: dstr(v.get("name")?)?,
        qname: dstr(v.get("qname")?)?,
        impl_type: dopt_str(v.get("impl_type")?)?,
        is_async: v.get("is_async")?.as_bool()?,
        has_await: v.get("has_await")?.as_bool()?,
        line: du(v.get("line")?)?,
        params: dvec(v.get("params")?, dstr)?,
        cfg: de_cfg(v.get("cfg")?)?,
        calls: dvec(v.get("calls")?, de_call_site)?,
        sinks: dvec(v.get("sinks")?, |x| {
            Some(SinkSite { what: dstr(x.get("what")?)?, line: du(x.get("line")?)? })
        })?,
        locks: dvec(v.get("locks")?, |x| {
            Some(LockSite {
                target: dstr(x.get("target")?)?,
                guard: dopt_str(x.get("guard")?)?,
                tok: du(x.get("tok")?)?,
                line: du(x.get("line")?)?,
            })
        })?,
        blocking: dvec(v.get("blocking")?, |x| {
            Some(BlockingSite {
                what: dstr(x.get("what")?)?,
                tok: du(x.get("tok")?)?,
                line: du(x.get("line")?)?,
            })
        })?,
        drops: dvec(v.get("drops")?, |x| {
            Some(DropSite {
                name: dstr(x.get("name")?)?,
                tok: du(x.get("tok")?)?,
                line: du(x.get("line")?)?,
            })
        })?,
        panics: dvec(v.get("panics")?, |x| {
            Some(PanicSite {
                what: dstr(x.get("what")?)?,
                line: du(x.get("line")?)?,
                allowed: x.get("allowed")?.as_bool()?,
            })
        })?,
        rng_sends: dvec(v.get("rng_sends")?, |x| {
            Some(RngSendSite {
                binding: dstr(x.get("binding")?)?,
                line: du(x.get("line")?)?,
            })
        })?,
    })
}

fn de_call_site(v: &Value) -> Option<CallSite> {
    let callee = v.get("callee")?;
    let callee = match callee.get("k")?.as_str()? {
        "path" => Callee::Path(dvec(callee.get("segs")?, dstr)?),
        "method" => Callee::Method(dstr(callee.get("name")?)?),
        "macro" => Callee::Macro(dstr(callee.get("name")?)?),
        _ => return None,
    };
    Some(CallSite { callee, line: du(v.get("line")?)? })
}

fn de_cfg(v: &Value) -> Option<Cfg> {
    Some(Cfg {
        entry: du(v.get("entry")?)?,
        exit: du(v.get("exit")?)?,
        blocks: dvec(v.get("blocks")?, |blk| {
            Some(Block {
                stmts: dvec(blk.get("stmts")?, de_stmt)?,
                succs: dvec(blk.get("succs")?, du)?,
            })
        })?,
    })
}

fn de_stmt(v: &Value) -> Option<Stmt> {
    Some(Stmt {
        line: du(v.get("line")?)?,
        defs: dvec(v.get("defs")?, dstr)?,
        uses: dvec(v.get("uses")?, dstr)?,
        calls: dvec(v.get("calls")?, de_stmt_call)?,
        is_discard: v.get("discard")?.as_bool()?,
        has_await: v.get("await")?.as_bool()?,
        has_try: v.get("try")?.as_bool()?,
        is_return: v.get("ret")?.as_bool()?,
        locks: dvec(v.get("locks")?, |l| {
            Some(StmtLock {
                target: dstr(l.get("target")?)?,
                guard: dopt_str(l.get("guard")?)?,
                line: du(l.get("line")?)?,
            })
        })?,
        drops: dvec(v.get("drops")?, dstr)?,
        blocking: dvec(v.get("blocking")?, dstr)?,
    })
}

fn de_stmt_call(v: &Value) -> Option<StmtCall> {
    let kind = match v.get("kind")?.as_str()? {
        "path" => CallKind::Path,
        "method" => CallKind::Method,
        "macro" => CallKind::Macro,
        _ => return None,
    };
    Some(StmtCall {
        name: dstr(v.get("name")?)?,
        segs: dvec(v.get("segs")?, dstr)?,
        recv: dstr(v.get("recv")?)?,
        args: dvec(v.get("args")?, dstr)?,
        strs: dvec(v.get("strs")?, dstr)?,
        kind,
        line: du(v.get("line")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{classify, lint_file};
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    /// A fresh per-test cache directory; deterministic (no clock) and
    /// unique across concurrently running tests.
    fn temp_dir() -> PathBuf {
        let seq = DIR_SEQ.fetch_add(1, Ordering::SeqCst);
        let dir = std::env::temp_dir()
            .join(format!("hetlint-cache-test-{}-{seq}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    const SRC: &str = "use std::time::Instant;\n\
                       async fn f(q: usize) -> usize {\n\
                           let g = state.lock().unwrap();\n\
                           if q > 0 { return *g; }\n\
                           tick().await;\n\
                           q\n\
                       }\n";

    #[test]
    fn fnv1a_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn round_trip_preserves_the_whole_linted_file() {
        let dir = temp_dir();
        let ctx = classify("crates/sim/src/executor.rs").unwrap();
        let fresh = lint_file(&ctx, SRC);
        assert!(!fresh.report.violations.is_empty(), "fixture should trip R1/R5");
        assert!(!fresh.items.fns.is_empty());
        store(&dir, SRC, &fresh).unwrap();
        let cached = load(&dir, &ctx, SRC).expect("entry should hit");
        // Byte-identical re-serialization is the strongest equality the
        // structs offer without deriving PartialEq everywhere.
        assert_eq!(json::render(&ser_file(&fresh)), json::render(&ser_file(&cached)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn changed_content_is_a_miss() {
        let dir = temp_dir();
        let ctx = classify("crates/sim/src/executor.rs").unwrap();
        let fresh = lint_file(&ctx, SRC);
        store(&dir, SRC, &fresh).unwrap();
        assert!(load(&dir, &ctx, "fn g() {}\n").is_none());
        assert!(load(&dir, &ctx, SRC).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_mismatched_entries_are_misses_not_errors() {
        let dir = temp_dir();
        let ctx = classify("crates/sim/src/executor.rs").unwrap();
        fs::create_dir_all(&dir).unwrap();
        // Garbage bytes.
        fs::write(entry_path(&dir, &ctx.rel_path), "{ not json").unwrap();
        assert!(load(&dir, &ctx, SRC).is_none());
        // Valid JSON, wrong fingerprint.
        let doc = format!(
            "{{\"fingerprint\": \"stale\", \"source_hash\": \"{:016x}\", \
             \"path\": {}, \"file\": {{}}}}",
            fnv1a(SRC.as_bytes()),
            json::escape(&ctx.rel_path),
        );
        fs::write(entry_path(&dir, &ctx.rel_path), doc).unwrap();
        assert!(load(&dir, &ctx, SRC).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cached_pass_counts_hits_and_misses() {
        let dir = temp_dir();
        let ctx = classify("crates/sim/src/executor.rs").unwrap();
        let mut stats = CacheStats::default();
        let cold = lint_file_cached(&dir, &ctx, SRC, &mut stats);
        assert_eq!(stats, CacheStats { hits: 0, misses: 1 });
        let warm = lint_file_cached(&dir, &ctx, SRC, &mut stats);
        assert_eq!(stats, CacheStats { hits: 1, misses: 1 });
        assert_eq!(
            json::render(&ser_file(&cold)),
            json::render(&ser_file(&warm)),
            "a cache hit must reproduce the cold pass bit for bit"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_cache_degrades_to_cold_runs() {
        // A file where the directory should be makes create_dir_all
        // fail; the lint must still succeed.
        let dir = temp_dir();
        fs::create_dir_all(dir.parent().unwrap()).unwrap();
        fs::write(&dir, b"occupied").unwrap();
        let ctx = classify("crates/sim/src/executor.rs").unwrap();
        let mut stats = CacheStats::default();
        let file = lint_file_cached(&dir, &ctx, SRC, &mut stats);
        assert!(!file.report.violations.is_empty());
        assert_eq!(stats, CacheStats { hits: 0, misses: 1 });
        let _ = fs::remove_file(&dir);
    }
}
