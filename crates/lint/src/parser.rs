//! The item-level parser: from token stream to function items.
//!
//! The lexer gives hetlint honest tokens; this layer gives it *shape*.
//! It recovers the item structure a whole-workspace analysis needs —
//! `mod` nesting, `impl` blocks, `fn` items with their bodies — and,
//! inside each body, the raw material the interprocedural rules consume:
//! call expressions (path calls, method calls, macro invocations),
//! banned-sink uses, lock acquisitions, potentially-blocking calls,
//! panic sites, `.await` points, and `SimRng` bindings.
//!
//! It is deliberately not a full Rust parser. It tracks exactly the
//! grammar needed to attribute a token to the innermost enclosing
//! function and to qualify that function with a per-crate module path
//! (`apps::moldesign::run`, `sim::channel::Sender::send`). Everything it
//! cannot attribute it drops, erring toward *more* edges in the graph —
//! the reachability rules are over-approximate by design, and reasoned
//! `allow(..)` annotations are the escape hatch, never parser cleverness.
//!
//! Only tokens before the file's `#[cfg(test)]` boundary are parsed:
//! test modules may print, panic, and juggle RNGs freely.

use crate::cfg::{self, Cfg};
use crate::lexer::{Tok, TokKind};
use crate::scan::Prepared;
use crate::FileContext;

/// How a call site names its target.
#[derive(Clone, Debug, PartialEq)]
pub enum Callee {
    /// A path call: `foo(..)`, `module::foo(..)`, `Type::new(..)`.
    /// Segments are in source order (`["Type", "new"]`).
    Path(Vec<String>),
    /// A method call: `recv.foo(..)`.
    Method(String),
    /// A macro invocation: `name!(..)`.
    Macro(String),
}

/// One call expression inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// The syntactic target.
    pub callee: Callee,
    /// 1-based line of the call.
    pub line: usize,
}

/// A use of a banned ambient-I/O facility (R10 raw material).
#[derive(Clone, Debug)]
pub struct SinkSite {
    /// What was reached, e.g. `println!` or `std::fs::read`.
    pub what: String,
    /// 1-based line.
    pub line: usize,
}

/// One `.lock()` acquisition (R11 raw material).
#[derive(Clone, Debug)]
pub struct LockSite {
    /// Best-effort name of the locked object: the identifier chain
    /// receiving the call (`self.queue`, `state`). Lock-order
    /// comparisons key on this.
    pub target: String,
    /// The guard's binding name when the statement is
    /// `let <name> = <target>.lock()…;` — `None` for a temporary
    /// guard that dies at the end of the statement.
    pub guard: Option<String>,
    /// Token index of the acquisition (for ordering within the body).
    pub tok: usize,
    /// 1-based line.
    pub line: usize,
}

/// A call that can block the calling OS thread (R11 raw material):
/// `Condvar::wait`, synchronous channel send/recv, thread/scope joins.
#[derive(Clone, Debug)]
pub struct BlockingSite {
    /// The blocking operation's name (`wait`, `recv`, `join`, `scope`).
    pub what: String,
    /// Token index (for ordering against lock acquisitions).
    pub tok: usize,
    /// 1-based line.
    pub line: usize,
}

/// A `drop(<guard>)` call, releasing a named lock guard early.
#[derive(Clone, Debug)]
pub struct DropSite {
    /// The dropped binding.
    pub name: String,
    /// Token index.
    pub tok: usize,
    /// 1-based line.
    pub line: usize,
}

/// One `.unwrap()` / `.expect(` / `panic!(` site (R13 raw material).
#[derive(Clone, Debug)]
pub struct PanicSite {
    /// Which form appeared (`unwrap`, `expect`, `panic!`).
    pub what: String,
    /// 1-based line.
    pub line: usize,
    /// True when an `allow(r5)` annotation covers the site — the same
    /// annotation exempts it from both the R5 count and R13.
    pub allowed: bool,
}

/// A `SimRng` value handed to a channel send (R12 raw material).
#[derive(Clone, Debug)]
pub struct RngSendSite {
    /// The binding that was sent.
    pub binding: String,
    /// 1-based line.
    pub line: usize,
}

/// A `SimRng` stored inside a thread-crossing container type
/// (R12 raw material): `Arc<SimRng>`, `Mutex<…SimRng…>`,
/// `Sender<SimRng>`, ….
#[derive(Clone, Debug)]
pub struct RngTypeEscape {
    /// The offending container (`Arc`, `Sender`, …).
    pub container: String,
    /// 1-based line of the type.
    pub line: usize,
}

/// One parsed function item with everything the graph rules need.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Fully qualified name: crate, file modules, inline modules, the
    /// impl type when present, then the name —
    /// `sim::channel::Sender::send`.
    pub qname: String,
    /// The enclosing `impl` block's type name, when any.
    pub impl_type: Option<String>,
    /// True for `async fn`.
    pub is_async: bool,
    /// True when the body contains an `.await` point.
    pub has_await: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Parameter names in declaration order (`self` included when the
    /// item is a method) — the index space for dataflow summaries.
    pub params: Vec<String>,
    /// The body's control-flow graph (statements, branch/loop/match
    /// edges, early-return edges) — the substrate for R14–R16.
    pub cfg: Cfg,
    /// Every call expression in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Banned-sink uses in the body.
    pub sinks: Vec<SinkSite>,
    /// Lock acquisitions in the body.
    pub locks: Vec<LockSite>,
    /// Potentially thread-blocking calls in the body.
    pub blocking: Vec<BlockingSite>,
    /// Early guard releases (`drop(guard)`).
    pub drops: Vec<DropSite>,
    /// Panic/unwrap/expect sites in the body.
    pub panics: Vec<PanicSite>,
    /// `SimRng` values passed into channel sends.
    pub rng_sends: Vec<RngSendSite>,
}

/// A parsed file: its functions plus file-level R12 type escapes.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Function items in source order.
    pub fns: Vec<FnItem>,
    /// `SimRng` stored in thread-crossing container types, anywhere in
    /// the file (struct fields, signatures, aliases).
    pub rng_type_escapes: Vec<RngTypeEscape>,
}

/// Keywords that look like a call head when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "in", "as", "let", "move", "fn",
    "impl", "dyn", "where", "mut", "ref", "pub", "crate", "super", "use", "mod", "box", "break",
    "continue", "await", "async", "unsafe", "const", "static", "trait", "struct", "enum", "type",
];

/// Container types whose generic payload crosses a thread boundary.
const THREAD_CROSSING: &[&str] = &["Arc", "Mutex", "RwLock", "Sender", "Receiver", "SyncSender"];

/// Output/ambient-I/O macros banned on sim-tainted paths (R10).
const SINK_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

/// Blocking method names (R11). Channel operations immediately
/// `.await`ed are virtual-time suspensions, not thread blocks, and are
/// excluded at the detection site.
const BLOCKING_METHODS: &[&str] = &["wait", "wait_timeout", "recv", "recv_timeout", "join"];

/// The module path a file contributes: crate name, then the source
/// path's components with `lib.rs` / `main.rs` / `mod.rs` / `bin/`
/// elided (`crates/apps/src/moldesign.rs` → `["apps", "moldesign"]`).
pub fn module_path_of(ctx: &FileContext) -> Vec<String> {
    let mut path = vec![ctx.crate_name.clone()];
    let rel = &ctx.rel_path;
    let tail = match rel.find("src/") {
        Some(at) => &rel[at + 4..],
        None => return path,
    };
    for comp in tail.split('/') {
        let comp = comp.strip_suffix(".rs").unwrap_or(comp);
        if matches!(comp, "lib" | "main" | "mod" | "bin") {
            continue;
        }
        path.push(comp.to_string());
    }
    path
}

/// What a brace on the scope stack opened.
#[derive(Debug)]
enum Scope {
    /// An inline `mod name {`.
    Mod(String),
    /// An `impl … {` block for the named type.
    Impl(String),
    /// A `fn` body; the index points into `ParsedFile::fns`, and
    /// `open` is the token index of the body's `{` so the CFG can be
    /// built over the exact body span when the scope closes.
    Fn { idx: usize, open: usize },
    /// Any other `{ … }` group.
    Block,
}

/// What the most recent item header promised the next `{` will open.
#[derive(Debug)]
enum Pending {
    Mod(String),
    Impl(String),
    Fn { name: String, is_async: bool, line: usize, params: Vec<String> },
}

/// Parses one prepared file into items. Tokens at or past the
/// `#[cfg(test)]` boundary are ignored.
pub fn parse_items(ctx: &FileContext, prepared: &Prepared) -> ParsedFile {
    let toks = &prepared.lex.tokens;
    let end = toks
        .iter()
        .position(|t| t.line >= prepared.test_boundary)
        .unwrap_or(toks.len());
    let toks = &toks[..end];
    let t = T(toks);
    let mut out = ParsedFile::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending: Option<Pending> = None;

    let mut i = 0usize;
    while i < t.len() {
        // Item headers. A header only arms `pending`; the next `{`
        // attaches it to the scope stack. A `;` first (trait method
        // declaration, `mod name;` file module) cancels it.
        if t.id(i, "mod") && t.is_id(i + 1) && !t.p(i + 2, ";") {
            pending = Some(Pending::Mod(t.text(i + 1).to_string()));
            i += 2;
            continue;
        }
        if t.id(i, "impl") {
            let (ty, next) = impl_type_name(t, i);
            pending = Some(Pending::Impl(ty));
            i = next;
            continue;
        }
        if t.id(i, "fn") && t.is_id(i + 1) {
            let is_async = looks_async(t, i);
            pending = Some(Pending::Fn {
                name: t.text(i + 1).to_string(),
                is_async,
                line: t.line(i),
                params: param_names(t, i + 2),
            });
            // Signature parameters contribute R12 bindings; collect them
            // into the not-yet-created item via a side record below.
            i += 2;
            continue;
        }
        if t.p(i, ";") {
            // A `;` at item level cancels a pending header (trait fn
            // declaration); inside a body it is just a statement end.
            if !matches!(scopes.last(), Some(Scope::Fn { .. })) {
                pending = None;
            }
            i += 1;
            continue;
        }
        if t.p(i, "{") {
            let scope = match pending.take() {
                Some(Pending::Mod(name)) => Scope::Mod(name),
                Some(Pending::Impl(ty)) => Scope::Impl(ty),
                Some(Pending::Fn { name, is_async, line, params }) => {
                    let item = new_fn_item(ctx, &scopes, &name, is_async, line, params);
                    out.fns.push(item);
                    Scope::Fn { idx: out.fns.len() - 1, open: i }
                }
                None => Scope::Block,
            };
            scopes.push(scope);
            i += 1;
            continue;
        }
        if t.p(i, "}") {
            if let Some(Scope::Fn { idx, open }) = scopes.pop() {
                out.fns[idx].cfg = cfg::build(toks, open + 1, i);
            }
            i += 1;
            continue;
        }

        // Body-level detections, attributed to the innermost fn.
        let fn_idx = scopes.iter().rev().find_map(|s| match s {
            Scope::Fn { idx, .. } => Some(*idx),
            _ => None,
        });
        if let Some(idx) = fn_idx {
            let adv = scan_site(ctx, prepared, t, i, &mut out.fns[idx]);
            i += adv;
            continue;
        }
        i += 1;
    }

    // A fn body cut off by the test boundary still gets a CFG over
    // whatever tokens survived.
    while let Some(scope) = scopes.pop() {
        if let Scope::Fn { idx, open } = scope {
            out.fns[idx].cfg = cfg::build(toks, open + 1, toks.len());
        }
    }

    // File-level R12: SimRng inside thread-crossing containers. The rng
    // module itself defines/doc-exercises the type freely.
    if !ctx.is_rng_module() {
        collect_type_escapes(t, &mut out.rng_type_escapes);
    }
    // R12 binding tracking needs the fn bodies rescanned with their
    // bindings known; cheap second pass per fn.
    collect_rng_sends(t, &mut out.fns);
    out
}

/// Thin token-cursor helpers, mirroring `rules::Toks`.
#[derive(Clone, Copy)]
struct T<'a>(&'a [Tok]);

impl<'a> T<'a> {
    fn len(self) -> usize {
        self.0.len()
    }
    fn kind(self, i: usize) -> Option<TokKind> {
        self.0.get(i).map(|t| t.kind)
    }
    fn text(self, i: usize) -> &'a str {
        match self.0.get(i) {
            Some(t) => t.text.as_str(),
            None => "",
        }
    }
    fn line(self, i: usize) -> usize {
        self.0.get(i).map(|t| t.line).unwrap_or(0)
    }
    fn id(self, i: usize, s: &str) -> bool {
        self.0.get(i).is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
    }
    fn is_id(self, i: usize) -> bool {
        self.kind(i) == Some(TokKind::Ident)
    }
    fn p(self, i: usize, s: &str) -> bool {
        self.0.get(i).is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
    }
}

/// True when the `fn` at `i` is an `async fn`: an `async` qualifier
/// within the preceding qualifier run (`pub const async unsafe …`).
fn looks_async(t: T<'_>, i: usize) -> bool {
    let mut k = i;
    let mut steps = 0;
    while k > 0 && steps < 8 {
        k -= 1;
        steps += 1;
        if t.id(k, "async") {
            return true;
        }
        let qualifier = t.id(k, "pub")
            || t.id(k, "const")
            || t.id(k, "unsafe")
            || t.id(k, "extern")
            || t.id(k, "crate")
            || t.id(k, "super")
            || t.p(k, "(")
            || t.p(k, ")")
            || t.kind(k) == Some(TokKind::Str);
        if !qualifier {
            return false;
        }
    }
    false
}

/// Extracts the implemented type's name from an `impl` header starting
/// at `i`; returns the name and the index to resume scanning at (just
/// before the body `{`). For `impl Trait for Type` the type wins.
fn impl_type_name(t: T<'_>, i: usize) -> (String, usize) {
    let mut j = i + 1;
    // Skip the generic parameter list.
    if t.p(j, "<") {
        let mut depth = 1i32;
        j += 1;
        while j < t.len() && depth > 0 {
            if t.p(j, "<") {
                depth += 1;
            } else if t.p(j, ">") {
                depth -= 1;
            }
            j += 1;
        }
    }
    let mut first: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while j < t.len() && !t.p(j, "{") && !t.p(j, ";") {
        if t.id(j, "for") {
            saw_for = true;
        } else if t.id(j, "where") {
            break;
        } else if t.is_id(j) && !t.id(j, "dyn") && !t.id(j, "mut") {
            // Keep the *last* segment of a path before generics:
            // `fmt::Display` → Display; `SendFuture<'_, T>` → SendFuture.
            let name = t.text(j).to_string();
            if saw_for {
                if after_for.is_none() || t.p(j - 1, "::") {
                    after_for = Some(name);
                }
            } else if first.is_none() || t.p(j - 1, "::") {
                first = Some(name);
            }
            // Stop consuming path segments once generics open.
            if t.p(j + 1, "<") {
                let mut depth = 1i32;
                j += 2;
                while j < t.len() && depth > 0 {
                    if t.p(j, "<") {
                        depth += 1;
                    } else if t.p(j, ">") {
                        depth -= 1;
                    }
                    j += 1;
                }
                continue;
            }
        }
        j += 1;
    }
    let ty = match (after_for, first) {
        (Some(ty), _) => ty,
        (None, Some(ty)) => ty,
        (None, None) => String::new(),
    };
    (ty, j)
}

/// Builds an empty `FnItem` with its qualified name from the current
/// scope stack.
/// Parameter names from a fn signature, scanning from just after the
/// fn's name token: `self` (however qualified) plus every
/// `name: Type` pair at parenthesis depth 1.
fn param_names(t: T<'_>, mut i: usize) -> Vec<String> {
    // Skip a generic parameter list between the name and the `(`.
    if t.p(i, "<") {
        let mut depth = 1i32;
        i += 1;
        while i < t.len() && depth > 0 {
            if t.p(i, "<") {
                depth += 1;
            } else if t.p(i, ">") {
                depth -= 1;
            }
            i += 1;
        }
    }
    let mut params = Vec::new();
    if !t.p(i, "(") {
        return params;
    }
    let mut depth = 0i32;
    while i < t.len() {
        if t.p(i, "(") {
            depth += 1;
        } else if t.p(i, ")") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1 && t.is_id(i) {
            let text = t.text(i);
            if text == "self" && !t.p(i + 1, ":") && !params.iter().any(|p| p == "self") {
                params.push("self".to_string());
            } else if t.p(i + 1, ":") && text != "mut" && text != "ref" && text != "_" {
                params.push(text.to_string());
            }
        }
        i += 1;
    }
    params
}

fn new_fn_item(
    ctx: &FileContext,
    scopes: &[Scope],
    name: &str,
    is_async: bool,
    line: usize,
    params: Vec<String>,
) -> FnItem {
    let mut parts = module_path_of(ctx);
    let mut impl_type = None;
    for s in scopes {
        match s {
            Scope::Mod(m) => parts.push(m.clone()),
            Scope::Impl(ty) => impl_type = Some(ty.clone()),
            _ => {}
        }
    }
    if let Some(ty) = &impl_type {
        parts.push(ty.clone());
    }
    parts.push(name.to_string());
    FnItem {
        name: name.to_string(),
        qname: parts.join("::"),
        impl_type,
        is_async,
        has_await: false,
        line,
        params,
        cfg: Cfg::default(),
        calls: Vec::new(),
        sinks: Vec::new(),
        locks: Vec::new(),
        blocking: Vec::new(),
        drops: Vec::new(),
        panics: Vec::new(),
        rng_sends: Vec::new(),
    }
}

/// Examines one token position inside a fn body, appending any site it
/// anchors to `item`. Returns how many tokens to advance (≥ 1).
fn scan_site(
    ctx: &FileContext,
    prepared: &Prepared,
    t: T<'_>,
    i: usize,
    item: &mut FnItem,
) -> usize {
    let line = t.line(i);

    // `.await` / method calls / `.unwrap()` / `.expect(`.
    if t.p(i, ".") && t.is_id(i + 1) {
        let name = t.text(i + 1);
        if name == "await" {
            item.has_await = true;
            return 2;
        }
        if t.p(i + 2, "(") {
            let m_line = t.line(i + 1);
            item.calls.push(CallSite {
                callee: Callee::Method(name.to_string()),
                line: m_line,
            });
            if name == "unwrap" && t.p(i + 3, ")") {
                item.panics.push(PanicSite {
                    what: "unwrap".into(),
                    line: m_line,
                    allowed: crate::scan::is_suppressed(&prepared.suppr, "r5", m_line),
                });
            } else if name == "expect" {
                item.panics.push(PanicSite {
                    what: "expect".into(),
                    line: m_line,
                    allowed: crate::scan::is_suppressed(&prepared.suppr, "r5", m_line),
                });
            } else if name == "lock" {
                item.locks.push(LockSite {
                    target: receiver_chain(t, i),
                    guard: guard_binding(t, i),
                    tok: i,
                    line: m_line,
                });
            } else if BLOCKING_METHODS.contains(&name) && !awaited_after_call(t, i + 2) {
                item.blocking.push(BlockingSite { what: name.to_string(), tok: i, line: m_line });
            }
            return 2;
        }
        return 2;
    }

    // Macro invocation: `name!(` / `name![` / `name!{`.
    if t.is_id(i)
        && t.p(i + 1, "!")
        && (t.p(i + 2, "(") || t.p(i + 2, "[") || t.p(i + 2, "{"))
    {
        let name = t.text(i);
        item.calls.push(CallSite { callee: Callee::Macro(name.to_string()), line });
        if name == "panic" {
            item.panics.push(PanicSite {
                what: "panic!".into(),
                line,
                allowed: crate::scan::is_suppressed(&prepared.suppr, "r5", line),
            });
        }
        if SINK_MACROS.contains(&name) && !ctx.is_trace_module() {
            item.sinks.push(SinkSite { what: format!("{name}!"), line });
        }
        // A `{` opener must stay visible to the main loop's brace
        // tracking, or its closing `}` would pop a real scope.
        return if t.p(i + 2, "{") { 2 } else { 3 };
    }

    // Path call: `a::b::c(` — detected at the final segment.
    if t.is_id(i) && t.p(i + 1, "(") && !t.p(i.wrapping_sub(1), ".") {
        let name = t.text(i);
        if NON_CALL_KEYWORDS.contains(&name) {
            return 1;
        }
        // Walk back over `seg::` pairs to the path head.
        let mut segs = vec![name.to_string()];
        let mut k = i;
        while k >= 2 && t.p(k - 1, "::") && t.is_id(k - 2) {
            segs.insert(0, t.text(k - 2).to_string());
            k -= 2;
        }
        // `drop(guard)` releases a named guard early.
        if segs.len() == 1 && name == "drop" && t.is_id(i + 2) && t.p(i + 3, ")") {
            item.drops.push(DropSite { name: t.text(i + 2).to_string(), tok: i, line });
        }
        // `thread::scope(` / `std::thread::scope(` blocks until every
        // spawned thread joins.
        if name == "scope" && segs.iter().any(|s| s == "thread") {
            item.blocking.push(BlockingSite { what: "scope".into(), tok: i, line });
        }
        if let Some(what) = sink_path(&segs) {
            if !ctx.is_trace_module() {
                item.sinks.push(SinkSite { what, line });
            }
        }
        item.calls.push(CallSite { callee: Callee::Path(segs), line });
        return 2;
    }

    1
}

/// True when the call whose argument list opens at `open` (`(` token)
/// is immediately `.await`ed — a virtual-time suspension, not an OS
/// block.
fn awaited_after_call(t: T<'_>, open: usize) -> bool {
    let mut depth = 0i32;
    let mut j = open;
    while j < t.len() {
        if t.p(j, "(") {
            depth += 1;
        } else if t.p(j, ")") {
            depth -= 1;
            if depth == 0 {
                return t.p(j + 1, ".") && t.id(j + 2, "await");
            }
        }
        j += 1;
    }
    false
}

/// Best-effort name of a method call's receiver: the `a.b.c` identifier
/// chain ending just before the dot at `dot`.
fn receiver_chain(t: T<'_>, dot: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut k = dot;
    while k >= 1 {
        if t.is_id(k - 1) {
            parts.insert(0, t.text(k - 1).to_string());
            if k >= 3 && (t.p(k - 2, ".") || t.p(k - 2, "::")) {
                k -= 2;
                continue;
            }
        }
        break;
    }
    parts.join(".")
}

/// The binding name when the statement around a `.lock()` at `dot` is
/// `let <name> = …`; `None` for temporaries.
fn guard_binding(t: T<'_>, dot: usize) -> Option<String> {
    let mut k = dot;
    let mut guard = 0;
    while k > 0 && guard < 48 {
        k -= 1;
        guard += 1;
        if t.p(k, ";") || t.p(k, "{") || t.p(k, "}") {
            return None;
        }
        if t.id(k, "let") {
            let name_at = if t.id(k + 1, "mut") { k + 2 } else { k + 1 };
            if t.is_id(name_at) && t.p(name_at + 1, "=") {
                return Some(t.text(name_at).to_string());
            }
            return None;
        }
    }
    None
}

/// Maps a call path to a banned-sink description, when it is one:
/// `std::fs::*`, `std::env::*`, `std::net::*`, and the `std::io`
/// standard streams (R10).
fn sink_path(segs: &[String]) -> Option<String> {
    let stripped: Vec<&str> = segs
        .iter()
        .map(String::as_str)
        .skip_while(|s| *s == "std")
        .collect();
    let joined = || format!("std::{}", stripped.join("::"));
    match stripped.first().copied() {
        Some("fs") | Some("env") | Some("net") if stripped.len() >= 2 => Some(joined()),
        Some("io")
            if matches!(stripped.get(1).copied(), Some("stdin" | "stdout" | "stderr")) =>
        {
            Some(joined())
        }
        Some("stdin" | "stdout" | "stderr") if stripped.len() == 1 => None,
        _ => None,
    }
}

/// File-level R12 scan: a `SimRng` mentioned inside the generic
/// arguments of a thread-crossing container.
fn collect_type_escapes(t: T<'_>, out: &mut Vec<RngTypeEscape>) {
    let mut i = 0;
    while i + 1 < t.len() {
        if t.is_id(i) && THREAD_CROSSING.contains(&t.text(i)) && t.p(i + 1, "<") {
            let container = t.text(i).to_string();
            let mut depth = 1i32;
            let mut j = i + 2;
            while j < t.len() && depth > 0 {
                if t.p(j, "<") {
                    depth += 1;
                } else if t.p(j, ">") {
                    depth -= 1;
                } else if depth >= 1 && t.id(j, "SimRng") {
                    out.push(RngTypeEscape { container: container.clone(), line: t.line(i) });
                    break;
                } else if t.p(j, ";") || t.p(j, "{") {
                    break; // malformed / not a generic context after all
                }
                j += 1;
            }
        }
        i += 1;
    }
}

/// Per-fn R12 scan: track `SimRng`-producing bindings, then flag any
/// channel `send`/`send_now` whose argument is such a binding. Owned
/// substreams moved into scoped-thread closures (`ml::ensemble`'s
/// sanctioned pattern) involve no channel and stay legal.
fn collect_rng_sends(t: T<'_>, fns: &mut [FnItem]) {
    // Re-derive each fn's token span from its recorded sites; simpler:
    // one linear pass tracking bindings globally is wrong across fns,
    // so walk per fn using call lines as the span. Instead, track
    // bindings in file order and reset at each fn start line.
    let starts: Vec<(usize, usize)> = fns.iter().enumerate().map(|(k, f)| (f.line, k)).collect();
    let mut bindings: Vec<String> = Vec::new();
    let mut current: Option<usize> = None;
    let mut i = 0;
    while i < t.len() {
        let line = t.line(i);
        if let Some(&(_, k)) = starts.iter().rev().find(|(l, _)| *l <= line) {
            if current != Some(k) {
                current = Some(k);
                bindings.clear();
            }
        }
        // `let name = SimRng::…` / `let name = …​.substream(…)` /
        // `let name = …​.stream(…)` / `name: SimRng` (param/field).
        if t.id(i, "let") {
            let name_at = if t.id(i + 1, "mut") { i + 2 } else { i + 1 };
            if t.is_id(name_at) && t.p(name_at + 1, "=") {
                let mut j = name_at + 2;
                let mut rngish = false;
                let mut guard = 0;
                while j < t.len() && !t.p(j, ";") && guard < 64 {
                    if t.id(j, "SimRng")
                        || (t.p(j, ".") && (t.id(j + 1, "substream") || t.id(j + 1, "stream")))
                    {
                        rngish = true;
                        break;
                    }
                    j += 1;
                    guard += 1;
                }
                if rngish {
                    let name = t.text(name_at).to_string();
                    if !bindings.contains(&name) {
                        bindings.push(name);
                    }
                }
            }
        }
        if t.is_id(i) && t.p(i + 1, ":") && t.id(i + 2, "SimRng") {
            let name = t.text(i).to_string();
            if !bindings.contains(&name) {
                bindings.push(name);
            }
        }
        // `.send(name)` / `.send_now(name)` with a tracked binding.
        if t.p(i, ".")
            && (t.id(i + 1, "send") || t.id(i + 1, "send_now"))
            && t.p(i + 2, "(")
            && t.is_id(i + 3)
            && t.p(i + 4, ")")
        {
            let arg = t.text(i + 3).to_string();
            if bindings.contains(&arg) {
                if let Some(k) = current {
                    fns[k].rng_sends.push(RngSendSite { binding: arg, line: t.line(i + 1) });
                }
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::prepare;
    use crate::{FileContext, FileKind};

    fn parse(src: &str) -> ParsedFile {
        let ctx = FileContext::new("sim", FileKind::LibSrc, "crates/sim/src/x.rs");
        parse_items(&ctx, &prepare(src))
    }

    #[test]
    fn fn_items_get_qualified_names() {
        let p = parse("pub fn alpha() {}\nmod inner { pub fn beta() {} }\n");
        let names: Vec<&str> = p.fns.iter().map(|f| f.qname.as_str()).collect();
        assert_eq!(names, vec!["sim::x::alpha", "sim::x::inner::beta"]);
    }

    #[test]
    fn impl_methods_carry_type_name() {
        let src = "struct S;\nimpl S { fn m(&self) {} }\nimpl Clone for S { fn clone(&self) -> S { S } }\n";
        let p = parse(src);
        let m = p.fns.iter().find(|f| f.name == "m").expect("m parsed");
        assert_eq!(m.qname, "sim::x::S::m");
        assert_eq!(m.impl_type.as_deref(), Some("S"));
        let c = p.fns.iter().find(|f| f.name == "clone").expect("clone parsed");
        assert_eq!(c.impl_type.as_deref(), Some("S"));
    }

    #[test]
    fn generic_trait_impl_resolves_self_type() {
        let src = "impl<'a, T: Clone> Future for SendFuture<'a, T> { fn poll(&mut self) {} }\n";
        let p = parse(src);
        assert_eq!(p.fns[0].qname, "sim::x::SendFuture::poll");
    }

    #[test]
    fn calls_methods_and_macros_collected() {
        let src = "fn f() { helper(); store::put(x); obj.method(1); println!(\"hi\"); }\n";
        let p = parse(src);
        let f = &p.fns[0];
        assert!(f.calls.iter().any(|c| c.callee == Callee::Path(vec!["helper".into()])));
        assert!(f
            .calls
            .iter()
            .any(|c| c.callee == Callee::Path(vec!["store".into(), "put".into()])));
        assert!(f.calls.iter().any(|c| c.callee == Callee::Method("method".into())));
        assert!(f.calls.iter().any(|c| c.callee == Callee::Macro("println".into())));
        assert_eq!(f.sinks.len(), 1, "println! is a sink");
    }

    #[test]
    fn async_and_await_detected() {
        let src = "pub async fn go() { fut.await; }\nfn plain() {}\n";
        let p = parse(src);
        assert!(p.fns[0].is_async && p.fns[0].has_await);
        assert!(!p.fns[1].is_async && !p.fns[1].has_await);
    }

    #[test]
    fn sink_paths_detected_with_and_without_std() {
        let src = "fn f() { std::fs::read(p); env::var(\"X\"); net::lookup(h); }\n";
        let p = parse(src);
        let sinks: Vec<&str> = p.fns[0].sinks.iter().map(|s| s.what.as_str()).collect();
        assert_eq!(sinks, vec!["std::fs::read", "std::env::var", "std::net::lookup"]);
    }

    #[test]
    fn trace_module_is_sink_exempt() {
        let ctx = FileContext::new("sim", FileKind::LibSrc, "crates/sim/src/trace.rs");
        let p = parse_items(&ctx, &prepare("fn f() { println!(\"t\"); }\n"));
        assert!(p.fns[0].sinks.is_empty());
    }

    #[test]
    fn locks_guards_and_blocking_collected() {
        let src = "fn f() { let g = self.state.lock(); cv.wait(g); drop(g); q.lock().push(1); }\n";
        let p = parse(src);
        let f = &p.fns[0];
        assert_eq!(f.locks.len(), 2);
        assert_eq!(f.locks[0].guard.as_deref(), Some("g"));
        assert_eq!(f.locks[0].target, "self.state");
        assert_eq!(f.locks[1].guard, None);
        assert_eq!(f.blocking.len(), 1);
        assert_eq!(f.drops.len(), 1);
    }

    #[test]
    fn awaited_channel_ops_are_not_blocking() {
        let src = "async fn f() { rx.recv().await; tx.send(x).await; }\n";
        let p = parse(src);
        assert!(p.fns[0].blocking.is_empty());
    }

    #[test]
    fn panic_sites_and_allows() {
        let src = "fn f() {\n  x.unwrap();\n  // hetlint: allow(r5) — invariant\n  y.expect(\"y\");\n}\n";
        let p = parse(src);
        let f = &p.fns[0];
        assert_eq!(f.panics.len(), 2);
        assert!(!f.panics[0].allowed);
        assert!(f.panics[1].allowed);
    }

    #[test]
    fn rng_type_escapes_detected() {
        let src = "struct Bad { rng: Arc<Mutex<SimRng>> }\nstruct Ok2 { rng: RefCell<SimRng> }\n";
        let p = parse(src);
        assert_eq!(p.rng_type_escapes.len(), 2, "Arc and Mutex each flag");
        assert!(p.rng_type_escapes.iter().all(|e| e.line == 1));
    }

    #[test]
    fn rng_send_through_channel_detected() {
        let src = "fn f(tx: Chan) { let r = master.substream(1); tx.send(r); }\n";
        let p = parse(src);
        assert_eq!(p.fns[0].rng_sends.len(), 1);
        assert_eq!(p.fns[0].rng_sends[0].binding, "r");
    }

    #[test]
    fn owned_substream_into_scope_closure_is_legal() {
        let src = "fn f() { let r = master.substream(1); scope.spawn(move || train(r)); }\n";
        let p = parse(src);
        assert!(p.fns[0].rng_sends.is_empty());
    }

    #[test]
    fn test_module_tokens_ignored() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests { fn g() { println!(\"x\"); } }\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
    }

    #[test]
    fn trait_method_declarations_do_not_create_items() {
        let src = "trait Tr { fn decl(&self); fn with_body(&self) { helper(); } }\n";
        let p = parse(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["with_body"]);
    }
}
