//! The checked-in R5 budget ratchet.
//!
//! Budgets used to be hardcoded in the tool, which meant changing one
//! was invisible in review: the diff sat inside `crates/lint` rather
//! than next to the crate whose discipline it relaxed. They now live in
//! `hetlint.ratchet` at the workspace root — a plain `crate = N` file —
//! so every budget move is a one-line, reviewable diff. The tool reads
//! and verifies the file on every run; a missing or malformed ratchet
//! is a hard error (exit code 2), not a silent pass.

use std::path::Path;

/// Name of the ratchet file at the workspace root.
pub const RATCHET_FILE: &str = "hetlint.ratchet";

/// Reserved ratchet key: the R13 budget for panic sites reachable from
/// fabric dispatch. Not a crate name — it lives in the same file so the
/// two ratchets travel and review together.
pub const REACHABLE_PANICS_KEY: &str = "reachable-panics";

/// Reserved ratchet key: the R14 budget for nondeterminism-taint flows.
pub const NONDET_TAINT_KEY: &str = "r14";

/// Reserved ratchet key: the R15 budget for discarded fabric effects.
pub const DISCARDED_EFFECTS_KEY: &str = "r15";

/// Parsed budgets, in file order.
#[derive(Clone, Debug, Default)]
pub struct Ratchet {
    /// `(crate, budget)` pairs; crates absent from the file have
    /// budget 0.
    pub budgets: Vec<(String, usize)>,
    /// The R13 `reachable-panics` budget; 0 when the file has no entry.
    pub reachable_panics: usize,
    /// The R14 `r14` budget; 0 when the file has no entry.
    pub nondet_taint: usize,
    /// The R15 `r15` budget; 0 when the file has no entry.
    pub discarded_effects: usize,
}

impl Ratchet {
    /// The budget for a crate; `None` when the file has no entry
    /// (treated as 0 by the report).
    pub fn budget_for(&self, crate_name: &str) -> Option<usize> {
        self.budgets
            .iter()
            .find(|(name, _)| name == crate_name)
            .map(|(_, n)| *n)
    }
}

/// Parses ratchet-file text: `crate = N` lines, `#` comments, blank
/// lines. Duplicate crates and malformed lines are errors.
pub fn parse(text: &str) -> Result<Ratchet, String> {
    let mut budgets: Vec<(String, usize)> = Vec::new();
    let mut reachable_panics: Option<usize> = None;
    let mut nondet_taint: Option<usize> = None;
    let mut discarded_effects: Option<usize> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            return Err(format!(
                "{RATCHET_FILE}:{line_no}: expected `crate = budget`, got `{line}`"
            ));
        };
        let name = name.trim();
        let value = value.trim();
        let well_formed = !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_');
        if !well_formed {
            return Err(format!(
                "{RATCHET_FILE}:{line_no}: `{name}` is not a crate name"
            ));
        }
        let Ok(budget) = value.parse::<usize>() else {
            return Err(format!(
                "{RATCHET_FILE}:{line_no}: budget `{value}` is not a non-negative integer"
            ));
        };
        let reserved = match name {
            REACHABLE_PANICS_KEY => Some(&mut reachable_panics),
            NONDET_TAINT_KEY => Some(&mut nondet_taint),
            DISCARDED_EFFECTS_KEY => Some(&mut discarded_effects),
            _ => None,
        };
        if let Some(slot) = reserved {
            if slot.is_some() {
                return Err(format!("{RATCHET_FILE}:{line_no}: duplicate `{name}` entry"));
            }
            *slot = Some(budget);
            continue;
        }
        if budgets.iter().any(|(n, _)| n == name) {
            return Err(format!(
                "{RATCHET_FILE}:{line_no}: duplicate entry for crate `{name}`"
            ));
        }
        budgets.push((name.to_string(), budget));
    }
    Ok(Ratchet {
        budgets,
        reachable_panics: reachable_panics.unwrap_or(0),
        nondet_taint: nondet_taint.unwrap_or(0),
        discarded_effects: discarded_effects.unwrap_or(0),
    })
}

/// Loads and parses the ratchet file at the workspace root.
pub fn load(root: &Path) -> Result<Ratchet, String> {
    let path = root.join(RATCHET_FILE);
    let text = std::fs::read_to_string(&path).map_err(|e| {
        format!(
            "cannot read {} (the R5 ratchet is required): {e}",
            path.display()
        )
    })?;
    parse(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_comments_and_blanks() {
        let r = parse("# budgets\n\nsim = 5\nstore=1\n").unwrap();
        assert_eq!(r.budget_for("sim"), Some(5));
        assert_eq!(r.budget_for("store"), Some(1));
        assert_eq!(r.budget_for("fabric"), None);
    }

    #[test]
    fn rejects_malformed_line() {
        assert!(parse("sim 5\n").is_err());
        assert!(parse("sim = five\n").is_err());
        assert!(parse("Sim = 5\n").is_err());
    }

    #[test]
    fn rejects_duplicate_crate() {
        assert!(parse("sim = 5\nsim = 4\n").is_err());
    }

    #[test]
    fn reachable_panics_is_a_reserved_key_not_a_crate() {
        let r = parse("sim = 1\nreachable-panics = 7\n").unwrap();
        assert_eq!(r.reachable_panics, 7);
        assert_eq!(r.budget_for("reachable-panics"), None);
        assert_eq!(r.budget_for("sim"), Some(1));
        let bare = parse("sim = 1\n").unwrap();
        assert_eq!(bare.reachable_panics, 0);
        assert!(parse("reachable-panics = 1\nreachable-panics = 2\n").is_err());
    }

    #[test]
    fn r14_and_r15_are_reserved_keys_not_crates() {
        let r = parse("sim = 1\nr14 = 2\nr15 = 3\n").unwrap();
        assert_eq!(r.nondet_taint, 2);
        assert_eq!(r.discarded_effects, 3);
        assert_eq!(r.budget_for("r14"), None);
        assert_eq!(r.budget_for("r15"), None);
        let bare = parse("sim = 1\n").unwrap();
        assert_eq!(bare.nondet_taint, 0);
        assert_eq!(bare.discarded_effects, 0);
        assert!(parse("r14 = 1\nr14 = 2\n").is_err());
        assert!(parse("r15 = 1\nr15 = 2\n").is_err());
    }
}
