//! hetlint CLI: `cargo run -p hetflow-lint [-- <workspace-root>]`.
//!
//! Walks the workspace sources, prints violations grouped by rule, and
//! exits non-zero when the determinism contract is broken. See
//! DESIGN.md "Determinism rules" for the rule catalogue and the
//! `hetlint: allow(<rule>) — <reason>` suppression syntax.

use std::path::PathBuf;
use std::process::ExitCode;

use hetflow_lint::{Report, RuleId};

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let report = match hetflow_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            println!("hetlint: failed to walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    print_report(&report);
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_report(report: &Report) {
    let rules = [
        RuleId::R1,
        RuleId::R2,
        RuleId::R3,
        RuleId::R4,
        RuleId::R6,
        RuleId::BadAllow,
    ];
    for rule in rules {
        let hits: Vec<_> = report
            .violations
            .iter()
            .chain(&report.bad_allows)
            .filter(|v| v.rule == rule)
            .collect();
        if hits.is_empty() {
            continue;
        }
        println!("{}", rule.title());
        for v in hits {
            println!("  {v}");
        }
    }
    if !report.unwrap_rows.is_empty() {
        println!("{}", RuleId::R5.title());
        for (name, count, budget) in &report.unwrap_rows {
            if count > budget {
                println!(
                    "  crate `{name}`: {count}/{budget} OVER BUDGET; convert to Result \
                     plumbing / the typed task-failure path, or annotate an invariant \
                     abort with `hetlint: allow(r5) — <why>`"
                );
            } else {
                println!("  crate `{name}`: {count}/{budget}");
            }
        }
    }
    println!(
        "hetlint: {} files, {} violations, {} suppressed (reasoned), {} bad allows",
        report.files_scanned,
        report.violations.len()
            + report
                .unwrap_rows
                .iter()
                .filter(|(_, c, b)| c > b)
                .count(),
        report.suppressed.len(),
        report.bad_allows.len()
    );
    if report.clean() {
        println!("hetlint: determinism contract holds");
    }
}
