//! hetlint CLI: `cargo run -p hetflow-lint [-- [options] <workspace-root>]`.
//!
//! Walks the workspace sources, verifies the `hetlint.ratchet` budget
//! file, and reports violations of the determinism contract. See
//! DESIGN.md "Determinism rules" for the rule catalogue and the
//! `hetlint: allow(<rule>) — <reason>` suppression syntax.
//!
//! Options:
//! - `--format text|json` — report format (default text)
//! - `--callgraph` — emit the workspace call graph instead of the
//!   report (JSON under `--format json`, a summary under text)
//! - `--explain <rule>` — print the long-form description of one rule
//!   (`R1`..`R13`, `bad-allow`, or any `allow(..)` alias) and exit
//!
//! Exit codes are stable for CI:
//! - `0` — contract holds (no violations, budgets respected)
//! - `1` — violations found (including budget overruns and bad allows)
//! - `2` — the tool itself failed (bad usage, unreadable tree, missing
//!   or malformed ratchet file, unknown `--explain` rule)

use std::path::PathBuf;
use std::process::ExitCode;

use hetflow_lint::{graph, json, Report, RuleId};

enum Format {
    Text,
    Json,
}

fn usage() {
    eprintln!(
        "usage: hetlint [--format text|json] [--callgraph] [--explain <rule>] [workspace-root]"
    );
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut callgraph = false;
    let mut explain: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                _ => {
                    usage();
                    return ExitCode::from(2);
                }
            },
            "--format=json" => format = Format::Json,
            "--format=text" => format = Format::Text,
            "--callgraph" => callgraph = true,
            "--explain" => match args.next() {
                Some(rule) => explain = Some(rule),
                None => {
                    usage();
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with("--explain=") => {
                explain = Some(arg["--explain=".len()..].to_string());
            }
            _ if arg.starts_with('-') => {
                usage();
                return ExitCode::from(2);
            }
            _ => {
                if root.is_some() {
                    usage();
                    return ExitCode::from(2);
                }
                root = Some(PathBuf::from(arg));
            }
        }
    }
    if let Some(rule) = explain {
        return match hetflow_lint::explain(&rule) {
            Some(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("hetlint: unknown rule `{rule}` (try R1..R13 or bad-allow)");
                ExitCode::from(2)
            }
        };
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let (report, graph) = match hetflow_lint::run_full(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hetlint: {e}");
            return ExitCode::from(2);
        }
    };
    if callgraph {
        match format {
            Format::Json => println!("{}", json::graph_to_json(&graph)),
            Format::Text => print_graph(&graph),
        }
        return ExitCode::SUCCESS;
    }
    match format {
        Format::Json => println!("{}", json::report_to_json(&report)),
        Format::Text => print_report(&report),
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_graph(graph: &graph::CallGraph) {
    let n_edges: usize = graph.edges.iter().map(Vec::len).sum();
    println!("hetlint call graph: {} nodes, {n_edges} edges", graph.nodes.len());
    for (id, node) in graph.nodes.iter().enumerate() {
        let out: Vec<&str> = graph.edges[id]
            .iter()
            .map(|&m| graph.nodes[m].qname.as_str())
            .collect();
        if out.is_empty() {
            println!("  {}", node.qname);
        } else {
            println!("  {} -> {}", node.qname, out.join(", "));
        }
    }
}

fn print_report(report: &Report) {
    let rules = [
        RuleId::R1,
        RuleId::R2,
        RuleId::R3,
        RuleId::R4,
        RuleId::R6,
        RuleId::R7,
        RuleId::R8,
        RuleId::R9,
        RuleId::R10,
        RuleId::R11,
        RuleId::R12,
        RuleId::R13,
        RuleId::BadAllow,
    ];
    for rule in rules {
        let hits: Vec<_> = report
            .violations
            .iter()
            .chain(&report.bad_allows)
            .filter(|v| v.rule == rule)
            .collect();
        if hits.is_empty() {
            continue;
        }
        println!("{}", rule.title());
        for v in hits {
            println!("  {v}");
        }
    }
    if !report.unwrap_rows.is_empty() {
        println!("{}", RuleId::R5.title());
        for (name, count, budget) in &report.unwrap_rows {
            if count > budget {
                println!(
                    "  crate `{name}`: {count}/{budget} OVER BUDGET; convert to Result \
                     plumbing / the typed task-failure path, annotate an invariant \
                     abort with `hetlint: allow(r5) — <why>`, or raise the budget in \
                     hetlint.ratchet with a design-reviewed diff"
                );
            } else {
                println!("  crate `{name}`: {count}/{budget}");
            }
        }
    }
    if let Some((count, budget)) = report.reachable_panics {
        println!("{}", RuleId::R13.title());
        if count > budget {
            println!(
                "  {count}/{budget} OVER BUDGET; see the R13 violations above for the \
                 witness chains"
            );
        } else {
            println!("  reachable panic sites: {count}/{budget}");
        }
    }
    for note in &report.notes {
        println!("note: {note}");
    }
    println!(
        "hetlint: {} files, {} violations, {} suppressed (reasoned), {} bad allows",
        report.files_scanned,
        report.violations.len()
            + report
                .unwrap_rows
                .iter()
                .filter(|(_, c, b)| c > b)
                .count(),
        report.suppressed.len(),
        report.bad_allows.len()
    );
    if report.clean() {
        println!("hetlint: determinism contract holds");
    }
}
