//! hetlint CLI: `cargo run -p hetflow-lint [-- [options] <workspace-root>]`.
//!
//! Walks the workspace sources, verifies the `hetlint.ratchet` budget
//! file, and reports violations of the determinism contract. See
//! DESIGN.md "Determinism rules" for the rule catalogue and the
//! `hetlint: allow(<rule>) — <reason>` suppression syntax.
//!
//! The per-file pass runs through the incremental cache under
//! `target/hetlint-cache/` by default; the cross-file phases (R7–R16)
//! always run fresh.
//!
//! Options:
//! - `--format text|json` — report format (default text)
//! - `--callgraph` — emit the workspace call graph instead of the
//!   report (JSON under `--format json`, a summary under text)
//! - `--dataflow` — emit the converged dataflow document (per-function
//!   summaries plus every R14–R16 finding) instead of the report
//! - `--no-cache` — lint every file from source, bypassing the cache
//! - `--explain <rule>` — print the long-form description of one rule
//!   (any key in the rule range, `bad-allow`, or an `allow(..)` alias)
//!   and exit
//!
//! Exit codes are stable for CI:
//! - `0` — contract holds (no violations, budgets respected)
//! - `1` — violations found (including budget overruns and bad allows)
//! - `2` — the tool itself failed (bad usage, unreadable tree, missing
//!   or malformed ratchet file, unknown `--explain` rule)

use std::path::PathBuf;
use std::process::ExitCode;

use hetflow_lint::{cache, graph, json, rule_range, Report, RuleId, RULE_KEYS};

enum Format {
    Text,
    Json,
}

fn usage() {
    eprintln!(
        "usage: hetlint [--format text|json] [--callgraph] [--dataflow] [--no-cache] \
         [--explain <rule>] [workspace-root]"
    );
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut callgraph = false;
    let mut dataflow = false;
    let mut use_cache = true;
    let mut explain: Option<String> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                _ => {
                    usage();
                    return ExitCode::from(2);
                }
            },
            "--format=json" => format = Format::Json,
            "--format=text" => format = Format::Text,
            "--callgraph" => callgraph = true,
            "--dataflow" => dataflow = true,
            "--no-cache" => use_cache = false,
            "--explain" => match args.next() {
                Some(rule) => explain = Some(rule),
                None => {
                    usage();
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with("--explain=") => {
                explain = Some(arg["--explain=".len()..].to_string());
            }
            _ if arg.starts_with('-') => {
                usage();
                return ExitCode::from(2);
            }
            _ => {
                if root.is_some() {
                    usage();
                    return ExitCode::from(2);
                }
                root = Some(PathBuf::from(arg));
            }
        }
    }
    if let Some(rule) = explain {
        return match hetflow_lint::explain(&rule) {
            Some(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "hetlint: unknown rule `{rule}` (valid: {}, bad-allow — i.e. {})",
                    RULE_KEYS.join(", "),
                    rule_range()
                );
                ExitCode::from(2)
            }
        };
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let cache_dir = use_cache.then(|| cache::default_dir(&root));
    let (out, stats) = match hetflow_lint::run_all_cached(&root, cache_dir.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hetlint: {e}");
            return ExitCode::from(2);
        }
    };
    if callgraph {
        match format {
            Format::Json => println!("{}", json::graph_to_json(&out.graph)),
            Format::Text => print_graph(&out.graph),
        }
        return ExitCode::SUCCESS;
    }
    if dataflow {
        match format {
            Format::Json | Format::Text => println!("{}", json::dataflow_to_json(&out.dataflow)),
        }
        return ExitCode::SUCCESS;
    }
    match format {
        Format::Json => println!("{}", json::report_to_json(&out.report)),
        Format::Text => print_report(&out.report, use_cache.then_some(stats)),
    }
    if out.report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_graph(graph: &graph::CallGraph) {
    let n_edges: usize = graph.edges.iter().map(Vec::len).sum();
    println!("hetlint call graph: {} nodes, {n_edges} edges", graph.nodes.len());
    for (id, node) in graph.nodes.iter().enumerate() {
        let out: Vec<&str> = graph.edges[id]
            .iter()
            .map(|&m| graph.nodes[m].qname.as_str())
            .collect();
        if out.is_empty() {
            println!("  {}", node.qname);
        } else {
            println!("  {} -> {}", node.qname, out.join(", "));
        }
    }
}

fn print_report(report: &Report, stats: Option<cache::CacheStats>) {
    let rules = [
        RuleId::R1,
        RuleId::R2,
        RuleId::R3,
        RuleId::R4,
        RuleId::R6,
        RuleId::R7,
        RuleId::R8,
        RuleId::R9,
        RuleId::R10,
        RuleId::R11,
        RuleId::R12,
        RuleId::R13,
        RuleId::R14,
        RuleId::R15,
        RuleId::R16,
        RuleId::BadAllow,
    ];
    for rule in rules {
        let hits: Vec<_> = report
            .violations
            .iter()
            .chain(&report.bad_allows)
            .filter(|v| v.rule == rule)
            .collect();
        if hits.is_empty() {
            continue;
        }
        println!("{}", rule.title());
        for v in hits {
            println!("  {v}");
        }
    }
    if !report.unwrap_rows.is_empty() {
        println!("{}", RuleId::R5.title());
        for (name, count, budget) in &report.unwrap_rows {
            if count > budget {
                println!(
                    "  crate `{name}`: {count}/{budget} OVER BUDGET; convert to Result \
                     plumbing / the typed task-failure path, annotate an invariant \
                     abort with `hetlint: allow(r5) — <why>`, or raise the budget in \
                     hetlint.ratchet with a design-reviewed diff"
                );
            } else {
                println!("  crate `{name}`: {count}/{budget}");
            }
        }
    }
    for (rule, label, row) in [
        (RuleId::R13, "reachable panic sites", report.reachable_panics),
        (RuleId::R14, "nondeterminism-taint flows", report.nondet_taint),
        (RuleId::R15, "discarded fabric effects", report.discarded_effects),
    ] {
        if let Some((count, budget)) = row {
            println!("{}", rule.title());
            if count > budget {
                println!(
                    "  {count}/{budget} OVER BUDGET; see the {} violations above for \
                     the witness chains",
                    rule.key()
                );
            } else {
                println!("  {label}: {count}/{budget}");
            }
        }
    }
    for note in &report.notes {
        println!("note: {note}");
    }
    println!(
        "hetlint: {} files, {} violations, {} suppressed (reasoned), {} bad allows",
        report.files_scanned,
        report.violations.len()
            + report
                .unwrap_rows
                .iter()
                .filter(|(_, c, b)| c > b)
                .count(),
        report.suppressed.len(),
        report.bad_allows.len()
    );
    if let Some(stats) = stats {
        println!(
            "hetlint: cache {} hits, {} misses ({})",
            stats.hits,
            stats.misses,
            cache::fingerprint()
        );
    }
    if report.clean() {
        println!("hetlint: determinism contract holds");
    }
}
