//! hetlint CLI: `cargo run -p hetflow-lint [-- [--format text|json] <workspace-root>]`.
//!
//! Walks the workspace sources, verifies the `hetlint.ratchet` budget
//! file, and reports violations of the determinism contract. See
//! DESIGN.md "Determinism rules" for the rule catalogue and the
//! `hetlint: allow(<rule>) — <reason>` suppression syntax.
//!
//! Exit codes are stable for CI:
//! - `0` — contract holds (no violations, budgets respected)
//! - `1` — violations found (including budget overruns and bad allows)
//! - `2` — the tool itself failed (bad usage, unreadable tree, missing
//!   or malformed ratchet file)

use std::path::PathBuf;
use std::process::ExitCode;

use hetflow_lint::{json, Report, RuleId};

enum Format {
    Text,
    Json,
}

fn usage() {
    eprintln!("usage: hetlint [--format text|json] [workspace-root]");
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                _ => {
                    usage();
                    return ExitCode::from(2);
                }
            },
            "--format=json" => format = Format::Json,
            "--format=text" => format = Format::Text,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                usage();
                return ExitCode::from(2);
            }
            _ => {
                if root.is_some() {
                    usage();
                    return ExitCode::from(2);
                }
                root = Some(PathBuf::from(arg));
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let report = match hetflow_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hetlint: {e}");
            return ExitCode::from(2);
        }
    };
    match format {
        Format::Json => println!("{}", json::report_to_json(&report)),
        Format::Text => print_report(&report),
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_report(report: &Report) {
    let rules = [
        RuleId::R1,
        RuleId::R2,
        RuleId::R3,
        RuleId::R4,
        RuleId::R6,
        RuleId::R7,
        RuleId::R8,
        RuleId::R9,
        RuleId::BadAllow,
    ];
    for rule in rules {
        let hits: Vec<_> = report
            .violations
            .iter()
            .chain(&report.bad_allows)
            .filter(|v| v.rule == rule)
            .collect();
        if hits.is_empty() {
            continue;
        }
        println!("{}", rule.title());
        for v in hits {
            println!("  {v}");
        }
    }
    if !report.unwrap_rows.is_empty() {
        println!("{}", RuleId::R5.title());
        for (name, count, budget) in &report.unwrap_rows {
            if count > budget {
                println!(
                    "  crate `{name}`: {count}/{budget} OVER BUDGET; convert to Result \
                     plumbing / the typed task-failure path, annotate an invariant \
                     abort with `hetlint: allow(r5) — <why>`, or raise the budget in \
                     hetlint.ratchet with a design-reviewed diff"
                );
            } else {
                println!("  crate `{name}`: {count}/{budget}");
            }
        }
    }
    for note in &report.notes {
        println!("note: {note}");
    }
    println!(
        "hetlint: {} files, {} violations, {} suppressed (reasoned), {} bad allows",
        report.files_scanned,
        report.violations.len()
            + report
                .unwrap_rows
                .iter()
                .filter(|(_, c, b)| c > b)
                .count(),
        report.suppressed.len(),
        report.bad_allows.len()
    );
    if report.clean() {
        println!("hetlint: determinism contract holds");
    }
}
