//! The interprocedural rules R10–R13, built on the workspace call
//! graph.
//!
//! Per-file rules can see a `println!`; only a whole-workspace pass can
//! see that the function containing it is *reachable from the
//! simulation*. These four rules each combine the parser's per-function
//! raw material with [`crate::graph`] reachability:
//!
//! - **R10 sim-purity** — functions reachable from DES entry points
//!   (async fns and spawning fns in sim-driven crates, plus the fabric
//!   dispatch path) must not reach ambient I/O: `std::fs`, `std::env`,
//!   `std::net`, the std streams, or the print macros. The `Tracer` is
//!   the one sanctioned side channel, so `crates/sim/src/trace.rs` is
//!   sink-exempt. Every violation prints the concrete witness call
//!   chain.
//! - **R11 lock-discipline** — two locks must never be acquired in
//!   inverted orders in different functions. (Guards held across
//!   blocking calls moved to R16, which decides them on real CFG paths
//!   in [`crate::dataflow`] instead of token spans.)
//! - **R12 rng-provenance** — a `SimRng` handle must not be stored in a
//!   thread-crossing container type (`Arc`, `Mutex`, channel endpoints)
//!   or passed through a channel send. Streams are derived by name and
//!   move by ownership; smuggling one across a thread boundary breaks
//!   substream provenance.
//! - **R13 panic-reach** — every `unwrap()`/`expect()`/`panic!()` site
//!   transitively reachable from fabric dispatch is accounted against
//!   the `reachable-panics` budget in `hetlint.ratchet`. Sites under a
//!   reasoned `allow(r5)` are exempt — the same annotation serves both
//!   rules, because both police the same contract: runtime faults take
//!   the typed failure path, only invariant violations may abort.

use crate::graph::{self, CallGraph};
use crate::ratchet::Ratchet;
use crate::scan;
use crate::{LintedFile, RuleId, Violation};

/// Fabric functions that sit on the dispatch path: every task delivery
/// funnels through these, so they anchor both R10 and R13 entry sets.
const FABRIC_DISPATCH: &[&str] = &["submit", "deliver", "deliver_inner"];

/// What the interprocedural phase hands back to the report assembly.
#[derive(Debug, Default)]
pub struct Outcome {
    /// `(reachable un-allowed panic sites, budget)` for the R13 row.
    pub reachable_panics: (usize, usize),
    /// Informational lines (within-budget R13 sites with witnesses).
    pub notes: Vec<String>,
    /// The call graph the rules ran over, for `--callgraph` output.
    pub graph: CallGraph,
}

/// Runs R10–R13 over the parsed set, appending hits to each file's
/// report through its suppression table. Returns the R13 accounting
/// and the graph itself.
pub fn check(files: &mut [LintedFile], budgets: &Ratchet) -> Outcome {
    let g = graph::build(files);
    let mut out = Outcome::default();
    r10_sim_purity(files, &g);
    r11_lock_discipline(files, &g);
    r12_rng_provenance(files);
    r13_panic_reach(files, &g, budgets, &mut out);
    out.graph = g;
    out
}

/// Routes an interprocedural hit through the owning file's suppression
/// table (mirrors `workspace::push_hit`, kept separate so the two
/// phases stay independently testable).
fn push_hit(file: &mut LintedFile, rule: RuleId, line: usize, message: String) {
    let found = scan::find_suppression(&file.suppr, rule.key(), line).cloned();
    match found {
        Some(s) => {
            file.matched_allows.push((rule.key().to_string(), s.line));
            file.report.suppressed.push(Violation {
                rule,
                path: file.ctx.rel_path.clone(),
                line,
                message,
                suppression: Some(s),
            });
        }
        None => file.report.violations.push(Violation {
            rule,
            path: file.ctx.rel_path.clone(),
            line,
            message,
            suppression: None,
        }),
    }
}

/// The R10 entry set: where simulation control flow begins.
fn sim_entries(files: &[LintedFile], g: &CallGraph) -> Vec<usize> {
    g.select(|node| {
        let item = &files[node.file].items.fns[node.item];
        // Fabric dispatch is always an entry.
        if node.crate_name == "fabric" && FABRIC_DISPATCH.contains(&item.name.as_str()) {
            return true;
        }
        let ctx = &files[node.file].ctx;
        // Binaries are drivers, not simulation actors: the CLI prints
        // reports by design.
        if !ctx.sim_driven() || node.path.contains("/bin/") {
            return false;
        }
        // Async fns are (potential) DES actors; fns that spawn tasks
        // feed the executor directly.
        item.is_async
            || item.calls.iter().any(|c| match &c.callee {
                crate::parser::Callee::Method(m) => m == "spawn",
                crate::parser::Callee::Path(p) => p.last().is_some_and(|s| s == "spawn"),
                crate::parser::Callee::Macro(_) => false,
            })
    })
}

/// R10 — ambient I/O reachable from simulation entry points.
fn r10_sim_purity(files: &mut [LintedFile], g: &CallGraph) {
    let entries = sim_entries(files, g);
    if entries.is_empty() {
        return;
    }
    let reach = g.reach(&entries);
    let mut hits: Vec<(usize, usize, String)> = Vec::new();
    for n in 0..g.nodes.len() {
        if !reach.reachable(n) {
            continue;
        }
        let node = &g.nodes[n];
        let item = &files[node.file].items.fns[node.item];
        if item.sinks.is_empty() {
            continue;
        }
        let witness = graph::witness_string(g, &reach.witness(n));
        for sink in &item.sinks {
            hits.push((
                node.file,
                sink.line,
                format!(
                    "`{}` reaches banned sink {} from a simulation entry point \
                     (via {witness}); route output through the Tracer or move it \
                     behind the dispatch boundary",
                    item.qname, sink.what
                ),
            ));
        }
    }
    for (file, line, message) in hits {
        push_hit(&mut files[file], RuleId::R10, line, message);
    }
}

/// R11 — inverted lock orders across functions. (Guard-across-blocking
/// moved to R16, which runs a CFG path search in `crate::dataflow`.)
fn r11_lock_discipline(files: &mut [LintedFile], g: &CallGraph) {
    let mut hits: Vec<(usize, usize, String)> = Vec::new();
    // (first target, second target, file, line) for order comparison.
    let mut order_pairs: Vec<(String, String, usize, usize)> = Vec::new();
    for n in 0..g.nodes.len() {
        let node = &g.nodes[n];
        let item = &files[node.file].items.fns[node.item];
        for lock in &item.locks {
            let Some(guard) = &lock.guard else { continue };
            // The guard lives from the acquisition to its `drop(..)` or
            // the end of the body.
            let span_end = item
                .drops
                .iter()
                .find(|d| d.tok > lock.tok && d.name == *guard)
                .map(|d| d.tok)
                .unwrap_or(usize::MAX);
            // Second acquisitions while the guard is live → order pairs.
            for l2 in &item.locks {
                if l2.tok > lock.tok && l2.tok < span_end && l2.target != lock.target {
                    order_pairs.push((lock.target.clone(), l2.target.clone(), node.file, l2.line));
                }
            }
        }
    }
    // Inverted acquisition orders across the workspace.
    for (a, b, file, line) in &order_pairs {
        let inverted = order_pairs
            .iter()
            .find(|(x, y, _, _)| x == b && y == a);
        if let Some((_, _, ofile, oline)) = inverted {
            hits.push((
                *file,
                *line,
                format!(
                    "lock order inversion: `{a}` then `{b}` here, but `{b}` then `{a}` \
                     at {}:{oline}; pick one global order",
                    files[*ofile].ctx.rel_path
                ),
            ));
        }
    }
    for (file, line, message) in hits {
        push_hit(&mut files[file], RuleId::R11, line, message);
    }
}

/// R12 — `SimRng` handles crossing thread or channel boundaries.
fn r12_rng_provenance(files: &mut [LintedFile]) {
    let mut hits: Vec<(usize, usize, String)> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        for esc in &f.items.rng_type_escapes {
            hits.push((
                fi,
                esc.line,
                format!(
                    "SimRng stored inside `{}<..>`, which crosses a thread boundary; \
                     derive a named stream or substream on the receiving side instead",
                    esc.container
                ),
            ));
        }
        for item in &f.items.fns {
            for send in &item.rng_sends {
                hits.push((
                    fi,
                    send.line,
                    format!(
                        "`{}` passes SimRng binding `{}` through a channel send; \
                         send a seed or stream name and derive the stream on the \
                         receiving side",
                        item.qname, send.binding
                    ),
                ));
            }
        }
    }
    for (file, line, message) in hits {
        push_hit(&mut files[file], RuleId::R12, line, message);
    }
}

/// R13 — panic sites reachable from fabric dispatch, ratcheted.
fn r13_panic_reach(
    files: &mut [LintedFile],
    g: &CallGraph,
    budgets: &Ratchet,
    out: &mut Outcome,
) {
    let entries = g.select(|node| {
        let item = &files[node.file].items.fns[node.item];
        node.crate_name == "fabric" && FABRIC_DISPATCH.contains(&item.name.as_str())
    });
    let budget = budgets.reachable_panics;
    if entries.is_empty() {
        out.reachable_panics = (0, budget);
        return;
    }
    let reach = g.reach(&entries);
    let mut sites: Vec<(usize, usize, String)> = Vec::new();
    for n in 0..g.nodes.len() {
        if !reach.reachable(n) {
            continue;
        }
        let node = &g.nodes[n];
        let item = &files[node.file].items.fns[node.item];
        if item.panics.iter().all(|p| p.allowed) {
            continue;
        }
        let witness = graph::witness_string(g, &reach.witness(n));
        for p in item.panics.iter().filter(|p| !p.allowed) {
            sites.push((
                node.file,
                p.line,
                format!(
                    "`{}` contains `{}` reachable from fabric dispatch (via {witness}); \
                     convert to the typed task-failure path or annotate the invariant \
                     with `hetlint: allow(r5) — <why>`",
                    item.qname, p.what
                ),
            ));
        }
    }
    out.reachable_panics = (sites.len(), budget);
    if sites.len() > budget {
        for (file, line, message) in sites {
            push_hit(&mut files[file], RuleId::R13, line, message);
        }
    } else {
        for (file, line, message) in sites {
            out.notes.push(format!(
                "R13 within budget: {}:{line}: {message}",
                files[file].ctx.rel_path
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_file, FileContext, FileKind};

    fn set(files: &[(&str, &str, &str)]) -> Vec<LintedFile> {
        files
            .iter()
            .map(|(krate, rel, src)| {
                lint_file(&FileContext::new(krate, FileKind::LibSrc, rel), src)
            })
            .collect()
    }

    fn run(files: &mut [LintedFile], ratchet: &str) -> Outcome {
        let budgets = crate::ratchet::parse(ratchet).expect("ratchet parses");
        check(files, &budgets)
    }

    #[test]
    fn r10_flags_reachable_sink_with_witness() {
        let mut files = set(&[
            (
                "sim",
                "crates/sim/src/actor.rs",
                "pub async fn actor() { helper(); }\nfn helper() { log_it(); }\nfn log_it() { println!(\"x\"); }\n",
            ),
        ]);
        run(&mut files, "");
        let v: Vec<&Violation> = files[0]
            .report
            .violations
            .iter()
            .filter(|v| v.rule == RuleId::R10)
            .collect();
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("sim::actor::actor -> sim::actor::helper -> sim::actor::log_it"),
            "witness path missing: {}", v[0].message);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn r10_ignores_unreachable_sink_and_bin_drivers() {
        let mut files = set(&[
            ("sim", "crates/sim/src/actor.rs", "pub async fn actor() {}\nfn cli_only() { println!(\"x\"); }\n"),
            ("core", "crates/core/src/bin/tool.rs", "fn main() { helper(); }\nfn helper() { println!(\"y\"); }\n"),
        ]);
        run(&mut files, "");
        for f in &files {
            assert!(f.report.violations.iter().all(|v| v.rule != RuleId::R10));
        }
    }

    #[test]
    fn r10_suppressible_at_sink() {
        let mut files = set(&[(
            "sim",
            "crates/sim/src/actor.rs",
            "pub async fn actor() { log_it(); }\n// hetlint: allow(r10) — operator console, gated off in campaigns\nfn log_it() { println!(\"x\"); }\n",
        )]);
        run(&mut files, "");
        assert!(files[0].report.violations.iter().all(|v| v.rule != RuleId::R10));
        assert!(files[0].report.suppressed.iter().any(|v| v.rule == RuleId::R10));
    }

    #[test]
    fn r11_no_longer_flags_guard_across_blocking() {
        // Guard-across-blocking is R16's job now (CFG path search in
        // `dataflow`); R11 must stay silent on it.
        let mut files = set(&[(
            "sim",
            "crates/sim/src/ex.rs",
            "struct Q;\nimpl Q {\nfn direct(&self) {\nlet g = self.state.lock();\nself.cv.wait(g);\n}\n}\n",
        )]);
        run(&mut files, "");
        assert!(files[0].report.violations.iter().all(|v| v.rule != RuleId::R11));
    }

    #[test]
    fn r11_lock_order_inversion_across_functions() {
        let mut files = set(&[(
            "sim",
            "crates/sim/src/ex.rs",
            "fn ab() {\nlet g = a.lock();\nlet h = b.lock();\n}\nfn ba() {\nlet g = b.lock();\nlet h = a.lock();\n}\n",
        )]);
        run(&mut files, "");
        let r11: Vec<&Violation> = files[0]
            .report
            .violations
            .iter()
            .filter(|v| v.rule == RuleId::R11 && v.message.contains("inversion"))
            .collect();
        assert_eq!(r11.len(), 2, "both sides flagged: {r11:?}");
    }

    #[test]
    fn r12_flags_container_and_channel_escapes() {
        let mut files = set(&[(
            "steer",
            "crates/steer/src/pol.rs",
            "struct Bad { rng: Arc<SimRng> }\nfn leak(tx: Tx) { let r = master.substream(3); tx.send(r); }\n",
        )]);
        run(&mut files, "");
        let r12: Vec<&Violation> = files[0]
            .report
            .violations
            .iter()
            .filter(|v| v.rule == RuleId::R12)
            .collect();
        assert_eq!(r12.len(), 2, "{r12:?}");
    }

    #[test]
    fn r13_counts_against_budget_and_reports_over() {
        let srcs = [
            (
                "fabric",
                "crates/fabric/src/f.rs",
                "struct Ex;\nimpl Ex { fn submit(&self) { store::fetch(k); } }\n",
            ),
            (
                "store",
                "crates/store/src/lib.rs",
                "pub fn fetch(k: u64) { x.unwrap(); }\n",
            ),
        ];
        // Budget 1: within budget → note, no violation.
        let mut files = set(&srcs);
        let out = run(&mut files, "reachable-panics = 1\n");
        assert_eq!(out.reachable_panics, (1, 1));
        assert_eq!(out.notes.len(), 1);
        assert!(out.notes[0].contains("fabric::f::Ex::submit -> store::fetch"));
        for f in &files {
            assert!(f.report.violations.iter().all(|v| v.rule != RuleId::R13));
        }
        // Budget 0: over → violation with witness.
        let mut files = set(&srcs);
        let out = run(&mut files, "");
        assert_eq!(out.reachable_panics, (1, 0));
        let v: Vec<&Violation> = files[1]
            .report
            .violations
            .iter()
            .filter(|v| v.rule == RuleId::R13)
            .collect();
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("via fabric::f::Ex::submit -> store::fetch"));
    }

    #[test]
    fn r13_allow_r5_exempts_the_site() {
        let mut files = set(&[
            (
                "fabric",
                "crates/fabric/src/f.rs",
                "struct Ex;\nimpl Ex { fn deliver(&self) { store::fetch(k); } }\n",
            ),
            (
                "store",
                "crates/store/src/lib.rs",
                "pub fn fetch(k: u64) {\n// hetlint: allow(r5) — index verified two lines up\nx.unwrap();\n}\n",
            ),
        ]);
        let out = run(&mut files, "");
        assert_eq!(out.reachable_panics, (0, 0));
        for f in &files {
            assert!(f.report.violations.iter().all(|v| v.rule != RuleId::R13));
        }
    }
}
