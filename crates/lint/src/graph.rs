//! The workspace call graph: nodes, name resolution, reachability.
//!
//! Every function item the parser recovered becomes a node; every call
//! expression becomes zero or more edges, resolved by *suffix matching*
//! against per-crate module paths. The resolution is deliberately
//! over-approximate:
//!
//! - a path call `store::put(..)` links to every function whose
//!   qualified name ends in `store::put`;
//! - a bare call `helper()` prefers same-file candidates, then
//!   same-crate, then falls back to every `helper` in the workspace
//!   (the file may have `use`-imported any of them);
//! - a method call `.submit(..)` links to every impl method named
//!   `submit` anywhere — except a stoplist of names so ubiquitous on
//!   std types (`clone`, `len`, `push`, …) that linking them would
//!   drown the graph in noise;
//! - an `.await` point links to every `poll` method in the workspace:
//!   suspending hands control to the executor, which may resume any
//!   future, so taint must survive the hop.
//!
//! Over-approximation errs toward *reporting* — a reachability rule
//! built on this graph can produce false paths but not miss real ones
//! through resolvable names. The escape hatch is a reasoned
//! `allow(..)`, never resolution cleverness.
//!
//! Reachability is a plain BFS with parent pointers, so it tolerates
//! call cycles and can reconstruct a *witness path* — the concrete
//! entry-to-sink chain printed in every interprocedural violation.

use crate::parser::{Callee, FnItem};
use crate::{FileKind, LintedFile};

/// Method names too common on std types to resolve workspace-wide.
/// A call through one of these still taints the *caller* via its other
/// calls; it just does not fan out to every same-named impl method.
const METHOD_STOPLIST: &[&str] = &[
    "new", "default", "clone", "fmt", "len", "is_empty", "push", "pop", "insert", "remove",
    "get", "get_mut", "contains", "contains_key", "iter", "iter_mut", "into_iter", "next",
    "take", "clear", "extend", "drain", "sort", "sort_by", "sort_unstable", "sort_by_key",
    "cmp", "partial_cmp", "eq", "ne", "hash", "from", "into", "drop", "as_ref", "as_mut",
    "as_str", "as_slice", "borrow", "borrow_mut", "to_string", "to_owned", "to_vec", "min",
    "max", "clamp", "abs", "sqrt", "map", "and_then", "unwrap_or", "unwrap_or_else",
    "unwrap_or_default", "ok_or", "ok_or_else", "filter", "collect", "clone_from", "write",
    "read", "find", "position", "any", "all", "count", "sum", "rev", "zip", "enumerate",
    "chain", "flat_map", "fold", "retain", "split_off", "starts_with", "ends_with", "trim",
    "parse", "join", "wait", "notify_one", "notify_all",
];

/// One function node in the workspace call graph.
#[derive(Clone, Debug)]
pub struct Node {
    /// Index of the owning file in the linted set.
    pub file: usize,
    /// Index of the item within that file's parse.
    pub item: usize,
    /// Fully qualified name (`sim::channel::Sender::send`).
    pub qname: String,
    /// Owning crate.
    pub crate_name: String,
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
}

/// The workspace call graph.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// Function nodes, in file-then-source order.
    pub nodes: Vec<Node>,
    /// Forward adjacency: `edges[n]` is sorted and deduplicated.
    /// Includes the await → poll over-approximation edges.
    pub edges: Vec<Vec<usize>>,
    /// Per-call resolution: `call_targets[n]` holds
    /// `(call index within the item, target node)` pairs, so rules that
    /// care about *where* in a body a call happens (lock spans) can map
    /// a call site back to its resolved targets.
    pub call_targets: Vec<Vec<(usize, usize)>>,
}

impl CallGraph {
    /// The node's parsed item, looked back up from the linted set.
    pub fn item<'a>(&self, files: &'a [LintedFile], n: usize) -> &'a FnItem {
        &files[self.nodes[n].file].items.fns[self.nodes[n].item]
    }

    /// Indices of all nodes satisfying a predicate.
    pub fn select(&self, mut pred: impl FnMut(&Node) -> bool) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&n| pred(&self.nodes[n])).collect()
    }

    /// BFS from `entries`; cycle-tolerant (each node is visited once).
    pub fn reach(&self, entries: &[usize]) -> Reach {
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut visited = vec![false; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for &e in entries {
            if !visited[e] {
                visited[e] = true;
                queue.push_back(e);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.edges[n] {
                if !visited[m] {
                    visited[m] = true;
                    parent[m] = Some(n);
                    queue.push_back(m);
                }
            }
        }
        Reach { parent, visited }
    }
}

/// The result of a reachability sweep: which nodes are reachable and
/// through whom (BFS tree parent pointers).
#[derive(Debug)]
pub struct Reach {
    parent: Vec<Option<usize>>,
    visited: Vec<bool>,
}

impl Reach {
    /// True when node `n` is reachable from the entry set.
    pub fn reachable(&self, n: usize) -> bool {
        self.visited[n]
    }

    /// The witness path entry → … → `n`, as node indices. Empty when
    /// `n` is unreachable.
    pub fn witness(&self, n: usize) -> Vec<usize> {
        if !self.visited[n] {
            return Vec::new();
        }
        let mut path = vec![n];
        let mut cur = n;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }
}

/// Renders a witness path as `a::b -> c::d -> e::f`.
pub fn witness_string(graph: &CallGraph, path: &[usize]) -> String {
    let names: Vec<&str> = path.iter().map(|&n| graph.nodes[n].qname.as_str()).collect();
    names.join(" -> ")
}

/// Builds the workspace call graph from the parsed files.
pub fn build(files: &[LintedFile]) -> CallGraph {
    let mut graph = CallGraph::default();
    for (fi, f) in files.iter().enumerate() {
        // Only library sources shape the graph: test and bench files may
        // print, panic, and spawn freely, and must neither become
        // entry points nor soak up method-call resolution.
        if f.ctx.kind != FileKind::LibSrc {
            continue;
        }
        for (ii, item) in f.items.fns.iter().enumerate() {
            graph.nodes.push(Node {
                file: fi,
                item: ii,
                qname: item.qname.clone(),
                crate_name: f.ctx.crate_name.clone(),
                path: f.ctx.rel_path.clone(),
                line: item.line,
            });
        }
    }
    // Name index: bare fn name → node indices.
    let mut by_name: std::collections::BTreeMap<&str, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (n, node) in graph.nodes.iter().enumerate() {
        let item = &files[node.file].items.fns[node.item];
        by_name.entry(item.name.as_str()).or_default().push(n);
    }
    // Poll methods, for the await → executor → poll over-approximation.
    let polls: Vec<usize> = graph.select(|node| {
        let item = &files[node.file].items.fns[node.item];
        item.name == "poll" && item.impl_type.is_some()
    });

    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); graph.nodes.len()];
    let mut call_targets: Vec<Vec<(usize, usize)>> = vec![Vec::new(); graph.nodes.len()];
    for (n, node) in graph.nodes.iter().enumerate() {
        let item = &files[node.file].items.fns[node.item];
        for (ci, call) in item.calls.iter().enumerate() {
            let mut targets: Vec<usize> = Vec::new();
            match &call.callee {
                Callee::Path(segs) => {
                    resolve_path(&graph, &by_name, node, item, segs, &mut targets);
                }
                Callee::Method(name) => {
                    if METHOD_STOPLIST.contains(&name.as_str()) {
                        continue;
                    }
                    for &m in by_name.get(name.as_str()).map_or(&[][..], Vec::as_slice) {
                        let target = &files[graph.nodes[m].file].items.fns[graph.nodes[m].item];
                        if target.impl_type.is_some() {
                            targets.push(m);
                        }
                    }
                }
                Callee::Macro(_) => {}
            }
            for &m in &targets {
                edges[n].push(m);
                call_targets[n].push((ci, m));
            }
        }
        if item.has_await {
            edges[n].extend_from_slice(&polls);
        }
    }
    for row in &mut edges {
        row.sort_unstable();
        row.dedup();
    }
    graph.edges = edges;
    graph.call_targets = call_targets;
    graph
}

/// Resolves one path call by suffix matching, pushing every candidate.
fn resolve_path(
    graph: &CallGraph,
    by_name: &std::collections::BTreeMap<&str, Vec<usize>>,
    caller: &Node,
    caller_item: &FnItem,
    segs: &[String],
    out: &mut Vec<usize>,
) {
    // Normalize: drop leading `crate`/`self`/`super`, substitute `Self`.
    let mut parts: Vec<&str> = segs
        .iter()
        .map(String::as_str)
        .skip_while(|s| matches!(*s, "crate" | "self" | "super" | "std"))
        .collect();
    if parts.first() == Some(&"Self") {
        match &caller_item.impl_type {
            Some(ty) => parts[0] = ty.as_str(),
            None => return,
        }
    }
    let Some(&name) = parts.last() else { return };
    let Some(candidates) = by_name.get(name) else { return };
    if parts.len() >= 2 {
        // Qualified: every function whose qualified path ends with the
        // written suffix (`store::put` matches `store::redis::Store::put`
        // only if the trailing segments line up — here they do not, and
        // `RedisStore::put` written as `RedisStore::put(..)` does).
        for &m in candidates {
            let q: Vec<&str> = graph.nodes[m].qname.split("::").collect();
            if q.len() >= parts.len() && q[q.len() - parts.len()..] == parts[..] {
                out.push(m);
            }
        }
        return;
    }
    // Bare call: nearest scope wins — same file, then same crate, then
    // anywhere (the call may name a `use`-imported item).
    let same_file: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&m| graph.nodes[m].file == caller.file)
        .collect();
    if !same_file.is_empty() {
        out.extend_from_slice(&same_file);
        return;
    }
    let same_crate: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&m| graph.nodes[m].crate_name == caller.crate_name)
        .collect();
    if !same_crate.is_empty() {
        out.extend_from_slice(&same_crate);
        return;
    }
    out.extend_from_slice(candidates);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_file, FileContext, FileKind};

    fn set(files: &[(&str, &str, &str)]) -> Vec<LintedFile> {
        files
            .iter()
            .map(|(krate, rel, src)| {
                lint_file(&FileContext::new(krate, FileKind::LibSrc, rel), src)
            })
            .collect()
    }

    fn node(graph: &CallGraph, qname: &str) -> usize {
        graph
            .nodes
            .iter()
            .position(|n| n.qname == qname)
            .unwrap_or_else(|| panic!("no node {qname}"))
    }

    #[test]
    fn bare_call_prefers_same_file_then_crate() {
        let files = set(&[
            ("a", "crates/a/src/x.rs", "fn top() { helper(); }\nfn helper() {}\n"),
            ("a", "crates/a/src/y.rs", "fn helper() {}\n"),
            ("b", "crates/b/src/z.rs", "fn helper() {}\n"),
        ]);
        let g = build(&files);
        let top = node(&g, "a::x::top");
        assert_eq!(g.edges[top], vec![node(&g, "a::x::helper")]);
    }

    #[test]
    fn qualified_call_suffix_matches_across_crates() {
        let files = set(&[
            ("a", "crates/a/src/x.rs", "fn top() { store::put(1); }\n"),
            ("store", "crates/store/src/lib.rs", "pub fn put(v: u32) {}\n"),
        ]);
        let g = build(&files);
        let top = node(&g, "a::x::top");
        assert_eq!(g.edges[top], vec![node(&g, "store::put")]);
    }

    #[test]
    fn method_call_resolves_to_impl_methods_not_stoplist() {
        let files = set(&[
            ("a", "crates/a/src/x.rs", "fn top() { h.submit(t); v.push(1); }\n"),
            (
                "fabric",
                "crates/fabric/src/f.rs",
                "struct Ex;\nimpl Ex { fn submit(&self) {} fn push(&self) {} }\n",
            ),
        ]);
        let g = build(&files);
        let top = node(&g, "a::x::top");
        assert_eq!(g.edges[top], vec![node(&g, "fabric::f::Ex::submit")]);
    }

    #[test]
    fn await_links_to_poll_methods() {
        let files = set(&[
            ("a", "crates/a/src/x.rs", "async fn top() { fut.await; }\n"),
            (
                "sim",
                "crates/sim/src/ch.rs",
                "struct F;\nimpl Future for F { fn poll(&mut self) {} }\n",
            ),
        ]);
        let g = build(&files);
        let top = node(&g, "a::x::top");
        assert_eq!(g.edges[top], vec![node(&g, "sim::ch::F::poll")]);
    }

    #[test]
    fn reach_is_cycle_tolerant_with_witness() {
        let files = set(&[(
            "a",
            "crates/a/src/x.rs",
            "fn a() { b(); }\nfn b() { c(); a(); }\nfn c() { b(); }\n",
        )]);
        let g = build(&files);
        let (a, b, c) = (node(&g, "a::x::a"), node(&g, "a::x::b"), node(&g, "a::x::c"));
        let r = g.reach(&[a]);
        assert!(r.reachable(c));
        assert_eq!(r.witness(c), vec![a, b, c]);
        assert_eq!(witness_string(&g, &r.witness(c)), "a::x::a -> a::x::b -> a::x::c");
    }

    #[test]
    fn self_calls_resolve_via_impl_type() {
        let files = set(&[(
            "a",
            "crates/a/src/x.rs",
            "struct S;\nimpl S { fn top(&self) { Self::helper(); } fn helper() {} }\n",
        )]);
        let g = build(&files);
        let top = node(&g, "a::x::S::top");
        assert_eq!(g.edges[top], vec![node(&g, "a::x::S::helper")]);
    }
}
