//! Source preparation: lexing, suppression parsing, and the test-module
//! boundary.
//!
//! Rules must never fire on text inside comments or string literals —
//! "no false positives on comments or strings" is part of hetlint's
//! contract — so every rule operates on the token stream produced by
//! [`crate::lexer`]. Comment text is kept per line because that is
//! where `hetlint: allow(..)` suppressions live.

use crate::lexer::{self, Lexed, Tok, TokKind};

/// A parsed `hetlint: allow(<rule>) — <reason>` annotation.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// Normalized rule key, e.g. `"r3"`.
    pub rule: String,
    /// The free-text justification after the rule (may be empty, which
    /// is itself a violation).
    pub reason: String,
    /// 1-based line the annotation appears on.
    pub line: usize,
}

/// The suppression table of one file, decoupled from the token stream
/// so the cross-file phases — and the incremental analysis cache — can
/// resolve `allow(..)` coverage without retaining (or re-lexing) the
/// source. Holds the annotations plus the two per-line facts the
/// coverage walk needs: whether a line carries code, and whether it
/// carries comment text.
#[derive(Clone, Debug, Default)]
pub struct SupprIndex {
    /// All suppressions found in comments, in line order.
    pub suppressions: Vec<Suppression>,
    /// True for 1-based line `i + 1` when it holds any code token.
    pub code: Vec<bool>,
    /// True for 1-based line `i + 1` when it holds comment text.
    pub commented: Vec<bool>,
}

impl SupprIndex {
    /// Builds the index from a lexed file.
    pub fn from_lex(lex: &Lexed) -> SupprIndex {
        let mut suppressions = Vec::new();
        for (idx, comment) in lex.comments.iter().enumerate() {
            if !comment.is_empty() {
                collect_suppressions(comment, idx + 1, &mut suppressions);
            }
        }
        SupprIndex {
            suppressions,
            code: lex.has_code.clone(),
            commented: lex.comments.iter().map(|c| !c.is_empty()).collect(),
        }
    }

    fn code_on(&self, line: usize) -> bool {
        line.checked_sub(1).and_then(|i| self.code.get(i)).copied().unwrap_or(false)
    }

    fn comment_on(&self, line: usize) -> bool {
        line.checked_sub(1).and_then(|i| self.commented.get(i)).copied().unwrap_or(false)
    }
}

/// A whole file after preparation.
#[derive(Debug, Default)]
pub struct Prepared {
    /// The lexed token stream plus per-line comment/code maps.
    pub lex: Lexed,
    /// The suppression table (annotations plus line maps).
    pub suppr: SupprIndex,
    /// 1-based line of the file's first `#[cfg(test)]` attribute;
    /// `usize::MAX` when the file has no test module. Lines at or past
    /// the boundary are exempt from R5/R7/R8 accounting (the workspace
    /// convention is a single trailing test module per file).
    pub test_boundary: usize,
}

/// Lexes `source` and extracts suppression annotations and the test
/// boundary.
pub fn prepare(source: &str) -> Prepared {
    let lex = lexer::lex(source);
    let suppr = SupprIndex::from_lex(&lex);
    let test_boundary = find_test_boundary(&lex.tokens);
    Prepared { lex, suppr, test_boundary }
}

/// Finds the line of the first `#[cfg(test)]` attribute in the stream.
fn find_test_boundary(toks: &[Tok]) -> usize {
    let id = |i: usize, s: &str| {
        toks.get(i).is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
    };
    let p = |i: usize, s: &str| {
        toks.get(i).is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
    };
    let mut i = 0;
    while i + 6 < toks.len() {
        if p(i, "#")
            && p(i + 1, "[")
            && id(i + 2, "cfg")
            && p(i + 3, "(")
            && id(i + 4, "test")
            && p(i + 5, ")")
            && p(i + 6, "]")
        {
            return toks[i].line;
        }
        i += 1;
    }
    usize::MAX
}

/// Parses every `hetlint: allow(<rule>)[ — reason]` in a comment.
///
/// Mentions inside inline code spans — an odd number of backticks
/// before the marker, as in a doc comment quoting the syntax — are
/// documentation, not annotations, and are skipped.
fn collect_suppressions(comment: &str, line: usize, out: &mut Vec<Suppression>) {
    let mut search = 0usize;
    while let Some(pos) = comment[search..].find("hetlint:") {
        let at = search + pos;
        search = at + "hetlint:".len();
        if comment[..at].matches('`').count() % 2 == 1 {
            continue;
        }
        let rest = &comment[at + "hetlint:".len()..];
        let trimmed = rest.trim_start();
        let Some(after_allow) = trimmed.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = after_allow.find(')') else {
            continue;
        };
        let rule = normalize_rule(&after_allow[..close]);
        let tail = after_allow[close + 1..]
            .trim_start_matches([' ', '\t', '—', '-', '–', ':'])
            .trim();
        out.push(Suppression { rule, reason: tail.to_string(), line });
    }
}

/// Maps rule aliases to canonical keys (`r1`..`r9`).
pub fn normalize_rule(raw: &str) -> String {
    let key = raw.trim().to_ascii_lowercase();
    match key.as_str() {
        "wall-clock" | "virtual-time" => "r1".into(),
        "entropy" | "seeded-rng" => "r2".into(),
        "hash-iteration" | "hash-order" => "r3".into(),
        "thread-spawn" | "threads" => "r4".into(),
        "unwrap" | "unwrap-budget" => "r5".into(),
        "float-ord" | "total-order" => "r6".into(),
        "stream-collision" | "seed-streams" => "r7".into(),
        "trace-registry" | "trace-kinds" => "r8".into(),
        "stale-allow" => "r9".into(),
        "sim-purity" | "purity-taint" => "r10".into(),
        "lock-discipline" | "locks" => "r11".into(),
        "rng-provenance" | "rng-escape" => "r12".into(),
        "panic-reach" | "reachable-panics" => "r13".into(),
        "nondet-taint" | "taint" => "r14".into(),
        "discarded-effects" | "dropped-result" => "r15".into(),
        "lock-across-await" | "guard-span" => "r16".into(),
        _ => key,
    }
}

/// True when `line_no` (1-based) is covered by a suppression for `rule`:
/// either an annotation on the line itself or one on an immediately
/// preceding comment-only line.
pub fn is_suppressed(suppr: &SupprIndex, rule: &str, line_no: usize) -> bool {
    find_suppression(suppr, rule, line_no).is_some()
}

/// As [`is_suppressed`], returning the matching annotation.
pub fn find_suppression<'p>(
    suppr: &'p SupprIndex,
    rule: &str,
    line_no: usize,
) -> Option<&'p Suppression> {
    let hit = |l: usize| {
        suppr
            .suppressions
            .iter()
            .find(|s| s.line == l && s.rule == rule)
    };
    if let Some(s) = hit(line_no) {
        return Some(s);
    }
    // Walk up through contiguous comment-only lines; a blank line or a
    // code line ends the attached block.
    let mut l = line_no;
    while l > 1 {
        l -= 1;
        if suppr.code_on(l) {
            break;
        }
        if let Some(s) = hit(l) {
            return Some(s);
        }
        if !suppr.comment_on(l) {
            break;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_suppression_with_reason() {
        let p = prepare("map.iter(); // hetlint: allow(r3) — sorted below\n");
        assert_eq!(p.suppr.suppressions.len(), 1);
        assert_eq!(p.suppr.suppressions[0].rule, "r3");
        assert_eq!(p.suppr.suppressions[0].reason, "sorted below");
        assert!(is_suppressed(&p.suppr, "r3", 1));
        assert!(!is_suppressed(&p.suppr, "r1", 1));
    }

    #[test]
    fn suppression_on_preceding_comment_line() {
        let src = "// hetlint: allow(r4) — bounded by scope\nthread::spawn(f);\n";
        let p = prepare(src);
        assert!(is_suppressed(&p.suppr, "r4", 2));
    }

    #[test]
    fn suppression_does_not_leak_past_code() {
        let src = "// hetlint: allow(r4) — first only\nthread::spawn(f);\nthread::spawn(g);\n";
        let p = prepare(src);
        assert!(is_suppressed(&p.suppr, "r4", 2));
        assert!(!is_suppressed(&p.suppr, "r4", 3));
    }

    #[test]
    fn blank_line_ends_the_attached_comment_block() {
        let src = "// hetlint: allow(r4) — detached\n\nthread::spawn(f);\n";
        let p = prepare(src);
        assert!(!is_suppressed(&p.suppr, "r4", 3));
    }

    #[test]
    fn suppression_inside_string_does_not_suppress() {
        let src = "let s = \"// hetlint: allow(r1) — nope\";\n";
        let p = prepare(src);
        assert!(p.suppr.suppressions.is_empty());
    }

    #[test]
    fn backticked_mention_is_documentation_not_annotation() {
        let src = "// see `hetlint: allow(r5)` for the syntax\nx.unwrap();\n";
        let p = prepare(src);
        assert!(p.suppr.suppressions.is_empty());
        // But a genuine annotation after an even number of ticks parses.
        let src2 = "// `ratchet` note — hetlint: allow(r5) — invariant abort\nx.unwrap();\n";
        let p2 = prepare(src2);
        assert_eq!(p2.suppr.suppressions.len(), 1);
    }

    #[test]
    fn rule_aliases_normalize() {
        assert_eq!(normalize_rule("Hash-Iteration"), "r3");
        assert_eq!(normalize_rule("R5"), "r5");
        assert_eq!(normalize_rule("entropy"), "r2");
        assert_eq!(normalize_rule("stream-collision"), "r7");
        assert_eq!(normalize_rule("trace-registry"), "r8");
        assert_eq!(normalize_rule("stale-allow"), "r9");
    }

    #[test]
    fn test_boundary_found_and_respected() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {}\n";
        let p = prepare(src);
        assert_eq!(p.test_boundary, 2);
        let p2 = prepare("fn f() {}\n");
        assert_eq!(p2.test_boundary, usize::MAX);
    }

    #[test]
    fn cfg_test_inside_string_is_not_a_boundary() {
        let src = "let s = \"#[cfg(test)]\";\nfn f() {}\n";
        let p = prepare(src);
        assert_eq!(p.test_boundary, usize::MAX);
    }
}
