//! Source preparation: comment/string stripping and suppression parsing.
//!
//! Rules must never fire on text inside comments or string literals —
//! "no false positives on comments or strings" is part of hetlint's
//! contract — so every rule operates on a *stripped* view of each line,
//! produced here by a small character-level state machine. Comment text
//! is kept separately because that is where `hetlint: allow(..)`
//! suppressions live.

/// One source line, split into lintable code and comment text.
#[derive(Clone, Debug, Default)]
pub struct PreparedLine {
    /// The line with comments removed and string/char literal contents
    /// blanked (quotes retained, so token adjacency is preserved).
    pub code: String,
    /// Concatenated comment text appearing on the line.
    pub comment: String,
}

/// A parsed `hetlint: allow(<rule>) — <reason>` annotation.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// Normalized rule key, e.g. `"r3"`.
    pub rule: String,
    /// The free-text justification after the rule (may be empty, which
    /// is itself a violation).
    pub reason: String,
    /// 1-based line the annotation appears on.
    pub line: usize,
}

/// A whole file after preparation.
#[derive(Debug, Default)]
pub struct Prepared {
    /// Lines in order (index 0 is line 1).
    pub lines: Vec<PreparedLine>,
    /// All suppressions found in comments.
    pub suppressions: Vec<Suppression>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u8),
    Char,
}

/// Strips `source` into per-line code + comment views and extracts
/// suppression annotations.
pub fn prepare(source: &str) -> Prepared {
    let mut out = Prepared::default();
    let mut state = State::Code;
    let mut cur = PreparedLine::default();
    let chars: Vec<char> = source.chars().collect();
    let n = chars.len();
    let mut i = 0;

    macro_rules! flush_line {
        () => {{
            let done = std::mem::take(&mut cur);
            out.lines.push(done);
        }};
    }

    while i < n {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                match (c, next) {
                    ('/', Some('/')) => {
                        state = State::LineComment;
                        i += 2;
                    }
                    ('/', Some('*')) => {
                        state = State::BlockComment(1);
                        i += 2;
                    }
                    ('"', _) => {
                        cur.code.push('"');
                        state = State::Str;
                        i += 1;
                    }
                    ('r', Some('"')) | ('r', Some('#')) if !prev_is_ident(&cur.code) => {
                        // Raw string r"..." or r#"..."# (count the #s).
                        let mut hashes = 0u8;
                        let mut j = i + 1;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            cur.code.push('"');
                            state = State::RawStr(hashes);
                            i = j + 1;
                        } else {
                            cur.code.push(c);
                            i += 1;
                        }
                    }
                    ('\'', _) => {
                        // Char literal vs lifetime: a literal closes with
                        // a quote after one (possibly escaped) character.
                        if next == Some('\\') {
                            cur.code.push_str("''");
                            state = State::Char;
                            i += 2; // skip the backslash
                        } else if chars.get(i + 2) == Some(&'\'') {
                            cur.code.push_str("''");
                            i += 3;
                        } else {
                            // A lifetime like 'a — plain code.
                            cur.code.push('\'');
                            i += 1;
                        }
                    }
                    _ => {
                        cur.code.push(c);
                        i += 1;
                    }
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                match (c, next) {
                    ('*', Some('/')) => {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment(depth - 1)
                        };
                        i += 2;
                    }
                    ('/', Some('*')) => {
                        state = State::BlockComment(depth + 1);
                        i += 2;
                    }
                    _ => {
                        cur.comment.push(c);
                        i += 1;
                    }
                }
            }
            State::Str => {
                let next = chars.get(i + 1).copied();
                match (c, next) {
                    ('\\', Some(_)) => i += 2,
                    ('"', _) => {
                        cur.code.push('"');
                        state = State::Code;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        cur.code.push('"');
                        state = State::Code;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                i += 1;
            }
            State::Char => {
                if c == '\'' {
                    state = State::Code;
                }
                i += 1;
            }
        }
    }
    flush_line!();

    for (idx, line) in out.lines.iter().enumerate() {
        collect_suppressions(&line.comment, idx + 1, &mut out.suppressions);
    }
    out
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Parses every `hetlint: allow(<rule>)[ — reason]` in a comment.
fn collect_suppressions(comment: &str, line: usize, out: &mut Vec<Suppression>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("hetlint:") {
        rest = &rest[pos + "hetlint:".len()..];
        let trimmed = rest.trim_start();
        let Some(after_allow) = trimmed.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = after_allow.find(')') else {
            continue;
        };
        let rule = normalize_rule(&after_allow[..close]);
        let tail = after_allow[close + 1..]
            .trim_start_matches([' ', '\t', '—', '-', '–', ':'])
            .trim();
        out.push(Suppression { rule, reason: tail.to_string(), line });
        rest = &after_allow[close + 1..];
    }
}

/// Maps rule aliases to canonical keys (`r1`..`r6`).
pub fn normalize_rule(raw: &str) -> String {
    let key = raw.trim().to_ascii_lowercase();
    match key.as_str() {
        "wall-clock" | "virtual-time" => "r1".into(),
        "entropy" | "seeded-rng" => "r2".into(),
        "hash-iteration" | "hash-order" => "r3".into(),
        "thread-spawn" | "threads" => "r4".into(),
        "unwrap" | "unwrap-budget" => "r5".into(),
        "float-ord" | "total-order" => "r6".into(),
        _ => key,
    }
}

/// True when `line_no` (1-based) is covered by a suppression for `rule`:
/// either an annotation on the line itself or one on an immediately
/// preceding comment-only line.
pub fn is_suppressed(prepared: &Prepared, rule: &str, line_no: usize) -> bool {
    find_suppression(prepared, rule, line_no).is_some()
}

/// As [`is_suppressed`], returning the matching annotation.
pub fn find_suppression<'p>(
    prepared: &'p Prepared,
    rule: &str,
    line_no: usize,
) -> Option<&'p Suppression> {
    let hit = |l: usize| {
        prepared
            .suppressions
            .iter()
            .find(|s| s.line == l && s.rule == rule)
    };
    if let Some(s) = hit(line_no) {
        return Some(s);
    }
    // Walk up through contiguous comment-only lines.
    let mut l = line_no;
    while l > 1 {
        l -= 1;
        let idx = l - 1;
        let line = &prepared.lines[idx];
        if !line.code.trim().is_empty() {
            break;
        }
        if let Some(s) = hit(l) {
            return Some(s);
        }
        if line.comment.is_empty() && line.code.trim().is_empty() {
            // Blank line ends the attached comment block.
            break;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_comments() {
        let p = prepare("let x = 1; // HashMap.iter() in a comment\n");
        assert_eq!(p.lines[0].code.trim_end(), "let x = 1;");
        assert!(p.lines[0].comment.contains("HashMap.iter()"));
    }

    #[test]
    fn strips_block_comments_across_lines() {
        let p = prepare("a /* one\ntwo */ b\n");
        assert_eq!(p.lines[0].code, "a ");
        assert_eq!(p.lines[1].code, " b");
        assert!(p.lines[0].comment.contains("one"));
    }

    #[test]
    fn nested_block_comments() {
        let p = prepare("x /* a /* b */ c */ y\n");
        assert_eq!(p.lines[0].code, "x  y");
    }

    #[test]
    fn strips_string_contents() {
        let p = prepare("let s = \"Instant::now() inside\"; call();\n");
        assert_eq!(p.lines[0].code, "let s = \"\"; call();");
    }

    #[test]
    fn handles_escaped_quotes() {
        let p = prepare("let s = \"a\\\"b\"; next()\n");
        assert_eq!(p.lines[0].code, "let s = \"\"; next()");
    }

    #[test]
    fn raw_strings() {
        let p = prepare("let s = r#\"thread::spawn\"#; f()\n");
        assert_eq!(p.lines[0].code, "let s = \"\"; f()");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let p = prepare("fn f<'a>(c: char) { if c == 'x' || c == '\\'' {} }\n");
        assert!(p.lines[0].code.contains("fn f<'a>"));
        assert!(!p.lines[0].code.contains('x'));
    }

    #[test]
    fn parses_suppression_with_reason() {
        let p = prepare("map.iter(); // hetlint: allow(r3) — sorted below\n");
        assert_eq!(p.suppressions.len(), 1);
        assert_eq!(p.suppressions[0].rule, "r3");
        assert_eq!(p.suppressions[0].reason, "sorted below");
        assert!(is_suppressed(&p, "r3", 1));
        assert!(!is_suppressed(&p, "r1", 1));
    }

    #[test]
    fn suppression_on_preceding_comment_line() {
        let src = "// hetlint: allow(r4) — bounded by scope\nthread::spawn(f);\n";
        let p = prepare(src);
        assert!(is_suppressed(&p, "r4", 2));
    }

    #[test]
    fn suppression_does_not_leak_past_code() {
        let src = "// hetlint: allow(r4) — first only\nthread::spawn(f);\nthread::spawn(g);\n";
        let p = prepare(src);
        assert!(is_suppressed(&p, "r4", 2));
        assert!(!is_suppressed(&p, "r4", 3));
    }

    #[test]
    fn rule_aliases_normalize() {
        assert_eq!(normalize_rule("Hash-Iteration"), "r3");
        assert_eq!(normalize_rule("R5"), "r5");
        assert_eq!(normalize_rule("entropy"), "r2");
    }
}
