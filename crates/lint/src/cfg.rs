//! Per-function control-flow graphs over the token stream.
//!
//! The item parser gives hetlint *which* functions exist and what they
//! call; this layer gives it *order*: basic blocks of statements joined
//! by branch, loop, match, and early-return edges. The dataflow rules
//! (R14–R16) run fixed points over these graphs, so every statement
//! carries the facts gen/kill needs — bindings defined, identifiers
//! used, call expressions with their arguments, lock acquisitions and
//! guard drops, `.await` points, potentially-blocking calls, and `?`
//! early exits.
//!
//! Like the item parser, this is deliberately not a full Rust parser.
//! Statement-level `if`/`else`, `while`/`for`/`loop`, and `match` get
//! real branch structure; *expression*-level control flow
//! (`let x = if c { a } else { b };`, closures, `let … else`) is
//! flattened into the enclosing statement — its defs and uses merge,
//! which only ever over-approximates taint. Nested `fn` items are
//! skipped (they parse as their own items); closure bodies belong to
//! the statement that contains them.

use crate::lexer::{Tok, TokKind};

/// How a call inside a statement names its target (mirrors
/// [`crate::parser::Callee`] but stays token-free).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(..)` / `a::b::foo(..)`.
    Path,
    /// `recv.foo(..)`.
    Method,
    /// `name!(..)`.
    Macro,
}

/// One call expression inside a statement, with the argument material
/// the taint engine reads.
#[derive(Clone, Debug)]
pub struct StmtCall {
    /// Final name: last path segment, method name, or macro name.
    pub name: String,
    /// Full path segments for [`CallKind::Path`] (`["SystemTime",
    /// "now"]`); empty otherwise.
    pub segs: Vec<String>,
    /// Receiver identifier chain for [`CallKind::Method`] (`self.queue`,
    /// `tracer`); empty otherwise.
    pub recv: String,
    /// Identifier arguments anywhere inside the parentheses
    /// (best-effort, flattened across nesting).
    pub args: Vec<String>,
    /// String-literal arguments (format strings, stream names).
    pub strs: Vec<String>,
    /// What syntactic form the call took.
    pub kind: CallKind,
    /// 1-based line of the call name.
    pub line: usize,
}

/// A lock acquisition inside a statement.
#[derive(Clone, Debug)]
pub struct StmtLock {
    /// Identifier chain of the locked object (`self.state`).
    pub target: String,
    /// The guard's binding when the statement is `let g = ….lock()…`;
    /// `None` for temporaries that die at the statement's end.
    pub guard: Option<String>,
    /// 1-based line.
    pub line: usize,
}

/// One statement with the facts the dataflow engine consumes.
#[derive(Clone, Debug, Default)]
pub struct Stmt {
    /// 1-based line of the statement's first token.
    pub line: usize,
    /// Bindings this statement introduces (`let` patterns, simple
    /// assignment targets). Pattern idents are collected
    /// over-approximately; `_` never appears here.
    pub defs: Vec<String>,
    /// Identifiers the statement reads (filtered: no call names, path
    /// prefixes, field names, or keywords).
    pub uses: Vec<String>,
    /// Call expressions, in source order.
    pub calls: Vec<StmtCall>,
    /// True for `let _ = …` — a value deliberately discarded.
    pub is_discard: bool,
    /// True when the statement contains an `.await` point.
    pub has_await: bool,
    /// True when the statement contains a `?` operator (adds an edge
    /// from the enclosing block to the exit block).
    pub has_try: bool,
    /// True for `return …` statements and block tail expressions.
    pub is_return: bool,
    /// Lock acquisitions in the statement.
    pub locks: Vec<StmtLock>,
    /// Guards released by `drop(<name>)` in the statement.
    pub drops: Vec<String>,
    /// Potentially thread-blocking operations (`wait`, `recv`, `join`,
    /// `scope`) not immediately `.await`ed.
    pub blocking: Vec<String>,
}

/// A basic block: straight-line statements plus successor edges.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
    /// Successor block indices.
    pub succs: Vec<usize>,
}

/// A function body's control-flow graph. Always has an entry and a
/// distinct exit block; every `return`, tail expression, and `?` edge
/// targets the exit.
#[derive(Clone, Debug, Default)]
pub struct Cfg {
    /// Blocks; indices are stable identifiers.
    pub blocks: Vec<Block>,
    /// Index of the entry block.
    pub entry: usize,
    /// Index of the exit block (always empty of statements).
    pub exit: usize,
}

impl Cfg {
    /// Blocks in reverse postorder from the entry — the iteration order
    /// under which a forward fixed point converges fastest.
    pub fn rpo(&self) -> Vec<usize> {
        let mut seen = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        // Iterative DFS with an explicit phase marker (the graphs can
        // be deep for long match ladders).
        let mut stack: Vec<(usize, usize)> = vec![(self.entry, 0)];
        seen[self.entry] = true;
        while let Some((node, child)) = stack.pop() {
            if child < self.blocks[node].succs.len() {
                stack.push((node, child + 1));
                let next = self.blocks[node].succs[child];
                if !seen[next] {
                    seen[next] = true;
                    stack.push((next, 0));
                }
            } else {
                post.push(node);
            }
        }
        post.reverse();
        post
    }

    /// Predecessor lists (derived; the builder only records succs).
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, block) in self.blocks.iter().enumerate() {
            for &s in &block.succs {
                preds[s].push(b);
            }
        }
        preds
    }
}

/// Keywords that can head a statement without being calls or uses.
const KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "if", "else", "match", "return", "in", "as", "move", "fn", "for",
    "while", "loop", "true", "false", "break", "continue", "await", "async", "unsafe", "const",
    "static", "struct", "enum", "impl", "dyn", "where", "pub", "crate", "super", "use", "mod",
    "box", "type", "trait", "_",
];

/// Blocking method names (shared contract with the item parser).
const BLOCKING_METHODS: &[&str] = &["wait", "wait_timeout", "recv", "recv_timeout", "join"];

/// Builds the CFG for a function body spanning `toks[lo..hi]` (the
/// tokens strictly between the body braces).
pub fn build(toks: &[Tok], lo: usize, hi: usize) -> Cfg {
    let mut b = Builder {
        t: C(toks),
        cfg: Cfg::default(),
        loops: Vec::new(),
    };
    b.cfg.blocks.push(Block::default()); // entry
    b.cfg.blocks.push(Block::default()); // exit
    b.cfg.entry = 0;
    b.cfg.exit = 1;
    let end = b.seq(lo, hi, 0);
    b.edge(end, 1);
    b.cfg
}

/// Thin token cursor (same shape as the parser's).
#[derive(Clone, Copy)]
struct C<'a>(&'a [Tok]);

impl<'a> C<'a> {
    fn kind(self, i: usize) -> Option<TokKind> {
        self.0.get(i).map(|t| t.kind)
    }
    fn text(self, i: usize) -> &'a str {
        match self.0.get(i) {
            Some(t) => t.text.as_str(),
            None => "",
        }
    }
    fn line(self, i: usize) -> usize {
        self.0.get(i).map(|t| t.line).unwrap_or(0)
    }
    fn id(self, i: usize, s: &str) -> bool {
        self.0.get(i).is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
    }
    fn is_id(self, i: usize) -> bool {
        self.kind(i) == Some(TokKind::Ident)
    }
    fn p(self, i: usize, s: &str) -> bool {
        self.0.get(i).is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
    }
}

struct Builder<'a> {
    t: C<'a>,
    cfg: Cfg,
    /// Innermost-last `(continue target, break target)` stack.
    loops: Vec<(usize, usize)>,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self) -> usize {
        self.cfg.blocks.push(Block::default());
        self.cfg.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.cfg.blocks[from].succs.contains(&to) {
            self.cfg.blocks[from].succs.push(to);
        }
    }

    fn push_stmt(&mut self, block: usize, stmt: Stmt) {
        if stmt.has_try {
            let exit = self.cfg.exit;
            self.edge(block, exit);
        }
        self.cfg.blocks[block].stmts.push(stmt);
    }

    /// Index of the `}` matching the `{` at `open` (or `hi`).
    fn matching_brace(&self, open: usize, hi: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < hi {
            if self.t.p(i, "{") {
                depth += 1;
            } else if self.t.p(i, "}") {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        hi
    }

    /// First index in `[lo, hi)` where `pred` holds at bracket depth 0
    /// (counting `()`, `[]`, `{}`).
    fn find_depth0(&self, lo: usize, hi: usize, pred: impl Fn(&Self, usize) -> bool) -> Option<usize> {
        let mut depth = 0i32;
        let mut i = lo;
        while i < hi {
            // Test before depth adjustment, so a search *for* an opening
            // bracket can match it.
            if depth == 0 && pred(self, i) {
                return Some(i);
            }
            if self.t.p(i, "(") || self.t.p(i, "[") || self.t.p(i, "{") {
                depth += 1;
            } else if self.t.p(i, ")") || self.t.p(i, "]") || self.t.p(i, "}") {
                depth -= 1;
            }
            i += 1;
        }
        None
    }

    /// End of a flat statement starting at `lo`: the `;` at depth 0, or
    /// `hi` for a tail expression.
    fn stmt_end(&self, lo: usize, hi: usize) -> usize {
        self.find_depth0(lo, hi, |b, i| b.t.p(i, ";")).unwrap_or(hi)
    }

    /// Parses the statement sequence in `[lo, hi)` starting in block
    /// `cur`; returns the block control falls out of.
    fn seq(&mut self, lo: usize, hi: usize, mut cur: usize) -> usize {
        let mut i = lo;
        while i < hi {
            if self.t.p(i, ";") {
                i += 1;
                continue;
            }
            // Nested `fn` items parse as their own items; skip the
            // whole header + body here.
            if self.t.id(i, "fn") && self.t.is_id(i + 1) {
                let semi = self.find_depth0(i, hi, |b, k| b.t.p(k, ";"));
                let open = self.find_depth0(i, hi, |b, k| b.t.p(k, "{"));
                match (open, semi) {
                    (Some(o), Some(s)) if s < o => i = s + 1,
                    (Some(o), _) => i = self.matching_brace(o, hi) + 1,
                    (None, Some(s)) => i = s + 1,
                    (None, None) => i = hi,
                }
                continue;
            }
            if self.t.id(i, "if") {
                let (ni, join) = self.parse_if(i, hi, cur);
                i = ni;
                cur = join;
                continue;
            }
            if self.t.id(i, "while") || self.t.id(i, "for") {
                let Some(open) = self.find_depth0(i + 1, hi, |b, k| b.t.p(k, "{")) else {
                    i += 1;
                    continue;
                };
                let close = self.matching_brace(open, hi);
                let head = self.new_block();
                self.edge(cur, head);
                let cond = self.head_stmt(i, open);
                self.push_stmt(head, cond);
                let body = self.new_block();
                let after = self.new_block();
                self.edge(head, body);
                self.edge(head, after);
                self.loops.push((head, after));
                let body_end = self.seq(open + 1, close, body);
                self.loops.pop();
                self.edge(body_end, head);
                cur = after;
                i = close + 1;
                continue;
            }
            if self.t.id(i, "loop") {
                let Some(open) = self.find_depth0(i + 1, hi, |b, k| b.t.p(k, "{")) else {
                    i += 1;
                    continue;
                };
                let close = self.matching_brace(open, hi);
                let head = self.new_block();
                self.edge(cur, head);
                let after = self.new_block();
                // A bare `loop` only exits through `break` (or `?` /
                // `return` inside), so no head → after edge.
                self.loops.push((head, after));
                let body_end = self.seq(open + 1, close, head);
                self.loops.pop();
                self.edge(body_end, head);
                cur = after;
                i = close + 1;
                continue;
            }
            if self.t.id(i, "match") {
                let (ni, join) = self.parse_match(i, hi, cur);
                i = ni;
                cur = join;
                continue;
            }
            if self.t.id(i, "return") {
                let end = self.stmt_end(i, hi);
                let mut stmt = self.facts(i + 1, end);
                stmt.line = self.t.line(i);
                stmt.is_return = true;
                self.push_stmt(cur, stmt);
                let exit = self.cfg.exit;
                self.edge(cur, exit);
                cur = self.new_block();
                i = end + 1;
                continue;
            }
            if self.t.id(i, "break") || self.t.id(i, "continue") {
                let is_break = self.t.id(i, "break");
                let end = self.stmt_end(i, hi);
                if let Some(&(head, after)) = self.loops.last() {
                    self.edge(cur, if is_break { after } else { head });
                }
                cur = self.new_block();
                i = end + 1;
                continue;
            }
            if self.t.id(i, "unsafe") && self.t.p(i + 1, "{") {
                i += 1;
                continue;
            }
            if self.t.p(i, "{") {
                let close = self.matching_brace(i, hi);
                cur = self.seq(i + 1, close, cur);
                i = close + 1;
                continue;
            }
            // Flat statement (possibly a tail expression).
            let end = self.stmt_end(i, hi);
            let mut stmt = self.facts(i, end);
            if end >= hi {
                stmt.is_return = true;
            }
            self.push_stmt(cur, stmt);
            i = end + 1;
        }
        cur
    }

    /// Parses `if cond { … } [else if … | else { … }]` starting at the
    /// `if`; returns `(next index, join block)`.
    fn parse_if(&mut self, i: usize, hi: usize, cur: usize) -> (usize, usize) {
        let Some(open) = self.find_depth0(i + 1, hi, |b, k| b.t.p(k, "{")) else {
            return (i + 1, cur);
        };
        let close = self.matching_brace(open, hi);
        let cond = self.head_stmt(i, open);
        self.push_stmt(cur, cond);
        let then_b = self.new_block();
        self.edge(cur, then_b);
        let then_end = self.seq(open + 1, close, then_b);
        if self.t.id(close + 1, "else") {
            if self.t.id(close + 2, "if") {
                let else_b = self.new_block();
                self.edge(cur, else_b);
                let (ni, inner_join) = self.parse_if(close + 2, hi, else_b);
                let join = self.new_block();
                self.edge(then_end, join);
                self.edge(inner_join, join);
                return (ni, join);
            }
            if self.t.p(close + 2, "{") {
                let eclose = self.matching_brace(close + 2, hi);
                let else_b = self.new_block();
                self.edge(cur, else_b);
                let else_end = self.seq(close + 3, eclose, else_b);
                let join = self.new_block();
                self.edge(then_end, join);
                self.edge(else_end, join);
                return (eclose + 1, join);
            }
        }
        let join = self.new_block();
        self.edge(then_end, join);
        self.edge(cur, join);
        (close + 1, join)
    }

    /// Parses `match expr { arms }`; returns `(next index, join block)`.
    fn parse_match(&mut self, i: usize, hi: usize, cur: usize) -> (usize, usize) {
        let Some(open) = self.find_depth0(i + 1, hi, |b, k| b.t.p(k, "{")) else {
            return (i + 1, cur);
        };
        let close = self.matching_brace(open, hi);
        let scrut = self.head_stmt(i, open);
        self.push_stmt(cur, scrut);
        let join = self.new_block();
        let mut any_arm = false;
        let mut j = open + 1;
        while j < close {
            if self.t.p(j, ",") {
                j += 1;
                continue;
            }
            // Pattern (with optional guard) up to `=>`.
            let Some(arrow) = self.find_depth0(j, close, |b, k| b.t.p(k, "=") && b.t.p(k + 1, ">"))
            else {
                break;
            };
            let arm_b = self.new_block();
            self.edge(cur, arm_b);
            any_arm = true;
            // Pattern bindings become defs of a synthetic head stmt;
            // a guard's identifiers become its uses.
            let mut head = Stmt { line: self.t.line(j), ..Stmt::default() };
            collect_pattern_defs(self.t, j, arrow, &mut head.defs);
            if let Some(g) = (j..arrow).find(|&k| self.t.id(k, "if")) {
                collect_uses(self.t, g + 1, arrow, &mut head.uses);
            }
            self.push_stmt(arm_b, head);
            let body_start = arrow + 2;
            let arm_end = if self.t.p(body_start, "{") {
                let bclose = self.matching_brace(body_start, close);
                let end = self.seq(body_start + 1, bclose, arm_b);
                j = bclose + 1;
                end
            } else {
                let bend = self
                    .find_depth0(body_start, close, |b, k| b.t.p(k, ","))
                    .unwrap_or(close);
                let mut stmt = self.facts(body_start, bend);
                stmt.line = self.t.line(body_start);
                self.push_stmt(arm_b, stmt);
                j = bend + 1;
                arm_b
            };
            self.edge(arm_end, join);
        }
        if !any_arm {
            self.edge(cur, join);
        }
        (close + 1, join)
    }

    /// The condition/scrutinee statement of an `if`/`while`/`for`/
    /// `match` head spanning `[kw, open)`.
    fn head_stmt(&self, kw: usize, open: usize) -> Stmt {
        let t = self.t;
        let mut stmt;
        if t.id(kw, "for") {
            // `for pat in expr` — pattern defs, expression uses.
            let in_at = (kw + 1..open).find(|&k| t.id(k, "in")).unwrap_or(open);
            stmt = self.facts(in_at + 1, open);
            collect_pattern_defs(t, kw + 1, in_at, &mut stmt.defs);
        } else if t.id(kw + 1, "let") {
            // `if let pat = expr` / `while let pat = expr`.
            let eq = (kw + 2..open)
                .find(|&k| t.p(k, "=") && !t.p(k + 1, "="))
                .unwrap_or(open);
            stmt = self.facts(eq + 1, open);
            collect_pattern_defs(t, kw + 2, eq, &mut stmt.defs);
        } else {
            stmt = self.facts(kw + 1, open);
        }
        stmt.line = t.line(kw);
        stmt
    }

    /// Extracts statement facts from the flat token span `[lo, hi)`.
    fn facts(&self, lo: usize, hi: usize) -> Stmt {
        let t = self.t;
        let mut stmt = Stmt { line: t.line(lo), ..Stmt::default() };
        let mut uses_from = lo;

        if t.id(lo, "let") {
            // Pattern up to the `=` at depth 0 (generic angle brackets
            // are not bracket tokens, so `let x: Vec<u8> = …` finds the
            // right `=`).
            let eq = self
                .find_depth0(lo + 1, hi, |b, k| b.t.p(k, "=") && !b.t.p(k + 1, "="))
                .unwrap_or(hi);
            // Type annotations end the binding region at depth 0.
            let colon = self
                .find_depth0(lo + 1, eq, |b, k| b.t.p(k, ":"))
                .unwrap_or(eq);
            stmt.is_discard = t.id(lo + 1, "_") && (t.p(lo + 2, "=") || t.p(lo + 2, ":"));
            collect_pattern_defs(t, lo + 1, colon, &mut stmt.defs);
            uses_from = eq + 1;
        } else if t.is_id(lo) && !KEYWORDS.contains(&t.text(lo)) {
            // Simple assignment / compound assignment to a local.
            let target = t.text(lo).to_string();
            if t.p(lo + 1, "=") && !t.p(lo + 2, "=") {
                stmt.defs.push(target);
                uses_from = lo + 2;
            } else if matches!(t.text(lo + 1), "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^")
                && t.kind(lo + 1) == Some(TokKind::Punct)
                && t.p(lo + 2, "=")
            {
                // Compound assignment both reads and writes the target.
                stmt.defs.push(target.clone());
                stmt.uses.push(target);
                uses_from = lo + 3;
            }
        }

        collect_uses(t, uses_from, hi, &mut stmt.uses);
        self.collect_calls(lo, hi, &mut stmt);

        let mut k = lo;
        while k + 1 < hi {
            if t.p(k, ".") && t.id(k + 1, "await") {
                stmt.has_await = true;
            }
            k += 1;
        }
        stmt.has_try = (lo..hi).any(|k| t.p(k, "?"));
        stmt
    }

    /// Collects call expressions (with lock/blocking/drop facts) from
    /// the span into `stmt`.
    fn collect_calls(&self, lo: usize, hi: usize, stmt: &mut Stmt) {
        let t = self.t;
        let mut i = lo;
        while i < hi {
            // Method call `.name(`.
            if t.p(i, ".") && t.is_id(i + 1) && t.p(i + 2, "(") {
                let name = t.text(i + 1).to_string();
                let line = t.line(i + 1);
                let recv = receiver_chain(t, i);
                let (args, strs) = call_args(t, i + 2, hi);
                if name == "lock" {
                    stmt.locks.push(StmtLock {
                        target: recv.clone(),
                        guard: match (&stmt.defs.first(), stmt.is_discard) {
                            (Some(g), false) => Some((*g).clone()),
                            _ => None,
                        },
                        line,
                    });
                }
                if BLOCKING_METHODS.contains(&name.as_str()) && !awaited_after(t, i + 2, hi) {
                    stmt.blocking.push(name.clone());
                }
                stmt.calls.push(StmtCall {
                    name,
                    segs: Vec::new(),
                    recv,
                    args,
                    strs,
                    kind: CallKind::Method,
                    line,
                });
                i += 3;
                continue;
            }
            // Macro `name!(` / `name![` / `name!{`.
            if t.is_id(i)
                && t.p(i + 1, "!")
                && (t.p(i + 2, "(") || t.p(i + 2, "[") || t.p(i + 2, "{"))
            {
                let name = t.text(i).to_string();
                let (args, strs) = call_args(t, i + 2, hi);
                stmt.calls.push(StmtCall {
                    name,
                    segs: Vec::new(),
                    recv: String::new(),
                    args,
                    strs,
                    kind: CallKind::Macro,
                    line: t.line(i),
                });
                i += 3;
                continue;
            }
            // Path call `a::b::c(` at the final segment.
            if t.is_id(i) && t.p(i + 1, "(") && !t.p(i.wrapping_sub(1), ".") {
                let name = t.text(i);
                if KEYWORDS.contains(&name) {
                    i += 1;
                    continue;
                }
                let mut segs = vec![name.to_string()];
                let mut k = i;
                while k >= 2 && t.p(k - 1, "::") && t.is_id(k - 2) {
                    segs.insert(0, t.text(k - 2).to_string());
                    k -= 2;
                }
                let (args, strs) = call_args(t, i + 1, hi);
                if segs.len() == 1 && name == "drop" && args.len() == 1 {
                    stmt.drops.push(args[0].clone());
                }
                if name == "scope" && segs.iter().any(|s| s == "thread") {
                    stmt.blocking.push("scope".to_string());
                }
                stmt.calls.push(StmtCall {
                    name: name.to_string(),
                    segs,
                    recv: String::new(),
                    args,
                    strs,
                    kind: CallKind::Path,
                    line: t.line(i),
                });
                i += 2;
                continue;
            }
            i += 1;
        }
    }
}

/// Identifier and string-literal arguments inside the bracket pair
/// opening at `open` (bounded by `hi`).
fn call_args(t: C<'_>, open: usize, hi: usize) -> (Vec<String>, Vec<String>) {
    let close_of = |o: &str| match o {
        "(" => ")",
        "[" => "]",
        _ => "}",
    };
    let open_text = t.text(open).to_string();
    let close_text = close_of(&open_text);
    let mut depth = 0i32;
    let mut args = Vec::new();
    let mut strs = Vec::new();
    let mut i = open;
    while i < hi {
        if t.p(i, "(") || t.p(i, "[") || t.p(i, "{") {
            depth += 1;
        } else if t.p(i, ")") || t.p(i, "]") || t.p(i, "}") {
            depth -= 1;
            if depth == 0 && t.text(i) == close_text {
                break;
            }
        } else if depth >= 1 {
            if t.kind(i) == Some(TokKind::Str) {
                strs.push(t.text(i).to_string());
            } else if t.is_id(i) && use_like(t, i) {
                let name = t.text(i).to_string();
                if !args.contains(&name) {
                    args.push(name);
                }
            }
        }
        i += 1;
    }
    (args, strs)
}

/// True when the call whose argument list opens at `open` is
/// immediately `.await`ed.
fn awaited_after(t: C<'_>, open: usize, hi: usize) -> bool {
    let mut depth = 0i32;
    let mut j = open;
    while j < hi {
        if t.p(j, "(") {
            depth += 1;
        } else if t.p(j, ")") {
            depth -= 1;
            if depth == 0 {
                return t.p(j + 1, ".") && t.id(j + 2, "await");
            }
        }
        j += 1;
    }
    false
}

/// The `a.b.c` identifier chain ending just before the dot at `dot`.
fn receiver_chain(t: C<'_>, dot: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut k = dot;
    while k >= 1 {
        if t.is_id(k - 1) {
            parts.insert(0, t.text(k - 1).to_string());
            if k >= 3 && (t.p(k - 2, ".") || t.p(k - 2, "::")) {
                k -= 2;
                continue;
            }
        }
        break;
    }
    parts.join(".")
}

/// True when the identifier at `i` reads a value (not a call name, path
/// prefix, macro name, field name, or struct-field key).
fn use_like(t: C<'_>, i: usize) -> bool {
    let text = t.text(i);
    if KEYWORDS.contains(&text) {
        return false;
    }
    // Locals are snake_case; uppercase-initial idents are types, enum
    // variants, or deterministic consts — never taint carriers.
    if text.chars().next().is_some_and(|c| c.is_uppercase()) {
        return false;
    }
    if t.p(i + 1, "!") || t.p(i + 1, "::") || t.p(i + 1, "(") {
        return false;
    }
    // `key:` in struct literals and type ascriptions (but `::` is a
    // single token, so paths are unaffected).
    if t.p(i + 1, ":") {
        return false;
    }
    // Field or method name after a dot — the chain head is the use.
    if i >= 1 && t.p(i - 1, ".") {
        return false;
    }
    true
}

/// Collects reads from an expression span.
fn collect_uses(t: C<'_>, lo: usize, hi: usize, out: &mut Vec<String>) {
    for i in lo..hi {
        if t.is_id(i) && use_like(t, i) {
            let name = t.text(i).to_string();
            if !out.contains(&name) {
                out.push(name);
            }
        }
    }
}

/// Collects binding names from a pattern span: lowercase-initial
/// identifiers that are not keywords, path prefixes, or struct-pattern
/// field keys (`Foo { a: x }` binds `x`, not `a` — but collecting both
/// only over-approximates, so the filter stays simple).
fn collect_pattern_defs(t: C<'_>, lo: usize, hi: usize, out: &mut Vec<String>) {
    for i in lo..hi {
        if !t.is_id(i) {
            continue;
        }
        let text = t.text(i);
        if KEYWORDS.contains(&text) || text == "_" {
            continue;
        }
        if text.chars().next().is_some_and(|c| c.is_uppercase()) {
            continue;
        }
        if t.p(i + 1, "::") || t.p(i + 1, "!") {
            continue;
        }
        // A guard begins at `if`; everything after it reads, not binds.
        if (lo..i).any(|k| t.id(k, "if")) {
            break;
        }
        let name = text.to_string();
        if !out.contains(&name) {
            out.push(name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    /// Builds the CFG of `fn f() { <body> }` for a body snippet.
    fn cfg_of(body: &str) -> Cfg {
        let src = format!("fn f() {{ {body} }}\n");
        let lex = lexer::lex(&src);
        let toks = &lex.tokens;
        let open = toks.iter().position(|t| t.text == "{").expect("open");
        let close = toks.len() - 1; // last token is the closing brace
        build(toks, open + 1, close)
    }

    /// All statements in RPO order, flattened.
    fn stmts(cfg: &Cfg) -> Vec<Stmt> {
        cfg.rpo()
            .into_iter()
            .flat_map(|b| cfg.blocks[b].stmts.clone())
            .collect()
    }

    #[test]
    fn straight_line_single_block() {
        let cfg = cfg_of("let x = source(); consume(x);");
        // entry(+stmts) and exit.
        assert_eq!(cfg.blocks[cfg.entry].stmts.len(), 2);
        assert_eq!(cfg.blocks[cfg.entry].succs, vec![cfg.exit]);
        let s = &cfg.blocks[cfg.entry].stmts[0];
        assert_eq!(s.defs, vec!["x"]);
        assert!(s.calls.iter().any(|c| c.name == "source"));
        let s2 = &cfg.blocks[cfg.entry].stmts[1];
        assert_eq!(s2.uses, vec!["x"]);
    }

    #[test]
    fn if_else_branches_join() {
        let cfg = cfg_of("let a = one(); if cond { f(a); } else { g(a); } after();");
        // entry → then, entry → else; both → join.
        let entry = &cfg.blocks[cfg.entry];
        assert_eq!(entry.succs.len(), 2, "two branch successors: {cfg:?}");
        let join_candidates: Vec<usize> = entry
            .succs
            .iter()
            .map(|&b| cfg.blocks[b].succs[0])
            .collect();
        assert_eq!(join_candidates[0], join_candidates[1], "branches meet at one join");
        let join = join_candidates[0];
        assert_eq!(cfg.blocks[join].stmts.len(), 1, "after() lives in the join block");
        assert_eq!(cfg.blocks[join].succs, vec![cfg.exit]);
    }

    #[test]
    fn if_without_else_skips_to_join() {
        let cfg = cfg_of("if cond { f(); } after();");
        let entry = &cfg.blocks[cfg.entry];
        assert_eq!(entry.succs.len(), 2);
        // One successor is the then-block, the other the join itself.
        let then_b = *entry
            .succs
            .iter()
            .find(|&&b| !cfg.blocks[b].stmts.is_empty() || cfg.blocks[b].succs != vec![cfg.exit])
            .unwrap();
        assert!(entry.succs.iter().any(|&b| cfg.blocks[then_b].succs.contains(&b)));
    }

    #[test]
    fn while_loop_has_back_edge() {
        let cfg = cfg_of("while running { step(); } done();");
        // Find the head: a block whose stmt uses `running`.
        let head = (0..cfg.blocks.len())
            .find(|&b| cfg.blocks[b].stmts.iter().any(|s| s.uses.contains(&"running".into())))
            .expect("loop head exists");
        assert_eq!(cfg.blocks[head].succs.len(), 2, "body + after");
        let body = cfg.blocks[head].succs[0];
        assert!(cfg.blocks[body].succs.contains(&head), "back edge to head");
    }

    #[test]
    fn loop_with_break_reaches_after() {
        let cfg = cfg_of("loop { step(); if done { break; } } tail();");
        let tail_block = (0..cfg.blocks.len())
            .find(|&b| {
                cfg.blocks[b]
                    .stmts
                    .iter()
                    .any(|s| s.calls.iter().any(|c| c.name == "tail"))
            })
            .expect("tail block");
        // The after-block is reachable from the entry.
        let rpo = cfg.rpo();
        assert!(rpo.contains(&tail_block), "break edge makes tail reachable");
    }

    #[test]
    fn match_fans_out_and_rejoins() {
        let cfg = cfg_of("match e { A(x) => f(x), B => { g(); } _ => h(), } after();");
        let entry = &cfg.blocks[cfg.entry];
        assert_eq!(entry.succs.len(), 3, "one successor per arm: {cfg:?}");
        let joins: Vec<usize> = entry
            .succs
            .iter()
            .map(|&arm| *cfg.blocks[arm].succs.last().unwrap())
            .collect();
        assert!(joins.windows(2).all(|w| w[0] == w[1]), "all arms meet: {joins:?}");
        // Arm pattern binds x.
        let arm_defs: Vec<Vec<String>> = entry
            .succs
            .iter()
            .map(|&arm| cfg.blocks[arm].stmts[0].defs.clone())
            .collect();
        assert!(arm_defs.iter().any(|d| d.contains(&"x".to_string())));
    }

    #[test]
    fn question_mark_adds_exit_edge() {
        let cfg = cfg_of("let v = fallible()?; use_it(v);");
        assert!(
            cfg.blocks[cfg.entry].succs.contains(&cfg.exit),
            "`?` adds an early edge to exit: {cfg:?}"
        );
        assert!(cfg.blocks[cfg.entry].stmts[0].has_try);
    }

    #[test]
    fn early_return_edges_to_exit_and_splits() {
        let cfg = cfg_of("if bad { return fail(); } good();");
        let ret_block = (0..cfg.blocks.len())
            .find(|&b| cfg.blocks[b].stmts.iter().any(|s| s.is_return))
            .expect("return stmt recorded");
        assert!(cfg.blocks[ret_block].succs.contains(&cfg.exit));
    }

    #[test]
    fn nested_closure_flattens_into_statement() {
        let cfg = cfg_of("let r = master.substream(1); pool.spawn(move || train(r));");
        let entry = &cfg.blocks[cfg.entry];
        assert_eq!(entry.stmts.len(), 2, "closure body is part of the spawn stmt");
        assert!(entry.stmts[1].uses.contains(&"r".to_string()));
        assert!(entry.stmts[1].calls.iter().any(|c| c.name == "spawn"));
        assert!(entry.stmts[1].calls.iter().any(|c| c.name == "train"));
    }

    #[test]
    fn nested_fn_items_are_skipped() {
        let cfg = cfg_of("fn helper() { inner_only(); } outer();");
        let all = stmts(&cfg);
        assert!(all.iter().all(|s| s.calls.iter().all(|c| c.name != "inner_only")));
        assert!(all.iter().any(|s| s.calls.iter().any(|c| c.name == "outer")));
    }

    #[test]
    fn discard_and_lock_facts() {
        let cfg = cfg_of("let _ = tx.send_now(m); let g = self.state.lock(); drop(g);");
        let entry = &cfg.blocks[cfg.entry];
        assert!(entry.stmts[0].is_discard);
        assert!(entry.stmts[0].calls.iter().any(|c| c.name == "send_now"));
        let lock = &entry.stmts[1].locks[0];
        assert_eq!(lock.target, "self.state");
        assert_eq!(lock.guard.as_deref(), Some("g"));
        assert_eq!(entry.stmts[2].drops, vec!["g"]);
    }

    #[test]
    fn await_and_blocking_facts() {
        let cfg = cfg_of("rx.recv().await; cv.wait(g); tx.send(v).await;");
        let entry = &cfg.blocks[cfg.entry];
        assert!(entry.stmts[0].has_await);
        assert!(entry.stmts[0].blocking.is_empty(), "awaited recv is a suspension");
        assert_eq!(entry.stmts[1].blocking, vec!["wait"]);
    }

    #[test]
    fn for_loop_binds_pattern_and_uses_iterable() {
        let cfg = cfg_of("for (k, v) in pairs { f(k, v); }");
        let head = (0..cfg.blocks.len())
            .find(|&b| cfg.blocks[b].stmts.iter().any(|s| s.uses.contains(&"pairs".into())))
            .expect("head");
        let s = &cfg.blocks[head].stmts[0];
        assert_eq!(s.defs, vec!["k", "v"]);
    }

    #[test]
    fn if_let_binds_pattern() {
        let cfg = cfg_of("if let Some(inner) = holder { f(inner); }");
        let entry = &cfg.blocks[cfg.entry];
        assert_eq!(entry.stmts[0].defs, vec!["inner"]);
        assert!(entry.stmts[0].uses.contains(&"holder".to_string()));
    }

    #[test]
    fn tail_expression_is_a_return() {
        let cfg = cfg_of("let x = compute(); x + offset");
        let all = stmts(&cfg);
        let tail = all.iter().find(|s| s.is_return).expect("tail marked");
        assert!(tail.uses.contains(&"x".to_string()));
    }

    #[test]
    fn rpo_visits_entry_first() {
        let cfg = cfg_of("if c { a(); } else { b(); } d();");
        let rpo = cfg.rpo();
        assert_eq!(rpo[0], cfg.entry);
        assert!(rpo.contains(&cfg.exit));
    }
}
