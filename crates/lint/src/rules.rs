//! The hetlint rule set (R1–R6).
//!
//! Every rule enforces one clause of the determinism contract
//! (DESIGN.md "Determinism rules"). Rules operate on the stripped code
//! view produced by [`crate::scan`], so comments and string literals can
//! never trigger them. Each detection is line-anchored, which is what
//! lets `// hetlint: allow(<rule>) — <reason>` annotations suppress a
//! specific occurrence.

use crate::scan::Prepared;
use crate::{FileContext, FileKind, RuleId, Violation};

/// Runs every applicable rule over one prepared file.
pub fn check_file(ctx: &FileContext, prepared: &Prepared) -> Vec<Violation> {
    let mut out = Vec::new();
    if ctx.sim_driven() {
        r1_virtual_time(ctx, prepared, &mut out);
        r3_hash_iteration(ctx, prepared, &mut out);
    }
    if !ctx.is_rng_module() {
        r2_entropy(ctx, prepared, &mut out);
    }
    if ctx.crate_name != "ml" {
        r4_thread_spawn(ctx, prepared, &mut out);
    }
    r6_float_order(ctx, prepared, &mut out);
    out
}

/// Counts `.unwrap()` / `.expect(` / `panic!(` sites in library code
/// (R5 inputs). Explicit panics count the same as unwraps: both abort a
/// campaign instead of traveling the typed failure path
/// (`TaskOutcome::Failed`), so both are rationed by the same ratchet.
///
/// Only lines before the file's `#[cfg(test)]` marker count — the
/// convention in this workspace is a single trailing test module per
/// file — and lines carrying an `allow(r5)` suppression are excluded.
pub fn count_unwraps(ctx: &FileContext, prepared: &Prepared) -> Vec<usize> {
    if ctx.kind != FileKind::LibSrc {
        return Vec::new();
    }
    let mut sites = Vec::new();
    for (idx, line) in prepared.lines.iter().enumerate() {
        let line_no = idx + 1;
        if line.code.contains("#[cfg(test)]") {
            break;
        }
        if crate::scan::is_suppressed(prepared, "r5", line_no) {
            continue;
        }
        let hits = line.code.matches(".unwrap()").count()
            + line.code.matches(".expect(").count()
            + line.code.matches("panic!(").count();
        for _ in 0..hits {
            sites.push(line_no);
        }
    }
    sites
}

fn push(
    out: &mut Vec<Violation>,
    ctx: &FileContext,
    prepared: &Prepared,
    rule: RuleId,
    line_no: usize,
    message: String,
) {
    let suppressed = crate::scan::find_suppression(prepared, rule.key(), line_no).cloned();
    out.push(Violation {
        rule,
        path: ctx.rel_path.clone(),
        line: line_no,
        message,
        suppression: suppressed,
    });
}

/// True when `code` contains `needle` as a standalone identifier (not a
/// substring of a longer identifier).
fn has_ident(code: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = !code[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = after;
    }
    false
}

/// R1 — wall-clock and real sleeps are banned in sim-driven crates:
/// virtual time (`Sim::now`, `Sim::sleep`) is the only clock.
fn r1_virtual_time(ctx: &FileContext, prepared: &Prepared, out: &mut Vec<Violation>) {
    for (idx, line) in prepared.lines.iter().enumerate() {
        let code = &line.code;
        for (needle, what) in [
            ("Instant", "std::time::Instant"),
            ("SystemTime", "std::time::SystemTime"),
        ] {
            if has_ident(code, needle) {
                push(
                    out,
                    ctx,
                    prepared,
                    RuleId::R1,
                    idx + 1,
                    format!("{what} in a sim-driven crate; use Sim::now() virtual time"),
                );
            }
        }
        if code.contains("thread::sleep") {
            push(
                out,
                ctx,
                prepared,
                RuleId::R1,
                idx + 1,
                "std::thread::sleep in a sim-driven crate; use Sim::sleep virtual time".into(),
            );
        }
    }
}

/// R2 — ambient entropy is banned everywhere outside `sim::rng`: all
/// randomness flows through named seeded streams.
fn r2_entropy(ctx: &FileContext, prepared: &Prepared, out: &mut Vec<Violation>) {
    for (idx, line) in prepared.lines.iter().enumerate() {
        let code = &line.code;
        for (needle, what) in [
            ("thread_rng", "thread_rng()"),
            ("from_entropy", "SeedableRng::from_entropy"),
            ("OsRng", "OsRng"),
        ] {
            if has_ident(code, needle) {
                push(
                    out,
                    ctx,
                    prepared,
                    RuleId::R2,
                    idx + 1,
                    format!("{what} outside sim::rng; derive a named stream via SimRng::stream"),
                );
            }
        }
    }
}

/// Iteration methods whose order reflects hash state.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

/// R3 — iterating a `HashMap`/`HashSet` leaks memory-layout order into
/// event order in sim-driven crates. Keyed lookup (`get`, `insert`,
/// `contains_key`, …) is fine; iteration must go through `BTreeMap`/
/// `BTreeSet` or explicit sorting.
fn r3_hash_iteration(ctx: &FileContext, prepared: &Prepared, out: &mut Vec<Violation>) {
    // Pass 1: names declared with a hash-container type anywhere in the
    // file: `name: …HashMap<…` field/param declarations and
    // `let name = HashMap::new()` style bindings.
    let mut hash_names: Vec<String> = Vec::new();
    for line in &prepared.lines {
        let code = &line.code;
        for marker in ["HashMap", "HashSet"] {
            let mut start = 0;
            while let Some(pos) = code[start..].find(marker) {
                let at = start + pos;
                start = at + marker.len();
                // Require a type/constructor position: `HashMap<` or
                // `HashMap::`; a bare mention (e.g. an ident suffix) is
                // skipped by the has_ident-style boundary check.
                let after = &code[at + marker.len()..];
                if !(after.starts_with('<') || after.starts_with("::")) {
                    continue;
                }
                let before_ok = at == 0
                    || !code[..at]
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_');
                if !before_ok {
                    continue;
                }
                if let Some(name) = declared_name(&code[..at]) {
                    if !hash_names.contains(&name) {
                        hash_names.push(name);
                    }
                }
            }
        }
    }

    // Pass 2: flag order-leaking use of those names. Chained calls are
    // often wrapped, so each line is matched together with its successor.
    for (idx, line) in prepared.lines.iter().enumerate() {
        let joined = match prepared.lines.get(idx + 1) {
            Some(next) => format!("{}\n{}", line.code, next.code),
            None => line.code.clone(),
        };
        for name in &hash_names {
            let Some(name_pos) = find_ident(&joined, name) else {
                continue;
            };
            // The violation anchors on the line holding the iteration
            // token; only report from the line where the name appears to
            // avoid double-counting via the previous window.
            if name_pos >= line.code.len() {
                continue;
            }
            let tail = &joined[name_pos + name.len()..];
            for method in ITER_METHODS {
                if let Some(mpos) = tail.find(method) {
                    // The method must belong to the same expression
                    // chain: only accessor/borrow hops in between.
                    if !is_chain(&tail[..mpos]) {
                        continue;
                    }
                    let line_no = idx + 1;
                    push(
                        out,
                        ctx,
                        prepared,
                        RuleId::R3,
                        line_no,
                        format!(
                            "`{name}` is a HashMap/HashSet and `{method}` leaks hash order; \
                             use BTreeMap/BTreeSet or sort explicitly"
                        ),
                    );
                    break;
                }
            }
            // `for x in &name` / `for x in name` — direct iteration.
            let trimmed = joined.trim_start();
            if trimmed.starts_with("for ") {
                if let Some(in_pos) = joined.find(" in ") {
                    let target = joined[in_pos + 4..].trim_start().trim_start_matches('&');
                    let target_ident: String = target
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if &target_ident == name && name_pos > in_pos {
                        push(
                            out,
                            ctx,
                            prepared,
                            RuleId::R3,
                            idx + 1,
                            format!(
                                "`for … in {name}` iterates a HashMap/HashSet in hash order; \
                                 use BTreeMap/BTreeSet or sort explicitly"
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Finds `needle` as a standalone identifier, returning its offset.
fn find_ident(code: &str, needle: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = !code[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        start = after;
    }
    None
}

/// True when the text between a name and a method call is only chain
/// hops: `.borrow()`, `.borrow_mut()`, `.as_ref()`, `.lock()`, `?`,
/// closing parens, or whitespace/newlines.
fn is_chain(between: &str) -> bool {
    let cleaned = between
        .replace(".borrow_mut()", "")
        .replace(".borrow()", "")
        .replace(".as_ref()", "")
        .replace(".as_mut()", "")
        .replace(".clone()", "")
        .replace(".lock()", "");
    cleaned
        .chars()
        .all(|c| c.is_whitespace() || c == ')' || c == '?' || c == '&' || c == '*')
}

/// Extracts the declared identifier from text preceding a hash type:
/// `… name: ` (field/param/binding annotation) or `let [mut] name = `.
fn declared_name(before: &str) -> Option<String> {
    let trimmed = before.trim_end();
    // `let map = HashMap::new()` / `let mut map = HashMap::new()`.
    if let Some(eq_stripped) = trimmed.strip_suffix('=') {
        let lhs = eq_stripped.trim_end();
        let name = trailing_ident(lhs)?;
        // Only simple `let` bindings — assignments to fields keep the
        // declaration they were annotated with.
        return Some(name);
    }
    // `map: HashMap<…>` possibly through wrappers:
    // `map: RefCell<HashMap<…>>` — strip wrapper idents and `<`.
    let mut rest = trimmed;
    loop {
        rest = rest.trim_end();
        if let Some(r) = rest.strip_suffix('<') {
            // Remove the wrapper type name before the `<`.
            let r = r.trim_end();
            let cut = r
                .rfind(|c: char| !(c.is_alphanumeric() || c == '_' || c == ':'))
                .map(|p| p + 1)
                .unwrap_or(0);
            rest = &r[..cut];
            continue;
        }
        break;
    }
    let rest = rest.trim_end();
    let colon_stripped = rest.strip_suffix(':')?;
    trailing_ident(colon_stripped.trim_end())
}

/// The identifier ending `text`, if any.
fn trailing_ident(text: &str) -> Option<String> {
    let name: String = text
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(name)
    }
}

/// R4 — OS threads are banned outside `ml`: detached threads observe
/// real scheduling order. `ml`'s scoped, member-seeded fan-out is the
/// one sanctioned escape hatch.
fn r4_thread_spawn(ctx: &FileContext, prepared: &Prepared, out: &mut Vec<Violation>) {
    for (idx, line) in prepared.lines.iter().enumerate() {
        if line.code.contains("thread::spawn") || line.code.contains("thread::Builder") {
            push(
                out,
                ctx,
                prepared,
                RuleId::R4,
                idx + 1,
                "OS thread spawn outside ml; use Sim::spawn (virtual concurrency) or move the \
                 parallelism into ml with member-derived seeds"
                    .into(),
            );
        }
    }
}

/// R6 — ad-hoc float comparisons in ordering positions are banned:
/// `.partial_cmp(..)` calls (typically `.partial_cmp(b).unwrap()`) must
/// become `f64::total_cmp` or a total-order wrapper type that delegates
/// `partial_cmp` to `Ord::cmp` (the `sim::executor::TimerKey` pattern).
fn r6_float_order(ctx: &FileContext, prepared: &Prepared, out: &mut Vec<Violation>) {
    for (idx, line) in prepared.lines.iter().enumerate() {
        let code = &line.code;
        let mut start = 0;
        while let Some(pos) = code[start..].find("partial_cmp") {
            let at = start + pos;
            start = at + "partial_cmp".len();
            // Definitions (`fn partial_cmp`) delegate to a total order —
            // that is the blessed pattern; only *calls* are flagged.
            let preceding = code[..at].trim_end();
            if preceding.ends_with("fn") {
                continue;
            }
            if !code[..at].ends_with('.') {
                continue;
            }
            push(
                out,
                ctx,
                prepared,
                RuleId::R6,
                idx + 1,
                "ad-hoc .partial_cmp() in an ordering position; use f64::total_cmp or a \
                 total-order wrapper delegating to Ord"
                    .into(),
            );
        }
    }
}
