//! The hetlint per-file rule set (R1–R6) plus the raw-material
//! extractors feeding the workspace-wide rules (R7, R8).
//!
//! Every rule enforces one clause of the determinism contract
//! (DESIGN.md "Determinism rules"). Rules operate on the token stream
//! produced by [`crate::lexer`], so comments and string literals can
//! never trigger them, chains wrapped across any number of lines are
//! followed exactly, and `use … as alias` renames of banned items are
//! tracked. Each detection is line-anchored — for a wrapped chain the
//! anchor is the line holding the flagged name — which is what lets
//! `hetlint: allow(<rule>) — <reason>` annotations suppress a specific
//! occurrence.

use crate::lexer::{Tok, TokKind};
use crate::scan::Prepared;
use crate::{FileContext, FileKind, RuleId, Violation};

/// Token-stream query helpers shared by every rule.
#[derive(Clone, Copy)]
struct Toks<'a>(&'a [Tok]);

impl<'a> Toks<'a> {
    fn len(self) -> usize {
        self.0.len()
    }

    fn kind(self, i: usize) -> Option<TokKind> {
        self.0.get(i).map(|t| t.kind)
    }

    fn text(self, i: usize) -> &'a str {
        match self.0.get(i) {
            Some(t) => t.text.as_str(),
            None => "",
        }
    }

    fn line(self, i: usize) -> usize {
        self.0.get(i).map(|t| t.line).unwrap_or(0)
    }

    /// Token `i` is the identifier `s`.
    fn id(self, i: usize, s: &str) -> bool {
        self.0.get(i).is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
    }

    /// Token `i` is any identifier.
    fn is_id(self, i: usize) -> bool {
        self.kind(i) == Some(TokKind::Ident)
    }

    /// Token `i` is the punctuation `s`.
    fn p(self, i: usize, s: &str) -> bool {
        self.0.get(i).is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
    }
}

/// Runs every applicable per-file rule over one prepared file.
pub fn check_file(ctx: &FileContext, prepared: &Prepared) -> Vec<Violation> {
    let mut out = Vec::new();
    if ctx.sim_driven() {
        r1_virtual_time(ctx, prepared, &mut out);
        r3_hash_iteration(ctx, prepared, &mut out);
    }
    if !ctx.is_rng_module() {
        r2_entropy(ctx, prepared, &mut out);
    }
    if ctx.crate_name != "ml" {
        r4_thread_spawn(ctx, prepared, &mut out);
    }
    r6_float_order(ctx, prepared, &mut out);
    out
}

fn push(
    out: &mut Vec<Violation>,
    ctx: &FileContext,
    prepared: &Prepared,
    rule: RuleId,
    line_no: usize,
    message: String,
) {
    let suppressed = crate::scan::find_suppression(&prepared.suppr, rule.key(), line_no).cloned();
    out.push(Violation {
        rule,
        path: ctx.rel_path.clone(),
        line: line_no,
        message,
        suppression: suppressed,
    });
}

/// Collects `use … <banned> as <alias>;` renames of banned identifiers,
/// so call sites through the alias are caught (the substring scanner
/// missed these entirely).
fn collect_aliases(t: Toks<'_>, banned: &[&str]) -> Vec<(String, String)> {
    let mut aliases = Vec::new();
    let mut i = 0;
    while i < t.len() {
        if t.id(i, "use") {
            let mut j = i + 1;
            while j < t.len() && !t.p(j, ";") {
                if t.is_id(j)
                    && banned.contains(&t.text(j))
                    && t.id(j + 1, "as")
                    && t.is_id(j + 2)
                {
                    aliases.push((t.text(j + 2).to_string(), t.text(j).to_string()));
                    j += 2;
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    aliases
}

/// R1 — wall-clock and real sleeps are banned in sim-driven crates:
/// virtual time (`Sim::now`, `Sim::sleep`) is the only clock.
fn r1_virtual_time(ctx: &FileContext, prepared: &Prepared, out: &mut Vec<Violation>) {
    const BANNED: &[&str] = &["Instant", "SystemTime"];
    let t = Toks(&prepared.lex.tokens);
    let aliases = collect_aliases(t, BANNED);
    let mut i = 0;
    while i < t.len() {
        if t.is_id(i) {
            let name = t.text(i);
            if BANNED.contains(&name) {
                let what = if name == "Instant" {
                    "std::time::Instant"
                } else {
                    "std::time::SystemTime"
                };
                push(
                    out,
                    ctx,
                    prepared,
                    RuleId::R1,
                    t.line(i),
                    format!("{what} in a sim-driven crate; use Sim::now() virtual time"),
                );
            } else if let Some((_, base)) = aliases.iter().find(|(a, _)| a == name) {
                push(
                    out,
                    ctx,
                    prepared,
                    RuleId::R1,
                    t.line(i),
                    format!(
                        "`{name}` aliases std::time::{base} in a sim-driven crate; use \
                         Sim::now() virtual time"
                    ),
                );
            } else if name == "thread" && t.p(i + 1, "::") && t.id(i + 2, "sleep") {
                push(
                    out,
                    ctx,
                    prepared,
                    RuleId::R1,
                    t.line(i),
                    "std::thread::sleep in a sim-driven crate; use Sim::sleep virtual time"
                        .into(),
                );
            }
        }
        i += 1;
    }
}

/// R2 — ambient entropy is banned everywhere outside `sim::rng`: all
/// randomness flows through named seeded streams.
fn r2_entropy(ctx: &FileContext, prepared: &Prepared, out: &mut Vec<Violation>) {
    const BANNED: &[&str] = &["thread_rng", "from_entropy", "OsRng"];
    let t = Toks(&prepared.lex.tokens);
    let aliases = collect_aliases(t, BANNED);
    let mut i = 0;
    while i < t.len() {
        if t.is_id(i) {
            let name = t.text(i);
            if BANNED.contains(&name) {
                push(
                    out,
                    ctx,
                    prepared,
                    RuleId::R2,
                    t.line(i),
                    format!("{name} outside sim::rng; derive a named stream via SimRng::stream"),
                );
            } else if let Some((_, base)) = aliases.iter().find(|(a, _)| a == name) {
                push(
                    out,
                    ctx,
                    prepared,
                    RuleId::R2,
                    t.line(i),
                    format!(
                        "`{name}` aliases {base} outside sim::rng; derive a named stream via \
                         SimRng::stream"
                    ),
                );
            }
        }
        i += 1;
    }
}

/// Iteration methods whose order reflects hash state.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Accessor/borrow hops a chain may pass through between a container
/// name and an order-leaking method.
const CHAIN_HOPS: &[&str] = &[
    "borrow",
    "borrow_mut",
    "as_ref",
    "as_mut",
    "clone",
    "lock",
    "read",
    "write",
];

/// Smart-pointer wrappers that are transparent for R3 purposes:
/// iterating through them still iterates the hash container. Outer
/// *collections* (`Vec<HashMap<…>>`) are not listed — iterating a Vec
/// of maps is deterministic — which kills a false-positive class of the
/// old scanner.
const TRANSPARENT_WRAPPERS: &[&str] =
    &["RefCell", "Cell", "Rc", "Arc", "Mutex", "RwLock", "Box"];

/// R3 — iterating a `HashMap`/`HashSet` leaks memory-layout order into
/// event order in sim-driven crates. Keyed lookup (`get`, `insert`,
/// `contains_key`, …) is fine; iteration must go through `BTreeMap`/
/// `BTreeSet` or explicit sorting.
fn r3_hash_iteration(ctx: &FileContext, prepared: &Prepared, out: &mut Vec<Violation>) {
    let t = Toks(&prepared.lex.tokens);
    let names = collect_hash_names(t);
    if names.is_empty() {
        return;
    }
    let mut i = 0;
    while i < t.len() {
        if t.is_id(i) && names.iter().any(|n| n == t.text(i)) {
            let name = t.text(i).to_string();
            // Method-chain iteration, following hops across any number
            // of lines (the old 2-line join window missed ≥3-line
            // chains and could double-report window boundaries).
            if let Some(method) = chain_reaches_iteration(t, i + 1) {
                push(
                    out,
                    ctx,
                    prepared,
                    RuleId::R3,
                    t.line(i),
                    format!(
                        "`{name}` is a HashMap/HashSet and `.{method}()` leaks hash order; \
                         use BTreeMap/BTreeSet or sort explicitly"
                    ),
                );
            } else if is_direct_for_iteration(t, i) {
                push(
                    out,
                    ctx,
                    prepared,
                    RuleId::R3,
                    t.line(i),
                    format!(
                        "`for … in {name}` iterates a HashMap/HashSet in hash order; \
                         use BTreeMap/BTreeSet or sort explicitly"
                    ),
                );
            }
        }
        i += 1;
    }
}

/// Follows a method chain starting right after a container name and
/// returns the order-leaking method it reaches, if any. Allowed hops:
/// `?`, closing parens, and the accessor calls in [`CHAIN_HOPS`].
fn chain_reaches_iteration(t: Toks<'_>, mut j: usize) -> Option<&'static str> {
    loop {
        if t.p(j, "?") || t.p(j, ")") {
            j += 1;
            continue;
        }
        if t.p(j, ".") && t.is_id(j + 1) {
            let m = t.text(j + 1);
            if let Some(hit) = ITER_METHODS.iter().find(|im| **im == m) {
                if t.p(j + 2, "(") {
                    return Some(hit);
                }
                return None;
            }
            if CHAIN_HOPS.contains(&m) && t.p(j + 2, "(") && t.p(j + 3, ")") {
                j += 4;
                continue;
            }
            return None;
        }
        return None;
    }
}

/// True when the name at `i` is the direct target of a `for … in`
/// loop: `for x in [&[mut]] name {`. Method-call targets
/// (`for k in name.keys()`) are handled by the chain check, so this
/// requires `{` right after the name — exactly one report per loop
/// (the old scanner reported `for k in map.keys()` twice).
fn is_direct_for_iteration(t: Toks<'_>, i: usize) -> bool {
    if !t.p(i + 1, "{") {
        return false;
    }
    let mut b = i;
    while b > 0 && (t.p(b - 1, "&") || t.id(b - 1, "mut")) {
        b -= 1;
    }
    if b == 0 || !t.id(b - 1, "in") {
        return false;
    }
    // A `for` keyword must open the same statement.
    let mut k = b - 1;
    let mut guard = 0;
    while k > 0 && guard < 64 {
        k -= 1;
        guard += 1;
        if t.id(k, "for") {
            return true;
        }
        if t.p(k, ";") || t.p(k, "{") || t.p(k, "}") {
            return false;
        }
    }
    false
}

/// Collects every name declared with a hash-container type: `let`
/// bindings (simple, type-ascribed, and tuple patterns, matched
/// positionally), struct fields, and function parameters, seen through
/// transparent smart-pointer wrappers and path qualification.
fn collect_hash_names(t: Toks<'_>) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let mut add = |n: &str| {
        if !n.is_empty() && !names.iter().any(|x| x == n) {
            names.push(n.to_string());
        }
    };
    let mut i = 0;
    while i < t.len() {
        let is_hash = t.id(i, "HashMap") || t.id(i, "HashSet");
        // Require a type/constructor position: `HashMap<` or `HashMap::`.
        if is_hash && (t.p(i + 1, "<") || t.p(i + 1, "::")) {
            // Walk outward over path segments (`std::collections::`),
            // transparent wrapper generics (`RefCell<`), and reference
            // sigils, to the position the declaring name would precede.
            let mut o = i;
            loop {
                if o >= 2 && t.p(o - 1, "::") && t.is_id(o - 2) {
                    o -= 2;
                    continue;
                }
                if o >= 2
                    && t.p(o - 1, "<")
                    && t.is_id(o - 2)
                    && TRANSPARENT_WRAPPERS.contains(&t.text(o - 2))
                {
                    o -= 2;
                    continue;
                }
                if o >= 1
                    && (t.p(o - 1, "&")
                        || t.id(o - 1, "mut")
                        || t.kind(o - 1) == Some(TokKind::Lifetime))
                {
                    o -= 1;
                    continue;
                }
                break;
            }
            // Field / parameter / ascription position: `name: <type>`.
            if o >= 2 && t.p(o - 1, ":") && t.is_id(o - 2) {
                add(t.text(o - 2));
            } else if let Some(name) = let_bound_name(t, i) {
                add(&name);
            }
        }
        i += 1;
    }
    names
}

/// Resolves which `let`-bound name a hash-container token at `i`
/// belongs to, handling `let m = HashMap::new()`, tuple patterns
/// matched positionally against tuple initializers or tuple type
/// ascriptions, and `mut` markers. Returns `None` when the container
/// cannot be attributed to a single binding.
fn let_bound_name(t: Toks<'_>, i: usize) -> Option<String> {
    // Find the statement's `let`, bounded by statement delimiters.
    let mut k = i;
    let mut guard = 0;
    let let_idx = loop {
        if k == 0 || guard > 128 {
            return None;
        }
        k -= 1;
        guard += 1;
        if t.id(k, "let") {
            break k;
        }
        if t.p(k, ";") || t.p(k, "}") {
            return None;
        }
    };
    let mut p0 = let_idx + 1;
    if t.id(p0, "mut") {
        p0 += 1;
    }
    // The binding `=` is the first top-level `=` after the pattern.
    let eq = find_binding_eq(t, let_idx)?;
    if t.is_id(p0) {
        // Simple binding: `let name [: T] = …` — count the container
        // only when it appears in the initializer (ascription positions
        // were already handled by the `name: <type>` case, which
        // deliberately skips non-transparent outer collections).
        if i > eq {
            return Some(t.text(p0).to_string());
        }
        return None;
    }
    if t.p(p0, "(") {
        // Tuple pattern: collect element names, then match the
        // container's position against the tuple initializer or the
        // tuple type ascription.
        let (elems, close) = tuple_pattern_elems(t, p0)?;
        if i > eq {
            if t.p(eq + 1, "(") {
                let idx = comma_index_before(t, eq + 1, i)?;
                return elems.get(idx).cloned();
            }
            return None;
        }
        if t.p(close + 1, ":") && t.p(close + 2, "(") {
            let idx = comma_index_before(t, close + 2, i)?;
            return elems.get(idx).cloned();
        }
    }
    None
}

/// Index of the first top-level `=` after a `let`, skipping over
/// bracketed groups (pattern tuples, generic arguments use `<` which
/// never nests an `=` in this grammar subset).
fn find_binding_eq(t: Toks<'_>, let_idx: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = let_idx + 1;
    let mut guard = 0;
    while j < t.len() && guard < 256 {
        if t.p(j, "(") || t.p(j, "[") || t.p(j, "{") {
            depth += 1;
        } else if t.p(j, ")") || t.p(j, "]") || t.p(j, "}") {
            depth -= 1;
            if depth < 0 {
                return None;
            }
        } else if depth == 0 && t.p(j, "=") && !t.p(j + 1, "=") {
            return Some(j);
        } else if depth == 0 && t.p(j, ";") {
            return None;
        }
        j += 1;
        guard += 1;
    }
    None
}

/// Element names of a tuple pattern opening at `open` (`(` token),
/// positionally: `(a, mut b, _)` → `["a", "b", ""]`. Returns the
/// names and the index of the closing `)`.
fn tuple_pattern_elems(t: Toks<'_>, open: usize) -> Option<(Vec<String>, usize)> {
    let mut elems: Vec<String> = Vec::new();
    let mut current = String::new();
    let mut depth = 1i32;
    let mut j = open + 1;
    while j < t.len() {
        if t.p(j, "(") {
            depth += 1;
        } else if t.p(j, ")") {
            depth -= 1;
            if depth == 0 {
                elems.push(current);
                return Some((elems, j));
            }
        } else if depth == 1 && t.p(j, ",") {
            elems.push(std::mem::take(&mut current));
        } else if depth == 1 && t.is_id(j) && !t.id(j, "mut") && !t.id(j, "ref") {
            current = t.text(j).to_string();
        }
        j += 1;
    }
    None
}

/// Which depth-1 comma-separated slot of the group opening at `open`
/// the token index `target` falls in.
fn comma_index_before(t: Toks<'_>, open: usize, target: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut idx = 0usize;
    let mut j = open;
    while j < target && j < t.len() {
        if t.p(j, "(") || t.p(j, "[") {
            depth += 1;
        } else if t.p(j, ")") || t.p(j, "]") {
            depth -= 1;
            if depth == 0 {
                return None;
            }
        } else if depth == 1 && t.p(j, ",") {
            idx += 1;
        }
        j += 1;
    }
    Some(idx)
}

/// R4 — OS threads are banned outside `ml`: detached threads observe
/// real scheduling order. `ml`'s scoped, member-seeded fan-out is the
/// one sanctioned escape hatch.
fn r4_thread_spawn(ctx: &FileContext, prepared: &Prepared, out: &mut Vec<Violation>) {
    let t = Toks(&prepared.lex.tokens);
    let mut i = 0;
    while i + 2 < t.len() {
        if t.id(i, "thread")
            && t.p(i + 1, "::")
            && (t.id(i + 2, "spawn") || t.id(i + 2, "Builder") || t.id(i + 2, "scope"))
        {
            push(
                out,
                ctx,
                prepared,
                RuleId::R4,
                t.line(i),
                "OS thread spawn outside ml; use Sim::spawn (virtual concurrency) or move the \
                 parallelism into ml with member-derived seeds"
                    .into(),
            );
        }
        i += 1;
    }
}

/// R6 — ad-hoc float comparisons in ordering positions are banned:
/// `.partial_cmp(..)` calls (typically `.partial_cmp(b).unwrap()`) must
/// become `f64::total_cmp` or a total-order wrapper type that delegates
/// `partial_cmp` to `Ord::cmp` (the `sim::executor::TimerKey` pattern).
/// Definitions (`fn partial_cmp`) have no leading `.` and are the
/// blessed delegation pattern, so only calls match.
fn r6_float_order(ctx: &FileContext, prepared: &Prepared, out: &mut Vec<Violation>) {
    let t = Toks(&prepared.lex.tokens);
    let mut i = 0;
    while i + 2 < t.len() {
        if t.p(i, ".") && t.id(i + 1, "partial_cmp") && t.p(i + 2, "(") {
            push(
                out,
                ctx,
                prepared,
                RuleId::R6,
                t.line(i + 1),
                "ad-hoc .partial_cmp() in an ordering position; use f64::total_cmp or a \
                 total-order wrapper delegating to Ord"
                    .into(),
            );
        }
        i += 1;
    }
}

/// R5 raw material: `.unwrap()` / `.expect(` / `panic!(` sites in
/// library code before the test boundary.
#[derive(Debug, Default)]
pub struct R5Sites {
    /// Lines of countable sites (one entry per site).
    pub sites: Vec<usize>,
    /// Lines of `allow(r5)` annotations that excluded a site — R9 uses
    /// this to tell live suppressions from stale ones.
    pub used_allow_lines: Vec<usize>,
}

/// Counts `.unwrap()` / `.expect(` / `panic!(` sites in library code
/// (R5 inputs). Explicit panics count the same as unwraps: both abort a
/// campaign instead of traveling the typed failure path
/// (`TaskOutcome::Failed`), so both are rationed by the same ratchet.
///
/// Only tokens before the file's `#[cfg(test)]` boundary count, and
/// sites covered by an `allow(r5)` suppression are excluded (but the
/// covering annotation is recorded as used).
pub fn count_unwraps(ctx: &FileContext, prepared: &Prepared) -> R5Sites {
    let mut out = R5Sites::default();
    if ctx.kind != FileKind::LibSrc {
        return out;
    }
    let t = Toks(&prepared.lex.tokens);
    let mut i = 0;
    while i < t.len() {
        let line = t.line(i);
        if line >= prepared.test_boundary {
            break;
        }
        let hit = (t.p(i, ".") && t.id(i + 1, "unwrap") && t.p(i + 2, "(") && t.p(i + 3, ")"))
            || (t.p(i, ".") && t.id(i + 1, "expect") && t.p(i + 2, "("))
            || (t.id(i, "panic") && t.p(i + 1, "!") && t.p(i + 2, "("));
        if hit {
            // Anchor on the method/macro name so wrapped calls attach
            // to the right line.
            let site_line = if t.p(i, ".") { t.line(i + 1) } else { line };
            match crate::scan::find_suppression(&prepared.suppr, "r5", site_line) {
                Some(s) => {
                    if !out.used_allow_lines.contains(&s.line) {
                        out.used_allow_lines.push(s.line);
                    }
                }
                None => out.sites.push(site_line),
            }
        }
        i += 1;
    }
    out
}

/// One `SimRng::stream`/`.stream("…")` call site (R7 raw material).
#[derive(Clone, Debug)]
pub struct StreamUse {
    /// The stream-name string literal.
    pub name: String,
    /// 1-based line of the call.
    pub line: usize,
}

/// Collects seed-stream derivation sites: `SimRng::stream(seed, "name")`
/// and method-style `master.stream("name")`. Only pre-test library code
/// counts — tests legitimately reuse names to probe stream equality —
/// and `sim::rng` itself (definitions, doc examples) is exempt.
pub fn stream_uses(ctx: &FileContext, prepared: &Prepared) -> Vec<StreamUse> {
    let mut out = Vec::new();
    if ctx.kind != FileKind::LibSrc || ctx.is_rng_module() {
        return out;
    }
    let t = Toks(&prepared.lex.tokens);
    let mut i = 1;
    while i < t.len() {
        if t.id(i, "stream") && t.p(i + 1, "(") && t.line(i) < prepared.test_boundary {
            let qualified = t.p(i - 1, ".")
                || (t.p(i - 1, "::") && i >= 2 && t.id(i - 2, "SimRng"));
            if qualified {
                if let Some(name) = first_str_arg(&prepared.lex.tokens, i + 2) {
                    out.push(StreamUse { name, line: t.line(i) });
                }
            }
        }
        i += 1;
    }
    out
}

/// First string literal at argument depth 1 starting from the token
/// just inside a call's opening paren.
fn first_str_arg(toks: &[Tok], mut j: usize) -> Option<String> {
    let t = Toks(toks);
    let mut depth = 1i32;
    while j < toks.len() && depth > 0 {
        if t.p(j, "(") || t.p(j, "[") || t.p(j, "{") {
            depth += 1;
        } else if t.p(j, ")") || t.p(j, "]") || t.p(j, "}") {
            depth -= 1;
        } else if depth == 1 && t.kind(j) == Some(TokKind::Str) {
            return Some(t.text(j).to_string());
        }
        j += 1;
    }
    None
}

/// How an emit site names its event kind (R8 raw material).
#[derive(Clone, Debug)]
pub enum EmitKindRef {
    /// `kinds::SOME_CONST` — the blessed form.
    Const(String),
    /// An ad-hoc string literal.
    Literal(String),
}

/// One `.emit(…)` call site with a resolvable kind argument.
#[derive(Clone, Debug)]
pub struct EmitSite {
    /// How the kind argument was written.
    pub kind: EmitKindRef,
    /// 1-based line of the call.
    pub line: usize,
}

/// Collects `.emit(t, actor, <kind>, …)` call sites in pre-test library
/// code and resolves the kind argument (the third) when it is either a
/// `kinds::CONST` path or a string literal.
pub fn emit_sites(ctx: &FileContext, prepared: &Prepared) -> Vec<EmitSite> {
    let mut out = Vec::new();
    if ctx.kind != FileKind::LibSrc {
        return out;
    }
    let t = Toks(&prepared.lex.tokens);
    let mut i = 0;
    while i + 2 < t.len() {
        if t.p(i, ".")
            && t.id(i + 1, "emit")
            && t.p(i + 2, "(")
            && t.line(i + 1) < prepared.test_boundary
        {
            if let Some(kind) = third_arg_kind(&prepared.lex.tokens, i + 3) {
                out.push(EmitSite { kind, line: t.line(i + 1) });
            }
        }
        i += 1;
    }
    out
}

/// Resolves the third argument of a call whose body starts at `j`
/// (just inside the `(`), when it is `kinds::CONST` or a string
/// literal.
fn third_arg_kind(toks: &[Tok], mut j: usize) -> Option<EmitKindRef> {
    let t = Toks(toks);
    let mut depth = 1i32;
    let mut arg = 0usize;
    let mut arg_tokens: Vec<usize> = Vec::new();
    while j < toks.len() && depth > 0 {
        if t.p(j, "(") || t.p(j, "[") || t.p(j, "{") {
            depth += 1;
        } else if t.p(j, ")") || t.p(j, "]") || t.p(j, "}") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1 && t.p(j, ",") {
            arg += 1;
            if arg > 2 {
                break;
            }
            j += 1;
            continue;
        }
        if depth >= 1 && arg == 2 {
            arg_tokens.push(j);
        }
        j += 1;
    }
    if arg_tokens.is_empty() {
        return None;
    }
    // `kinds::CONST` anywhere in the argument (covers `trace::kinds::X`).
    let mut k = 0;
    while k + 2 < arg_tokens.len() + 2 && k < arg_tokens.len() {
        let a = arg_tokens[k];
        if t.id(a, "kinds") && t.p(a + 1, "::") && t.is_id(a + 2) {
            return Some(EmitKindRef::Const(t.text(a + 2).to_string()));
        }
        k += 1;
    }
    if arg_tokens.len() == 1 && t.kind(arg_tokens[0]) == Some(TokKind::Str) {
        return Some(EmitKindRef::Literal(t.text(arg_tokens[0]).to_string()));
    }
    None
}

/// One entry of the trace-event-kind registry (R8 raw material).
#[derive(Clone, Debug)]
pub struct RegistryEntry {
    /// The constant's name, e.g. `TASK_CREATED`.
    pub const_name: String,
    /// The kind string the constant holds.
    pub value: String,
    /// 1-based line of the declaration.
    pub line: usize,
}

/// Parses the central trace-event-kind registry out of the trace
/// module: every `const NAME: &str = "value";` before the test
/// boundary. Returns an empty list for any other file.
pub fn registry_entries(ctx: &FileContext, prepared: &Prepared) -> Vec<RegistryEntry> {
    let mut out = Vec::new();
    if !ctx.is_trace_module() {
        return out;
    }
    let t = Toks(&prepared.lex.tokens);
    let mut i = 0;
    while i + 6 < t.len() {
        if t.id(i, "const")
            && t.is_id(i + 1)
            && t.p(i + 2, ":")
            && t.p(i + 3, "&")
            && t.id(i + 4, "str")
            && t.p(i + 5, "=")
            && t.kind(i + 6) == Some(TokKind::Str)
            && t.line(i) < prepared.test_boundary
        {
            out.push(RegistryEntry {
                const_name: t.text(i + 1).to_string(),
                value: t.text(i + 6).to_string(),
                line: t.line(i),
            });
        }
        i += 1;
    }
    out
}
