//! The dataflow rules R14–R16: taint fixed points over per-function
//! CFGs, composed across the workspace call graph.
//!
//! The interprocedural rules (R10–R13) answer *reachability* questions:
//! can control get from here to there. These three answer *flow*
//! questions: does a nondeterministic **value** reach a
//! determinism-sensitive sink, along which statements, and is a lock
//! guard live on the path.
//!
//! - **R14 nondet-taint** — values derived from ambient nondeterminism
//!   (wall-clock reads, `HashMap`/`HashSet` iteration order, OS thread
//!   ids, `env::var`, `{:p}` pointer formatting) must not flow into the
//!   trace (`Tracer::emit`, the digest fold), seed material
//!   (`SimRng::from_seed` / `stream` / `substream`), or `Symbol`
//!   interning. The per-file rules R1/R3 ban the *sources* in
//!   sim-driven crates; R14 follows the *values* — through local
//!   bindings, branches, loops, and calls into other functions — so a
//!   source that is legal where it stands (a driver crate, an allowed
//!   site) is still caught when its value contaminates the trace.
//! - **R15 discarded-effects** — `let _ = …` on a fabric effect
//!   (submit/deliver/send paths) silently drops a delivery failure.
//!   Flow-sensitive: the message carries the entry-to-statement path,
//!   and intentional teardown-tolerant discards take a reasoned
//!   `allow(r15)`.
//! - **R16 lock-across-await** — a guard must not be live on any CFG
//!   path from its acquisition to an `.await` point, a blocking call,
//!   or a call into a function that can block transitively. This
//!   re-grounds R11's old token-span approximation on real paths:
//!   a branch that drops the guard before blocking no longer flags,
//!   and every message carries the concrete witness path *through the
//!   function*. R11 retains only lock-order inversion.
//!
//! Each function gets a [`Summary`] — does its return value carry
//! ambient taint, do its parameters flow to its return value, do its
//! parameters reach a sink — and the per-function analysis re-runs with
//! callee summaries until the workspace converges. Everything
//! over-approximates (flattened expressions, suffix-matched calls), so
//! the lattice errs toward reporting; the escape hatch is a reasoned
//! `allow(..)`, never analysis cleverness.

use std::collections::{BTreeMap, VecDeque};

use crate::cfg::{CallKind, Cfg, Stmt, StmtCall};
use crate::graph::CallGraph;
use crate::parser::Callee;
use crate::ratchet::Ratchet;
use crate::scan;
use crate::{LintedFile, RuleId, Violation};

/// Chain-length cap: hop chains stop growing here, which both keeps
/// messages readable and makes the fixed point terminate through call
/// cycles.
const MAX_HOPS: usize = 8;

/// Global summary-iteration cap (a safety net; real workspaces converge
/// in two or three rounds).
const MAX_ROUNDS: usize = 10;

/// Hash-container constructors whose results carry iteration-order
/// nondeterminism when iterated.
const HASH_CTORS: &[&str] = &["new", "with_capacity", "default", "from", "from_iter"];

/// Iteration methods that surface hash order.
const HASH_ITER: &[&str] =
    &["iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain"];

/// Fabric-effect calls whose `Result` must not be discarded (R15).
const EFFECT_CALLS: &[&str] =
    &["submit", "deliver", "deliver_inner", "send", "send_now", "try_send"];

/// The class of nondeterminism a tainted value carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TaintKind {
    /// `SystemTime::now()` / `Instant::now()` and friends.
    WallClock,
    /// `HashMap`/`HashSet` iteration order.
    HashOrder,
    /// `thread::current().id()`.
    ThreadId,
    /// `env::var` / `env::args`.
    Env,
    /// `{:p}` pointer formatting.
    PointerFmt,
}

impl TaintKind {
    /// Human description used in messages and the `--dataflow` doc.
    pub fn describe(self) -> &'static str {
        match self {
            TaintKind::WallClock => "wall-clock time",
            TaintKind::HashOrder => "hash-iteration order",
            TaintKind::ThreadId => "an OS thread id",
            TaintKind::Env => "process-environment data",
            TaintKind::PointerFmt => "a formatted pointer address",
        }
    }
}

/// A taint label: what kind of nondeterminism, and the hop chain from
/// the source to the current carrier (rendered in every R14 message).
#[derive(Clone, Debug, PartialEq)]
pub struct Taint {
    /// The nondeterminism class.
    pub kind: TaintKind,
    /// Source-to-here hops, e.g. `SystemTime::now() (line 3)`,
    /// `` `t` (line 4)``.
    pub chain: Vec<String>,
}

fn push_hop(chain: &mut Vec<String>, hop: String) {
    if chain.len() < MAX_HOPS {
        chain.push(hop);
    }
}

fn render_chain(chain: &[String]) -> String {
    chain.join(" -> ")
}

/// What one function exposes to its callers, computed to a workspace
/// fixed point.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    /// The return value carries ambient taint regardless of arguments.
    pub returns_taint: Option<Taint>,
    /// Some parameter flows to the return value (so a tainted argument
    /// taints the call result).
    pub param_to_return: bool,
    /// Sinks a parameter reaches inside this function (or deeper), so a
    /// tainted argument is an R14 hit at the call site.
    pub param_sinks: Vec<String>,
}

/// Per-variable dataflow fact.
#[derive(Clone, Debug, Default, PartialEq)]
struct VarState {
    /// Ambient taint carried by the binding, with its hop chain.
    taint: Option<Taint>,
    /// The binding derives from a function parameter (summary raw
    /// material, not a finding by itself).
    from_param: bool,
    /// The binding holds a `HashMap`/`HashSet` value; iterating it is a
    /// [`TaintKind::HashOrder`] source.
    hashish: bool,
}

/// Block-entry state: variable name → fact. `BTreeMap` keeps merge
/// order deterministic.
type State = BTreeMap<String, VarState>;

/// Merges `from` into `into`; returns true when anything changed.
/// First-wins on taint (chains never churn), union on the flags.
fn merge_into(into: &mut State, from: &State) -> bool {
    let mut changed = false;
    for (name, v) in from {
        match into.get_mut(name) {
            None => {
                into.insert(name.clone(), v.clone());
                changed = true;
            }
            Some(cur) => {
                if cur.taint.is_none() && v.taint.is_some() {
                    cur.taint = v.taint.clone();
                    changed = true;
                }
                if !cur.from_param && v.from_param {
                    cur.from_param = true;
                    changed = true;
                }
                if !cur.hashish && v.hashish {
                    cur.hashish = true;
                    changed = true;
                }
            }
        }
    }
    changed
}

/// A pre-suppression finding: `(file index, line, message)`.
type Finding = (usize, usize, String);

/// One row of the `--dataflow` document: a function's converged
/// summary.
#[derive(Clone, Debug)]
pub struct FnRow {
    /// Fully qualified name.
    pub qname: String,
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// CFG size (blocks), a quick complexity signal.
    pub blocks: usize,
    /// Ambient-taint kind of the return value, when any.
    pub returns_taint: Option<String>,
    /// A parameter flows to the return value.
    pub param_to_return: bool,
    /// Sinks reachable from a parameter.
    pub param_sinks: Vec<String>,
    /// The function can block the OS thread (transitively).
    pub may_block: bool,
}

/// One finding row of the `--dataflow` document (kept even when
/// suppressed, so the artifact shows the full picture).
#[derive(Clone, Debug)]
pub struct FindingRow {
    /// Canonical rule key (`r14`/`r15`/`r16`).
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Full message with the flow / witness path.
    pub message: String,
    /// A reasoned `allow(..)` covers the site.
    pub suppressed: bool,
}

/// The machine-readable dataflow document behind `hetlint --dataflow`.
#[derive(Clone, Debug, Default)]
pub struct Doc {
    /// Converged per-function summaries.
    pub fns: Vec<FnRow>,
    /// All R14–R16 findings, suppressed included.
    pub findings: Vec<FindingRow>,
}

/// What the dataflow phase hands back to report assembly.
#[derive(Debug, Default)]
pub struct Outcome {
    /// `(unsuppressed R14 sites, budget)` for the report row.
    pub nondet_taint: (usize, usize),
    /// `(unsuppressed R15 sites, budget)` for the report row.
    pub discarded_effects: (usize, usize),
    /// Informational lines (within-budget sites with their flows).
    pub notes: Vec<String>,
    /// The `--dataflow` document.
    pub doc: Doc,
}

/// Runs R14–R16 over the parsed set, appending hits to each file's
/// report through its suppression table. R14 and R15 are ratcheted
/// (`r14` / `r15` keys in `hetlint.ratchet`); R16 is a hard violation.
pub fn check(files: &mut [LintedFile], budgets: &Ratchet, g: &CallGraph) -> Outcome {
    let (r14, r15, r16, doc) = {
        let ctx = Ctx::new(files, g);
        let summaries = ctx.converge();
        let may_block = ctx.may_block();
        let mut r14: Vec<Finding> = Vec::new();
        for n in 0..g.nodes.len() {
            if !ctx.r14_applies(n) {
                continue;
            }
            ctx.analyze_fn(&summaries, n, Some(&mut r14));
        }
        r14.dedup();
        let r15 = ctx.discarded_effects();
        let r16 = ctx.lock_across(&may_block);
        let mut doc = Doc::default();
        for n in 0..g.nodes.len() {
            let item = ctx.g.item(ctx.files, n);
            doc.fns.push(FnRow {
                qname: g.nodes[n].qname.clone(),
                path: g.nodes[n].path.clone(),
                line: g.nodes[n].line,
                blocks: item.cfg.blocks.len(),
                returns_taint: summaries[n]
                    .returns_taint
                    .as_ref()
                    .map(|t| t.kind.describe().to_string()),
                param_to_return: summaries[n].param_to_return,
                param_sinks: summaries[n].param_sinks.clone(),
                may_block: may_block[n],
            });
        }
        (r14, r15, r16, doc)
    };

    let mut out = Outcome { doc, ..Outcome::default() };
    out.nondet_taint =
        apply_budget(files, RuleId::R14, r14, budgets.nondet_taint, &mut out);
    out.discarded_effects =
        apply_budget(files, RuleId::R15, r15, budgets.discarded_effects, &mut out);
    for (file, line, message) in r16 {
        record_finding(&mut out.doc, files, RuleId::R16, file, line, &message);
        push_hit(&mut files[file], RuleId::R16, line, message);
    }
    out
}

/// Routes allow-covered sites through suppression, counts the rest
/// against the budget, and either reports them (over) or notes them
/// (within). Mirrors the R13 ratchet discipline.
fn apply_budget(
    files: &mut [LintedFile],
    rule: RuleId,
    sites: Vec<Finding>,
    budget: usize,
    out: &mut Outcome,
) -> (usize, usize) {
    let mut open: Vec<Finding> = Vec::new();
    for (file, line, message) in sites {
        record_finding(&mut out.doc, files, rule, file, line, &message);
        if scan::find_suppression(&files[file].suppr, rule.key(), line).is_some() {
            push_hit(&mut files[file], rule, line, message);
        } else {
            open.push((file, line, message));
        }
    }
    let count = open.len();
    if count > budget {
        for (file, line, message) in open {
            push_hit(&mut files[file], rule, line, message);
        }
    } else {
        for (file, line, message) in open {
            out.notes.push(format!(
                "{} within budget: {}:{line}: {message}",
                rule.key().to_uppercase(),
                files[file].ctx.rel_path
            ));
        }
    }
    (count, budget)
}

fn record_finding(
    doc: &mut Doc,
    files: &[LintedFile],
    rule: RuleId,
    file: usize,
    line: usize,
    message: &str,
) {
    doc.findings.push(FindingRow {
        rule: rule.key().to_string(),
        path: files[file].ctx.rel_path.clone(),
        line,
        message: message.to_string(),
        suppressed: scan::find_suppression(&files[file].suppr, rule.key(), line).is_some(),
    });
}

/// Routes one dataflow hit through the owning file's suppressions
/// (mirrors `interproc::push_hit`; kept separate so the phases stay
/// independently testable).
fn push_hit(file: &mut LintedFile, rule: RuleId, line: usize, message: String) {
    let found = scan::find_suppression(&file.suppr, rule.key(), line).cloned();
    match found {
        Some(s) => {
            file.matched_allows.push((rule.key().to_string(), s.line));
            file.report.suppressed.push(Violation {
                rule,
                path: file.ctx.rel_path.clone(),
                line,
                message,
                suppression: Some(s),
            });
        }
        None => file.report.violations.push(Violation {
            rule,
            path: file.ctx.rel_path.clone(),
            line,
            message,
            suppression: None,
        }),
    }
}

/// Shared immutable analysis context.
struct Ctx<'a> {
    files: &'a [LintedFile],
    g: &'a CallGraph,
    /// Per-node `(line, final name)` → resolved target nodes, mapping
    /// CFG statement calls back onto graph edges.
    resolve: Vec<BTreeMap<(usize, String), Vec<usize>>>,
}

impl<'a> Ctx<'a> {
    fn new(files: &'a [LintedFile], g: &'a CallGraph) -> Ctx<'a> {
        let mut resolve = vec![BTreeMap::new(); g.nodes.len()];
        for (n, map) in resolve.iter_mut().enumerate() {
            let item = g.item(files, n);
            for &(ci, target) in &g.call_targets[n] {
                let name = match &item.calls[ci].callee {
                    Callee::Path(segs) => match segs.last() {
                        Some(s) => s.clone(),
                        None => continue,
                    },
                    Callee::Method(m) => m.clone(),
                    Callee::Macro(_) => continue,
                };
                map.entry((item.calls[ci].line, name))
                    .or_insert_with(Vec::new)
                    .push(target);
            }
        }
        Ctx { files, g, resolve }
    }

    fn targets_of(&self, n: usize, call: &StmtCall) -> &[usize] {
        self.resolve[n]
            .get(&(call.line, call.name.clone()))
            .map_or(&[][..], Vec::as_slice)
    }

    /// R14 findings only make sense where the determinism contract
    /// applies; binaries are drivers (the CLI times itself by design).
    fn r14_applies(&self, n: usize) -> bool {
        let node = &self.g.nodes[n];
        self.files[node.file].ctx.sim_driven() && !node.path.contains("/bin/")
    }

    /// The trace module folds the digest and the rng module handles raw
    /// seed material by design — their internals are sink-exempt.
    fn sink_exempt(&self, n: usize) -> bool {
        let ctx = &self.files[self.g.nodes[n].file].ctx;
        ctx.is_trace_module() || ctx.is_rng_module()
    }

    /// Which nodes can (transitively) block the OS thread: reverse BFS
    /// from every node with a syntactic blocking site (shared logic
    /// with R11's old span check, now feeding R16 path search).
    fn may_block(&self) -> Vec<bool> {
        let g = self.g;
        let mut may = vec![false; g.nodes.len()];
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); g.nodes.len()];
        for (n, row) in g.edges.iter().enumerate() {
            for &m in row {
                rev[m].push(n);
            }
        }
        let mut queue: VecDeque<usize> = (0..g.nodes.len())
            .filter(|&n| !g.item(self.files, n).blocking.is_empty())
            .collect();
        for &n in &queue {
            may[n] = true;
        }
        while let Some(n) = queue.pop_front() {
            for &p in &rev[n] {
                if !may[p] {
                    may[p] = true;
                    queue.push_back(p);
                }
            }
        }
        may
    }

    /// Iterates per-function analyses until every summary is stable.
    fn converge(&self) -> Vec<Summary> {
        let mut summaries = vec![Summary::default(); self.g.nodes.len()];
        for _ in 0..MAX_ROUNDS {
            let mut changed = false;
            for n in 0..self.g.nodes.len() {
                let s = self.analyze_fn(&summaries, n, None);
                if s != summaries[n] {
                    summaries[n] = s;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        summaries
    }

    /// Runs the forward taint fixed point over one function's CFG.
    /// With `findings`, does a final reporting pass using the converged
    /// block states.
    fn analyze_fn(
        &self,
        summaries: &[Summary],
        n: usize,
        findings: Option<&mut Vec<Finding>>,
    ) -> Summary {
        let item = self.g.item(self.files, n);
        let cfg = &item.cfg;
        let mut summary = Summary::default();
        let mut entry = State::new();
        for p in &item.params {
            entry.insert(p.clone(), VarState { from_param: true, ..VarState::default() });
        }
        let mut in_states: Vec<Option<State>> = vec![None; cfg.blocks.len()];
        in_states[cfg.entry] = Some(entry);
        let rpo = cfg.rpo();
        for _ in 0..cfg.blocks.len() + 2 {
            let mut changed = false;
            for &b in &rpo {
                let Some(mut s) = in_states[b].clone() else { continue };
                for stmt in &cfg.blocks[b].stmts {
                    self.transfer(summaries, n, stmt, &mut s, None, &mut summary);
                }
                for &succ in &cfg.blocks[b].succs {
                    match &mut in_states[succ] {
                        Some(cur) => changed |= merge_into(cur, &s),
                        None => {
                            in_states[succ] = Some(s.clone());
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        if let Some(out) = findings {
            for &b in &rpo {
                let Some(mut s) = in_states[b].clone() else { continue };
                for stmt in &cfg.blocks[b].stmts {
                    self.transfer(summaries, n, stmt, &mut s, Some(out), &mut summary);
                }
            }
        }
        summary
    }

    /// One statement's transfer function: sources, sinks, calls, kills.
    fn transfer(
        &self,
        summaries: &[Summary],
        n: usize,
        stmt: &Stmt,
        state: &mut State,
        mut findings: Option<&mut Vec<Finding>>,
        summary: &mut Summary,
    ) {
        let node = &self.g.nodes[n];
        let item = self.g.item(self.files, n);
        let exempt = self.sink_exempt(n);

        // 1. Ambient sources generated by this statement.
        let mut ambient: Option<Taint> = None;
        for call in &stmt.calls {
            if let Some((kind, desc)) = ambient_source(call) {
                ambient = Some(Taint {
                    kind,
                    chain: vec![format!("{desc} (line {})", call.line)],
                });
                break;
            }
            if call.kind == CallKind::Method && HASH_ITER.contains(&call.name.as_str()) {
                let head = call.recv.split('.').next().unwrap_or("");
                if state.get(head).is_some_and(|v| v.hashish) {
                    ambient = Some(Taint {
                        kind: TaintKind::HashOrder,
                        chain: vec![format!(
                            "`{}.{}()` iteration order (line {})",
                            call.recv, call.name, call.line
                        )],
                    });
                    break;
                }
            }
        }

        // 2. Flow through callees, via their converged summaries.
        let mut through: Option<Taint> = None;
        let mut through_param = false;
        for call in &stmt.calls {
            let arg_taint = call
                .args
                .iter()
                .find_map(|a| state.get(a).and_then(|v| v.taint.clone()))
                .or_else(|| ambient.clone());
            let arg_param = call.args.iter().any(|a| state.get(a).is_some_and(|v| v.from_param));
            let mut reported = false;
            for &t in self.targets_of(n, call) {
                if t == n {
                    continue;
                }
                let cs = &summaries[t];
                let callee = &self.g.nodes[t].qname;
                if through.is_none() {
                    if let Some(rt) = &cs.returns_taint {
                        let mut chain = rt.chain.clone();
                        push_hop(&mut chain, format!("returned by `{callee}` (line {})", call.line));
                        through = Some(Taint { kind: rt.kind, chain });
                    }
                }
                if let Some(at) = &arg_taint {
                    if !cs.param_sinks.is_empty() && !reported {
                        if let Some(out) = findings.as_deref_mut() {
                            for sink in &cs.param_sinks {
                                out.push((
                                    node.file,
                                    call.line,
                                    format!(
                                        "`{}` passes {} into `{callee}`, which feeds {sink}; \
                                         flow: {} -> `{callee}` (line {}); make the input \
                                         deterministic (virtual time, sorted iteration, named \
                                         streams) or annotate with `hetlint: allow(r14) — <why>`",
                                        item.qname,
                                        at.kind.describe(),
                                        render_chain(&at.chain),
                                        call.line
                                    ),
                                ));
                            }
                            reported = true;
                        }
                    }
                    if cs.param_to_return && through.is_none() {
                        let mut chain = at.chain.clone();
                        push_hop(&mut chain, format!("through `{callee}` (line {})", call.line));
                        through = Some(Taint { kind: at.kind, chain });
                    }
                }
                if arg_param {
                    for sink in &cs.param_sinks {
                        let desc = format!("{sink} (via `{callee}`)");
                        if !summary.param_sinks.contains(&desc) {
                            summary.param_sinks.push(desc);
                        }
                    }
                    if cs.param_to_return {
                        through_param = true;
                    }
                }
            }
        }

        // 3. Taint read from earlier bindings.
        let mut used: Option<Taint> = None;
        let mut used_param = false;
        for u in stmt.uses.iter().chain(stmt.calls.iter().flat_map(|c| c.args.iter())) {
            let Some(v) = state.get(u) else { continue };
            if used.is_none() {
                used = v.taint.clone();
            }
            used_param |= v.from_param;
        }

        // 4. Local sink checks.
        if !exempt {
            for call in &stmt.calls {
                let Some(sink) = local_sink(call) else { continue };
                let flow = call
                    .args
                    .iter()
                    .find_map(|a| state.get(a).and_then(|v| v.taint.clone()))
                    .or_else(|| ambient.clone())
                    .or_else(|| through.clone());
                if let Some(t) = flow {
                    if let Some(out) = findings.as_deref_mut() {
                        out.push((
                            node.file,
                            call.line,
                            format!(
                                "`{}` feeds {sink} with {}; flow: {} -> {sink} (line {}); \
                                 make the input deterministic (virtual time, sorted \
                                 iteration, named streams) or annotate with \
                                 `hetlint: allow(r14) — <why>`",
                                item.qname,
                                t.kind.describe(),
                                render_chain(&t.chain),
                                call.line
                            ),
                        ));
                    }
                }
                let arg_param =
                    call.args.iter().any(|a| state.get(a).is_some_and(|v| v.from_param));
                if arg_param && !summary.param_sinks.contains(&sink.to_string()) {
                    summary.param_sinks.push(sink.to_string());
                }
            }
        }

        // 5. Definitions: gen on incoming taint, kill on clean
        //    redefinition.
        let incoming = ambient.clone().or_else(|| through.clone()).or_else(|| used.clone());
        let incoming_param = used_param || through_param;
        let hash_gen = stmt.calls.iter().any(|c| {
            c.kind == CallKind::Path
                && HASH_CTORS.contains(&c.name.as_str())
                && c.segs.iter().any(|s| s == "HashMap" || s == "HashSet")
        });
        for d in &stmt.defs {
            let mut vs = VarState { from_param: incoming_param, hashish: hash_gen, taint: None };
            if let Some(t) = &incoming {
                let mut chain = t.chain.clone();
                push_hop(&mut chain, format!("`{d}` (line {})", stmt.line));
                vs.taint = Some(Taint { kind: t.kind, chain });
            }
            state.insert(d.clone(), vs);
        }

        // 6. Returns feed the summary.
        if stmt.is_return {
            if summary.returns_taint.is_none() {
                if let Some(t) = &incoming {
                    let mut chain = t.chain.clone();
                    push_hop(&mut chain, format!("returned (line {})", stmt.line));
                    summary.returns_taint = Some(Taint { kind: t.kind, chain });
                }
            }
            if incoming_param {
                summary.param_to_return = true;
            }
        }
    }

    /// R15 — discarded fabric effects, with the entry-to-site path.
    fn discarded_effects(&self) -> Vec<Finding> {
        let mut hits = Vec::new();
        for n in 0..self.g.nodes.len() {
            let node = &self.g.nodes[n];
            if !self.files[node.file].ctx.sim_driven() {
                continue;
            }
            let item = self.g.item(self.files, n);
            for (bi, block) in item.cfg.blocks.iter().enumerate() {
                for stmt in &block.stmts {
                    if !stmt.is_discard {
                        continue;
                    }
                    let Some(call) = stmt.calls.iter().find(|c| {
                        c.kind != CallKind::Macro && EFFECT_CALLS.contains(&c.name.as_str())
                    }) else {
                        continue;
                    };
                    let what = if call.recv.is_empty() {
                        format!("{}()", call.name)
                    } else {
                        format!("{}.{}()", call.recv, call.name)
                    };
                    let path = entry_path(&item.cfg, bi, stmt.line);
                    hits.push((
                        node.file,
                        stmt.line,
                        format!(
                            "`{}` discards the Result of `{what}` at line {} (path {path}); \
                             a dropped fabric effect is a silent message loss — handle or \
                             propagate the error, or annotate with \
                             `hetlint: allow(r15) — <why>`",
                            item.qname, stmt.line
                        ),
                    ));
                }
            }
        }
        hits
    }

    /// R16 — guards live across suspension points, by CFG path search.
    fn lock_across(&self, may_block: &[bool]) -> Vec<Finding> {
        let mut hits = Vec::new();
        for n in 0..self.g.nodes.len() {
            let item = self.g.item(self.files, n);
            for (bi, block) in item.cfg.blocks.iter().enumerate() {
                for (si, stmt) in block.stmts.iter().enumerate() {
                    for lock in &stmt.locks {
                        let Some(guard) = lock.guard.clone() else { continue };
                        self.guard_paths(n, may_block, (bi, si), lock, &guard, &mut hits);
                    }
                }
            }
        }
        hits
    }

    /// BFS over `(block, stmt)` positions from one acquisition; a
    /// `drop(guard)` kills the path, every suspension point on a
    /// surviving path is a hit with its witness line sequence.
    fn guard_paths(
        &self,
        n: usize,
        may_block: &[bool],
        acq: (usize, usize),
        lock: &crate::cfg::StmtLock,
        guard: &str,
        hits: &mut Vec<Finding>,
    ) {
        let (lock_line, target) = (lock.line, lock.target.as_str());
        let node = &self.g.nodes[n];
        let item = self.g.item(self.files, n);
        let cfg = &item.cfg;
        // Positions: (block, idx); idx == stmts.len() is the block-end
        // marker that fans out to successors.
        let start = (acq.0, acq.1 + 1);
        let mut parent: BTreeMap<(usize, usize), (usize, usize)> = BTreeMap::new();
        let mut visited: std::collections::BTreeSet<(usize, usize)> =
            std::collections::BTreeSet::new();
        let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
        visited.insert(start);
        queue.push_back(start);
        while let Some(pos) = queue.pop_front() {
            let (b, i) = pos;
            if i >= cfg.blocks[b].stmts.len() {
                for &s in &cfg.blocks[b].succs {
                    let next = (s, 0);
                    if visited.insert(next) {
                        parent.insert(next, pos);
                        queue.push_back(next);
                    }
                }
                continue;
            }
            let stmt = &cfg.blocks[b].stmts[i];
            if let Some(what) = self.suspension_of(n, may_block, stmt) {
                let mut lines = vec![stmt.line];
                let mut cur = pos;
                while let Some(&p) = parent.get(&cur) {
                    let (pb, pi) = p;
                    if pi < cfg.blocks[pb].stmts.len() {
                        let l = cfg.blocks[pb].stmts[pi].line;
                        if lines.last() != Some(&l) {
                            lines.push(l);
                        }
                    }
                    cur = p;
                }
                if lines.last() != Some(&lock_line) {
                    lines.push(lock_line);
                }
                lines.reverse();
                let path: Vec<String> = lines.iter().map(|l| format!("line {l}")).collect();
                hits.push((
                    node.file,
                    stmt.line,
                    format!(
                        "`{}` holds guard `{guard}` on `{target}` (line {lock_line}) across \
                         {what} (line {}); witness path: {}; drop the guard before the \
                         suspension point",
                        item.qname,
                        stmt.line,
                        path.join(" -> ")
                    ),
                ));
            }
            // A `drop(guard)` releases the lock; the path ends here.
            if stmt.drops.iter().any(|d| d == guard) {
                continue;
            }
            let next = (b, i + 1);
            if visited.insert(next) {
                parent.insert(next, pos);
                queue.push_back(next);
            }
        }
    }

    /// What makes a statement a suspension point for R16, if anything.
    fn suspension_of(&self, n: usize, may_block: &[bool], stmt: &Stmt) -> Option<String> {
        if let Some(b) = stmt.blocking.first() {
            return Some(format!("blocking `{b}`"));
        }
        if stmt.has_await {
            return Some("an `.await` suspension point".to_string());
        }
        for call in &stmt.calls {
            for &t in self.targets_of(n, call) {
                if t != n && may_block[t] {
                    return Some(format!(
                        "a call to `{}`, which can block (transitively)",
                        self.g.nodes[t].qname
                    ));
                }
            }
        }
        None
    }
}

/// The shortest block path entry → `target`, rendered as first-stmt
/// lines, ending at `site_line` (the R15 witness).
fn entry_path(cfg: &Cfg, target: usize, site_line: usize) -> String {
    let mut parent: Vec<Option<usize>> = vec![None; cfg.blocks.len()];
    let mut visited = vec![false; cfg.blocks.len()];
    let mut queue = VecDeque::new();
    visited[cfg.entry] = true;
    queue.push_back(cfg.entry);
    while let Some(b) = queue.pop_front() {
        if b == target {
            break;
        }
        for &s in &cfg.blocks[b].succs {
            if !visited[s] {
                visited[s] = true;
                parent[s] = Some(b);
                queue.push_back(s);
            }
        }
    }
    let mut blocks = vec![target];
    let mut cur = target;
    while let Some(p) = parent[cur] {
        blocks.push(p);
        cur = p;
    }
    blocks.reverse();
    let mut parts = vec!["entry".to_string()];
    for &b in blocks.iter().take(blocks.len().saturating_sub(1)) {
        if let Some(s) = cfg.blocks[b].stmts.first() {
            let part = format!("line {}", s.line);
            if parts.last() != Some(&part) {
                parts.push(part);
            }
        }
    }
    let last = format!("line {site_line}");
    if parts.last() != Some(&last) {
        parts.push(last);
    }
    parts.join(" -> ")
}

/// Ambient nondeterminism sources recognizable from a single call.
fn ambient_source(call: &StmtCall) -> Option<(TaintKind, String)> {
    match call.kind {
        CallKind::Path => {
            let has = |s: &str| call.segs.iter().any(|seg| seg == s);
            if has("SystemTime") || has("Instant") {
                return Some((TaintKind::WallClock, format!("{}()", call.segs.join("::"))));
            }
            if has("thread") && call.name == "current" {
                return Some((TaintKind::ThreadId, "thread::current()".to_string()));
            }
            if has("env")
                && matches!(call.name.as_str(), "var" | "var_os" | "vars" | "args" | "args_os")
            {
                return Some((TaintKind::Env, format!("env::{}()", call.name)));
            }
            None
        }
        CallKind::Method => None,
        CallKind::Macro => {
            if matches!(
                call.name.as_str(),
                "format" | "format_args" | "write" | "writeln" | "print" | "println"
            ) && call.strs.iter().any(|s| s.contains(":p}"))
            {
                return Some((
                    TaintKind::PointerFmt,
                    format!("`{}!` with a {{:p}} pointer format", call.name),
                ));
            }
            None
        }
    }
}

/// Determinism-sensitive sinks recognizable from a single call.
fn local_sink(call: &StmtCall) -> Option<&'static str> {
    match call.kind {
        CallKind::Method => match call.name.as_str() {
            "emit" => Some("Tracer::emit"),
            "substream" => Some("SimRng::substream"),
            "fold_event" | "fold_bytes" => Some("the trace digest fold"),
            "intern" => Some("Symbol interning"),
            _ => None,
        },
        CallKind::Path => {
            let pair = |a: &str, b: &str| {
                call.segs.len() >= 2
                    && call.segs[call.segs.len() - 2] == a
                    && call.segs[call.segs.len() - 1] == b
            };
            if pair("Symbol", "intern") {
                Some("Symbol interning")
            } else if pair("SimRng", "from_seed") {
                Some("SimRng::from_seed")
            } else if pair("SimRng", "stream") {
                Some("SimRng::stream")
            } else {
                None
            }
        }
        CallKind::Macro => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{graph, lint_file, FileContext, FileKind, LintedFile};

    fn set(files: &[(&str, &str, &str)]) -> Vec<LintedFile> {
        files
            .iter()
            .map(|(krate, rel, src)| {
                lint_file(&FileContext::new(krate, FileKind::LibSrc, rel), src)
            })
            .collect()
    }

    fn run(files: &mut [LintedFile], ratchet: &str) -> Outcome {
        let budgets = crate::ratchet::parse(ratchet).expect("ratchet parses");
        let g = graph::build(files);
        check(files, &budgets, &g)
    }

    fn rule_hits(files: &[LintedFile], rule: RuleId) -> Vec<&Violation> {
        files
            .iter()
            .flat_map(|f| f.report.violations.iter())
            .filter(|v| v.rule == rule)
            .collect()
    }

    #[test]
    fn r14_wall_clock_flows_to_emit_with_chain() {
        let mut files = set(&[(
            "sim",
            "crates/sim/src/a.rs",
            "fn f(tr: T) {\nlet t = SystemTime::now();\nlet label = t;\ntr.emit(kind, label);\n}\n",
        )]);
        run(&mut files, "");
        let v = rule_hits(&files, RuleId::R14);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4);
        assert!(v[0].message.contains("Tracer::emit"), "{}", v[0].message);
        assert!(
            v[0].message.contains("SystemTime::now() (line 2) -> `t` (line 2) -> `label` (line 3)"),
            "chain missing: {}",
            v[0].message
        );
    }

    #[test]
    fn r14_kill_on_clean_redefinition() {
        let mut files = set(&[(
            "sim",
            "crates/sim/src/a.rs",
            "fn f(tr: T) {\nlet t = SystemTime::now();\nlet t = 0u64;\ntr.emit(kind, t);\n}\n",
        )]);
        run(&mut files, "");
        assert!(rule_hits(&files, RuleId::R14).is_empty());
    }

    #[test]
    fn r14_branch_taint_survives_the_join() {
        let mut files = set(&[(
            "sim",
            "crates/sim/src/a.rs",
            "fn f(tr: T, c: bool) {\nlet mut x = 0u64;\nif c {\nx = seed_of();\n}\ntr.emit(kind, x);\n}\nfn seed_of() -> u64 {\nlet e = std::env::var(\"S\");\ne\n}\n",
        )]);
        run(&mut files, "");
        let v = rule_hits(&files, RuleId::R14);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("process-environment data"), "{}", v[0].message);
        assert!(
            v[0].message.contains("returned by `sim::a::seed_of`"),
            "interprocedural hop missing: {}",
            v[0].message
        );
    }

    #[test]
    fn r14_hash_iteration_order_into_seed() {
        let mut files = set(&[(
            "sim",
            "crates/sim/src/a.rs",
            "fn f() {\nlet m = HashMap::new();\nlet k = m.keys();\nlet r = SimRng::from_seed(k);\n}\n",
        )]);
        run(&mut files, "");
        let v = rule_hits(&files, RuleId::R14);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("hash-iteration order"), "{}", v[0].message);
        assert!(v[0].message.contains("SimRng::from_seed"), "{}", v[0].message);
    }

    #[test]
    fn r14_tainted_argument_reaches_sink_inside_callee() {
        let mut files = set(&[(
            "sim",
            "crates/sim/src/a.rs",
            "fn f(tr: T) {\nlet t = Instant::now();\nrecord(tr, t);\n}\nfn record(tr: T, v: u64) {\ntr.emit(kind, v);\n}\n",
        )]);
        run(&mut files, "");
        let v = rule_hits(&files, RuleId::R14);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("passes wall-clock time into `sim::a::record`"),
            "{}", v[0].message);
        assert!(v[0].message.contains("Tracer::emit"), "{}", v[0].message);
    }

    #[test]
    fn r14_budget_and_allow_mirror_r13() {
        let src = "fn f(tr: T) {\nlet t = SystemTime::now();\ntr.emit(kind, t);\n}\n";
        // Within budget: a note, no violation.
        let mut files = set(&[("sim", "crates/sim/src/a.rs", src)]);
        let out = run(&mut files, "r14 = 1\n");
        assert_eq!(out.nondet_taint, (1, 1));
        assert!(rule_hits(&files, RuleId::R14).is_empty());
        assert!(out.notes.iter().any(|n| n.contains("R14 within budget")), "{:?}", out.notes);
        // Allowed: suppressed, not counted against the budget.
        let allowed = "fn f(tr: T) {\nlet t = SystemTime::now();\n// hetlint: allow(r14) — diagnostic panel, not folded into the digest\ntr.emit(kind, t);\n}\n";
        let mut files = set(&[("sim", "crates/sim/src/a.rs", allowed)]);
        let out = run(&mut files, "");
        assert_eq!(out.nondet_taint, (0, 0));
        assert!(rule_hits(&files, RuleId::R14).is_empty());
        assert!(files[0].report.suppressed.iter().any(|v| v.rule == RuleId::R14));
    }

    #[test]
    fn r14_silent_outside_sim_driven_crates() {
        let mut files = set(&[(
            "lint",
            "crates/lint/src/a.rs",
            "fn f(tr: T) {\nlet t = SystemTime::now();\ntr.emit(kind, t);\n}\n",
        )]);
        let out = run(&mut files, "");
        assert_eq!(out.nondet_taint, (0, 0));
        assert!(rule_hits(&files, RuleId::R14).is_empty());
    }

    #[test]
    fn r15_discard_of_fabric_effect_with_path() {
        let mut files = set(&[(
            "fabric",
            "crates/fabric/src/h.rs",
            "fn teardown(ep: E, c: bool) {\nif c {\nlet _ = ep.send_now(msg);\n}\n}\n",
        )]);
        let out = run(&mut files, "");
        assert_eq!(out.discarded_effects, (1, 0));
        let v = rule_hits(&files, RuleId::R15);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("`ep.send_now()`"), "{}", v[0].message);
        assert!(v[0].message.contains("path entry -> line 2 -> line 3"), "{}", v[0].message);
    }

    #[test]
    fn r15_allow_and_budget() {
        let allowed = "fn teardown(ep: E) {\n// hetlint: allow(r15) — teardown: the peer may already be gone\nlet _ = ep.send_now(msg);\n}\n";
        let mut files = set(&[("fabric", "crates/fabric/src/h.rs", allowed)]);
        let out = run(&mut files, "");
        assert_eq!(out.discarded_effects, (0, 0));
        assert!(rule_hits(&files, RuleId::R15).is_empty());
        assert!(files[0].report.suppressed.iter().any(|v| v.rule == RuleId::R15));
        // Budgeted: a note instead of a violation.
        let bare = "fn teardown(ep: E) {\nlet _ = ep.send_now(msg);\n}\n";
        let mut files = set(&[("fabric", "crates/fabric/src/h.rs", bare)]);
        let out = run(&mut files, "r15 = 1\n");
        assert_eq!(out.discarded_effects, (1, 1));
        assert!(rule_hits(&files, RuleId::R15).is_empty());
        assert!(out.notes.iter().any(|n| n.contains("R15 within budget")), "{:?}", out.notes);
    }

    #[test]
    fn r15_plain_binding_is_not_a_discard() {
        let mut files = set(&[(
            "fabric",
            "crates/fabric/src/h.rs",
            "fn fwd(ep: E) {\nlet r = ep.send_now(msg);\nr.unwrap_or_default();\n}\n",
        )]);
        let out = run(&mut files, "");
        assert_eq!(out.discarded_effects, (0, 0));
    }

    #[test]
    fn r16_direct_and_transitive_with_witness_paths() {
        let mut files = set(&[(
            "sim",
            "crates/sim/src/ex.rs",
            "struct Q;\nimpl Q {\nfn direct(&self) {\nlet g = self.state.lock();\nself.cv.wait(g);\n}\nfn indirect(&self) {\nlet g = self.state.lock();\nself.blocky();\ndrop(g);\n}\nfn blocky(&self) {\nself.cv.wait(x);\n}\nfn fine(&self) {\nlet g = self.state.lock();\ndrop(g);\nself.blocky();\n}\n}\n",
        )]);
        run(&mut files, "");
        let v = rule_hits(&files, RuleId::R16);
        assert_eq!(v.len(), 2, "direct + transitive, not the post-drop call: {v:?}");
        assert!(v[0].message.contains("blocking `wait`"), "{}", v[0].message);
        assert!(v[0].message.contains("witness path: line 4 -> line 5"), "{}", v[0].message);
        assert!(v[1].message.contains("can block (transitively)"), "{}", v[1].message);
        assert!(v[1].message.contains("witness path: line 8 -> line 9"), "{}", v[1].message);
    }

    #[test]
    fn r16_branch_that_drops_is_clean_other_branch_flags() {
        let mut files = set(&[(
            "sim",
            "crates/sim/src/ex.rs",
            "struct Q;\nimpl Q {\nfn f(&self, c: bool) {\nlet g = self.m.lock();\nif c {\ndrop(g);\n} else {\nself.cv.wait(g);\n}\n}\n}\n",
        )]);
        run(&mut files, "");
        let v = rule_hits(&files, RuleId::R16);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 8);
        assert!(v[0].message.contains("witness path: line 4 -> line 5 -> line 8"),
            "{}", v[0].message);
    }

    #[test]
    fn r16_await_under_guard_flags() {
        let mut files = set(&[(
            "sim",
            "crates/sim/src/ex.rs",
            "struct Q;\nimpl Q {\nasync fn f(&self) {\nlet g = self.m.lock();\nself.ch.recv().await;\ndrop(g);\n}\n}\n",
        )]);
        run(&mut files, "");
        let v = rule_hits(&files, RuleId::R16);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("`.await` suspension point"), "{}", v[0].message);
    }

    #[test]
    fn r16_suppressible_at_the_suspension() {
        let mut files = set(&[(
            "sim",
            "crates/sim/src/ex.rs",
            "struct Q;\nimpl Q {\nfn f(&self) {\nlet g = self.state.lock();\n// hetlint: allow(r16) — guard protects the wait predicate itself\nself.cv.wait(g);\n}\n}\n",
        )]);
        run(&mut files, "");
        assert!(rule_hits(&files, RuleId::R16).is_empty());
        assert!(files[0].report.suppressed.iter().any(|v| v.rule == RuleId::R16));
    }

    #[test]
    fn doc_carries_summaries_and_findings() {
        let mut files = set(&[(
            "sim",
            "crates/sim/src/a.rs",
            "fn now_ms() -> u64 {\nlet t = SystemTime::now();\nt\n}\nfn ident(v: u64) -> u64 {\nv\n}\n",
        )]);
        let out = run(&mut files, "");
        let now = out.doc.fns.iter().find(|f| f.qname == "sim::a::now_ms").unwrap();
        assert_eq!(now.returns_taint.as_deref(), Some("wall-clock time"));
        let ident = out.doc.fns.iter().find(|f| f.qname == "sim::a::ident").unwrap();
        assert!(ident.param_to_return);
        assert!(ident.returns_taint.is_none());
    }
}
