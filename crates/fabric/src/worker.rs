//! Worker pools: the processes that actually execute tasks on a
//! resource's compute nodes.
//!
//! Both fabrics share this execution core. A worker loops on a task
//! queue; for each task it deserializes the envelope, resolves proxied
//! inputs (paying store/transfer costs at its own site), runs the
//! compute closure for its declared virtual duration, applies the result
//! proxy policy, and ships the result back.
//!
//! Per-worker idle gaps between consecutive tasks are recorded — this is
//! the "CPU idle time between simulation tasks" metric of Fig. 6b.

use crate::reliability::{FailureModel, Knob, RetryPolicies};
use crate::ser::SerModel;
use crate::task::{Arg, TaskCtx, TaskError, TaskOutcome, TaskResult, TaskSpec, WorkerReport};
use hetflow_store::{ProxyPolicy, SiteId};
use hetflow_sim::{
    channel, trace_kinds as kinds, Dist, Gauge, Receiver, Samples, Sender, Sim, SimRng, Symbol,
    Tracer,
};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

/// Configuration of one worker pool.
#[derive(Clone)]
pub struct WorkerPoolConfig {
    /// Site the workers run on.
    pub site: SiteId,
    /// Pool label, e.g. `"theta"` or `"venti"`.
    pub label: String,
    /// Number of workers.
    pub workers: usize,
    /// Result proxying rules (usually mirrors the submit-side policy).
    pub result_policy: ProxyPolicy,
    /// Worker-side (de)serialization model.
    pub ser: SerModel,
    /// Manager→worker hop latency within the node.
    pub local_hop: Dist,
    /// Optional failure injection (`None` = reliable workers).
    pub failure: Option<FailureModel>,
    /// Per-topic retry/backoff policies (attempt caps override the
    /// failure model's; backoff delays re-execution).
    pub retry: RetryPolicies,
    /// Per-worker start delays (batch-scheduler ramp-up, from
    /// [`crate::provision::ProvisionSpec::worker_delays`]). Empty = all
    /// workers online at t=0. Indexed modulo its length.
    pub start_delays: Vec<std::time::Duration>,
    /// Compute-pace multiplier, shared with the chaos engine: a task's
    /// compute time is scaled by the knob's value at task start (1.0 =
    /// nominal; > 1 models straggling workers). Read lazily, skipped
    /// when neutral, so an untouched knob changes nothing.
    pub pace: Knob,
    /// Mid-task crash probability, shared with the chaos engine: while
    /// nonzero, each task additionally crashes partway through compute
    /// with this probability, wasting half the compute before the
    /// (single) re-run. Draws no randomness while zero.
    pub crash: Knob,
    /// Bound on the pool's pending-task queue, enforced by the fabrics
    /// at delivery time via [`hetflow_sim::Sender::offer`]. `0` keeps
    /// the queue unbounded (the zero-value defer).
    pub queue_capacity: usize,
    /// What happens to a delivery that finds the queue full: refuse the
    /// arrival, evict the oldest queued task, or evict the
    /// lowest-priority one. Irrelevant while `queue_capacity == 0`.
    pub overflow: hetflow_sim::OverflowPolicy,
}

impl WorkerPoolConfig {
    /// A pool with free serialization and no proxying — for kernel tests.
    pub fn bare(site: SiteId, label: impl Into<String>, workers: usize) -> Self {
        WorkerPoolConfig {
            site,
            label: label.into(),
            workers,
            result_policy: ProxyPolicy::disabled(),
            ser: SerModel::free(),
            local_hop: Dist::Constant(0.0),
            failure: None,
            retry: RetryPolicies::default(),
            start_delays: Vec::new(),
            pace: Knob::new(1.0),
            crash: Knob::new(0.0),
            queue_capacity: 0,
            overflow: hetflow_sim::OverflowPolicy::default(),
        }
    }
}

struct PoolShared {
    idle: RefCell<Samples>,
    busy: RefCell<Gauge>,
    completed: std::cell::Cell<u64>,
    failed: std::cell::Cell<u64>,
}

/// Handle to a running worker pool.
#[derive(Clone)]
pub struct WorkerPool {
    /// Where to enqueue tasks for this pool.
    pub tasks: Sender<TaskSpec>,
    shared: Rc<PoolShared>,
    label: String,
    site: SiteId,
    workers: usize,
    pace: Knob,
    crash: Knob,
}

impl WorkerPool {
    /// Spawns `config.workers` worker actors consuming from a fresh
    /// queue; completed tasks go to `results`.
    pub fn spawn(
        sim: &Sim,
        config: WorkerPoolConfig,
        results: Sender<TaskResult>,
        rng: &SimRng,
        tracer: Tracer,
    ) -> WorkerPool {
        let (tx, rx) = channel::<TaskSpec>();
        let shared = Rc::new(PoolShared {
            idle: RefCell::new(Samples::new()),
            busy: RefCell::new(Gauge::new()),
            completed: std::cell::Cell::new(0),
            failed: std::cell::Cell::new(0),
        });
        for i in 0..config.workers {
            let worker_rng = rng.substream(i as u64);
            spawn_worker(
                sim,
                config.clone(),
                i,
                rx.clone(),
                results.clone(),
                worker_rng,
                Rc::clone(&shared),
                tracer.clone(),
            );
        }
        WorkerPool {
            tasks: tx,
            shared,
            pace: config.pace.clone(),
            crash: config.crash.clone(),
            label: config.label,
            site: config.site,
            workers: config.workers,
        }
    }

    /// Pool label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Site the pool runs on.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Tasks completed so far.
    pub fn completed(&self) -> u64 {
        self.shared.completed.get()
    }

    /// Tasks that ended in a terminal failure (still delivered as
    /// results, not counted in [`WorkerPool::completed`]).
    pub fn failed(&self) -> u64 {
        self.shared.failed.get()
    }

    /// Idle-gap samples (seconds between finishing one task and starting
    /// the next, per worker; excludes the initial wait for the first
    /// task).
    pub fn idle_gaps(&self) -> Samples {
        self.shared.idle.borrow().clone()
    }

    /// Gauge of concurrently busy workers over time.
    pub fn busy_gauge(&self) -> Gauge {
        self.shared.busy.borrow().clone()
    }

    /// The pool's compute-pace dial (chaos-engine target).
    pub fn pace_knob(&self) -> Knob {
        self.pace.clone()
    }

    /// The pool's mid-task crash-probability dial (chaos-engine target).
    pub fn crash_knob(&self) -> Knob {
        self.crash.clone()
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_worker(
    sim: &Sim,
    config: WorkerPoolConfig,
    index: usize,
    rx: Receiver<TaskSpec>,
    results: Sender<TaskResult>,
    mut rng: SimRng,
    shared: Rc<PoolShared>,
    tracer: Tracer,
) {
    let sim = sim.clone();
    // Pre-interned once per worker: every emit and result below reuses
    // the copyable handle instead of cloning a String per event.
    let name = Symbol::intern(&format!("{}/{}", config.label, index));
    sim.clone().spawn(async move {
        if !config.start_delays.is_empty() {
            let delay = config.start_delays[index % config.start_delays.len()];
            sim.sleep(delay).await;
        }
        let mut last_finish: Option<hetflow_sim::SimTime> = None;
        // Resolved-input buffer, reused across tasks: the compute
        // closure borrows it through `TaskCtx`, so steady state runs
        // allocation-free once it has grown to the widest arg list.
        let mut inputs: Vec<Rc<dyn std::any::Any>> = Vec::new();
        while let Some(mut task) = rx.recv().await {
            // Manager → worker hop.
            let hop = config.local_hop.sample_secs(&mut rng);
            sim.sleep(hop).await;

            let started = sim.now();
            if let Some(prev) = last_finish {
                shared.idle.borrow_mut().record((started - prev).as_secs_f64());
            }
            shared.busy.borrow_mut().inc(started);
            task.timing.worker_started = Some(started);
            tracer.emit(started, name, kinds::TASK_STARTED, task.id, config.site.index() as f64);

            let mut report = WorkerReport::default();
            // Upstream (thinker + server) serialization, including
            // proxying, accumulated as the task travelled.
            report.ser_time += task.ser_time;

            // Deserialize the envelope.
            let de = config.ser.cost(&mut rng, task.wire_bytes());
            report.ser_time += de;
            sim.sleep(de).await;

            // A task poisoned upstream (e.g. a submit-side proxy put
            // failed) short-circuits: no resolve, no compute.
            let mut failed: Option<TaskError> = task.failed.take();

            // Resolve inputs. A resolve error fails the task instead of
            // tearing down the simulation.
            inputs.clear();
            if failed.is_none() {
                for arg in &task.args {
                    match arg {
                        Arg::Inline { value, .. } => inputs.push(Rc::clone(value)),
                        Arg::Proxied(p) => match p.resolve(config.site).await {
                            Ok(resolved) => {
                                report.resolve_wait += resolved.wait;
                                if resolved.was_local {
                                    report.local_inputs += 1;
                                } else {
                                    report.remote_inputs += 1;
                                }
                                inputs.push(resolved.value);
                            }
                            Err(e) => {
                                failed = Some(TaskError::ResolveFailed(e.to_string()));
                                break;
                            }
                        },
                    }
                }
            }
            task.timing.inputs_resolved = Some(sim.now());

            let mut attempts = 1u32;
            let mut output = Arg::empty();
            if failed.is_none() {
                // Compute.
                let work = {
                    let mut ctx = TaskCtx { inputs: &inputs, rng: &mut rng, site: config.site };
                    (task.compute)(&mut ctx)
                };
                // Failure injection: failed attempts waste part of the
                // compute time plus a restart delay, then re-execute
                // after the policy's backoff — until the attempt cap is
                // exhausted, which fails the task gracefully.
                let policy = config.retry.policy_for(task.topic);
                if let Some(fm) = &config.failure {
                    let cap = policy.effective_max_attempts(fm).max(1);
                    while fm.attempt_fails(&mut rng) {
                        let wasted = fm.wasted(work.compute_time, &mut rng);
                        report.wasted_time += wasted;
                        sim.sleep(wasted).await;
                        if attempts >= cap {
                            failed = Some(TaskError::ExhaustedRetries { attempts });
                            break;
                        }
                        let backoff = policy.backoff.sample_secs(&mut rng);
                        if backoff > Duration::ZERO {
                            report.wasted_time += backoff;
                            sim.sleep(backoff).await;
                        }
                        attempts += 1;
                        tracer.emit(sim.now(), name, kinds::TASK_RETRY, task.id, attempts as f64);
                    }
                }
                if failed.is_none() {
                    let mut compute = work.compute_time;
                    // Chaos pace knob: straggling workers run slow.
                    let pace = config.pace.get();
                    if pace != 1.0 {
                        compute = compute.mul_f64(pace.max(0.0));
                    }
                    // Chaos crash knob: the worker dies mid-task, loses
                    // half the compute, and re-runs once.
                    let crash_p = config.crash.get();
                    if crash_p > 0.0 && rng.chance(crash_p) {
                        let lost = compute.mul_f64(0.5);
                        report.wasted_time += lost;
                        sim.sleep(lost).await;
                        attempts += 1;
                        tracer.emit(sim.now(), name, kinds::TASK_RETRY, task.id, attempts as f64);
                    }
                    report.compute_time = compute;
                    sim.sleep(compute).await;
                    task.timing.compute_finished = Some(sim.now());

                    // Result: proxy if the policy says so, else inline.
                    // A put error fails the task, not the process.
                    output = match config.result_policy.decide(task.topic.as_str(), work.output_size) {
                        Some(store) => {
                            match store.put_raw(work.output, work.output_size, config.site).await {
                                Ok(key) => Arg::Proxied(hetflow_store::UntypedProxy::new(
                                    store.clone(),
                                    key,
                                    work.output_size,
                                )),
                                Err(e) => {
                                    failed = Some(TaskError::PutFailed(e.to_string()));
                                    Arg::empty()
                                }
                            }
                        }
                        None => Arg::Inline { bytes: work.output_size, value: work.output },
                    };
                }
            }
            report.attempts = attempts;

            // Serialize the result envelope (failed results still carry
            // an envelope back — the error is a payload like any other).
            let ser = config.ser.cost(&mut rng, output.wire_bytes());
            report.ser_time += ser;
            sim.sleep(ser).await;

            let finished = sim.now();
            task.timing.result_dispatched = Some(finished);
            if failed.is_none() {
                tracer.emit(
                    finished,
                    name,
                    kinds::TASK_FINISHED,
                    task.id,
                    config.site.index() as f64,
                );
                shared.completed.set(shared.completed.get() + 1);
            } else {
                tracer.emit(finished, name, kinds::TASK_FAILED, task.id, attempts as f64);
                shared.failed.set(shared.failed.get() + 1);
            }
            shared.busy.borrow_mut().dec(finished);
            last_finish = Some(finished);

            let input_bytes = task.args.iter().map(Arg::data_bytes).sum();
            let outcome = match failed {
                None => TaskOutcome::Success,
                Some(err) => TaskOutcome::Failed(err),
            };
            let result = TaskResult {
                id: task.id,
                topic: task.topic,
                output,
                input_bytes,
                report,
                timing: task.timing,
                site: config.site,
                worker: name,
                outcome,
            };
            if results.send_now(result).is_err() {
                break; // experiment torn down
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskWork;
    use hetflow_store::{bytes::MB, Backend, FsParams, SiteSet, Store};
    use hetflow_sim::SimTime;
    use std::time::Duration;

    const SITE: SiteId = SiteId(0);

    fn run_pool(
        workers: usize,
        n_tasks: usize,
        compute_secs: f64,
    ) -> (Sim, WorkerPool, Receiver<TaskResult>) {
        let sim = Sim::new();
        let (res_tx, res_rx) = channel();
        let pool = WorkerPool::spawn(
            &sim,
            WorkerPoolConfig::bare(SITE, "w", workers),
            res_tx,
            &SimRng::from_seed(1),
            Tracer::enabled(),
        );
        for i in 0..n_tasks {
            let mut t = TaskSpec::new(
                i as u64,
                "unit",
                vec![],
                Rc::new(move |_ctx| {
                    TaskWork::new((), 0, hetflow_sim::time::secs(compute_secs))
                }),
            );
            t.timing.created = Some(SimTime::ZERO);
            pool.tasks.send_now(t).unwrap();
        }
        (sim, pool, res_rx)
    }

    #[test]
    fn executes_all_tasks_with_pool_parallelism() {
        let (sim, pool, res_rx) = run_pool(4, 8, 10.0);
        let r = sim.run();
        assert_eq!(pool.completed(), 8);
        assert_eq!(res_rx.drain_now().len(), 8);
        // 8 tasks / 4 workers / 10s each => 20s.
        assert_eq!(r.end, SimTime::from_secs(20));
    }

    #[test]
    fn busy_gauge_tracks_concurrency() {
        let (sim, pool, _res) = run_pool(3, 6, 5.0);
        sim.run();
        let g = pool.busy_gauge();
        // All 3 busy for the whole 10s run.
        assert!((g.time_average(SimTime::from_secs(10)) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn idle_gaps_recorded_between_tasks() {
        let (sim, pool, _res) = run_pool(1, 3, 1.0);
        sim.run();
        // Tasks queued back-to-back: 2 gaps of ~0.
        let idle = pool.idle_gaps();
        assert_eq!(idle.len(), 2);
        assert!(idle.max() < 1e-9);
    }

    #[test]
    fn resolves_proxied_inputs_and_reports() {
        let sim = Sim::new();
        let store = Store::new(
            sim.clone(),
            "fs",
            Backend::Fs(FsParams {
                members: SiteSet::of(&[SITE]),
                op_latency: Dist::Constant(0.01),
                write_bandwidth: 1e8,
                read_bandwidth: 1e8,
            }),
            SimRng::from_seed(2),
        );
        let (res_tx, res_rx) = channel();
        let pool = WorkerPool::spawn(
            &sim,
            WorkerPoolConfig::bare(SITE, "w", 1),
            res_tx,
            &SimRng::from_seed(1),
            Tracer::disabled(),
        );
        let store2 = store.clone();
        let tasks = pool.tasks.clone();
        sim.spawn(async move {
            let key = store2.put_raw(Rc::new(vec![1.5f64; 4]), MB, SITE).await.unwrap();
            let proxy = hetflow_store::UntypedProxy::new(store2.clone(), key, MB);
            let t = TaskSpec::new(
                0,
                "unit",
                vec![Arg::Proxied(proxy)],
                Rc::new(|ctx| {
                    let v = ctx.input::<Vec<f64>>(0);
                    TaskWork::new(v.iter().sum::<f64>(), 100, Duration::ZERO)
                }),
            );
            tasks.send_now(t).unwrap();
        });
        sim.run();
        let results = res_rx.drain_now();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        match &r.output {
            Arg::Inline { value, .. } => {
                assert_eq!(*Rc::clone(value).downcast::<f64>().unwrap(), 6.0);
            }
            Arg::Proxied(_) => panic!("no result policy => inline"),
        }
        assert_eq!(r.report.local_inputs + r.report.remote_inputs, 1);
        assert!(r.report.resolve_wait > Duration::ZERO);
    }

    #[test]
    fn result_policy_proxies_large_outputs() {
        let sim = Sim::new();
        let store = Store::new(
            sim.clone(),
            "fs",
            Backend::Fs(FsParams {
                members: SiteSet::of(&[SITE]),
                op_latency: Dist::Constant(0.001),
                write_bandwidth: 1e9,
                read_bandwidth: 1e9,
            }),
            SimRng::from_seed(2),
        );
        let (res_tx, res_rx) = channel();
        let mut config = WorkerPoolConfig::bare(SITE, "w", 1);
        config.result_policy = ProxyPolicy::uniform(store.clone(), 10_000);
        let pool =
            WorkerPool::spawn(&sim, config, res_tx, &SimRng::from_seed(1), Tracer::disabled());
        // Small output: stays inline.
        pool.tasks
            .send_now(TaskSpec::new(
                0,
                "t",
                vec![],
                Rc::new(|_| TaskWork::new(1u8, 100, Duration::ZERO)),
            ))
            .unwrap();
        // Large output: proxied.
        pool.tasks
            .send_now(TaskSpec::new(
                1,
                "t",
                vec![],
                Rc::new(|_| TaskWork::new(vec![0u8; 8], MB, Duration::ZERO)),
            ))
            .unwrap();
        sim.run();
        let results = res_rx.drain_now();
        assert!(!results[0].output.is_proxied());
        assert!(results[1].output.is_proxied());
        assert_eq!(results[1].output.wire_bytes(), hetflow_store::PROXY_WIRE_BYTES);
        assert_eq!(store.object_count(), 1);
    }

    #[test]
    fn start_delays_stagger_worker_onset() {
        let sim = Sim::new();
        let (res_tx, _res_rx) = channel();
        let mut config = WorkerPoolConfig::bare(SITE, "w", 2);
        config.start_delays =
            vec![Duration::from_secs(0), Duration::from_secs(100)];
        let pool =
            WorkerPool::spawn(&sim, config, res_tx, &SimRng::from_seed(1), Tracer::disabled());
        for i in 0..2 {
            pool.tasks
                .send_now(TaskSpec::new(
                    i,
                    "t",
                    vec![],
                    Rc::new(|_| TaskWork::new((), 0, Duration::from_secs(10))),
                ))
                .unwrap();
        }
        sim.run();
        // Worker 0 (online at t=0) runs both tasks back-to-back and
        // finishes at t=20; worker 1 only comes online at t=100 (which
        // is when the sim quiesces, its start timer being the last
        // event) and finds nothing to do.
        assert_eq!(pool.completed(), 2);
        let busy = pool.busy_gauge();
        let last_activity = busy.series().points().last().unwrap().0;
        assert_eq!(last_activity, SimTime::from_secs(20));
        assert_eq!(sim.now(), SimTime::from_secs(100));
    }

    #[test]
    fn exhausted_retries_produce_failed_result() {
        let sim = Sim::new();
        let (res_tx, res_rx) = channel();
        let mut config = WorkerPoolConfig::bare(SITE, "w", 1);
        config.failure = Some(FailureModel {
            prob: 1.0, // every attempt fails: exhaustion is certain
            waste_fraction: 0.0,
            restart_delay: Dist::Constant(1.0),
            max_attempts: 3,
        });
        config.retry.default.backoff = Dist::Constant(2.0);
        let tracer = Tracer::enabled();
        let pool =
            WorkerPool::spawn(&sim, config, res_tx, &SimRng::from_seed(1), tracer.clone());
        pool.tasks
            .send_now(TaskSpec::new(
                0,
                "unit",
                vec![],
                Rc::new(|_| TaskWork::new((), 100, Duration::from_secs(10))),
            ))
            .unwrap();
        let r = sim.run();
        let results = res_rx.drain_now();
        assert_eq!(results.len(), 1);
        let res = &results[0];
        assert!(res.is_failed());
        assert_eq!(
            res.outcome.error(),
            Some(&TaskError::ExhaustedRetries { attempts: 3 })
        );
        assert_eq!(res.report.attempts, 3);
        // 3 restart delays (1 s) + 2 backoffs (2 s); no compute happens.
        assert_eq!(res.report.wasted_time, Duration::from_secs(7));
        assert_eq!(res.report.compute_time, Duration::ZERO);
        assert!(res.timing.compute_finished.is_none());
        assert_eq!(r.end, SimTime::from_secs(7));
        assert_eq!(pool.failed(), 1);
        assert_eq!(pool.completed(), 0);
        assert_eq!(tracer.events_of_kind(kinds::TASK_FAILED).len(), 1);
        assert_eq!(tracer.events_of_kind(kinds::TASK_RETRY).len(), 2);
        assert!(tracer.events_of_kind(kinds::TASK_FINISHED).is_empty());
    }

    #[test]
    fn per_topic_retry_cap_overrides_failure_model() {
        let sim = Sim::new();
        let (res_tx, res_rx) = channel();
        let mut config = WorkerPoolConfig::bare(SITE, "w", 1);
        config.failure = Some(FailureModel {
            prob: 1.0,
            waste_fraction: 0.0,
            restart_delay: Dist::Constant(1.0),
            max_attempts: 10,
        });
        config.retry = RetryPolicies::default().with_topic(
            "unit",
            crate::reliability::RetryPolicy {
                max_attempts: 2,
                ..Default::default()
            },
        );
        let pool = WorkerPool::spawn(
            &sim,
            config,
            res_tx,
            &SimRng::from_seed(1),
            Tracer::disabled(),
        );
        pool.tasks
            .send_now(TaskSpec::new(
                0,
                "unit",
                vec![],
                Rc::new(|_| TaskWork::new((), 100, Duration::from_secs(10))),
            ))
            .unwrap();
        sim.run();
        let results = res_rx.drain_now();
        assert_eq!(
            results[0].outcome.error(),
            Some(&TaskError::ExhaustedRetries { attempts: 2 }),
            "the topic's cap of 2, not the model's 10, must apply"
        );
    }

    #[test]
    fn pace_knob_stretches_compute() {
        let sim = Sim::new();
        let (res_tx, res_rx) = channel();
        let config = WorkerPoolConfig::bare(SITE, "w", 1);
        let pool =
            WorkerPool::spawn(&sim, config, res_tx, &SimRng::from_seed(1), Tracer::disabled());
        pool.pace_knob().set(3.0);
        pool.tasks
            .send_now(TaskSpec::new(
                0,
                "t",
                vec![],
                Rc::new(|_| TaskWork::new((), 0, Duration::from_secs(10))),
            ))
            .unwrap();
        let r = sim.run();
        assert_eq!(r.end, SimTime::from_secs(30), "pace 3 triples a 10 s task");
        let results = res_rx.drain_now();
        assert_eq!(results[0].report.compute_time, Duration::from_secs(30));
    }

    #[test]
    fn crash_knob_wastes_half_then_reruns() {
        let sim = Sim::new();
        let (res_tx, res_rx) = channel();
        let config = WorkerPoolConfig::bare(SITE, "w", 1);
        let tracer = Tracer::enabled();
        let pool = WorkerPool::spawn(&sim, config, res_tx, &SimRng::from_seed(1), tracer.clone());
        pool.crash_knob().set(1.0); // certain crash
        pool.tasks
            .send_now(TaskSpec::new(
                0,
                "t",
                vec![],
                Rc::new(|_| TaskWork::new((), 0, Duration::from_secs(10))),
            ))
            .unwrap();
        let r = sim.run();
        // Half the compute wasted by the crash, then a full re-run.
        assert_eq!(r.end, SimTime::from_secs(15));
        let results = res_rx.drain_now();
        assert!(!results[0].is_failed(), "a crash storm delays, not fails");
        assert_eq!(results[0].report.wasted_time, Duration::from_secs(5));
        assert_eq!(results[0].report.attempts, 2);
        assert_eq!(tracer.events_of_kind(kinds::TASK_RETRY).len(), 1);
    }

    #[test]
    fn neutral_knobs_change_nothing() {
        let (sim_a, _pa, ra) = run_pool(2, 4, 3.0);
        sim_a.run();
        let (sim_b, pb, rb) = run_pool(2, 4, 3.0);
        pb.pace_knob().set(1.0); // explicitly neutral
        pb.crash_knob().set(0.0);
        sim_b.run();
        assert_eq!(sim_a.now(), sim_b.now());
        assert_eq!(ra.drain_now().len(), rb.drain_now().len());
    }

    #[test]
    fn timing_stamps_filled() {
        let (sim, _pool, res_rx) = run_pool(1, 1, 2.0);
        sim.run();
        let r = &res_rx.drain_now()[0];
        let t = r.timing;
        assert!(t.worker_started.is_some());
        assert!(t.inputs_resolved.is_some());
        assert!(t.compute_finished.is_some());
        assert!(t.result_dispatched.is_some());
        assert_eq!(
            t.compute_finished.unwrap() - t.inputs_resolved.unwrap(),
            Duration::from_secs(2)
        );
    }
}
