//! Deterministic chaos-injection engine.
//!
//! A [`ChaosSpec`] is a declarative fault script — endpoint flaps, a
//! permanent site kill, link brownouts, straggler slowdowns, worker
//! crash storms, cloud-service degradation, task storms — that
//! [`ChaosSpec::install`] compiles into scheduled actors against a
//! deployment's [`ChaosTargets`]: the [`Connectivity`] handles and
//! degradation [`Knob`]s the fabrics already consult, plus an optional
//! fabric handle for overload (task-storm) injection. Every random
//! choice is drawn from a named [`SimRng`] stream with one substream
//! per action, so a chaos run is replayable (same seed →
//! byte-identical trace digest) and editing one action never perturbs
//! the draws of another.
//!
//! All actors are finite: each performs its scripted transitions and
//! returns, so an installed chaos script never blocks simulation
//! quiescence. Actions naming an out-of-range endpoint or pool — or a
//! [`ChaosAction::TaskStorm`] when no storm target is wired — are
//! skipped: a chaos script is test scaffolding and must degrade, not
//! panic.

use super::{Connectivity, Knob};
use crate::fabric::Fabric;
use crate::task::TaskSpec;
use hetflow_sim::{Dist, Sim, SimRng, SimTime};
use std::rc::Rc;
use std::time::Duration;

/// Base of the task-id space storm tasks are issued from: far above any
/// id a thinker's monotone counter reaches, so storm traffic never
/// collides with campaign tasks in lifecycle accounting. Each storm
/// action gets its own `<< 32` sub-range under the base.
pub const STORM_ID_BASE: u64 = 1 << 48;

/// The handles a chaos script acts on, harvested from a deployment:
/// one [`Connectivity`] per endpoint, pace/crash [`Knob`]s per worker
/// pool, a brownout [`Knob`] per endpoint link, and optionally the
/// cloud-service degradation knob.
#[derive(Clone, Default)]
pub struct ChaosTargets {
    /// Per-endpoint connection handles (flaps, kills).
    pub connectivity: Vec<Connectivity>,
    /// Per-pool compute-pace multipliers (1.0 = nominal).
    pub pace: Vec<Knob>,
    /// Per-pool mid-task crash probabilities (0.0 = never).
    pub crash: Vec<Knob>,
    /// Per-endpoint link latency/bandwidth multipliers (1.0 = nominal).
    pub brownout: Vec<Knob>,
    /// Cloud-service round-trip multiplier, when the fabric has one.
    pub cloud: Option<Knob>,
    /// Fabric handle [`ChaosAction::TaskStorm`] submits through; storms
    /// are skipped when absent, so existing scripts are unaffected.
    pub storm: Option<Rc<dyn Fabric>>,
}

// Manual impl: `Rc<dyn Fabric>` has no `Debug`, so the storm slot
// prints as its fabric label instead.
impl std::fmt::Debug for ChaosTargets {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosTargets")
            .field("connectivity", &self.connectivity)
            .field("pace", &self.pace)
            .field("crash", &self.crash)
            .field("brownout", &self.brownout)
            .field("cloud", &self.cloud)
            .field("storm", &self.storm.as_ref().map(|fab| fab.label()))
            .finish()
    }
}

/// One scripted fault.
#[derive(Clone, Debug)]
pub enum ChaosAction {
    /// The endpoint's connection flaps: starting at `start`, it cycles
    /// offline-for-a-`down`-draw / online-for-an-`up`-draw, `cycles`
    /// times.
    Flap {
        /// Endpoint index into [`ChaosTargets::connectivity`].
        endpoint: usize,
        /// When the first drop happens.
        start: SimTime,
        /// Online period between drops.
        up: Dist,
        /// Offline period per drop.
        down: Dist,
        /// Number of offline windows.
        cycles: u32,
    },
    /// The endpoint goes dark at `at` and never reconnects — the
    /// site-loss scenario.
    Kill {
        /// Endpoint index into [`ChaosTargets::connectivity`].
        endpoint: usize,
        /// When the site is lost.
        at: SimTime,
    },
    /// The endpoint's link degrades: transfer costs multiply by
    /// `factor` for `duration`, then recover.
    Brownout {
        /// Endpoint index into [`ChaosTargets::brownout`].
        endpoint: usize,
        /// When the brownout begins.
        at: SimTime,
        /// How long it lasts.
        duration: Duration,
        /// Latency/bandwidth multiplier while degraded (> 1 is slower).
        factor: f64,
    },
    /// The pool's workers slow down: compute times multiply by `factor`
    /// for `duration`, then recover — the straggler scenario.
    Straggle {
        /// Pool index into [`ChaosTargets::pace`].
        pool: usize,
        /// When the slowdown begins.
        at: SimTime,
        /// How long it lasts.
        duration: Duration,
        /// Compute-time multiplier while degraded (> 1 is slower).
        factor: f64,
    },
    /// The pool's workers crash mid-task with probability `prob` per
    /// task for `duration`, then recover.
    CrashStorm {
        /// Pool index into [`ChaosTargets::crash`].
        pool: usize,
        /// When the storm begins.
        at: SimTime,
        /// How long it lasts.
        duration: Duration,
        /// Per-task mid-run crash probability while the storm lasts.
        prob: f64,
    },
    /// The cloud service itself degrades: every cloud round trip
    /// multiplies by `factor` for `duration`, then recovers.
    Degrade {
        /// When the degradation begins.
        at: SimTime,
        /// How long it lasts.
        duration: Duration,
        /// Cloud round-trip multiplier while degraded (> 1 is slower).
        factor: f64,
    },
    /// A flood of expendable background tasks — the overload scenario.
    /// Starting at `at`, the storm actor submits `tasks` junk tasks on
    /// the `"noop"` topic at [`TaskSpec::PRIORITY_LOW`], one per
    /// `interval` draw, through [`ChaosTargets::storm`]. Storm ids live
    /// in the [`STORM_ID_BASE`] space so they never collide with
    /// campaign ids. Skipped when no storm target is wired.
    TaskStorm {
        /// When the first storm task is submitted.
        at: SimTime,
        /// Number of tasks the storm submits.
        tasks: u32,
        /// Gap between consecutive submissions, seconds.
        interval: Dist,
        /// Declared inline payload size per task, bytes.
        bytes: u64,
        /// Worker compute seconds each storm task burns. Zero-work
        /// storms only stress the submission path; give storms real
        /// service time to contend for workers and queue slots.
        work: Dist,
    },
}

/// A declarative, replayable chaos script: a named RNG stream plus the
/// list of scripted faults.
#[derive(Clone, Debug)]
pub struct ChaosSpec {
    /// Name of the `SimRng` stream driving every random draw in this
    /// script — independent of the deployment's own streams, so
    /// installing chaos never shifts workload randomness.
    pub stream: String,
    /// The scripted faults, installed in order.
    pub actions: Vec<ChaosAction>,
}

impl ChaosSpec {
    /// A script with the conventional stream name.
    pub fn new(actions: Vec<ChaosAction>) -> Self {
        ChaosSpec { stream: "chaos".to_owned(), actions }
    }

    /// Compiles the script: spawns one finite actor per action on
    /// `sim`, acting on `targets`. Randomness comes from
    /// `SimRng::stream(seed, &self.stream)` with one substream per
    /// action index, so same `(seed, spec)` pairs replay exactly and
    /// per-action edits are isolated. Actions referencing an
    /// out-of-range endpoint or pool are skipped.
    pub fn install(&self, sim: &Sim, seed: u64, targets: &ChaosTargets) {
        let rng = SimRng::stream(seed, &self.stream);
        for (i, action) in self.actions.iter().enumerate() {
            let action_rng = rng.substream(i as u64);
            install_action(sim, action.clone(), i as u64, action_rng, targets);
        }
    }
}

fn install_action(
    sim: &Sim,
    action: ChaosAction,
    index: u64,
    mut rng: SimRng,
    targets: &ChaosTargets,
) {
    match action {
        ChaosAction::Flap { endpoint, start, up, down, cycles } => {
            let Some(conn) = targets.connectivity.get(endpoint).cloned() else { return };
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep_until(start).await;
                for _ in 0..cycles {
                    let down_for = down.sample_secs(&mut rng);
                    let up_for = up.sample_secs(&mut rng);
                    conn.set_online(false);
                    s.sleep(down_for).await;
                    conn.set_online(true);
                    s.sleep(up_for).await;
                }
            });
        }
        ChaosAction::Kill { endpoint, at } => {
            let Some(conn) = targets.connectivity.get(endpoint).cloned() else { return };
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep_until(at).await;
                conn.set_online(false);
            });
        }
        ChaosAction::Brownout { endpoint, at, duration, factor } => {
            let Some(knob) = targets.brownout.get(endpoint).cloned() else { return };
            dial(sim, knob, at, duration, factor, 1.0);
        }
        ChaosAction::Straggle { pool, at, duration, factor } => {
            let Some(knob) = targets.pace.get(pool).cloned() else { return };
            dial(sim, knob, at, duration, factor, 1.0);
        }
        ChaosAction::CrashStorm { pool, at, duration, prob } => {
            let Some(knob) = targets.crash.get(pool).cloned() else { return };
            dial(sim, knob, at, duration, prob, 0.0);
        }
        ChaosAction::Degrade { at, duration, factor } => {
            let Some(knob) = targets.cloud.clone() else { return };
            dial(sim, knob, at, duration, factor, 1.0);
        }
        ChaosAction::TaskStorm { at, tasks, interval, bytes, work } => {
            let Some(fabric) = targets.storm.clone() else { return };
            let s = sim.clone();
            let base = STORM_ID_BASE + (index << 32);
            sim.spawn(async move {
                s.sleep_until(at).await;
                for i in 0..u64::from(tasks) {
                    let burn = work.sample(&mut rng).max(0.0);
                    let task = storm_task(base + i, bytes, burn);
                    fabric.submit(task).await;
                    let gap = interval.sample_secs(&mut rng);
                    s.sleep(gap).await;
                }
            });
        }
    }
}

/// One storm task: inline junk payload, `burn` seconds of worker
/// compute, shed-first priority. Zero burn degenerates to
/// [`TaskSpec::noop`]'s shared-allocation path.
fn storm_task(id: u64, bytes: u64, burn: f64) -> TaskSpec {
    if burn == 0.0 {
        return TaskSpec::noop(id, bytes).with_priority(TaskSpec::PRIORITY_LOW);
    }
    let out_bytes = bytes;
    TaskSpec::new(
        id,
        "noop",
        crate::task::Arg::Inline { bytes, value: Rc::new(()) },
        Rc::new(move |_ctx| {
            crate::task::TaskWork::new((), out_bytes, hetflow_sim::time::secs(burn))
        }),
    )
    .with_priority(TaskSpec::PRIORITY_LOW)
}

/// Turns a knob to `value` at `at`, back to `neutral` after `duration`.
fn dial(sim: &Sim, knob: Knob, at: SimTime, duration: Duration, value: f64, neutral: f64) {
    let s = sim.clone();
    sim.spawn(async move {
        s.sleep_until(at).await;
        knob.set(value);
        s.sleep(duration).await;
        knob.set(neutral);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(t: u64) -> SimTime {
        SimTime::from_secs(t)
    }

    #[test]
    fn kill_takes_endpoint_down_permanently() {
        let sim = Sim::new();
        let targets = ChaosTargets {
            connectivity: vec![Connectivity::always_on(), Connectivity::always_on()],
            ..Default::default()
        };
        let spec = ChaosSpec::new(vec![ChaosAction::Kill { endpoint: 1, at: secs(50) }]);
        spec.install(&sim, 42, &targets);
        let report = sim.run();
        assert_eq!(report.pending_tasks, 0, "chaos actors must terminate");
        assert!(targets.connectivity[0].is_online(), "endpoint 0 untouched");
        assert!(!targets.connectivity[1].is_online(), "endpoint 1 stays dark");
        assert_eq!(sim.now(), secs(50));
    }

    #[test]
    fn flap_cycles_and_ends_online() {
        let sim = Sim::new();
        let targets = ChaosTargets {
            connectivity: vec![Connectivity::always_on()],
            ..Default::default()
        };
        let spec = ChaosSpec::new(vec![ChaosAction::Flap {
            endpoint: 0,
            start: secs(10),
            up: Dist::Constant(20.0),
            down: Dist::Constant(5.0),
            cycles: 3,
        }]);
        spec.install(&sim, 1, &targets);
        let report = sim.run();
        assert_eq!(report.pending_tasks, 0);
        assert_eq!(targets.connectivity[0].outages_seen(), 3);
        assert!(targets.connectivity[0].is_online(), "flap ends online");
        // 10 + 3 × (5 down + 20 up) = 85 s.
        assert_eq!(sim.now(), secs(85));
    }

    #[test]
    fn knob_actions_degrade_then_recover() {
        let sim = Sim::new();
        let targets = ChaosTargets {
            pace: vec![Knob::new(1.0)],
            crash: vec![Knob::new(0.0)],
            brownout: vec![Knob::new(1.0)],
            cloud: Some(Knob::new(1.0)),
            ..Default::default()
        };
        let spec = ChaosSpec::new(vec![
            ChaosAction::Straggle {
                pool: 0,
                at: secs(10),
                duration: Duration::from_secs(20),
                factor: 4.0,
            },
            ChaosAction::CrashStorm {
                pool: 0,
                at: secs(10),
                duration: Duration::from_secs(20),
                prob: 0.5,
            },
            ChaosAction::Brownout {
                endpoint: 0,
                at: secs(10),
                duration: Duration::from_secs(20),
                factor: 8.0,
            },
            ChaosAction::Degrade { at: secs(10), duration: Duration::from_secs(20), factor: 3.0 },
        ]);
        spec.install(&sim, 9, &targets);
        let observed = {
            let s = sim.clone();
            let t = targets.clone();
            sim.spawn(async move {
                s.sleep_until(secs(15)).await;
                (
                    t.pace[0].get(),
                    t.crash[0].get(),
                    t.brownout[0].get(),
                    t.cloud.as_ref().map(|k| k.get()),
                )
            })
        };
        let mid = sim.block_on(observed);
        assert_eq!(mid, (4.0, 0.5, 8.0, Some(3.0)), "mid-window values");
        sim.run();
        assert_eq!(targets.pace[0].get(), 1.0, "pace recovers to neutral");
        assert_eq!(targets.crash[0].get(), 0.0, "crash storm ends");
        assert_eq!(targets.brownout[0].get(), 1.0, "brownout lifts");
        assert_eq!(targets.cloud.as_ref().map(|k| k.get()), Some(1.0), "cloud recovers");
    }

    #[test]
    fn out_of_range_targets_are_skipped() {
        let sim = Sim::new();
        let targets = ChaosTargets::default(); // nothing to act on
        let spec = ChaosSpec::new(vec![
            ChaosAction::Kill { endpoint: 3, at: secs(1) },
            ChaosAction::Straggle {
                pool: 9,
                at: secs(1),
                duration: Duration::from_secs(1),
                factor: 2.0,
            },
            ChaosAction::Degrade { at: secs(1), duration: Duration::from_secs(1), factor: 2.0 },
            ChaosAction::TaskStorm {
                at: secs(1),
                tasks: 100,
                interval: Dist::Constant(0.1),
                bytes: 64,
                work: Dist::Constant(0.5),
            },
        ]);
        spec.install(&sim, 0, &targets);
        let report = sim.run();
        assert_eq!(report.pending_tasks, 0);
        assert_eq!(sim.now(), SimTime::ZERO, "no actors, no time passes");
    }

    #[test]
    fn same_seed_same_schedule_and_substreams_isolate_actions() {
        let run = |seed: u64, extra_action: bool| {
            let sim = Sim::new();
            let targets = ChaosTargets {
                connectivity: vec![Connectivity::always_on(), Connectivity::always_on()],
                ..Default::default()
            };
            let mut actions = vec![ChaosAction::Flap {
                endpoint: 0,
                start: secs(5),
                up: Dist::Uniform { lo: 10.0, hi: 30.0 },
                down: Dist::Uniform { lo: 1.0, hi: 9.0 },
                cycles: 5,
            }];
            if extra_action {
                actions.push(ChaosAction::Kill { endpoint: 1, at: secs(2) });
            }
            let spec = ChaosSpec::new(actions);
            spec.install(&sim, seed, &targets);
            sim.run();
            sim.now()
        };
        assert_eq!(run(11, false), run(11, false), "same seed replays exactly");
        assert_ne!(run(11, false), run(12, false), "seeds diverge");
        assert_eq!(
            run(11, false),
            run(11, true),
            "appending an action must not shift an earlier action's draws"
        );
    }
}
