//! Deterministic chaos-injection engine.
//!
//! A [`ChaosSpec`] is a declarative fault script — endpoint flaps, a
//! permanent site kill, link brownouts, straggler slowdowns, worker
//! crash storms, cloud-service degradation — that [`ChaosSpec::install`]
//! compiles into scheduled actors against a deployment's
//! [`ChaosTargets`]: the [`Connectivity`] handles and degradation
//! [`Knob`]s the fabrics already consult. Every random choice is drawn
//! from a named [`SimRng`] stream with one substream per action, so a
//! chaos run is replayable (same seed → byte-identical trace digest)
//! and editing one action never perturbs the draws of another.
//!
//! All actors are finite: each performs its scripted transitions and
//! returns, so an installed chaos script never blocks simulation
//! quiescence. Actions naming an out-of-range endpoint or pool are
//! skipped — a chaos script is test scaffolding and must degrade, not
//! panic.

use super::{Connectivity, Knob};
use hetflow_sim::{Dist, Sim, SimRng, SimTime};
use std::time::Duration;

/// The handles a chaos script acts on, harvested from a deployment:
/// one [`Connectivity`] per endpoint, pace/crash [`Knob`]s per worker
/// pool, a brownout [`Knob`] per endpoint link, and optionally the
/// cloud-service degradation knob.
#[derive(Clone, Debug, Default)]
pub struct ChaosTargets {
    /// Per-endpoint connection handles (flaps, kills).
    pub connectivity: Vec<Connectivity>,
    /// Per-pool compute-pace multipliers (1.0 = nominal).
    pub pace: Vec<Knob>,
    /// Per-pool mid-task crash probabilities (0.0 = never).
    pub crash: Vec<Knob>,
    /// Per-endpoint link latency/bandwidth multipliers (1.0 = nominal).
    pub brownout: Vec<Knob>,
    /// Cloud-service round-trip multiplier, when the fabric has one.
    pub cloud: Option<Knob>,
}

/// One scripted fault.
#[derive(Clone, Debug)]
pub enum ChaosAction {
    /// The endpoint's connection flaps: starting at `start`, it cycles
    /// offline-for-a-`down`-draw / online-for-an-`up`-draw, `cycles`
    /// times.
    Flap {
        /// Endpoint index into [`ChaosTargets::connectivity`].
        endpoint: usize,
        /// When the first drop happens.
        start: SimTime,
        /// Online period between drops.
        up: Dist,
        /// Offline period per drop.
        down: Dist,
        /// Number of offline windows.
        cycles: u32,
    },
    /// The endpoint goes dark at `at` and never reconnects — the
    /// site-loss scenario.
    Kill {
        /// Endpoint index into [`ChaosTargets::connectivity`].
        endpoint: usize,
        /// When the site is lost.
        at: SimTime,
    },
    /// The endpoint's link degrades: transfer costs multiply by
    /// `factor` for `duration`, then recover.
    Brownout {
        /// Endpoint index into [`ChaosTargets::brownout`].
        endpoint: usize,
        /// When the brownout begins.
        at: SimTime,
        /// How long it lasts.
        duration: Duration,
        /// Latency/bandwidth multiplier while degraded (> 1 is slower).
        factor: f64,
    },
    /// The pool's workers slow down: compute times multiply by `factor`
    /// for `duration`, then recover — the straggler scenario.
    Straggle {
        /// Pool index into [`ChaosTargets::pace`].
        pool: usize,
        /// When the slowdown begins.
        at: SimTime,
        /// How long it lasts.
        duration: Duration,
        /// Compute-time multiplier while degraded (> 1 is slower).
        factor: f64,
    },
    /// The pool's workers crash mid-task with probability `prob` per
    /// task for `duration`, then recover.
    CrashStorm {
        /// Pool index into [`ChaosTargets::crash`].
        pool: usize,
        /// When the storm begins.
        at: SimTime,
        /// How long it lasts.
        duration: Duration,
        /// Per-task mid-run crash probability while the storm lasts.
        prob: f64,
    },
    /// The cloud service itself degrades: every cloud round trip
    /// multiplies by `factor` for `duration`, then recovers.
    Degrade {
        /// When the degradation begins.
        at: SimTime,
        /// How long it lasts.
        duration: Duration,
        /// Cloud round-trip multiplier while degraded (> 1 is slower).
        factor: f64,
    },
}

/// A declarative, replayable chaos script: a named RNG stream plus the
/// list of scripted faults.
#[derive(Clone, Debug)]
pub struct ChaosSpec {
    /// Name of the `SimRng` stream driving every random draw in this
    /// script — independent of the deployment's own streams, so
    /// installing chaos never shifts workload randomness.
    pub stream: String,
    /// The scripted faults, installed in order.
    pub actions: Vec<ChaosAction>,
}

impl ChaosSpec {
    /// A script with the conventional stream name.
    pub fn new(actions: Vec<ChaosAction>) -> Self {
        ChaosSpec { stream: "chaos".to_owned(), actions }
    }

    /// Compiles the script: spawns one finite actor per action on
    /// `sim`, acting on `targets`. Randomness comes from
    /// `SimRng::stream(seed, &self.stream)` with one substream per
    /// action index, so same `(seed, spec)` pairs replay exactly and
    /// per-action edits are isolated. Actions referencing an
    /// out-of-range endpoint or pool are skipped.
    pub fn install(&self, sim: &Sim, seed: u64, targets: &ChaosTargets) {
        let rng = SimRng::stream(seed, &self.stream);
        for (i, action) in self.actions.iter().enumerate() {
            let action_rng = rng.substream(i as u64);
            install_action(sim, action.clone(), action_rng, targets);
        }
    }
}

fn install_action(sim: &Sim, action: ChaosAction, mut rng: SimRng, targets: &ChaosTargets) {
    match action {
        ChaosAction::Flap { endpoint, start, up, down, cycles } => {
            let Some(conn) = targets.connectivity.get(endpoint).cloned() else { return };
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep_until(start).await;
                for _ in 0..cycles {
                    let down_for = down.sample_secs(&mut rng);
                    let up_for = up.sample_secs(&mut rng);
                    conn.set_online(false);
                    s.sleep(down_for).await;
                    conn.set_online(true);
                    s.sleep(up_for).await;
                }
            });
        }
        ChaosAction::Kill { endpoint, at } => {
            let Some(conn) = targets.connectivity.get(endpoint).cloned() else { return };
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep_until(at).await;
                conn.set_online(false);
            });
        }
        ChaosAction::Brownout { endpoint, at, duration, factor } => {
            let Some(knob) = targets.brownout.get(endpoint).cloned() else { return };
            dial(sim, knob, at, duration, factor, 1.0);
        }
        ChaosAction::Straggle { pool, at, duration, factor } => {
            let Some(knob) = targets.pace.get(pool).cloned() else { return };
            dial(sim, knob, at, duration, factor, 1.0);
        }
        ChaosAction::CrashStorm { pool, at, duration, prob } => {
            let Some(knob) = targets.crash.get(pool).cloned() else { return };
            dial(sim, knob, at, duration, prob, 0.0);
        }
        ChaosAction::Degrade { at, duration, factor } => {
            let Some(knob) = targets.cloud.clone() else { return };
            dial(sim, knob, at, duration, factor, 1.0);
        }
    }
}

/// Turns a knob to `value` at `at`, back to `neutral` after `duration`.
fn dial(sim: &Sim, knob: Knob, at: SimTime, duration: Duration, value: f64, neutral: f64) {
    let s = sim.clone();
    sim.spawn(async move {
        s.sleep_until(at).await;
        knob.set(value);
        s.sleep(duration).await;
        knob.set(neutral);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(t: u64) -> SimTime {
        SimTime::from_secs(t)
    }

    #[test]
    fn kill_takes_endpoint_down_permanently() {
        let sim = Sim::new();
        let targets = ChaosTargets {
            connectivity: vec![Connectivity::always_on(), Connectivity::always_on()],
            ..Default::default()
        };
        let spec = ChaosSpec::new(vec![ChaosAction::Kill { endpoint: 1, at: secs(50) }]);
        spec.install(&sim, 42, &targets);
        let report = sim.run();
        assert_eq!(report.pending_tasks, 0, "chaos actors must terminate");
        assert!(targets.connectivity[0].is_online(), "endpoint 0 untouched");
        assert!(!targets.connectivity[1].is_online(), "endpoint 1 stays dark");
        assert_eq!(sim.now(), secs(50));
    }

    #[test]
    fn flap_cycles_and_ends_online() {
        let sim = Sim::new();
        let targets = ChaosTargets {
            connectivity: vec![Connectivity::always_on()],
            ..Default::default()
        };
        let spec = ChaosSpec::new(vec![ChaosAction::Flap {
            endpoint: 0,
            start: secs(10),
            up: Dist::Constant(20.0),
            down: Dist::Constant(5.0),
            cycles: 3,
        }]);
        spec.install(&sim, 1, &targets);
        let report = sim.run();
        assert_eq!(report.pending_tasks, 0);
        assert_eq!(targets.connectivity[0].outages_seen(), 3);
        assert!(targets.connectivity[0].is_online(), "flap ends online");
        // 10 + 3 × (5 down + 20 up) = 85 s.
        assert_eq!(sim.now(), secs(85));
    }

    #[test]
    fn knob_actions_degrade_then_recover() {
        let sim = Sim::new();
        let targets = ChaosTargets {
            pace: vec![Knob::new(1.0)],
            crash: vec![Knob::new(0.0)],
            brownout: vec![Knob::new(1.0)],
            cloud: Some(Knob::new(1.0)),
            ..Default::default()
        };
        let spec = ChaosSpec::new(vec![
            ChaosAction::Straggle {
                pool: 0,
                at: secs(10),
                duration: Duration::from_secs(20),
                factor: 4.0,
            },
            ChaosAction::CrashStorm {
                pool: 0,
                at: secs(10),
                duration: Duration::from_secs(20),
                prob: 0.5,
            },
            ChaosAction::Brownout {
                endpoint: 0,
                at: secs(10),
                duration: Duration::from_secs(20),
                factor: 8.0,
            },
            ChaosAction::Degrade { at: secs(10), duration: Duration::from_secs(20), factor: 3.0 },
        ]);
        spec.install(&sim, 9, &targets);
        let observed = {
            let s = sim.clone();
            let t = targets.clone();
            sim.spawn(async move {
                s.sleep_until(secs(15)).await;
                (
                    t.pace[0].get(),
                    t.crash[0].get(),
                    t.brownout[0].get(),
                    t.cloud.as_ref().map(|k| k.get()),
                )
            })
        };
        let mid = sim.block_on(observed);
        assert_eq!(mid, (4.0, 0.5, 8.0, Some(3.0)), "mid-window values");
        sim.run();
        assert_eq!(targets.pace[0].get(), 1.0, "pace recovers to neutral");
        assert_eq!(targets.crash[0].get(), 0.0, "crash storm ends");
        assert_eq!(targets.brownout[0].get(), 1.0, "brownout lifts");
        assert_eq!(targets.cloud.as_ref().map(|k| k.get()), Some(1.0), "cloud recovers");
    }

    #[test]
    fn out_of_range_targets_are_skipped() {
        let sim = Sim::new();
        let targets = ChaosTargets::default(); // nothing to act on
        let spec = ChaosSpec::new(vec![
            ChaosAction::Kill { endpoint: 3, at: secs(1) },
            ChaosAction::Straggle {
                pool: 9,
                at: secs(1),
                duration: Duration::from_secs(1),
                factor: 2.0,
            },
            ChaosAction::Degrade { at: secs(1), duration: Duration::from_secs(1), factor: 2.0 },
        ]);
        spec.install(&sim, 0, &targets);
        let report = sim.run();
        assert_eq!(report.pending_tasks, 0);
        assert_eq!(sim.now(), SimTime::ZERO, "no actors, no time passes");
    }

    #[test]
    fn same_seed_same_schedule_and_substreams_isolate_actions() {
        let run = |seed: u64, extra_action: bool| {
            let sim = Sim::new();
            let targets = ChaosTargets {
                connectivity: vec![Connectivity::always_on(), Connectivity::always_on()],
                ..Default::default()
            };
            let mut actions = vec![ChaosAction::Flap {
                endpoint: 0,
                start: secs(5),
                up: Dist::Uniform { lo: 10.0, hi: 30.0 },
                down: Dist::Uniform { lo: 1.0, hi: 9.0 },
                cycles: 5,
            }];
            if extra_action {
                actions.push(ChaosAction::Kill { endpoint: 1, at: secs(2) });
            }
            let spec = ChaosSpec::new(actions);
            spec.install(&sim, seed, &targets);
            sim.run();
            sim.now()
        };
        assert_eq!(run(11, false), run(11, false), "same seed replays exactly");
        assert_ne!(run(11, false), run(12, false), "seeds diverge");
        assert_eq!(
            run(11, false),
            run(11, true),
            "appending an action must not shift an earlier action's draws"
        );
    }
}
