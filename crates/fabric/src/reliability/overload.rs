//! Overload protection: admission control and backpressure.
//!
//! Two complementary mechanisms guard a fabric against task storms:
//!
//! * [`AdmissionController`] — a per-topic token bucket plus in-flight
//!   cap consulted at submission time. A task refused admission is shed
//!   immediately (it never reaches an endpoint queue), so the fabric
//!   spends no transit or worker time on load it cannot carry.
//! * [`BackpressureGate`] — per-topic depth watermarks. When the number
//!   of tasks between submission and terminal result crosses the high
//!   watermark the gate closes and upstream submitters
//!   ([`BackpressureGate::acquire`]) park until the depth drains below
//!   the low watermark. Closing and reopening emit
//!   `backpressure_on`/`backpressure_off` trace events that fold into
//!   the digest.
//!
//! Both follow the crate's zero-value-defers convention: an all-zero
//! [`AdmissionConfig`]/[`BackpressureConfig`] performs no awaits, draws
//! no random numbers, and emits no trace events, so existing same-seed
//! runs stay bit-identical.

use hetflow_sim::{trace_kinds as kinds, Event, Sim, SimTime, Symbol, SymbolMap, Tracer};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Token-bucket admission control for one topic.
///
/// The zero values are "defer": `rate == 0` means no rate limit,
/// `max_in_flight == 0` means no concurrency cap, and the all-zero
/// default disables the controller entirely for the topic.
#[derive(Clone, Debug, Default)]
pub struct AdmissionConfig {
    /// Sustained admissions per (virtual) second. `0` disables rate
    /// limiting.
    pub rate: f64,
    /// Bucket depth: how many admissions can burst above the sustained
    /// rate. `0` with a nonzero `rate` defaults to `max(rate, 1)`.
    pub burst: f64,
    /// Maximum tasks of this topic between admission and terminal
    /// result. `0` disables the cap.
    pub max_in_flight: usize,
}

impl AdmissionConfig {
    /// True when any admission mechanism is configured.
    pub fn enabled(&self) -> bool {
        self.rate > 0.0 || self.max_in_flight > 0
    }

    fn bucket_cap(&self) -> f64 {
        if self.burst > 0.0 {
            self.burst
        } else {
            self.rate.max(1.0)
        }
    }
}

/// Depth watermarks for one topic's backpressure gate.
///
/// `high == 0` disables the gate (the zero-value defer). `low` is
/// clamped below `high` so a closed gate always reopens strictly under
/// the closing threshold.
#[derive(Clone, Debug, Default)]
pub struct BackpressureConfig {
    /// Depth at or above which the gate closes. `0` disables.
    pub high: usize,
    /// Depth at or below which a closed gate reopens.
    pub low: usize,
}

impl BackpressureConfig {
    /// True when the gate is configured.
    pub fn enabled(&self) -> bool {
        self.high > 0
    }

    fn low_mark(&self) -> usize {
        self.low.min(self.high.saturating_sub(1))
    }
}

struct TopicAdmission {
    tokens: Cell<f64>,
    refilled_at: Cell<SimTime>,
    in_flight: Cell<usize>,
}

/// Per-topic token buckets and in-flight caps, consulted by the fabrics
/// before [`crate::ReliabilityLayer::admit`]. Refills are computed
/// lazily from elapsed virtual time — no timer actors, no RNG draws —
/// so the controller is exactly as deterministic as the clock.
pub struct AdmissionController {
    sim: Sim,
    topics: RefCell<SymbolMap<Rc<TopicAdmission>>>,
    rejected: Cell<u64>,
}

impl AdmissionController {
    /// A controller with no per-topic state yet; buckets materialize on
    /// first use of an enabled config.
    pub fn new(sim: &Sim) -> Self {
        AdmissionController {
            sim: sim.clone(),
            topics: RefCell::new(SymbolMap::new()),
            rejected: Cell::new(0),
        }
    }

    fn state_for(&self, topic: Symbol, cfg: &AdmissionConfig) -> Rc<TopicAdmission> {
        let mut topics = self.topics.borrow_mut();
        if let Some(st) = topics.get(topic) {
            return Rc::clone(st);
        }
        let st = Rc::new(TopicAdmission {
            tokens: Cell::new(cfg.bucket_cap()),
            refilled_at: Cell::new(self.sim.now()),
            in_flight: Cell::new(0),
        });
        topics.insert(topic, Rc::clone(&st));
        st
    }

    /// Decides whether a task of `topic` may enter the fabric under
    /// `cfg`. `true` consumes a token (and an in-flight slot when
    /// capped); the caller must balance every capped admission with
    /// [`AdmissionController::on_done`]. A disabled config admits
    /// unconditionally and touches no state.
    pub fn try_admit(&self, topic: Symbol, cfg: &AdmissionConfig) -> bool {
        if !cfg.enabled() {
            return true;
        }
        let st = self.state_for(topic, cfg);
        if cfg.max_in_flight > 0 && st.in_flight.get() >= cfg.max_in_flight {
            self.rejected.set(self.rejected.get() + 1);
            return false;
        }
        if cfg.rate > 0.0 {
            let now = self.sim.now();
            let elapsed = now.duration_since(st.refilled_at.get()).as_secs_f64();
            let tokens = (st.tokens.get() + elapsed * cfg.rate).min(cfg.bucket_cap());
            st.refilled_at.set(now);
            if tokens < 1.0 {
                st.tokens.set(tokens);
                self.rejected.set(self.rejected.get() + 1);
                return false;
            }
            st.tokens.set(tokens - 1.0);
        }
        if cfg.max_in_flight > 0 {
            st.in_flight.set(st.in_flight.get() + 1);
        }
        true
    }

    /// Releases the in-flight slot taken by an admitted task of
    /// `topic`. No-op for topics that never had a capped admission.
    pub fn on_done(&self, topic: Symbol) {
        if let Some(st) = self.topics.borrow().get(topic) {
            st.in_flight.set(st.in_flight.get().saturating_sub(1));
        }
    }

    /// Tasks of `topic` currently between admission and release.
    pub fn in_flight(&self, topic: Symbol) -> usize {
        self.topics.borrow().get(topic).map_or(0, |st| st.in_flight.get())
    }

    /// Total submissions refused so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.get()
    }
}

struct TopicGate {
    cfg: BackpressureConfig,
    /// Registration order — the `entity` of this topic's backpressure
    /// trace events (topics are not numeric entities).
    index: u64,
    depth: Cell<usize>,
    closed: Cell<bool>,
    /// Level event, set while the gate is open. `acquire` resolves
    /// synchronously while set, so an open gate adds zero awaits.
    open: Event,
}

struct GateInner {
    sim: Sim,
    tracer: Tracer,
    actor: Symbol,
    topics: RefCell<SymbolMap<Rc<TopicGate>>>,
    transitions: Cell<u64>,
}

/// Per-topic high/low watermark gate over in-fabric task depth.
///
/// The fabric calls [`BackpressureGate::on_enter`] when a submission is
/// accepted and [`BackpressureGate::on_exit`] when its terminal result
/// is forwarded; steering clients await
/// [`BackpressureGate::acquire`] before submitting. Clones share state.
#[derive(Clone)]
pub struct BackpressureGate {
    inner: Rc<GateInner>,
}

impl BackpressureGate {
    /// An empty gate attributed to `actor` in the trace.
    pub fn new(sim: &Sim, tracer: Tracer, actor: impl Into<Symbol>) -> Self {
        BackpressureGate {
            inner: Rc::new(GateInner {
                sim: sim.clone(),
                tracer,
                actor: actor.into(),
                topics: RefCell::new(SymbolMap::new()),
                transitions: Cell::new(0),
            }),
        }
    }

    /// Registers `topic` with its watermarks. A disabled config (high
    /// watermark 0) registers nothing, so the topic stays gate-free.
    pub fn register(&self, topic: impl Into<Symbol>, cfg: &BackpressureConfig) {
        if !cfg.enabled() {
            return;
        }
        let mut topics = self.inner.topics.borrow_mut();
        let index = topics.len() as u64;
        let open = Event::new();
        open.set();
        topics.insert(
            topic.into(),
            Rc::new(TopicGate {
                cfg: cfg.clone(),
                index,
                depth: Cell::new(0),
                closed: Cell::new(false),
                open,
            }),
        );
    }

    fn gate(&self, topic: Symbol) -> Option<Rc<TopicGate>> {
        self.inner.topics.borrow().get(topic).cloned()
    }

    /// Parks until `topic`'s gate is open. Resolves immediately —
    /// without suspending — when the topic is unregistered or the gate
    /// is open, so ungated workloads schedule identically with or
    /// without a gate in place.
    pub async fn acquire(&self, topic: Symbol) {
        let Some(g) = self.gate(topic) else { return };
        while g.closed.get() {
            g.open.wait().await;
        }
    }

    /// Records a submission entering the fabric; closes the gate at the
    /// high watermark and emits `backpressure_on`.
    pub fn on_enter(&self, topic: Symbol) {
        let Some(g) = self.gate(topic) else { return };
        let depth = g.depth.get() + 1;
        g.depth.set(depth);
        if !g.closed.get() && depth >= g.cfg.high {
            g.closed.set(true);
            g.open.clear();
            self.inner.transitions.set(self.inner.transitions.get() + 1);
            self.inner.tracer.emit(
                self.inner.sim.now(),
                self.inner.actor,
                kinds::BACKPRESSURE_ON,
                g.index,
                depth as f64,
            );
        }
    }

    /// Records a terminal result leaving the fabric; reopens the gate
    /// at the low watermark and emits `backpressure_off`.
    pub fn on_exit(&self, topic: Symbol) {
        let Some(g) = self.gate(topic) else { return };
        let depth = g.depth.get().saturating_sub(1);
        g.depth.set(depth);
        if g.closed.get() && depth <= g.cfg.low_mark() {
            g.closed.set(false);
            g.open.set();
            self.inner.tracer.emit(
                self.inner.sim.now(),
                self.inner.actor,
                kinds::BACKPRESSURE_OFF,
                g.index,
                depth as f64,
            );
        }
    }

    /// True when no topic has watermarks registered — the gate can be
    /// skipped entirely.
    pub fn is_empty(&self) -> bool {
        self.inner.topics.borrow().is_empty()
    }

    /// Current in-fabric depth of `topic` (0 when unregistered).
    pub fn depth(&self, topic: Symbol) -> usize {
        self.gate(topic).map_or(0, |g| g.depth.get())
    }

    /// True while `topic`'s gate is closed.
    pub fn is_closed(&self, topic: Symbol) -> bool {
        self.gate(topic).is_some_and(|g| g.closed.get())
    }

    /// Number of open→closed transitions so far (a pressure measure for
    /// benches and degradation policies).
    pub fn closures(&self) -> u64 {
        self.inner.transitions.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetflow_sim::time::secs;

    fn topic() -> Symbol {
        "simulate".into()
    }

    #[test]
    fn disabled_config_admits_everything_statelessly() {
        let sim = Sim::new();
        let ctl = AdmissionController::new(&sim);
        let cfg = AdmissionConfig::default();
        for _ in 0..1000 {
            assert!(ctl.try_admit(topic(), &cfg));
        }
        assert_eq!(ctl.rejected(), 0);
        assert_eq!(ctl.in_flight(topic()), 0, "disabled config creates no state");
    }

    #[test]
    fn token_bucket_caps_burst_and_refills_with_time() {
        let sim = Sim::new();
        let ctl = AdmissionController::new(&sim);
        let cfg = AdmissionConfig { rate: 2.0, burst: 3.0, max_in_flight: 0 };
        let admitted = (0..10).filter(|_| ctl.try_admit(topic(), &cfg)).count();
        assert_eq!(admitted, 3, "burst admits the bucket depth");
        assert_eq!(ctl.rejected(), 7);
        let s = sim.clone();
        let ctl2 = Rc::new(ctl);
        let c = Rc::clone(&ctl2);
        let h = sim.spawn(async move {
            s.sleep(secs(1.0)).await;
            (0..10).filter(|_| c.try_admit(topic(), &cfg)).count()
        });
        assert_eq!(sim.block_on(h), 2, "1s at rate 2 refills two tokens");
    }

    #[test]
    fn in_flight_cap_blocks_until_release() {
        let sim = Sim::new();
        let ctl = AdmissionController::new(&sim);
        let cfg = AdmissionConfig { rate: 0.0, burst: 0.0, max_in_flight: 2 };
        assert!(ctl.try_admit(topic(), &cfg));
        assert!(ctl.try_admit(topic(), &cfg));
        assert!(!ctl.try_admit(topic(), &cfg));
        assert_eq!(ctl.in_flight(topic()), 2);
        ctl.on_done(topic());
        assert!(ctl.try_admit(topic(), &cfg));
        assert_eq!(ctl.rejected(), 1);
    }

    #[test]
    fn gate_closes_at_high_and_reopens_at_low() {
        let sim = Sim::new();
        let gate = BackpressureGate::new(&sim, Tracer::enabled(), "fabric");
        gate.register(topic(), &BackpressureConfig { high: 3, low: 1 });
        gate.on_enter(topic());
        gate.on_enter(topic());
        assert!(!gate.is_closed(topic()));
        gate.on_enter(topic());
        assert!(gate.is_closed(topic()));
        assert_eq!(gate.closures(), 1);
        gate.on_exit(topic());
        assert!(gate.is_closed(topic()), "still above the low watermark");
        gate.on_exit(topic());
        assert!(!gate.is_closed(topic()));
        assert_eq!(gate.depth(topic()), 1);
    }

    #[test]
    fn acquire_parks_while_closed_and_wakes_on_reopen() {
        let sim = Sim::new();
        let gate = BackpressureGate::new(&sim, Tracer::disabled(), "fabric");
        gate.register(topic(), &BackpressureConfig { high: 2, low: 0 });
        gate.on_enter(topic());
        gate.on_enter(topic());
        assert!(gate.is_closed(topic()));
        let g = gate.clone();
        let s = sim.clone();
        let h = sim.spawn(async move {
            g.acquire(topic()).await;
            s.now()
        });
        let g2 = gate.clone();
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(secs(5.0)).await;
            g2.on_exit(topic());
            g2.on_exit(topic());
        });
        assert_eq!(sim.block_on(h), hetflow_sim::SimTime::from_secs(5));
    }

    #[test]
    fn unregistered_topic_never_gates() {
        let sim = Sim::new();
        let gate = BackpressureGate::new(&sim, Tracer::disabled(), "fabric");
        gate.register(topic(), &BackpressureConfig::default());
        gate.on_enter(topic());
        assert!(!gate.is_closed(topic()));
        assert_eq!(gate.depth(topic()), 0, "disabled config registers nothing");
        let g = gate.clone();
        let h = sim.spawn(async move {
            g.acquire(topic()).await;
            true
        });
        assert!(sim.block_on(h));
    }
}
