//! Endpoint health tracking, circuit breaking, and failover dispatch —
//! the *active* half of the robustness story.
//!
//! The cloud services give the fabrics passive robustness (§IV-A3:
//! tasks are held while an endpoint is offline), but nothing in funcX
//! or Colmena *reacts* to an unhealthy resource: a task routed to a
//! dark endpoint waits out the outage and a straggling worker stalls
//! the campaign. [`ReliabilityLayer`] adds the reaction. Per endpoint
//! it folds heartbeat gaps (connectivity watchers), consecutive
//! failures, and tail-latency violations into an open/half-open/closed
//! circuit breaker; the dispatch path consults the breakers to steer
//! tasks to healthy endpoints, re-issues straggling tasks elsewhere
//! after a quantile-based hedge delay, and re-routes delivery timeouts
//! instead of failing them — while guaranteeing the thinker sees
//! **exactly one** terminal outcome per task id: the first result wins
//! and every losing copy is cancelled and accounted as waste.
//!
//! All decisions are RNG-free functions of observed simulation events,
//! so enabling the layer keeps same-seed runs digest-stable, and the
//! all-zero [`ReliabilityPolicy`] disables every mechanism without
//! perturbing existing traces (the `RetryPolicy` zero-defers
//! convention).

use crate::reliability::Connectivity;
use crate::task::{TaskId, TaskSpec};
use hetflow_sim::{trace_kinds as kinds, Samples, Sim, SimTime, Symbol, SymbolMap, Tracer};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

/// Cool-down applied when a breaker opens and the policy leaves
/// `open_for` at zero.
const DEFAULT_OPEN_FOR: Duration = Duration::from_secs(60);
/// Successes required to close a half-open breaker when the policy
/// leaves `close_after` at zero.
const DEFAULT_CLOSE_AFTER: u32 = 1;
/// Hedge-delay sample floor when the policy leaves `min_samples` at
/// zero.
const DEFAULT_MIN_SAMPLES: usize = 8;

/// Per-topic circuit-breaker tuning. Zero values defer, matching
/// [`crate::reliability::RetryPolicy`]: the all-zero default disables
/// the breaker entirely and draws no entropy, leaving existing
/// same-seed traces bit-identical.
#[derive(Clone, Debug, Default)]
pub struct BreakerConfig {
    /// Consecutive failures observed at an endpoint before its breaker
    /// opens. `0` disables circuit breaking for this topic.
    pub failure_threshold: u32,
    /// How long an open breaker rejects dispatches before admitting a
    /// half-open probe. `0` defers to 60 s.
    pub open_for: Duration,
    /// Probe successes required to close a half-open breaker. `0`
    /// defers to 1.
    pub close_after: u32,
    /// Heartbeat grace: when the endpoint's connection stays offline
    /// longer than this, the breaker trips without waiting for task
    /// failures. `0` disables the connectivity watcher.
    pub offline_grace: Duration,
    /// Tail-latency SLO: a *successful* round trip slower than this
    /// still counts as a failure signal for the breaker (the endpoint
    /// is technically up but too slow to be useful). `0` disables
    /// latency-based tripping.
    pub latency_slo: Duration,
}

impl BreakerConfig {
    /// True when circuit breaking is enabled for this topic.
    pub fn enabled(&self) -> bool {
        self.failure_threshold > 0
    }

    fn open_for(&self) -> Duration {
        if self.open_for.is_zero() {
            DEFAULT_OPEN_FOR
        } else {
            self.open_for
        }
    }

    fn close_after(&self) -> u32 {
        self.close_after.max(DEFAULT_CLOSE_AFTER)
    }
}

/// Hedged-dispatch tuning for stragglers. Zero values defer; the
/// all-zero default disables hedging.
#[derive(Clone, Debug, Default)]
pub struct HedgeConfig {
    /// Round-trip-latency quantile after which a straggling task is
    /// re-issued (e.g. `0.95`). `0.0` disables hedging.
    pub quantile: f64,
    /// Multiplier on the quantile delay. `0.0` defers to 1.0.
    pub factor: f64,
    /// Observed round trips required before the quantile estimate is
    /// trusted. `0` defers to 8.
    pub min_samples: usize,
    /// Maximum speculative copies issued per task. `0` defers to 1.
    pub max_hedges: u32,
}

impl HedgeConfig {
    /// True when hedged dispatch is enabled for this topic.
    pub fn enabled(&self) -> bool {
        self.quantile > 0.0
    }

    fn min_samples(&self) -> usize {
        if self.min_samples == 0 {
            DEFAULT_MIN_SAMPLES
        } else {
            self.min_samples
        }
    }

    fn max_hedges(&self) -> u32 {
        self.max_hedges.max(1)
    }
}

/// The full reliability policy for one topic.
#[derive(Clone, Debug, Default)]
pub struct ReliabilityPolicy {
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Hedged-dispatch tuning.
    pub hedge: HedgeConfig,
    /// Delivery timeouts re-dispatch to another endpoint up to this
    /// many times before failing the task. `0` keeps the PR-2
    /// behavior: a delivery timeout fails the task immediately.
    pub max_reroutes: u32,
    /// Hard round-trip deadline measured from dispatch: a task with no
    /// terminal outcome after this long is failed by the fabric, even
    /// if copies are still stuck in flight (they are cancelled on
    /// arrival). The backstop that makes "exactly one terminal outcome
    /// per task" hold under arbitrary chaos. `Duration::ZERO` disables
    /// it.
    pub deadline: Duration,
    /// Admission control (token-bucket rate + in-flight cap) applied
    /// before the task enters the fabric. All-zero disables it.
    pub admission: crate::reliability::overload::AdmissionConfig,
    /// Backpressure watermarks on in-fabric depth for this topic. A
    /// zero high watermark disables the gate.
    pub backpressure: crate::reliability::overload::BackpressureConfig,
}

impl ReliabilityPolicy {
    /// True when any active mechanism is configured — used by the
    /// fabrics to decide whether a task spec must be retained for
    /// possible re-issue.
    fn needs_copy(&self) -> bool {
        self.hedge.enabled() || self.max_reroutes > 0
    }
}

/// Per-topic reliability policies with a fallback default, mirroring
/// [`crate::reliability::RetryPolicies`]. The endpoint-level
/// connectivity watchers are governed by the `default` policy's
/// breaker config (an endpoint serves many topics; its heartbeat is
/// topic-agnostic).
#[derive(Clone, Debug, Default)]
pub struct ReliabilityPolicies {
    /// Policy for topics without a dedicated entry.
    pub default: ReliabilityPolicy,
    /// Topic-specific overrides. Indexed by interned [`Symbol`] id —
    /// O(1) per dispatch-path lookup — while iterating in
    /// resolved-string order, so traces match the old
    /// `BTreeMap<String, _>` exactly.
    pub per_topic: SymbolMap<ReliabilityPolicy>,
}

impl ReliabilityPolicies {
    /// Builder: sets the policy for one topic.
    pub fn with_topic(mut self, topic: impl Into<Symbol>, policy: ReliabilityPolicy) -> Self {
        self.per_topic.insert(topic.into(), policy);
        self
    }

    /// The policy governing `topic`.
    pub fn policy_for(&self, topic: impl Into<Symbol>) -> &ReliabilityPolicy {
        self.per_topic.get(topic.into()).unwrap_or(&self.default)
    }
}

/// Circuit-breaker state of one endpoint.
#[derive(Clone, Debug, PartialEq)]
enum Gate {
    /// Healthy: dispatches flow.
    Closed,
    /// Tripped: dispatches steer away until the cool-down elapses.
    Open {
        /// When the breaker becomes eligible for a half-open probe.
        until: SimTime,
    },
    /// Cooling down: a single probe task is admitted; its outcome
    /// decides whether the breaker closes or re-opens.
    HalfOpen {
        /// The probe currently in flight, if any.
        probe: Option<TaskId>,
        /// Successes observed since entering half-open.
        successes: u32,
    },
}

struct EndpointHealth {
    gate: RefCell<Gate>,
    /// Consecutive failures since the last success.
    consecutive: Cell<u32>,
    /// Trip generation: increments on every open, and is the payload
    /// of the `breaker_opened`/`breaker_closed` trace events.
    generation: Cell<u64>,
}

impl EndpointHealth {
    fn new() -> Self {
        EndpointHealth {
            gate: RefCell::new(Gate::Closed),
            consecutive: Cell::new(0),
            generation: Cell::new(0),
        }
    }
}

/// One tracked task: how many copies are in flight and whether a
/// terminal outcome has already been delivered.
struct Inflight {
    /// Retained spec for hedge/reroute re-issue (`None` when the
    /// topic's policy never re-issues).
    spec: Option<TaskSpec>,
    /// Copies currently somewhere between dispatch and result.
    live: u32,
    /// Speculative copies issued so far.
    hedges: u32,
    /// Timeout-driven re-dispatches so far.
    reroutes: u32,
    /// A terminal outcome has been delivered; every later copy is
    /// cancelled on arrival.
    done: bool,
    /// When the task was first dispatched (round-trip baseline).
    dispatched: SimTime,
}

/// What the fabric should do with a result arriving from an endpoint.
#[derive(Debug, PartialEq, Eq)]
pub enum Verdict {
    /// First terminal outcome for this id: deliver it to the thinker,
    /// stamped with how many hedges/reroutes the task needed.
    Deliver {
        /// Speculative copies issued for this task.
        hedges: u32,
        /// Timeout-driven re-dispatches for this task.
        reroutes: u32,
    },
    /// A losing duplicate (or a failure while a sibling copy is still
    /// live): drop it; it has been accounted as cancelled waste.
    Suppress,
}

/// What the fabric should do when a delivery attempt times out.
#[derive(Debug)]
pub enum TimeoutVerdict {
    /// Re-dispatch the task to endpoint `to`.
    Reroute {
        /// A fresh copy of the task to deliver.
        spec: Box<TaskSpec>,
        /// The endpoint chosen for the re-dispatch.
        to: usize,
    },
    /// No copies left and no reroutes allowed: fail the task with
    /// `TaskError::Timeout` (the PR-2 behavior).
    Fail,
    /// Another copy is still in flight (or the task already finished):
    /// swallow this timeout silently.
    Suppress,
}

struct LayerInner {
    sim: Sim,
    tracer: Tracer,
    /// Fabric label for trace actors (`"fnx"` / `"htex"`).
    label: &'static str,
    /// Pre-interned `"<label>/health"` trace actor.
    actor: Symbol,
    policies: ReliabilityPolicies,
    /// Topic → candidate endpoints, primary first. Symbol-indexed:
    /// the per-dispatch lookup is an array index, not a string-compare
    /// tree walk.
    route: SymbolMap<Vec<usize>>,
    endpoints: Vec<EndpointHealth>,
    inflight: RefCell<BTreeMap<TaskId, Inflight>>,
    /// Per-topic round-trip latency samples feeding hedge delays.
    rtt: RefCell<SymbolMap<Samples>>,
    /// Seconds burned by cancelled losing copies.
    wasted: Cell<f64>,
    cancelled: Cell<u64>,
    hedged: Cell<u64>,
    rerouted: Cell<u64>,
    /// Observers of breaker transitions (`endpoint`, `open`): lets the
    /// steering layer's resource allocator see breaker state.
    observers: RefCell<Vec<BreakerObserver>>,
}

/// Callback invoked on every breaker transition: `(endpoint index, now open)`.
type BreakerObserver = Box<dyn Fn(usize, bool)>;

/// The active reliability layer shared by both fabrics: breaker-aware
/// routing, hedged dispatch, timeout rerouting, and exactly-once
/// result arbitration. Cheap to clone (shared state).
#[derive(Clone)]
pub struct ReliabilityLayer {
    inner: Rc<LayerInner>,
}

impl ReliabilityLayer {
    /// Builds the layer for `n` endpoints with the given topic routing
    /// (primary endpoint first in each candidate list). For endpoints
    /// with a [`Connectivity`], a heartbeat watcher is spawned when the
    /// default policy sets `offline_grace`: if the connection stays
    /// offline past the grace period, the endpoint's breaker trips
    /// without waiting for task failures.
    pub fn new(
        sim: &Sim,
        tracer: Tracer,
        label: &'static str,
        policies: ReliabilityPolicies,
        route: SymbolMap<Vec<usize>>,
        connectivity: &[Connectivity],
    ) -> Self {
        let n = route.values().flat_map(|c| c.iter()).fold(0, |m, &e| m.max(e + 1));
        let endpoints = (0..n.max(connectivity.len())).map(|_| EndpointHealth::new()).collect();
        let layer = ReliabilityLayer {
            inner: Rc::new(LayerInner {
                sim: sim.clone(),
                tracer,
                label,
                actor: Symbol::intern(&format!("{label}/health")),
                policies,
                route,
                endpoints,
                inflight: RefCell::new(BTreeMap::new()),
                rtt: RefCell::new(SymbolMap::new()),
                wasted: Cell::new(0.0),
                cancelled: Cell::new(0),
                hedged: Cell::new(0),
                rerouted: Cell::new(0),
                observers: RefCell::new(Vec::new()),
            }),
        };
        let grace = layer.inner.policies.default.breaker.offline_grace;
        if !grace.is_zero() {
            for (ep, conn) in connectivity.iter().enumerate() {
                layer.spawn_watcher(ep, conn.clone(), grace);
            }
        }
        layer
    }

    /// Event-driven heartbeat watcher: on every offline transition,
    /// race the reconnection against the grace period; losing trips
    /// the breaker. No polling, no idle timers — the watcher pends on
    /// the connectivity event between transitions, so it never blocks
    /// simulation quiescence.
    fn spawn_watcher(&self, endpoint: usize, conn: Connectivity, grace: Duration) {
        let layer = self.clone();
        let sim = self.inner.sim.clone();
        self.inner.sim.spawn(async move {
            loop {
                conn.wait_change().await;
                if !conn.is_online() {
                    let back = Box::pin(conn.wait_online());
                    if sim.timeout(grace, back).await.is_err() {
                        layer.trip(endpoint);
                        // Stay parked until the endpoint actually
                        // returns; the half-open probe cycle handles
                        // recovery from here.
                        conn.wait_online().await;
                    }
                }
            }
        });
    }

    fn policy(&self, topic: Symbol) -> &ReliabilityPolicy {
        self.inner.policies.policy_for(topic)
    }

    /// Candidate endpoints for `topic`, primary first.
    pub fn candidates(&self, topic: impl Into<Symbol>) -> Option<&[usize]> {
        self.inner.route.get(topic.into()).map(|v| v.as_slice())
    }

    /// Registers a dispatch and picks the endpoint: the first
    /// candidate whose breaker admits the task, falling back to the
    /// primary when every gate is shut (availability over purity).
    /// Returns `None` for an unrouted topic. With breaking disabled
    /// for the topic this is exactly the PR-2 primary-only routing and
    /// touches no breaker state.
    pub fn admit(&self, task: &TaskSpec) -> Option<usize> {
        let policy = self.policy(task.topic);
        let candidates = self.inner.route.get(task.topic)?;
        let endpoint = if policy.breaker.enabled() {
            self.pick(task.id, candidates)
        } else {
            candidates.first().copied()?
        };
        let spec = if policy.needs_copy() { Some(task.clone()) } else { None };
        self.inner.inflight.borrow_mut().insert(
            task.id,
            Inflight {
                spec,
                live: 1,
                hedges: 0,
                reroutes: 0,
                done: false,
                dispatched: self.inner.sim.now(),
            },
        );
        Some(endpoint)
    }

    /// Breaker-aware endpoint choice. Open gates past their cool-down
    /// lazily transition to half-open and admit the task as the probe.
    fn pick(&self, id: TaskId, candidates: &[usize]) -> usize {
        let now = self.inner.sim.now();
        for &ep in candidates {
            let Some(health) = self.inner.endpoints.get(ep) else { continue };
            let mut gate = health.gate.borrow_mut();
            match &mut *gate {
                Gate::Closed => return ep,
                Gate::Open { until } if now >= *until => {
                    *gate = Gate::HalfOpen { probe: Some(id), successes: 0 };
                    return ep;
                }
                Gate::Open { .. } => {}
                Gate::HalfOpen { probe, .. } => {
                    if probe.is_none() {
                        *probe = Some(id);
                        return ep;
                    }
                }
            }
        }
        candidates.first().copied().unwrap_or(0)
    }

    /// The hedge watchdog delay for `topic`: the configured round-trip
    /// quantile times the factor, once enough round trips have been
    /// observed. `None` while hedging is disabled or the estimate is
    /// not yet trustworthy.
    pub fn hedge_delay(&self, topic: impl Into<Symbol>) -> Option<Duration> {
        let topic = topic.into();
        let hedge = &self.policy(topic).hedge;
        if !hedge.enabled() {
            return None;
        }
        let rtt = self.inner.rtt.borrow();
        let samples = rtt.get(topic)?;
        if samples.len() < hedge.min_samples() {
            return None;
        }
        let q = samples.quantile(hedge.quantile.clamp(0.0, 1.0));
        let factor = if hedge.factor > 0.0 { hedge.factor } else { 1.0 };
        let delay = (q * factor).max(0.0);
        Some(hetflow_sim::time::secs(delay))
    }

    /// The hard round-trip deadline for `topic`, if configured.
    pub fn deadline(&self, topic: impl Into<Symbol>) -> Option<Duration> {
        let d = self.policy(topic.into()).deadline;
        if d.is_zero() {
            None
        } else {
            Some(d)
        }
    }

    /// Attempts to issue a speculative copy of task `id`: succeeds when
    /// the task is still unresolved and under its hedge budget. The
    /// copy prefers an endpoint other than the candidates' primary so
    /// a straggling or dead endpoint is actually bypassed; with a
    /// single endpoint the copy re-queues there (still rescuing tasks
    /// stuck behind a crash). Emits `task_hedged`.
    pub fn try_hedge(&self, id: TaskId, topic: impl Into<Symbol>) -> Option<(TaskSpec, usize)> {
        let topic = topic.into();
        let max = self.policy(topic).hedge.max_hedges();
        let candidates = self.inner.route.get(topic)?;
        let mut reg = self.inner.inflight.borrow_mut();
        let entry = reg.get_mut(&id)?;
        if entry.done || entry.hedges >= max {
            return None;
        }
        let spec = entry.spec.clone()?;
        entry.hedges += 1;
        entry.live += 1;
        let copy = entry.hedges;
        drop(reg);
        let to = self.pick_other(id, candidates, None);
        self.inner.hedged.set(self.inner.hedged.get() + 1);
        self.inner.tracer.emit(
            self.inner.sim.now(),
            self.inner.actor,
            kinds::TASK_HEDGED,
            id,
            copy as f64,
        );
        Some((spec, to))
    }

    /// Breaker-aware choice preferring any candidate other than
    /// `avoid` (when given) or the primary.
    fn pick_other(&self, id: TaskId, candidates: &[usize], avoid: Option<usize>) -> usize {
        let skip = avoid.or_else(|| candidates.first().copied());
        let others: Vec<usize> =
            candidates.iter().copied().filter(|&e| Some(e) != skip).collect();
        if others.is_empty() {
            candidates.first().copied().unwrap_or(0)
        } else {
            self.pick(id, &others)
        }
    }

    /// Arbitrates a result arriving from `endpoint` just before it
    /// would be delivered: the first terminal outcome wins; every
    /// later copy — and any failure while a sibling copy is still
    /// live — is suppressed, traced as `task_cancelled`, and its
    /// burned time (`waste_secs`) is accounted as hedging waste.
    /// Successes/failures also feed the endpoint's breaker, including
    /// the tail-latency SLO check.
    pub fn on_result(
        &self,
        endpoint: usize,
        id: TaskId,
        topic: impl Into<Symbol>,
        failed: bool,
        waste_secs: f64,
    ) -> Verdict {
        let topic = topic.into();
        let now = self.inner.sim.now();
        let cfg = &self.policy(topic).breaker;
        let mut reg = self.inner.inflight.borrow_mut();
        let Some(entry) = reg.get_mut(&id) else {
            // Untracked (direct pool use in tests): pass through.
            return Verdict::Deliver { hedges: 0, reroutes: 0 };
        };
        entry.live = entry.live.saturating_sub(1);
        if entry.done {
            let gone = entry.live == 0;
            if gone {
                reg.remove(&id);
            }
            drop(reg);
            self.cancel(id, waste_secs);
            return Verdict::Suppress;
        }
        let rtt = (now - entry.dispatched).as_secs_f64();
        let slow = !cfg.latency_slo.is_zero() && rtt > cfg.latency_slo.as_secs_f64();
        if failed && entry.live > 0 {
            // A sibling copy may still win: treat this failure as a
            // cancelled duplicate rather than a terminal outcome.
            drop(reg);
            self.observe(endpoint, cfg, false, id);
            self.cancel(id, waste_secs);
            return Verdict::Suppress;
        }
        entry.done = true;
        let verdict = Verdict::Deliver { hedges: entry.hedges, reroutes: entry.reroutes };
        if entry.live == 0 {
            reg.remove(&id);
        }
        drop(reg);
        if !failed {
            self.inner
                .rtt
                .borrow_mut()
                .get_or_insert_with(topic, Samples::default)
                .record(rtt);
        }
        self.observe(endpoint, cfg, !failed && !slow, id);
        verdict
    }

    /// Arbitrates a delivery timeout at `endpoint`: reroute to another
    /// endpoint while the topic's budget allows (tracing
    /// `task_rerouted`), suppress when a sibling copy is still live or
    /// the task already resolved, and fail otherwise. The timeout
    /// always counts as a failure signal for the endpoint's breaker.
    pub fn on_timeout(&self, endpoint: usize, id: TaskId, topic: impl Into<Symbol>) -> TimeoutVerdict {
        let topic = topic.into();
        let policy = self.policy(topic);
        let candidates: &[usize] =
            self.inner.route.get(topic).map(Vec::as_slice).unwrap_or(&[]);
        let mut reg = self.inner.inflight.borrow_mut();
        let Some(entry) = reg.get_mut(&id) else {
            return TimeoutVerdict::Fail;
        };
        entry.live = entry.live.saturating_sub(1);
        if entry.done {
            if entry.live == 0 {
                reg.remove(&id);
            }
            return TimeoutVerdict::Suppress;
        }
        let can_reroute = entry.reroutes < policy.max_reroutes && entry.spec.is_some();
        if can_reroute {
            entry.reroutes += 1;
            entry.live += 1;
            let n = entry.reroutes;
            let spec = entry.spec.clone();
            drop(reg);
            self.observe(endpoint, &policy.breaker, false, id);
            if let Some(spec) = spec {
                let to = self.pick_other(id, candidates, Some(endpoint));
                self.inner.rerouted.set(self.inner.rerouted.get() + 1);
                self.inner.tracer.emit(
                    self.inner.sim.now(),
                    self.inner.actor,
                    kinds::TASK_REROUTED,
                    id,
                    n as f64,
                );
                return TimeoutVerdict::Reroute { spec: Box::new(spec), to };
            }
            return TimeoutVerdict::Fail;
        }
        if entry.live > 0 {
            drop(reg);
            self.observe(endpoint, &policy.breaker, false, id);
            return TimeoutVerdict::Suppress;
        }
        entry.done = true;
        reg.remove(&id);
        drop(reg);
        self.observe(endpoint, &policy.breaker, false, id);
        TimeoutVerdict::Fail
    }

    /// Fires the hard round-trip deadline for task `id`: returns
    /// `true` when the task was still unresolved — the caller must
    /// then deliver a synthesized timeout failure; in-flight copies
    /// are cancelled as they surface.
    pub fn expire(&self, id: TaskId) -> bool {
        let mut reg = self.inner.inflight.borrow_mut();
        let Some(entry) = reg.get_mut(&id) else { return false };
        if entry.done {
            return false;
        }
        entry.done = true;
        if entry.live == 0 {
            reg.remove(&id);
        }
        true
    }

    /// Records a cancelled losing copy.
    fn cancel(&self, id: TaskId, waste_secs: f64) {
        self.inner.cancelled.set(self.inner.cancelled.get() + 1);
        self.inner.wasted.set(self.inner.wasted.get() + waste_secs.max(0.0));
        self.inner.tracer.emit(
            self.inner.sim.now(),
            self.inner.actor,
            kinds::TASK_CANCELLED,
            id,
            waste_secs.max(0.0),
        );
    }

    /// Feeds one observation into an endpoint's breaker.
    fn observe(&self, endpoint: usize, cfg: &BreakerConfig, success: bool, id: TaskId) {
        if !cfg.enabled() {
            return;
        }
        let Some(health) = self.inner.endpoints.get(endpoint) else { return };
        let mut transition: Option<bool> = None; // Some(true) = opened
        {
            let mut gate = health.gate.borrow_mut();
            if let Gate::HalfOpen { probe, .. } = &mut *gate {
                if *probe == Some(id) {
                    *probe = None;
                }
            }
            if success {
                health.consecutive.set(0);
                match &mut *gate {
                    Gate::Closed => {}
                    Gate::Open { .. } => {
                        // A round trip completed while open: genuine
                        // current evidence of health — move to
                        // half-open with this success banked.
                        if cfg.close_after() <= 1 {
                            *gate = Gate::Closed;
                            transition = Some(false);
                        } else {
                            *gate = Gate::HalfOpen { probe: None, successes: 1 };
                        }
                    }
                    Gate::HalfOpen { successes, .. } => {
                        *successes += 1;
                        if *successes >= cfg.close_after() {
                            *gate = Gate::Closed;
                            transition = Some(false);
                        }
                    }
                }
            } else {
                let c = health.consecutive.get() + 1;
                health.consecutive.set(c);
                let open_now = match &*gate {
                    Gate::Closed => c >= cfg.failure_threshold,
                    Gate::HalfOpen { .. } => true, // failed probe
                    Gate::Open { .. } => false,
                };
                if open_now {
                    *gate = Gate::Open { until: self.inner.sim.now() + cfg.open_for() };
                    transition = Some(true);
                }
            }
        }
        match transition {
            Some(true) => self.announce_open(endpoint),
            Some(false) => self.announce_closed(endpoint),
            None => {}
        }
    }

    /// Force-opens an endpoint's breaker (heartbeat watchers; tests).
    /// Uses the default policy's cool-down.
    pub fn trip(&self, endpoint: usize) {
        let Some(health) = self.inner.endpoints.get(endpoint) else { return };
        let open_for = self.inner.policies.default.breaker.open_for();
        let was_open = {
            let mut gate = health.gate.borrow_mut();
            let was = matches!(&*gate, Gate::Open { .. });
            *gate = Gate::Open { until: self.inner.sim.now() + open_for };
            was
        };
        if !was_open {
            self.announce_open(endpoint);
        }
    }

    fn announce_open(&self, endpoint: usize) {
        let generation = match self.inner.endpoints.get(endpoint) {
            Some(h) => {
                let g = h.generation.get() + 1;
                h.generation.set(g);
                h.consecutive.set(0);
                g
            }
            None => return,
        };
        let actor = format!("{}/health/ep{endpoint}", self.inner.label);
        self.inner.tracer.emit(
            self.inner.sim.now(),
            &actor,
            kinds::BREAKER_OPENED,
            endpoint as u64,
            generation as f64,
        );
        self.notify(endpoint, true);
    }

    fn announce_closed(&self, endpoint: usize) {
        let generation =
            self.inner.endpoints.get(endpoint).map(|h| h.generation.get()).unwrap_or(0);
        let actor = format!("{}/health/ep{endpoint}", self.inner.label);
        self.inner.tracer.emit(
            self.inner.sim.now(),
            &actor,
            kinds::BREAKER_CLOSED,
            endpoint as u64,
            generation as f64,
        );
        self.notify(endpoint, false);
    }

    fn notify(&self, endpoint: usize, open: bool) {
        // Take the observer list out for the duration of the calls so
        // an observer that re-enters the layer cannot hit a borrow
        // conflict.
        let observers = std::mem::take(&mut *self.inner.observers.borrow_mut());
        for f in &observers {
            f(endpoint, open);
        }
        let mut slot = self.inner.observers.borrow_mut();
        let mut merged = observers;
        merged.append(&mut slot);
        *slot = merged;
    }

    /// Registers an observer of breaker transitions: called with
    /// `(endpoint, open)` at every open/close. This is how the
    /// steering layer's resource allocator sees breaker state.
    pub fn on_breaker_change(&self, f: impl Fn(usize, bool) + 'static) {
        self.inner.observers.borrow_mut().push(Box::new(f));
    }

    /// True while `endpoint`'s breaker is open (cool-down running).
    pub fn breaker_open(&self, endpoint: usize) -> bool {
        self.inner
            .endpoints
            .get(endpoint)
            .map(|h| matches!(&*h.gate.borrow(), Gate::Open { .. }))
            .unwrap_or(false)
    }

    /// Times an endpoint's breaker has opened so far.
    pub fn breaker_generation(&self, endpoint: usize) -> u64 {
        self.inner.endpoints.get(endpoint).map(|h| h.generation.get()).unwrap_or(0)
    }

    /// Seconds burned by cancelled losing copies.
    pub fn wasted_secs(&self) -> f64 {
        self.inner.wasted.get()
    }

    /// Losing copies cancelled so far.
    pub fn cancelled(&self) -> u64 {
        self.inner.cancelled.get()
    }

    /// Speculative copies issued so far.
    pub fn hedged(&self) -> u64 {
        self.inner.hedged.get()
    }

    /// Timeout-driven re-dispatches so far.
    pub fn rerouted(&self) -> u64 {
        self.inner.rerouted.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSpec;
    use hetflow_sim::{Sim, SimTime};

    fn layer_with(policies: ReliabilityPolicies, n_endpoints: usize) -> (Sim, ReliabilityLayer) {
        let sim = Sim::new();
        let mut route = SymbolMap::new();
        route.insert(Symbol::intern("noop"), (0..n_endpoints).collect::<Vec<_>>());
        let layer = ReliabilityLayer::new(
            &sim,
            Tracer::enabled(),
            "fnx",
            policies,
            route,
            &[],
        );
        (sim, layer)
    }

    fn breaker_policy(threshold: u32) -> ReliabilityPolicies {
        ReliabilityPolicies {
            default: ReliabilityPolicy {
                breaker: BreakerConfig {
                    failure_threshold: threshold,
                    open_for: Duration::from_secs(30),
                    ..Default::default()
                },
                ..Default::default()
            },
            per_topic: SymbolMap::new(),
        }
    }

    #[test]
    fn disabled_policy_routes_to_primary_and_passes_results() {
        let (_sim, layer) = layer_with(ReliabilityPolicies::default(), 2);
        let t = TaskSpec::noop(1, 100);
        assert_eq!(layer.admit(&t), Some(0));
        assert_eq!(
            layer.on_result(0, 1, "noop", false, 0.0),
            Verdict::Deliver { hedges: 0, reroutes: 0 }
        );
        assert_eq!(layer.cancelled(), 0);
        assert!(!layer.breaker_open(0));
    }

    #[test]
    fn consecutive_failures_open_then_failover() {
        let (_sim, layer) = layer_with(breaker_policy(3), 2);
        for id in 0..3u64 {
            let t = TaskSpec::noop(id, 100);
            assert_eq!(layer.admit(&t), Some(0), "primary while closed");
            let v = layer.on_result(0, id, "noop", true, 1.0);
            assert_eq!(v, Verdict::Deliver { hedges: 0, reroutes: 0 });
        }
        assert!(layer.breaker_open(0), "third consecutive failure trips the breaker");
        assert_eq!(layer.breaker_generation(0), 1);
        let t = TaskSpec::noop(10, 100);
        assert_eq!(layer.admit(&t), Some(1), "dispatch steers to the healthy endpoint");
    }

    #[test]
    fn success_resets_consecutive_count() {
        let (_sim, layer) = layer_with(breaker_policy(3), 2);
        for id in 0..10u64 {
            let t = TaskSpec::noop(id, 100);
            layer.admit(&t);
            // Alternate failure/success: never 3 consecutive.
            layer.on_result(0, id, "noop", id % 2 == 0, 0.0);
        }
        assert!(!layer.breaker_open(0));
    }

    #[test]
    fn half_open_probe_closes_breaker_after_cooldown() {
        let (sim, layer) = layer_with(breaker_policy(1), 2);
        let t = TaskSpec::noop(0, 100);
        layer.admit(&t);
        layer.on_result(0, 0, "noop", true, 0.0);
        assert!(layer.breaker_open(0));
        // Within the cool-down: dispatches steer away.
        let t = TaskSpec::noop(1, 100);
        assert_eq!(layer.admit(&t), Some(1));
        layer.on_result(1, 1, "noop", false, 0.0);
        // After the cool-down: the primary gets the half-open probe.
        let s = sim.clone();
        let l = layer.clone();
        let h = sim.spawn(async move {
            s.sleep(Duration::from_secs(31)).await;
            let probe = TaskSpec::noop(2, 100);
            let ep = l.admit(&probe);
            assert!(!l.breaker_open(0), "half-open is not open");
            let v = l.on_result(0, 2, "noop", false, 0.0);
            (ep, v)
        });
        let (ep, v) = sim.block_on(h);
        assert_eq!(ep, Some(0), "probe goes to the recovering primary");
        assert_eq!(v, Verdict::Deliver { hedges: 0, reroutes: 0 });
        assert!(!layer.breaker_open(0), "successful probe closes the breaker");
        let opened = layer.inner.tracer.events_of_kind(kinds::BREAKER_OPENED);
        let closed = layer.inner.tracer.events_of_kind(kinds::BREAKER_CLOSED);
        assert_eq!(opened.len(), 1);
        assert_eq!(closed.len(), 1);
    }

    #[test]
    fn failed_probe_reopens_breaker() {
        let (sim, layer) = layer_with(breaker_policy(1), 2);
        let t = TaskSpec::noop(0, 100);
        layer.admit(&t);
        layer.on_result(0, 0, "noop", true, 0.0);
        let s = sim.clone();
        let l = layer.clone();
        let h = sim.spawn(async move {
            s.sleep(Duration::from_secs(31)).await;
            let probe = TaskSpec::noop(1, 100);
            let ep = l.admit(&probe);
            l.on_result(0, 1, "noop", true, 0.0);
            ep
        });
        assert_eq!(sim.block_on(h), Some(0));
        assert!(layer.breaker_open(0), "failed probe re-opens");
        assert_eq!(layer.breaker_generation(0), 2);
    }

    #[test]
    fn half_open_admits_single_probe() {
        let (sim, layer) = layer_with(breaker_policy(1), 2);
        let t = TaskSpec::noop(0, 100);
        layer.admit(&t);
        layer.on_result(0, 0, "noop", true, 0.0);
        let s = sim.clone();
        let l = layer.clone();
        let h = sim.spawn(async move {
            s.sleep(Duration::from_secs(31)).await;
            let a = l.admit(&TaskSpec::noop(1, 100));
            let b = l.admit(&TaskSpec::noop(2, 100));
            (a, b)
        });
        let (a, b) = sim.block_on(h);
        assert_eq!(a, Some(0), "first dispatch is the probe");
        assert_eq!(b, Some(1), "second dispatch steers away while the probe is out");
    }

    #[test]
    fn duplicate_results_suppressed_exactly_once_semantics() {
        let policies = ReliabilityPolicies {
            default: ReliabilityPolicy {
                hedge: HedgeConfig { quantile: 0.9, min_samples: 1, ..Default::default() },
                ..Default::default()
            },
            per_topic: SymbolMap::new(),
        };
        let (_sim, layer) = layer_with(policies, 2);
        let t = TaskSpec::noop(7, 100);
        layer.admit(&t);
        let hedge = layer.try_hedge(7, "noop");
        assert!(hedge.is_some(), "unresolved task under budget must hedge");
        let (_spec, to) = hedge.unwrap();
        assert_eq!(to, 1, "hedge prefers a different endpoint");
        assert_eq!(
            layer.on_result(1, 7, "noop", false, 0.0),
            Verdict::Deliver { hedges: 1, reroutes: 0 },
            "first result wins and reports the hedge count"
        );
        assert_eq!(
            layer.on_result(0, 7, "noop", false, 3.5),
            Verdict::Suppress,
            "the loser is cancelled"
        );
        assert_eq!(layer.cancelled(), 1);
        assert!((layer.wasted_secs() - 3.5).abs() < 1e-12);
        assert!(layer.try_hedge(7, "noop").is_none(), "resolved tasks never hedge");
        let cancelled = layer.inner.tracer.events_of_kind(kinds::TASK_CANCELLED);
        assert_eq!(cancelled.len(), 1);
        assert_eq!(cancelled[0].entity, 7);
    }

    #[test]
    fn failure_with_live_sibling_is_suppressed() {
        let policies = ReliabilityPolicies {
            default: ReliabilityPolicy {
                hedge: HedgeConfig { quantile: 0.9, min_samples: 1, ..Default::default() },
                ..Default::default()
            },
            per_topic: SymbolMap::new(),
        };
        let (_sim, layer) = layer_with(policies, 2);
        layer.admit(&TaskSpec::noop(1, 100));
        layer.try_hedge(1, "noop");
        assert_eq!(
            layer.on_result(0, 1, "noop", true, 2.0),
            Verdict::Suppress,
            "a failure must not beat a still-live sibling"
        );
        assert_eq!(
            layer.on_result(1, 1, "noop", false, 0.0),
            Verdict::Deliver { hedges: 1, reroutes: 0 }
        );
    }

    #[test]
    fn hedge_delay_needs_samples_then_tracks_quantile() {
        let policies = ReliabilityPolicies {
            default: ReliabilityPolicy {
                hedge: HedgeConfig {
                    quantile: 0.5,
                    factor: 2.0,
                    min_samples: 3,
                    ..Default::default()
                },
                ..Default::default()
            },
            per_topic: SymbolMap::new(),
        };
        let (sim, layer) = layer_with(policies, 1);
        assert!(layer.hedge_delay("noop").is_none(), "no samples yet");
        let l = layer.clone();
        let s = sim.clone();
        let h = sim.spawn(async move {
            for id in 0..4u64 {
                l.admit(&TaskSpec::noop(id, 100));
                s.sleep(Duration::from_secs(10)).await;
                l.on_result(0, id, "noop", false, 0.0);
            }
            l.hedge_delay("noop")
        });
        let delay = sim.block_on(h);
        // Every round trip took 10 s; median 10 × factor 2 = 20 s.
        assert_eq!(delay, Some(Duration::from_secs(20)));
    }

    #[test]
    fn timeout_reroutes_within_budget_then_fails() {
        let policies = ReliabilityPolicies {
            default: ReliabilityPolicy { max_reroutes: 1, ..Default::default() },
            per_topic: SymbolMap::new(),
        };
        let (_sim, layer) = layer_with(policies, 2);
        layer.admit(&TaskSpec::noop(3, 100));
        match layer.on_timeout(0, 3, "noop") {
            TimeoutVerdict::Reroute { spec, to } => {
                assert_eq!(spec.id, 3);
                assert_eq!(to, 1, "reroute avoids the timing-out endpoint");
            }
            other => panic!("expected reroute, got {other:?}"),
        }
        assert_eq!(layer.rerouted(), 1);
        match layer.on_timeout(1, 3, "noop") {
            TimeoutVerdict::Fail => {}
            other => panic!("budget exhausted must fail, got {other:?}"),
        }
        let rerouted = layer.inner.tracer.events_of_kind(kinds::TASK_REROUTED);
        assert_eq!(rerouted.len(), 1);
    }

    #[test]
    fn expire_fires_once_and_cancels_stragglers() {
        let policies = ReliabilityPolicies {
            default: ReliabilityPolicy {
                deadline: Duration::from_secs(100),
                max_reroutes: 1,
                ..Default::default()
            },
            per_topic: SymbolMap::new(),
        };
        let (_sim, layer) = layer_with(policies, 1);
        layer.admit(&TaskSpec::noop(9, 100));
        assert!(layer.expire(9), "unresolved task expires");
        assert!(!layer.expire(9), "second expiry is a no-op");
        assert_eq!(
            layer.on_result(0, 9, "noop", false, 4.0),
            Verdict::Suppress,
            "a result surfacing after expiry is cancelled"
        );
        assert_eq!(layer.cancelled(), 1);
    }

    #[test]
    fn latency_slo_violations_count_as_failures() {
        let policies = ReliabilityPolicies {
            default: ReliabilityPolicy {
                breaker: BreakerConfig {
                    failure_threshold: 2,
                    latency_slo: Duration::from_secs(5),
                    ..Default::default()
                },
                ..Default::default()
            },
            per_topic: SymbolMap::new(),
        };
        let (sim, layer) = layer_with(policies, 2);
        let l = layer.clone();
        let s = sim.clone();
        let h = sim.spawn(async move {
            for id in 0..2u64 {
                l.admit(&TaskSpec::noop(id, 100));
                s.sleep(Duration::from_secs(30)).await; // 30 s ≫ 5 s SLO
                l.on_result(0, id, "noop", false, 0.0);
            }
            l.breaker_open(0)
        });
        assert!(sim.block_on(h), "two slow successes trip the SLO breaker");
    }

    #[test]
    fn offline_watcher_trips_after_grace() {
        let sim = Sim::new();
        let conn = Connectivity::always_on();
        let mut route = SymbolMap::new();
        route.insert(Symbol::intern("noop"), vec![0]);
        let policies = ReliabilityPolicies {
            default: ReliabilityPolicy {
                breaker: BreakerConfig {
                    failure_threshold: 1,
                    offline_grace: Duration::from_secs(10),
                    ..Default::default()
                },
                ..Default::default()
            },
            per_topic: SymbolMap::new(),
        };
        let layer = ReliabilityLayer::new(
            &sim,
            Tracer::enabled(),
            "fnx",
            policies,
            route,
            std::slice::from_ref(&conn),
        );
        let s = sim.clone();
        let c = conn.clone();
        sim.spawn(async move {
            s.sleep(Duration::from_secs(5)).await;
            c.set_online(false);
        });
        sim.run();
        assert!(layer.breaker_open(0), "grace elapsed offline must trip the breaker");
        let opened = layer.inner.tracer.events_of_kind(kinds::BREAKER_OPENED);
        assert_eq!(opened.len(), 1);
        assert_eq!(opened[0].t, SimTime::from_secs(15), "trip at offline + grace");
    }

    #[test]
    fn short_blip_within_grace_does_not_trip() {
        let sim = Sim::new();
        let conn = Connectivity::scheduled(
            &sim,
            vec![(SimTime::from_secs(5), Duration::from_secs(3))],
        );
        let mut route = SymbolMap::new();
        route.insert(Symbol::intern("noop"), vec![0]);
        let policies = ReliabilityPolicies {
            default: ReliabilityPolicy {
                breaker: BreakerConfig {
                    failure_threshold: 1,
                    offline_grace: Duration::from_secs(10),
                    ..Default::default()
                },
                ..Default::default()
            },
            per_topic: SymbolMap::new(),
        };
        let layer = ReliabilityLayer::new(
            &sim,
            Tracer::enabled(),
            "fnx",
            policies,
            route,
            std::slice::from_ref(&conn),
        );
        sim.run();
        assert!(!layer.breaker_open(0), "a 3 s blip inside a 10 s grace is forgiven");
    }

    #[test]
    fn breaker_observers_see_transitions() {
        let (_sim, layer) = layer_with(breaker_policy(1), 2);
        let seen: Rc<RefCell<Vec<(usize, bool)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        layer.on_breaker_change(move |ep, open| sink.borrow_mut().push((ep, open)));
        layer.admit(&TaskSpec::noop(0, 100));
        layer.on_result(0, 0, "noop", true, 0.0);
        layer.trip(1);
        assert_eq!(&*seen.borrow(), &[(0, true), (1, true)]);
    }
}
